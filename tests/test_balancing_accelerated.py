"""Tests for accelerated diffusion schemes."""

import networkx as nx
import numpy as np
import pytest

from repro.balancing import (
    chebyshev_diffusion_balance,
    diffusion_balance,
    diffusion_matrix,
    second_eigenvalue,
    second_order_diffusion_balance,
)


def end_loaded(n):
    load = np.zeros(n)
    load[0] = float(n)
    return load


def test_diffusion_matrix_is_doubly_stochastic():
    g = nx.path_graph(6)
    m = diffusion_matrix(g)
    assert np.allclose(m.sum(axis=0), 1.0)
    assert np.allclose(m.sum(axis=1), 1.0)
    assert np.all(m >= -1e-12)


def test_diffusion_matrix_empty_graph():
    with pytest.raises(ValueError):
        diffusion_matrix(nx.Graph())


def test_second_eigenvalue_bounds():
    g = nx.path_graph(8)
    lam2 = second_eigenvalue(diffusion_matrix(g))
    assert 0.0 < lam2 < 1.0
    # Complete graph with alpha = 1/n balances in one round: lambda2 = 0.
    k = nx.complete_graph(5)
    lam2_k = second_eigenvalue(diffusion_matrix(k, alpha=1.0 / 5.0))
    assert lam2_k == pytest.approx(0.0, abs=1e-9)


def test_second_eigenvalue_rejects_non_diffusion_matrix():
    with pytest.raises(ValueError):
        second_eigenvalue(np.diag([0.5, 0.2]))


@pytest.mark.parametrize(
    "balancer", [second_order_diffusion_balance, chebyshev_diffusion_balance]
)
def test_accelerated_schemes_balance_and_conserve(balancer):
    g = nx.path_graph(12)
    load = end_loaded(12)
    final, rounds = balancer(g, load, tol=1e-8)
    assert np.allclose(final, 1.0, atol=1e-6)
    assert final.sum() == pytest.approx(load.sum(), rel=1e-12)
    assert rounds > 0


@pytest.mark.parametrize(
    "balancer", [second_order_diffusion_balance, chebyshev_diffusion_balance]
)
def test_accelerated_faster_than_first_order_on_chain(balancer):
    g = nx.path_graph(16)
    load = end_loaded(16)
    _, first_order = diffusion_balance(g, load, tol=1e-6)
    _, accelerated = balancer(g, load, tol=1e-6)
    # Heavy-ball/Chebyshev: O(1/sqrt(1-λ2)) vs O(1/(1-λ2)): a chain of 16
    # shows well over 3x fewer rounds.
    assert accelerated * 3 < first_order


def test_chebyshev_at_least_as_fast_as_second_order():
    g = nx.path_graph(20)
    load = end_loaded(20)
    _, sos = second_order_diffusion_balance(g, load, tol=1e-8)
    _, cheb = chebyshev_diffusion_balance(g, load, tol=1e-8)
    assert cheb <= sos * 1.1


def test_already_balanced_returns_immediately():
    g = nx.path_graph(5)
    load = np.full(5, 3.0)
    final, rounds = second_order_diffusion_balance(g, load)
    assert rounds == 0
    assert np.array_equal(final, load)


def test_disconnected_rejected():
    g = nx.Graph()
    g.add_edges_from([(0, 1), (2, 3)])
    with pytest.raises(ValueError, match="connected"):
        second_order_diffusion_balance(g, np.array([4.0, 0, 0, 0]))
    with pytest.raises(ValueError, match="connected"):
        chebyshev_diffusion_balance(g, np.array([4.0, 0, 0, 0]))


def test_transient_negativity_is_possible():
    """Accelerated schemes overshoot: loads can transiently go negative
    (documented caveat; the reason the component balancer is first-order).
    A mid-chain spike produces the overshoot."""
    import math

    g = nx.path_graph(13)
    load = np.zeros(13)
    load[6] = 13.0
    matrix = diffusion_matrix(g)
    lam2 = second_eigenvalue(matrix)
    beta = 2.0 / (1.0 + math.sqrt(1.0 - lam2 * lam2))
    prev = load
    current = matrix @ prev
    saw_negative = False
    for _ in range(300):
        current, prev = beta * (matrix @ current) + (1 - beta) * prev, current
        if np.any(current < -1e-9):
            saw_negative = True
            break
    assert saw_negative
