"""Integration tests for the unbalanced AIAC solver (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import SolverConfig, run_aiac
from repro.grid import homogeneous_cluster
from repro.grid.host import Host
from repro.grid.link import Link
from repro.grid.network import Network
from repro.grid.platform import Platform
from repro.problems import (
    BrusselatorProblem,
    HeatProblem,
    LinearFixedPointProblem,
    SyntheticProblem,
    random_contraction_system,
)
from repro.util.rng import spawn_generator


def synthetic(n=48, hard=0.9):
    return SyntheticProblem.with_hard_region(n, easy_rate=0.4, hard_rate=hard)


def test_single_rank_reduces_to_sequential():
    prob = synthetic(16)
    plat = homogeneous_cluster(1, speed=100.0)
    r = run_aiac(prob, plat, SolverConfig(tolerance=1e-8))
    assert r.converged
    assert r.n_ranks == 1
    assert np.max(r.solution()) < 1e-8


@pytest.mark.parametrize("n_ranks", [2, 3, 5])
def test_synthetic_converges_to_fixed_point(n_ranks):
    prob = synthetic(45)
    plat = homogeneous_cluster(n_ranks, speed=100.0)
    r = run_aiac(prob, plat, SolverConfig(tolerance=1e-8, max_iterations=20000))
    assert r.converged
    assert np.max(r.solution()) < 1e-8
    assert r.solution().shape == (45,)


def test_brusselator_matches_reference():
    prob = BrusselatorProblem(12, t_end=2.0, n_steps=20)
    plat = homogeneous_cluster(3, speed=5000.0)
    r = run_aiac(prob, plat, SolverConfig(tolerance=1e-8, max_iterations=3000))
    assert r.converged
    assert r.max_error_vs(prob.reference_solution()) < 1e-5


def test_heat_matches_reference():
    prob = HeatProblem(n_points=12, t_end=0.05, n_steps=20)
    plat = homogeneous_cluster(3, speed=5000.0)
    r = run_aiac(prob, plat, SolverConfig(tolerance=1e-10, max_iterations=5000))
    assert r.converged
    assert r.max_error_vs(prob.reference_solution()) < 1e-7


def test_linear_matches_direct_solution():
    rng = spawn_generator(7, "sys")
    prob = LinearFixedPointProblem(
        *random_contraction_system(40, rng, contraction=0.7)
    )
    plat = homogeneous_cluster(4, speed=1000.0)
    r = run_aiac(prob, plat, SolverConfig(tolerance=1e-11, max_iterations=5000))
    assert r.converged
    assert np.max(np.abs(r.solution() - prob.fixed_point())) < 1e-9


def test_deterministic_across_runs():
    cfg = SolverConfig(tolerance=1e-8)
    plat = homogeneous_cluster(3, speed=100.0)
    r1 = run_aiac(synthetic(), plat, cfg)
    r2 = run_aiac(synthetic(), plat, cfg)
    assert r1.time == r2.time
    assert r1.iterations == r2.iterations
    assert np.array_equal(r1.solution(), r2.solution())


def test_platform_unchanged_by_run():
    plat = homogeneous_cluster(3, speed=100.0)
    run_aiac(synthetic(), plat, SolverConfig(tolerance=1e-8))
    assert plat.network.messages_sent == 0  # runs use a private copy


def test_heterogeneous_speeds_converge_and_fast_ranks_iterate_more():
    net = Network(Link(latency=1e-4, bandwidth=1e8))
    hosts = [Host("slow", 50.0), Host("fast", 500.0)]
    plat = Platform(hosts=hosts, network=net)
    prob = SyntheticProblem(np.full(24, 0.9), coupling=0.2)
    r = run_aiac(prob, plat, SolverConfig(tolerance=1e-8, max_iterations=50000))
    assert r.converged
    assert r.iterations[1] > 2 * r.iterations[0]


def test_max_iterations_aborts():
    prob = SyntheticProblem(np.full(12, 0.999), coupling=0.1)
    plat = homogeneous_cluster(2, speed=100.0)
    r = run_aiac(prob, plat, SolverConfig(tolerance=1e-12, max_iterations=30))
    assert not r.converged
    assert "max_iterations" in r.meta["aborted_reason"]


def test_max_time_horizon():
    prob = SyntheticProblem(np.full(12, 0.9999), coupling=0.1)
    plat = homogeneous_cluster(2, speed=100.0)
    r = run_aiac(
        prob, plat, SolverConfig(tolerance=1e-12, max_time=5.0, max_iterations=10**6)
    )
    assert not r.converged
    assert r.time <= 5.0 + 1e-9


def test_eager_variant_sends_more_messages():
    from repro.models import run_aiac_model

    plat = homogeneous_cluster(3, speed=100.0)
    cfg = SolverConfig(tolerance=1e-8)
    r_excl = run_aiac_model(synthetic(), plat, cfg, variant="exclusive")
    r_eager = run_aiac_model(synthetic(), plat, cfg, variant="eager")
    assert r_eager.converged and r_excl.converged
    n_excl = len([m for m in r_excl.tracer.messages if m.kind.startswith("halo")])
    n_eager = len([m for m in r_eager.tracer.messages if m.kind.startswith("halo")])
    assert n_eager >= n_excl


def test_host_order_permutation():
    net = Network(Link(latency=1e-4, bandwidth=1e8))
    hosts = [Host("a", 50.0), Host("b", 500.0), Host("c", 50.0)]
    plat = Platform(hosts=hosts, network=net)
    r = run_aiac(
        synthetic(30),
        plat,
        SolverConfig(tolerance=1e-8, max_iterations=30000),
        host_order=[1, 0, 2],
    )
    assert r.converged
    # Rank 0 runs on host "b" (fast): it iterates the most.
    assert r.iterations[0] >= max(r.iterations[1:])


def test_bad_host_order_rejected():
    plat = homogeneous_cluster(3)
    with pytest.raises(ValueError, match="permutation"):
        run_aiac(synthetic(), plat, host_order=[0, 0, 1])


def test_work_accounting_positive_and_busy_time_recorded():
    plat = homogeneous_cluster(2, speed=100.0)
    r = run_aiac(synthetic(24), plat, SolverConfig(tolerance=1e-8))
    assert all(w > 0 for w in r.work)
    for rank in range(2):
        assert r.tracer.busy_time_of(rank) <= r.time + 1e-9
