"""Tests for the ASCII plotting helper."""

import pytest

from repro.analysis.plots import ascii_plot


def test_single_series_renders():
    out = ascii_plot({"t": ([1, 2, 4], [10.0, 5.0, 2.5])}, title="scaling")
    assert "scaling" in out
    assert "legend: A=t" in out
    assert "A" in out


def test_two_series_distinct_glyphs():
    out = ascii_plot(
        {
            "without LB": ([1, 2, 4], [10.0, 5.0, 2.5]),
            "with LB": ([1, 2, 4], [2.0, 1.0, 0.5]),
        }
    )
    assert "A" in out and "B" in out
    assert "A=without LB" in out and "B=with LB" in out


def test_log_log_axis_labels():
    out = ascii_plot(
        {"t": ([1, 100], [10.0, 1000.0])}, log_x=True, log_y=True, title="x"
    )
    assert "[log-log]" in out
    assert "1e+03" in out or "1000" in out


def test_log_axis_rejects_nonpositive():
    with pytest.raises(ValueError, match="positive"):
        ascii_plot({"t": ([0, 1], [1.0, 2.0])}, log_x=True)


def test_monotone_series_orientation():
    # Decreasing series: the glyph for the smallest x must be on a
    # higher row (earlier line) than for the largest x.
    out = ascii_plot({"t": ([1, 2, 3, 4], [8.0, 4.0, 2.0, 1.0])}, height=8)
    lines = [l for l in out.splitlines() if "|" in l]
    first_row = next(i for i, l in enumerate(lines) if "A" in l)
    last_row = max(i for i, l in enumerate(lines) if "A" in l)
    first_col = lines[first_row].index("A")
    last_col = lines[last_row].index("A")
    assert first_col < last_col  # high value at small x, low at large x


def test_validation():
    with pytest.raises(ValueError):
        ascii_plot({})
    with pytest.raises(ValueError):
        ascii_plot({"t": ([1], [1.0, 2.0])})
    with pytest.raises(ValueError):
        ascii_plot({"t": ([], [])})
    with pytest.raises(ValueError):
        ascii_plot({"t": ([1], [1.0])}, width=3)
    too_many = {f"s{i}": ([1], [1.0]) for i in range(9)}
    with pytest.raises(ValueError, match="at most"):
        ascii_plot(too_many)


def test_constant_series_does_not_divide_by_zero():
    out = ascii_plot({"t": ([1, 2], [5.0, 5.0])})
    assert "A" in out
