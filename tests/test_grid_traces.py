"""Tests for availability traces."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.grid.traces import (
    MIN_AVAILABILITY,
    ConstantTrace,
    MarkovTrace,
    PiecewiseTrace,
)
from repro.util.rng import spawn_generator


def test_constant_trace():
    t = ConstantTrace(0.5)
    assert t.value(0) == 0.5
    assert t.value(1e9) == 0.5
    assert t.next_change(0) == float("inf")
    assert t.mean_over(0, 10) == 0.5


def test_constant_trace_bounds():
    with pytest.raises(ValueError):
        ConstantTrace(0.0)
    with pytest.raises(ValueError):
        ConstantTrace(1.5)


def test_piecewise_values_and_changes():
    t = PiecewiseTrace([0.0, 10.0, 20.0], [1.0, 0.5, 0.25])
    assert t.value(0) == 1.0
    assert t.value(9.999) == 1.0
    assert t.value(10.0) == 0.5
    assert t.value(25.0) == 0.25
    assert t.next_change(0) == 10.0
    assert t.next_change(10.0) == 20.0
    assert t.next_change(20.0) == float("inf")


def test_piecewise_mean_over():
    t = PiecewiseTrace([0.0, 10.0], [1.0, 0.5])
    assert t.mean_over(0, 20) == pytest.approx(0.75)
    assert t.mean_over(5, 15) == pytest.approx(0.75)


def test_piecewise_validation():
    with pytest.raises(ValueError):
        PiecewiseTrace([1.0], [0.5])  # must start at 0
    with pytest.raises(ValueError):
        PiecewiseTrace([0.0, 0.0], [0.5, 0.5])  # not increasing
    with pytest.raises(ValueError):
        PiecewiseTrace([0.0], [0.0])  # below floor
    with pytest.raises(ValueError):
        PiecewiseTrace([0.0, 1.0], [0.5])  # length mismatch
    with pytest.raises(ValueError):
        PiecewiseTrace([], [])


def test_markov_trace_deterministic_per_seed():
    t1 = MarkovTrace(spawn_generator(1, "load"), mean_dwell=5.0)
    t2 = MarkovTrace(spawn_generator(1, "load"), mean_dwell=5.0)
    ts = np.linspace(0, 200, 77)
    assert [t1.value(x) for x in ts] == [t2.value(x) for x in ts]


def test_markov_trace_query_order_independent():
    t1 = MarkovTrace(spawn_generator(3, "load"), mean_dwell=5.0)
    t2 = MarkovTrace(spawn_generator(3, "load"), mean_dwell=5.0)
    # Force t2 far into the future first; values at small t must agree.
    t2.value(500.0)
    for x in [0.0, 1.0, 7.5, 33.3]:
        assert t1.value(x) == t2.value(x)


def test_markov_trace_respects_bounds():
    t = MarkovTrace(spawn_generator(2, "load"), mean_dwell=1.0, low=0.3, high=0.7)
    for x in np.linspace(0, 100, 333):
        assert 0.3 <= t.value(x) <= 0.7


def test_markov_next_change_is_strictly_after():
    t = MarkovTrace(spawn_generator(4, "load"), mean_dwell=2.0)
    x = 0.0
    for _ in range(50):
        nxt = t.next_change(x)
        assert nxt > x
        x = nxt


@given(st.floats(min_value=0, max_value=1e4), st.floats(min_value=0, max_value=1e4))
def test_property_markov_value_in_range(a, b):
    t = MarkovTrace(spawn_generator(9, "load"), mean_dwell=3.0, low=0.2, high=0.9)
    for x in (a, b):
        assert MIN_AVAILABILITY <= 0.2 <= t.value(x) <= 0.9


# ----------------------------------------------------------------------
# mean_over progress guard (regression: non-advancing next_change)
# ----------------------------------------------------------------------
class _StuckTrace(PiecewiseTrace):
    """A trace whose next_change violates its contract by not advancing.

    Simulates the duplicate-breakpoint corruption that PiecewiseTrace's
    constructor normally rejects: before the progress guard, mean_over
    looped forever on such a trace.
    """

    def __init__(self, stuck_at: float):
        super().__init__([0.0, stuck_at], [1.0, 0.5])
        self._stuck_at = stuck_at

    def next_change(self, t: float) -> float:
        if t >= self._stuck_at:
            return self._stuck_at  # <= t: contract violation
        return super().next_change(t)


def test_mean_over_raises_on_non_advancing_trace():
    t = _StuckTrace(5.0)
    with pytest.raises(RuntimeError, match="does not advance"):
        t.mean_over(0.0, 10.0)


def test_piecewise_rejects_duplicate_breakpoints():
    with pytest.raises(ValueError, match="strictly increasing"):
        PiecewiseTrace([0.0, 5.0, 5.0], [1.0, 0.5, 0.25])


def test_mean_over_exact_segments_unchanged():
    t = PiecewiseTrace([0.0, 10.0], [1.0, 0.5])
    assert t.mean_over(0.0, 20.0) == pytest.approx(0.75)
    assert t.mean_over(0.0, 10.0) == pytest.approx(1.0)
    assert t.mean_over(10.0, 30.0) == pytest.approx(0.5)
    # Degenerate interval: the value at t0.
    assert t.mean_over(5.0, 5.0) == 1.0


def test_mean_over_markov_terminates_and_averages():
    t = MarkovTrace(spawn_generator(5, "load"), mean_dwell=2.0, low=0.3, high=0.9)
    m = t.mean_over(0.0, 50.0)
    assert 0.3 <= m <= 0.9
