"""Unit tests for the ragged per-rank chain reductions.

The bit-identity contract: ``ChainSegments.max`` / ``.sum`` over the
concatenated value array must equal what each rank computes on its own
contiguous slice — exactly, not approximately — for equal-width,
ragged, and empty-block layouts (each of which takes a different
reduction path internally).
"""

import numpy as np
import pytest

from repro.numerics import ChainSegments, validate_chain_blocks

LAYOUTS = {
    "equal_width": [(0, 8), (8, 16), (16, 24)],
    "ragged": [(0, 3), (3, 17), (17, 24)],
    "single_rank": [(0, 24)],
    "one_component_blocks": [(0, 1), (1, 2), (2, 24)],
    "with_empty": [(0, 5), (5, 5), (5, 23), (23, 24), (24, 24)],
}
N = 24


def _values(n=N, seed=7):
    # Scales spread over many decades so any reassociated summation
    # would visibly change the low bits.
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) * 10.0 ** rng.integers(-12, 12, size=n)


@pytest.mark.parametrize("name", sorted(LAYOUTS))
def test_max_matches_per_rank_slice(name):
    blocks = LAYOUTS[name]
    seg = ChainSegments(blocks, N)
    values = np.abs(_values())
    out = seg.max(values)
    for r, (lo, hi) in enumerate(blocks):
        expected = float(values[lo:hi].max()) if hi > lo else 0.0
        assert out[r] == expected


@pytest.mark.parametrize("name", sorted(LAYOUTS))
def test_sum_bit_identical_to_per_rank_slice(name):
    blocks = LAYOUTS[name]
    seg = ChainSegments(blocks, N)
    values = _values()
    out = seg.sum(values)
    for r, (lo, hi) in enumerate(blocks):
        expected = values[lo:hi].sum() if hi > lo else 0.0
        assert out[r] == expected  # exact, not approx


def test_sum_bit_identical_on_wide_blocks():
    # Wide enough that numpy's pairwise summation actually recurses, so
    # a left-to-right accumulation (e.g. np.add.reduceat) would differ.
    blocks = [(0, 1000), (1000, 1537), (1537, 4096)]
    seg = ChainSegments(blocks, 4096)
    values = _values(4096, seed=3)
    out = seg.sum(values)
    for r, (lo, hi) in enumerate(blocks):
        assert out[r] == values[lo:hi].sum()
    # ... and the left-to-right order is indeed a different float here,
    # otherwise this test would not be testing anything.
    lo, hi = blocks[2]
    acc = 0.0
    for v in values[lo:hi]:
        acc += v
    assert acc != values[lo:hi].sum()


def test_counts():
    seg = ChainSegments(LAYOUTS["with_empty"], N)
    assert seg.counts().tolist() == [5, 0, 18, 1, 0]


def test_validate_accepts_empty_blocks():
    validate_chain_blocks([(0, 0), (0, 4), (4, 4)], 4)


@pytest.mark.parametrize(
    "blocks, n",
    [
        ([], 4),  # no blocks at all
        ([(1, 4)], 4),  # does not start at 0
        ([(0, 2), (3, 4)], 4),  # gap
        ([(0, 3), (2, 4)], 4),  # overlap
        ([(0, 3), (3, 2)], 4),  # inverted block
        ([(0, 3)], 4),  # short coverage
        ([(0, 5)], 4),  # over-coverage
    ],
)
def test_validate_rejects_bad_tilings(blocks, n):
    with pytest.raises(ValueError):
        validate_chain_blocks(blocks, n)
