"""Tests for the SISC / SIAC / AIAC execution-model taxonomy."""

import numpy as np
import pytest

from repro.core import SolverConfig, run_aiac
from repro.grid import homogeneous_cluster
from repro.grid.host import Host
from repro.grid.link import Link
from repro.grid.network import Network
from repro.grid.platform import Platform
from repro.models import run_aiac_model, run_siac, run_sisc
from repro.problems import SyntheticProblem


def problem(n=40):
    return SyntheticProblem(np.full(n, 0.85), coupling=0.3)


CFG = SolverConfig(tolerance=1e-8, max_iterations=30000)


def two_speed_platform(latency=0.05):
    """Two unequal hosts with a noticeable network latency."""
    net = Network(Link(latency=latency, bandwidth=1e6))
    return Platform(hosts=[Host("fast", 200.0), Host("slow", 100.0)], network=net)


@pytest.mark.parametrize("runner", [run_sisc, run_siac])
def test_synchronous_models_converge_to_fixed_point(runner):
    plat = homogeneous_cluster(3, speed=100.0)
    r = runner(problem(42), plat, CFG)
    assert r.converged
    assert np.max(r.solution()) < 1e-8


def test_sisc_iterations_are_lockstep():
    plat = two_speed_platform()
    r = run_sisc(problem(), plat, CFG)
    assert r.converged
    assert abs(r.iterations[0] - r.iterations[1]) <= 1


def test_siac_iterations_are_lockstep():
    # "at any time t it is not possible to have two processors
    # performing different iterations"
    plat = two_speed_platform()
    r = run_siac(problem(), plat, CFG)
    assert r.converged
    assert abs(r.iterations[0] - r.iterations[1]) <= 1


def test_aiac_lets_fast_rank_run_ahead():
    plat = two_speed_platform()
    r = run_aiac(problem(), plat, CFG)
    assert r.converged
    assert r.iterations[0] > r.iterations[1] + 5


def test_idle_ordering_sisc_geq_siac_geq_aiac():
    """Figures 1-3: idle time shrinks from SISC to SIAC and vanishes in AIAC."""
    plat = two_speed_platform(latency=0.05)
    idle = {}
    for name, runner in [("sisc", run_sisc), ("siac", run_siac), ("aiac", run_aiac)]:
        r = runner(problem(), plat, CFG)
        assert r.converged, name
        idle[name] = sum(r.tracer.idle_time_of(rank) for rank in range(2))
    assert idle["aiac"] == 0.0
    assert idle["siac"] > 0.0
    assert idle["sisc"] >= idle["siac"]


def test_sisc_fast_rank_waits_for_slow_rank():
    plat = two_speed_platform()
    r = run_sisc(problem(), plat, CFG)
    # The fast host (rank 0) accumulates the idle time.
    assert r.tracer.idle_time_of(0) > r.tracer.idle_time_of(1)


def test_aiac_variants_validation():
    plat = homogeneous_cluster(2)
    with pytest.raises(ValueError, match="variant"):
        run_aiac_model(problem(), plat, CFG, variant="warp")


def test_aiac_wrapper_reports_variant():
    plat = homogeneous_cluster(2, speed=100.0)
    r = run_aiac_model(problem(), plat, CFG, variant="eager")
    assert r.meta["variant"] == "eager"
    assert r.converged


def test_models_agree_on_the_answer():
    plat = two_speed_platform()
    solutions = []
    for runner in (run_sisc, run_siac, run_aiac):
        r = runner(problem(36), plat, CFG)
        assert r.converged
        solutions.append(r.solution())
    for s in solutions[1:]:
        assert np.max(np.abs(s - solutions[0])) < 1e-7


def test_asynchronous_wins_on_slow_network():
    """Section 6: on the grid (slow links) AIAC beats the synchronous models."""
    net = Network(Link(latency=0.5, bandwidth=1e5))
    plat = Platform(
        hosts=[Host("a", 100.0), Host("b", 60.0), Host("c", 100.0)], network=net
    )
    r_sisc = run_sisc(problem(45), plat, CFG)
    r_aiac = run_aiac(problem(45), plat, CFG)
    assert r_sisc.converged and r_aiac.converged
    assert r_aiac.time < r_sisc.time
