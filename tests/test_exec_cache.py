"""Unit tests for the content-addressed run cache (repro.exec.cache)."""

import json
import os

from repro.exec import (
    CACHE_SCHEMA,
    RunCache,
    SweepEngine,
    Task,
    code_salt,
)


def cube(x):
    return {"x": x, "cube": x ** 3}


def keyed_tasks(n=2):
    return [
        Task(fn=cube, args=(i,), key={"test": "cube", "i": i}) for i in range(n)
    ]


# ----------------------------------------------------------------------
# Basic hit / miss / layout
# ----------------------------------------------------------------------
def test_miss_then_put_then_hit(tmp_path):
    cache = RunCache(str(tmp_path))
    digest = cache.digest_for({"a": 1})
    assert cache.get(digest) == (False, None)
    cache.put(digest, {"a": 1}, {"result": 42})
    assert cache.get(digest) == (True, {"result": 42})


def test_path_layout_is_sharded_by_digest_prefix(tmp_path):
    cache = RunCache(str(tmp_path))
    digest = cache.digest_for("k")
    path = cache.path_for(digest)
    assert path == os.path.join(str(tmp_path), digest[:2], f"{digest}.json")
    cache.put(digest, "k", 1)
    assert os.path.exists(path)


def test_envelope_is_self_describing(tmp_path):
    cache = RunCache(str(tmp_path))
    digest = cache.digest_for({"scenario": "tiny"})
    cache.put(digest, {"scenario": "tiny"}, {"t": 1.0})
    with open(cache.path_for(digest)) as fh:
        envelope = json.load(fh)
    assert envelope["schema"] == CACHE_SCHEMA
    assert envelope["digest"] == digest
    assert envelope["key"] == {"scenario": "tiny"}
    assert envelope["payload"] == {"t": 1.0}


# ----------------------------------------------------------------------
# Invalidation
# ----------------------------------------------------------------------
def test_key_change_changes_digest(tmp_path):
    cache = RunCache(str(tmp_path))
    base = {"scenario": {"n": 16, "seed": 0}, "p": 4}
    changed = {"scenario": {"n": 16, "seed": 1}, "p": 4}
    assert cache.digest_for(base) != cache.digest_for(changed)


def test_salt_change_invalidates_everything(tmp_path):
    old = RunCache(str(tmp_path), salt="v1")
    digest = old.digest_for({"a": 1})
    old.put(digest, {"a": 1}, "payload")
    new = RunCache(str(tmp_path), salt="v2")
    assert new.digest_for({"a": 1}) != digest
    assert new.get(new.digest_for({"a": 1})) == (False, None)


def test_default_salt_embeds_schema_and_epoch():
    salt = code_salt()
    assert CACHE_SCHEMA in salt
    assert "epoch" in salt


def test_engine_recomputes_on_config_change(tmp_path):
    cache_dir = str(tmp_path / "c")
    first = SweepEngine(cache=RunCache(cache_dir))
    first.map([Task(fn=cube, args=(2,), key={"i": 2})])
    assert first.stats.misses == 1
    # Same function, different key material: must miss, not hit.
    second = SweepEngine(cache=RunCache(cache_dir))
    second.map([Task(fn=cube, args=(2,), key={"i": 2, "extra": True})])
    assert second.stats.misses == 1 and second.stats.hits == 0


# ----------------------------------------------------------------------
# Corruption tolerance: every broken entry is a miss, then overwritten
# ----------------------------------------------------------------------
def _poison(cache, digest, content, mode="w"):
    path = cache.path_for(digest)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, mode) as fh:
        fh.write(content)


def test_truncated_entry_is_a_miss(tmp_path):
    cache = RunCache(str(tmp_path))
    digest = cache.digest_for("k")
    cache.put(digest, "k", {"big": list(range(100))})
    path = cache.path_for(digest)
    with open(path) as fh:
        text = fh.read()
    with open(path, "w") as fh:
        fh.write(text[: len(text) // 2])
    assert cache.get(digest) == (False, None)


def test_garbage_entry_is_a_miss(tmp_path):
    cache = RunCache(str(tmp_path))
    digest = cache.digest_for("k")
    _poison(cache, digest, "not json at all \x00\x01")
    assert cache.get(digest) == (False, None)


def test_wrong_schema_is_a_miss(tmp_path):
    cache = RunCache(str(tmp_path))
    digest = cache.digest_for("k")
    _poison(
        cache,
        digest,
        json.dumps({"schema": "other/9", "digest": digest, "payload": 1}),
    )
    assert cache.get(digest) == (False, None)


def test_foreign_digest_is_a_miss(tmp_path):
    cache = RunCache(str(tmp_path))
    digest = cache.digest_for("k")
    _poison(
        cache,
        digest,
        json.dumps({"schema": CACHE_SCHEMA, "digest": "0" * 64, "payload": 1}),
    )
    assert cache.get(digest) == (False, None)


def test_bit_rotted_payload_is_a_miss(tmp_path):
    # The envelope stays structurally perfect — only a payload value
    # changes.  Pre-CRC schemas would happily serve the wrong answer.
    cache = RunCache(str(tmp_path))
    digest = cache.digest_for("k")
    cache.put(digest, "k", {"result": 42})
    path = cache.path_for(digest)
    with open(path) as fh:
        envelope = json.load(fh)
    envelope["payload"]["result"] = 43
    with open(path, "w") as fh:
        json.dump(envelope, fh, sort_keys=True)
    assert cache.get(digest) == (False, None)


def test_missing_crc_is_a_miss(tmp_path):
    cache = RunCache(str(tmp_path))
    digest = cache.digest_for("k")
    _poison(
        cache,
        digest,
        json.dumps(
            {"schema": CACHE_SCHEMA, "digest": digest, "key": "k", "payload": 1}
        ),
    )
    assert cache.get(digest) == (False, None)


def test_non_dict_envelope_is_a_miss(tmp_path):
    cache = RunCache(str(tmp_path))
    digest = cache.digest_for("k")
    _poison(cache, digest, json.dumps([1, 2, 3]))
    assert cache.get(digest) == (False, None)


def test_engine_recomputes_and_repairs_corrupt_entry(tmp_path):
    cache_dir = str(tmp_path / "c")
    cold = SweepEngine(cache=RunCache(cache_dir))
    expected = cold.map(keyed_tasks())

    # Corrupt one entry; the rerun must recompute it (1 miss, 1 hit),
    # return identical results, and leave the entry repaired.
    cache = RunCache(cache_dir)
    bad = cache.digest_for({"test": "cube", "i": 0})
    _poison(cache, bad, "garbage{")
    repair = SweepEngine(cache=RunCache(cache_dir))
    assert repair.map(keyed_tasks()) == expected
    assert repair.stats.misses == 1 and repair.stats.hits == 1
    assert cache.get(bad) == (True, {"cube": 0, "x": 0})

    warm = SweepEngine(cache=RunCache(cache_dir))
    assert warm.map(keyed_tasks()) == expected
    assert warm.stats.hits == 2 and warm.stats.misses == 0


# ----------------------------------------------------------------------
# Size-capped LRU eviction
# ----------------------------------------------------------------------
def put_sized(cache, name, mtime=None, pad=100):
    """Put one ~pad-byte entry; optionally pin its mtime for LRU order."""
    digest = cache.digest_for(name)
    cache.put(digest, name, {"pad": "x" * pad})
    if mtime is not None:
        os.utime(cache.path_for(digest), (mtime, mtime))
    return digest


def test_max_bytes_must_be_positive(tmp_path):
    import pytest

    with pytest.raises(ValueError, match="max_bytes"):
        RunCache(str(tmp_path), max_bytes=0)


def entry_size_for(tmp_path):
    """On-disk bytes of one ``put_sized`` envelope with a 3-char key."""
    probe = RunCache(str(tmp_path / "probe"))
    return os.path.getsize(probe.path_for(put_sized(probe, "prb")))


def test_eviction_removes_oldest_entries_first(tmp_path):
    entry_size = entry_size_for(tmp_path)
    cache = RunCache(str(tmp_path / "c"), max_bytes=2 * entry_size)
    old = put_sized(cache, "old", mtime=100)
    mid = put_sized(cache, "mid", mtime=200)
    new = put_sized(cache, "new")  # now over the 2-entry cap
    assert cache.get(old) == (False, None)  # oldest went first
    assert cache.get(mid)[0] and cache.get(new)[0]
    assert cache.evictions == 1
    assert cache.evicted_bytes == entry_size


def test_get_refreshes_recency_so_hot_entries_survive(tmp_path):
    entry_size = entry_size_for(tmp_path)
    cache = RunCache(str(tmp_path / "c"), max_bytes=2 * entry_size)
    # Keys all 3 chars so every envelope is exactly entry_size bytes.
    hot = put_sized(cache, "hot", mtime=100)
    cold = put_sized(cache, "cld", mtime=200)
    assert cache.get(hot)[0]  # refreshes hot's mtime past cold's
    put_sized(cache, "new")
    assert cache.get(cold) == (False, None)
    assert cache.get(hot)[0]


def test_just_written_entry_is_never_evicted(tmp_path):
    # A cap smaller than one entry must still serve that entry.
    cache = RunCache(str(tmp_path), max_bytes=1)
    digest = put_sized(cache, "only")
    assert cache.get(digest)[0]
    assert cache.evictions == 0


def test_engine_scrapes_eviction_counters(tmp_path):
    cache = RunCache(str(tmp_path), max_bytes=150)
    engine = SweepEngine(cache=cache)
    engine.map(keyed_tasks(4))
    assert engine.stats.evictions == cache.evictions > 0
    assert engine.stats.evicted_bytes == cache.evicted_bytes > 0
    assert engine.stats.to_dict()["cache_evictions"] == cache.evictions


def test_unbounded_cache_never_evicts(tmp_path):
    cache = RunCache(str(tmp_path))
    for n in range(5):
        put_sized(cache, f"entry-{n}")
    assert cache.evictions == 0
    assert all(cache.get(cache.digest_for(f"entry-{n}"))[0] for n in range(5))


def test_default_salt_embeds_state_layout_rev():
    # Bumping the solver state-layout revision must invalidate every
    # cached run without touching CACHE_EPOCH (the two invalidation
    # axes stay independently auditable).
    from repro.exec.cache import STATE_LAYOUT_REV

    assert f"layout{STATE_LAYOUT_REV}" in code_salt()
