"""Tests for the heat-equation waveform relaxation."""

import numpy as np
import pytest

from repro.problems.heat import HeatProblem


@pytest.fixture(scope="module")
def problem():
    return HeatProblem(n_points=15, kappa=1.0, t_end=0.05, n_steps=25)


def test_initial_state(problem):
    st = problem.initial_state(0, 15)
    assert st.traj.shape == (15, 26)
    x = problem.x_grid()
    assert np.allclose(st.traj[:, 0], np.sin(np.pi * x))


def test_single_block_converges_to_reference(problem):
    st = problem.initial_state(0, 15)
    hl = problem.initial_halo(-1)
    hr = problem.initial_halo(15)
    for _ in range(300):
        res = problem.iterate(st, hl, hr)
        if res.local_residual < 1e-12:
            break
    ref = problem.reference_solution()
    assert np.max(np.abs(st.traj - ref)) < 1e-9


def test_reference_close_to_analytic():
    # Fine grids: discrete solution approaches the analytic one.
    p = HeatProblem(n_points=60, t_end=0.02, n_steps=400)
    ref = p.reference_solution()
    exact = p.analytic_solution()
    assert np.max(np.abs(ref - exact)) < 5e-3


def test_two_blocks_converge(problem):
    a = problem.initial_state(0, 8)
    b = problem.initial_state(8, 15)
    for _ in range(400):
        res_a = problem.iterate(
            a, problem.initial_halo(-1), problem.halo_out(b, "left")
        )
        res_b = problem.iterate(
            b, problem.halo_out(a, "right"), problem.initial_halo(15)
        )
        if max(res_a.local_residual, res_b.local_residual) < 1e-12:
            break
    ref = problem.reference_solution()
    assembled = np.concatenate([a.traj, b.traj], axis=0)
    assert np.max(np.abs(assembled - ref)) < 1e-9


def test_constant_work(problem):
    st = problem.initial_state(0, 15)
    res = problem.iterate(st, problem.initial_halo(-1), problem.initial_halo(15))
    assert np.all(res.work == problem.n_steps)


def test_split_merge_roundtrip(problem):
    st = problem.initial_state(0, 15)
    original = st.traj.copy()
    payload = problem.split(st, 6, "left")
    problem.merge(st, payload, "left")
    assert np.array_equal(st.traj, original)
    assert st.lo == 0


def test_merge_validates_shape(problem):
    st = problem.initial_state(0, 15)
    with pytest.raises(ValueError):
        problem.merge(st, np.zeros((2, 3)), "left")
