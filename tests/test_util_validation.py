"""Tests for repro.util.validation."""

import pytest

from repro.util.validation import (
    check_disjoint_intervals,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


def test_check_positive_accepts_and_returns():
    assert check_positive("x", 1.5) == 1.5


@pytest.mark.parametrize("bad", [0, -1, -0.5, float("nan")])
def test_check_positive_rejects(bad):
    with pytest.raises(ValueError, match="x"):
        check_positive("x", bad)


def test_check_non_negative():
    assert check_non_negative("x", 0) == 0
    with pytest.raises(ValueError):
        check_non_negative("x", -1e-12)


def test_check_in_range_inclusive_bounds():
    assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0
    assert check_in_range("x", 2.0, 1.0, 2.0) == 2.0
    with pytest.raises(ValueError):
        check_in_range("x", 2.0001, 1.0, 2.0)


def test_check_in_range_exclusive():
    with pytest.raises(ValueError):
        check_in_range("x", 1.0, 1.0, 2.0, inclusive=False)
    assert check_in_range("x", 1.5, 1.0, 2.0, inclusive=False) == 1.5


def test_check_probability():
    assert check_probability("p", 0.5) == 0.5
    with pytest.raises(ValueError):
        check_probability("p", 1.01)


def test_check_type_single_and_tuple():
    assert check_type("x", 3, int) == 3
    assert check_type("x", 3.0, (int, float)) == 3.0
    with pytest.raises(TypeError, match="int"):
        check_type("x", "s", int)


def test_check_disjoint_intervals_sorts_and_accepts():
    assert check_disjoint_intervals("w", [(5.0, 6.0), (1.0, 2.0)]) == [
        (1.0, 2.0),
        (5.0, 6.0),
    ]
    assert check_disjoint_intervals("w", []) == []
    assert check_disjoint_intervals("w", [(0.0, 1.0)]) == [(0.0, 1.0)]


def test_check_disjoint_intervals_rejects_overlap_and_touch():
    with pytest.raises(ValueError, match="overlap"):
        check_disjoint_intervals("w", [(1.0, 3.0), (2.0, 4.0)])
    # Touching endpoints are ambiguous (no defined event order).
    with pytest.raises(ValueError, match="overlap"):
        check_disjoint_intervals("w", [(1.0, 2.0), (2.0, 3.0)])
