"""Tests for the from-scratch banded LU against dense and scipy oracles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.banded import BandedMatrix, solve_banded_system, thomas_solve


def random_banded_dd(n, kl, ku, rng):
    """Random strictly diagonally dominant banded matrix (dense)."""
    a = np.zeros((n, n))
    for i in range(n):
        for j in range(max(0, i - kl), min(n, i + ku + 1)):
            if i != j:
                a[i, j] = rng.uniform(-1, 1)
        a[i, i] = np.sum(np.abs(a[i])) + rng.uniform(1.0, 2.0)
    return a


def test_from_dense_roundtrip():
    rng = np.random.default_rng(0)
    a = random_banded_dd(7, 2, 1, rng)
    m = BandedMatrix.from_dense(a, 2, 1)
    assert np.allclose(m.to_dense(), a)


def test_from_dense_rejects_out_of_band():
    a = np.eye(5)
    a[0, 4] = 1.0
    with pytest.raises(ValueError, match="outside"):
        BandedMatrix.from_dense(a, 1, 1)


def test_bands_shape_validation():
    with pytest.raises(ValueError, match="rows"):
        BandedMatrix(np.zeros((2, 5)), kl=1, ku=1)
    with pytest.raises(ValueError):
        BandedMatrix(np.zeros((3, 5)), kl=-1, ku=3)


def test_matvec_matches_dense():
    rng = np.random.default_rng(1)
    a = random_banded_dd(9, 1, 2, rng)
    m = BandedMatrix.from_dense(a, 1, 2)
    x = rng.standard_normal(9)
    assert np.allclose(m.matvec(x), a @ x)


@pytest.mark.parametrize("n,kl,ku", [(1, 0, 0), (5, 1, 1), (8, 2, 2), (12, 3, 1)])
def test_lu_solve_matches_dense(n, kl, ku):
    rng = np.random.default_rng(n * 100 + kl * 10 + ku)
    a = random_banded_dd(n, kl, ku, rng)
    b = rng.standard_normal(n)
    m = BandedMatrix.from_dense(a, kl, ku)
    x = m.lu_factor().solve(b)
    assert np.allclose(x, np.linalg.solve(a, b), atol=1e-10)


def test_lu_factor_reusable_for_multiple_rhs():
    rng = np.random.default_rng(3)
    a = random_banded_dd(6, 1, 1, rng)
    m = BandedMatrix.from_dense(a, 1, 1)
    lu = m.lu_factor()
    for _ in range(3):
        b = rng.standard_normal(6)
        assert np.allclose(lu.solve(b), np.linalg.solve(a, b), atol=1e-10)


def test_singular_matrix_raises():
    a = np.zeros((3, 3))
    m = BandedMatrix.from_dense(a, 0, 0)
    with pytest.raises(np.linalg.LinAlgError):
        m.lu_factor()


def test_scipy_backend_agrees_with_native():
    pytest.importorskip("scipy")
    rng = np.random.default_rng(4)
    a = random_banded_dd(10, 2, 2, rng)
    b = rng.standard_normal(10)
    m = BandedMatrix.from_dense(a, 2, 2)
    x_native = solve_banded_system(m, b, backend="native")
    x_scipy = solve_banded_system(m, b, backend="scipy")
    assert np.allclose(x_native, x_scipy, atol=1e-10)


def test_unknown_backend_rejected():
    m = BandedMatrix.from_dense(np.eye(3), 0, 0)
    with pytest.raises(ValueError, match="backend"):
        solve_banded_system(m, np.ones(3), backend="cuda")


def test_thomas_matches_dense():
    rng = np.random.default_rng(5)
    n = 11
    lower = rng.uniform(-1, 1, n)
    upper = rng.uniform(-1, 1, n)
    diag = np.abs(lower) + np.abs(upper) + rng.uniform(1, 2, n)
    lower[0] = 0.0
    upper[-1] = 0.0
    b = rng.standard_normal(n)
    a = np.diag(diag) + np.diag(lower[1:], -1) + np.diag(upper[:-1], 1)
    assert np.allclose(thomas_solve(lower, diag, upper, b), np.linalg.solve(a, b))


def test_thomas_validates_shapes():
    with pytest.raises(ValueError):
        thomas_solve(np.zeros(3), np.ones(3), np.zeros(2), np.zeros(3))


def test_thomas_singular_raises():
    with pytest.raises(np.linalg.LinAlgError):
        thomas_solve(np.zeros(3), np.zeros(3), np.zeros(3), np.ones(3))


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 20),
    kl=st.integers(0, 3),
    ku=st.integers(0, 3),
    seed=st.integers(0, 1000),
)
def test_property_banded_solve_residual_small(n, kl, ku, seed):
    rng = np.random.default_rng(seed)
    kl, ku = min(kl, n - 1), min(ku, n - 1)
    a = random_banded_dd(n, kl, ku, rng)
    b = rng.standard_normal(n)
    m = BandedMatrix.from_dense(a, kl, ku)
    x = m.lu_factor().solve(b)
    assert np.max(np.abs(a @ x - b)) < 1e-8 * max(1.0, np.max(np.abs(b)))
