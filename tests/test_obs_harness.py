"""Integration tests: profiler invisibility, sidecars, run_observed.

The two load-bearing guarantees:

* attaching a :class:`SimProfiler` leaves the DES event trace
  bit-identical (reuses the fingerprint harness of
  ``test_perf_kernels``);
* an observed experiment produces byte-identical sidecar files across
  repeated runs (the property CI's ``obs-smoke`` job checks via the CLI).
"""

import json

from repro.obs import MetricsSidecar, SimProfiler, run_observed
from repro.obs.harness import collect_result_metrics
from repro.obs.registry import MetricsRegistry

from tests.test_perf_kernels import _aiac_fingerprint


# ----------------------------------------------------------------------
# Profiler: zero observable effect
# ----------------------------------------------------------------------
def test_profiler_is_observationally_invisible():
    profiler = SimProfiler()
    assert _aiac_fingerprint(profiler=profiler) == _aiac_fingerprint()
    assert profiler.n_dispatched > 0
    assert "Process._step" in profiler.counts


def test_profiler_export_and_summary():
    profiler = SimProfiler()
    _aiac_fingerprint(profiler=profiler)
    reg = MetricsRegistry()
    profiler.export_metrics(reg)
    records = {r["name"] for r in reg.snapshot()}
    assert "sim.dispatches" in records
    assert "sim.event_time" in records
    assert "sim.dispatches_total" in records
    total = next(
        r for r in reg.snapshot() if r["name"] == "sim.dispatches_total"
    )
    assert total["value"] == profiler.n_dispatched
    assert str(profiler.n_dispatched) in profiler.summary()


# ----------------------------------------------------------------------
# Result scraping
# ----------------------------------------------------------------------
def _small_balanced_run():
    from repro.core.lb import run_balanced_aiac
    from repro.workloads.scenarios import Figure5Scenario

    sc = Figure5Scenario.tiny()
    return run_balanced_aiac(
        sc.problem(), sc.platform(4), sc.solver_config(), sc.lb_config()
    )


def test_collect_result_metrics_scrapes_all_layers():
    result = _small_balanced_run()
    reg = MetricsRegistry()
    collect_result_metrics(reg, result, run="t")
    by_name = {}
    for rec in reg.snapshot():
        by_name.setdefault(rec["name"], []).append(rec)
    assert "trace.busy_time" in by_name
    assert "trace.migrations" in by_name
    assert "transport.retries" in by_name
    assert "lb.offers_sent" in by_name
    assert "net.bytes_sent" in by_name
    assert by_name["run.time"][0]["value"] == result.time
    # Untraced run: always-on aggregates still populate real values.
    busy = sum(r["value"] for r in by_name["trace.busy_time"])
    assert busy > 0
    # Every metric carries the run label.
    assert all(
        rec["labels"].get("run") == "t"
        for recs in by_name.values()
        for rec in recs
    )


def test_sidecar_accumulates_and_digests(tmp_path):
    result = _small_balanced_run()
    sidecar = MetricsSidecar()
    sidecar.collect(result, run="a")
    sidecar.collect(result, run="b")
    assert sidecar.n_runs == 2
    path = str(tmp_path / "m.jsonl")
    digest = sidecar.write(path, {"experiment": "test"})
    head = json.loads(open(path).readline())
    assert head["digest"] == digest == sidecar.digest()
    assert head["n_runs"] == 2


# ----------------------------------------------------------------------
# run_observed: determinism end to end
# ----------------------------------------------------------------------
def test_run_observed_figure5_is_reproducible(tmp_path):
    obs1 = run_observed("figure5", mode="tiny", with_trace=False)
    obs2 = run_observed("figure5", mode="tiny", with_trace=False)
    assert obs1.sidecar.digest() == obs2.sidecar.digest()
    assert obs1.sidecar.n_runs == 4  # 2 proc counts x (unbalanced, balanced)
    p1 = str(tmp_path / "a")
    p2 = str(tmp_path / "b")
    obs1.write(p1)
    obs2.write(p2)
    assert (
        open(p1 + ".metrics.jsonl").read() == open(p2 + ".metrics.jsonl").read()
    )


def test_run_observed_emits_trace_and_profile(tmp_path):
    obs = run_observed("figure5", mode="tiny", profile=True)
    assert obs.traced is not None
    assert obs.traced.tracer.enabled
    assert obs.profiler is not None and obs.profiler.n_dispatched > 0
    written = obs.write(str(tmp_path / "obs"))
    trace_path = str(tmp_path / "obs.trace.json")
    assert trace_path in written
    doc = json.loads(open(trace_path).read())
    assert doc["metadata"]["experiment"] == "figure5"
    assert len(doc["traceEvents"]) > 0
    # The profiled run contributed sim.* series to the sidecar.
    names = {r["name"] for r in obs.sidecar.registry.snapshot()}
    assert "sim.dispatches_total" in names
    assert obs.sidecar.digest() in obs.report()
    assert "sim profile" in obs.report()


def test_run_observed_rejects_unknown_inputs():
    import pytest

    with pytest.raises(ValueError, match="unknown experiment"):
        run_observed("nope")
    with pytest.raises(ValueError, match="unknown mode"):
        run_observed("figure5", mode="huge")


def test_sidecar_scale_telemetry_header(tmp_path):
    sidecar = MetricsSidecar()
    # Without scheduler scrapes the header stays fully deterministic:
    # no wall-side RSS headline, nothing machine-dependent.
    assert sidecar.scale_telemetry() == {}

    reg = sidecar.registry
    reg.gauge("des.heap_size", run="a").set(5.0)
    reg.gauge("des.heap_size", run="b").set(9.0)
    reg.counter("des.batch_dispatch", run="a").add(3)
    reg.counter("des.events_dispatched", run="a").add(100)
    reg.counter("des.events_dispatched", run="b").add(50)
    tele = sidecar.scale_telemetry()
    assert tele["des.heap_size_peak"] == 9.0
    assert tele["des.batch_dispatch"] == 3
    assert tele["des.events_dispatched"] == 150

    path = str(tmp_path / "m.metrics.jsonl")
    sidecar.write(path, {"experiment": "x"})
    header = json.loads(open(path).readline())
    assert header["des.heap_size_peak"] == 9.0
    assert header["experiment"] == "x"
    assert header["peak_rss_bytes"] > 0


def test_sidecar_collect_scheduler_scrapes_des_series():
    from repro.core import SolverConfig
    from repro.core.solver import build_chain
    from repro.des import Barrier
    from repro.grid import homogeneous_cluster
    from repro.models.sisc import _sisc_process
    from repro.problems import SyntheticProblem

    import numpy as np

    run = build_chain(
        SyntheticProblem(np.full(12, 0.5)),
        homogeneous_cluster(3),
        SolverConfig(max_iterations=5),
        model="sisc",
    )
    barrier = Barrier(run.n_ranks, name="sisc")
    for ctx in run.ranks:
        run.sim.spawn(f"sisc-rank-{ctx.rank}", _sisc_process(run, ctx, barrier))
    run.run()

    sidecar = MetricsSidecar()
    sidecar.collect_scheduler(run.sim, run="smoke")
    names = {r["name"] for r in sidecar.registry.snapshot()}
    assert "des.heap_size" in names
    assert "des.events_dispatched" in names
    tele = sidecar.scale_telemetry()
    assert tele["des.heap_size_peak"] > 0
    assert tele["des.events_dispatched"] > 0
