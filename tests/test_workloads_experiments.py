"""Integration tests for scenarios and the experiment harness.

These run every experiment at reduced ('tiny'/'quick') size and assert
the *shape* criteria from DESIGN.md §4 — the same criteria the full
benchmarks check at paper scale.
"""

import pytest

from repro.experiments import (
    run_figure5,
    run_models_comparison,
    run_table1,
    run_trace_figures,
)
from repro.experiments.ablations import (
    compare_detection_protocols,
    sweep_estimator,
    sweep_lb_period,
)
from repro.workloads import (
    Figure5Scenario,
    ModelsComparisonScenario,
    Table1Scenario,
    TraceFigureScenario,
)


@pytest.fixture(scope="module")
def figure5_tiny():
    return run_figure5(Figure5Scenario.tiny())


def test_figure5_lb_wins_everywhere(figure5_tiny):
    for ratio in figure5_tiny.ratios:
        assert ratio > 1.2


def test_figure5_both_series_scale(figure5_tiny):
    r = figure5_tiny
    assert r.time_unbalanced == sorted(r.time_unbalanced, reverse=True)
    assert r.time_balanced == sorted(r.time_balanced, reverse=True)


def test_figure5_migrations_happen(figure5_tiny):
    assert all(m > 0 for m in figure5_tiny.migrations)


def test_figure5_report_mentions_paper_band(figure5_tiny):
    report = figure5_tiny.report()
    assert "6.8" in report
    assert "ratio" in report


def test_trace_figures_idle_ordering():
    result = run_trace_figures(TraceFigureScenario())
    idle = result.idle_fractions()
    assert idle["figure3_aiac_eager"] == 0.0
    assert idle["figure4_aiac_exclusive"] == 0.0
    assert idle["figure2_siac"] > 0.0
    assert idle["figure1_sisc"] >= idle["figure2_siac"] * 0.9


def test_trace_figures_mutual_exclusion_sends_less():
    result = run_trace_figures(TraceFigureScenario())
    messages = result.halo_messages()
    assert messages["figure4_aiac_exclusive"] < messages["figure3_aiac_eager"]


def test_trace_figures_report_contains_gantt():
    result = run_trace_figures(TraceFigureScenario())
    report = result.report()
    assert "█" in report
    assert "Figure 1" in report and "Figure 4" in report


def test_models_comparison_shape():
    result = run_models_comparison(ModelsComparisonScenario())
    # Cluster: the three models are close (paper: "almost the same").
    assert result.advantage("cluster") < 1.3
    # Grid: the asynchronous model wins clearly.
    assert result.advantage("grid") > 1.3
    assert result.advantage("grid") > result.advantage("cluster")
    # SIAC sits between SISC and AIAC on the grid.
    grid = result.grid
    assert grid["aiac"].time <= grid["siac"].time <= grid["sisc"].time


def test_table1_quick_shape():
    result = run_table1(Table1Scenario.quick())
    assert result.ratio > 1.3  # balanced wins on the heterogeneous grid
    assert result.migrations > 0
    assert sum(result.final_sizes) == Table1Scenario.quick().n_points
    assert "Table 1" in result.report()


def test_ablation_lb_period_sweep_runs():
    result = sweep_lb_period(values=(5, 40), n_procs=4)
    assert len(result.times) == 2
    assert result.best() in (5, 40)
    assert "period" in result.report()


def test_ablation_estimator_sweep_runs():
    result = sweep_estimator(values=("residual", "component_count"), n_procs=4)
    assert len(result.times) == 2
    # The residual estimator must beat the naive component count on an
    # activity-imbalanced workload (the paper's §5.2 argument).
    by_value = dict(zip(result.values, result.times))
    assert by_value["residual"] < by_value["component_count"]


def test_ablation_detection_protocols():
    result = compare_detection_protocols(n_procs=4)
    by_value = dict(zip(result.values, result.times))
    # The decentralized protocol detects no earlier than the oracle.
    assert by_value["token_ring"] >= by_value["oracle"] * 0.999
    overhead = dict(zip(result.values, result.extra["overhead (s)"]))
    assert overhead["token_ring"] >= 0.0
