"""Tests for logical chain orderings and dependency graphs."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.platform import SiteSpec, homogeneous_cluster, multi_site_grid
from repro.topology import (
    chain_dependency_graph,
    dependency_graph_stats,
    identity_order,
    interleaved_sites_order,
    random_order,
    sorted_by_speed_order,
)
from repro.util.rng import RngTree


def test_identity_order():
    plat = homogeneous_cluster(5)
    assert identity_order(plat) == [0, 1, 2, 3, 4]


def test_interleaved_sites_alternate():
    plat = multi_site_grid(
        [SiteSpec("a", 3), SiteSpec("b", 3)], RngTree(1)
    )
    order = interleaved_sites_order(plat)
    assert sorted(order) == list(range(6))
    sites = [plat.hosts[i].site for i in order]
    # Adjacent ranks sit on different sites.
    assert all(s1 != s2 for s1, s2 in zip(sites, sites[1:]))


def test_interleaved_sites_uneven():
    plat = multi_site_grid(
        [SiteSpec("a", 4), SiteSpec("b", 1)], RngTree(1)
    )
    order = interleaved_sites_order(plat)
    assert sorted(order) == list(range(5))


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.integers(1, 6), min_size=1, max_size=4))
def test_property_interleaved_sites_unequal_sizes(sizes):
    """Round-robin stays a permutation and stays fair for *any* mix of
    site sizes (``src/repro/topology/logical.py:40``)."""
    specs = [SiteSpec(f"s{i}", n) for i, n in enumerate(sizes)]
    plat = multi_site_grid(specs, RngTree(7))
    order = interleaved_sites_order(plat)
    total = sum(sizes)
    # A permutation of all hosts...
    assert sorted(order) == list(range(total))
    # ...that preserves each site's internal host order...
    by_site: dict[str, list[int]] = {}
    for host_idx in order:
        by_site.setdefault(plat.hosts[host_idx].site, []).append(host_idx)
    for site, hosts in by_site.items():
        assert hosts == sorted(hosts)
        assert len(hosts) == sizes[int(site[1:])]
    # ...and is fair: within any prefix, no site is ever more than one
    # pick ahead of a site that still has hosts left to place.
    placed = {spec.name: 0 for spec in specs}
    remaining = {spec.name: size for spec, size in zip(specs, sizes)}
    for host_idx in order:
        site = plat.hosts[host_idx].site
        others_behind = [
            s
            for s in placed
            if s != site and remaining[s] > 0 and placed[s] < placed[site]
        ]
        assert not [s for s in others_behind if placed[site] - placed[s] > 1]
        placed[site] += 1
        remaining[site] -= 1


def test_random_order_is_seeded_permutation():
    plat = homogeneous_cluster(8)
    o1 = random_order(plat, seed=3)
    o2 = random_order(plat, seed=3)
    o3 = random_order(plat, seed=4)
    assert o1 == o2
    assert sorted(o1) == list(range(8))
    assert o1 != o3


def test_sorted_by_speed():
    plat = multi_site_grid(
        [SiteSpec("a", 6, speed_range=(100.0, 900.0))], RngTree(5)
    )
    order = sorted_by_speed_order(plat)
    speeds = [plat.hosts[i].speed for i in order]
    assert speeds == sorted(speeds, reverse=True)
    order_slow = sorted_by_speed_order(plat, fastest_first=False)
    assert order_slow == order[::-1]


def test_chain_dependency_graph():
    g = chain_dependency_graph(5)
    assert g.number_of_nodes() == 5
    assert g.number_of_edges() == 4
    assert nx.is_connected(g)
    with pytest.raises(ValueError):
        chain_dependency_graph(0)


def test_dependency_graph_stats():
    stats = dependency_graph_stats(chain_dependency_graph(6))
    assert stats["n_nodes"] == 6
    assert stats["max_degree"] == 2
    assert stats["diameter"] == 5
    assert stats["connected"]
    with pytest.raises(ValueError):
        dependency_graph_stats(nx.Graph())


def test_single_rank_chain():
    stats = dependency_graph_stats(chain_dependency_graph(1))
    assert stats["n_edges"] == 0
    assert stats["diameter"] == 0
