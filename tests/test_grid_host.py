"""Tests for Host work/time conversion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.host import Host
from repro.grid.traces import ConstantTrace, MarkovTrace, PiecewiseTrace
from repro.util.rng import spawn_generator


def test_dedicated_host_duration_is_work_over_speed():
    h = Host("h", speed=100.0)
    assert h.duration_for_work(250.0, 0.0) == pytest.approx(2.5)
    assert h.duration_for_work(250.0, 123.0) == pytest.approx(2.5)


def test_zero_work_zero_duration():
    h = Host("h", speed=100.0)
    assert h.duration_for_work(0.0, 5.0) == 0.0


def test_negative_work_rejected():
    h = Host("h", speed=100.0)
    with pytest.raises(ValueError):
        h.duration_for_work(-1.0, 0.0)


def test_speed_must_be_positive():
    with pytest.raises(ValueError):
        Host("h", speed=0.0)


def test_duration_crosses_trace_segments():
    # Availability 1.0 for t<10, then 0.5: 100 wu/s then 50 wu/s.
    trace = PiecewiseTrace([0.0, 10.0], [1.0, 0.5])
    h = Host("h", speed=100.0, trace=trace)
    # 1000 wu in the first segment takes exactly 10 s.
    assert h.duration_for_work(1000.0, 0.0) == pytest.approx(10.0)
    # 1500 wu: 1000 in the first 10 s, then 500 at 50 wu/s = 10 s more.
    assert h.duration_for_work(1500.0, 0.0) == pytest.approx(20.0)
    # Starting inside the slow segment.
    assert h.duration_for_work(100.0, 15.0) == pytest.approx(2.0)


def test_effective_speed():
    trace = PiecewiseTrace([0.0, 10.0], [1.0, 0.25])
    h = Host("h", speed=200.0, trace=trace)
    assert h.effective_speed(5.0) == 200.0
    assert h.effective_speed(10.0) == 50.0


def test_work_capacity_matches_duration_inverse_simple():
    trace = PiecewiseTrace([0.0, 4.0, 8.0], [1.0, 0.5, 1.0])
    h = Host("h", speed=10.0, trace=trace)
    d = h.duration_for_work(100.0, 1.0)
    assert h.work_capacity(1.0, 1.0 + d) == pytest.approx(100.0)


@settings(max_examples=50, deadline=None)
@given(
    work=st.floats(min_value=1e-3, max_value=1e5),
    t0=st.floats(min_value=0.0, max_value=1e3),
    seed=st.integers(0, 10),
)
def test_property_duration_inverts_capacity(work, t0, seed):
    """work_capacity(t0, t0 + duration_for_work(w)) == w on any trace."""
    trace = MarkovTrace(spawn_generator(seed, "h"), mean_dwell=3.0, low=0.1, high=1.0)
    h = Host("h", speed=123.0, trace=trace)
    d = h.duration_for_work(work, t0)
    assert d > 0
    # Tolerances allow float cancellation when t0 >> duration.
    assert h.work_capacity(t0, t0 + d) == pytest.approx(work, rel=1e-6, abs=1e-9)


def test_work_capacity_empty_interval():
    h = Host("h", speed=10.0)
    assert h.work_capacity(5.0, 5.0) == 0.0
    assert h.work_capacity(5.0, 4.0) == 0.0


def test_constant_trace_capacity():
    h = Host("h", speed=10.0, trace=ConstantTrace(0.5))
    assert h.work_capacity(0.0, 10.0) == pytest.approx(50.0)
