"""Tests for norms."""

import numpy as np
import pytest

from repro.numerics.norms import l2_norm, max_abs_norm, relative_change


def test_max_abs_norm():
    assert max_abs_norm(np.array([1.0, -3.0, 2.0])) == 3.0
    assert max_abs_norm(np.array([])) == 0.0
    assert max_abs_norm(np.array([[1.0, -4.0], [2.0, 0.0]])) == 4.0


def test_l2_norm():
    assert l2_norm(np.array([3.0, 4.0])) == pytest.approx(5.0)


def test_relative_change():
    old = np.array([1.0, 2.0])
    new = np.array([1.1, 2.0])
    assert relative_change(new, old) == pytest.approx(0.1 / 2.0)


def test_relative_change_zero_old_uses_floor():
    old = np.zeros(2)
    new = np.array([1.0, 0.0])
    assert relative_change(new, old) > 1e20  # floored denominator


def test_relative_change_shape_mismatch():
    with pytest.raises(ValueError):
        relative_change(np.zeros(2), np.zeros(3))
