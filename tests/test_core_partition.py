"""Tests for the partition registry, including property-based migration fuzzing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import PartitionError, PartitionRegistry


def test_initial_split_is_even():
    reg = PartitionRegistry(10, 3)
    assert reg.sizes() == [4, 3, 3]
    assert reg.block(0) == (0, 4)
    assert reg.block(2) == (7, 10)


def test_validation():
    with pytest.raises(ValueError):
        PartitionRegistry(2, 3)
    with pytest.raises(ValueError):
        PartitionRegistry(5, 0)


def test_send_receive_left():
    reg = PartitionRegistry(12, 3)  # [0,4) [4,8) [8,12)
    lo, hi = reg.record_send(1, 2, "left")
    assert (lo, hi) == (4, 6)
    assert reg.block(1) == (6, 8)
    assert reg.n_in_flight == 2
    reg.record_receive(0, lo, hi)
    assert reg.block(0) == (0, 6)
    assert reg.n_in_flight == 0


def test_send_receive_right():
    reg = PartitionRegistry(12, 3)
    lo, hi = reg.record_send(1, 3, "right")
    assert (lo, hi) == (5, 8)
    reg.record_receive(2, lo, hi)
    assert reg.block(2) == (5, 12)


def test_cannot_send_all_components():
    reg = PartitionRegistry(12, 3)
    with pytest.raises(PartitionError):
        reg.record_send(1, 4, "right")


def test_cannot_send_off_chain():
    reg = PartitionRegistry(12, 3)
    with pytest.raises(PartitionError):
        reg.record_send(0, 1, "left")
    with pytest.raises(PartitionError):
        reg.record_send(2, 1, "right")


def test_receive_unknown_flight_rejected():
    reg = PartitionRegistry(12, 3)
    with pytest.raises(PartitionError):
        reg.record_receive(0, 4, 6)


def test_receive_wrong_destination_rejected():
    reg = PartitionRegistry(12, 3)
    lo, hi = reg.record_send(1, 2, "left")
    with pytest.raises(PartitionError):
        reg.record_receive(2, lo, hi)


def test_sequential_opposite_migrations_ok():
    # i ships left, the receipt lands, then the neighbour ships right back.
    reg = PartitionRegistry(12, 2)  # [0,6) [6,12)
    lo, hi = reg.record_send(1, 2, "left")
    reg.record_receive(0, lo, hi)
    assert reg.sizes() == [8, 4]
    lo, hi = reg.record_send(0, 5, "right")
    reg.record_receive(1, lo, hi)
    assert reg.sizes() == [3, 9]


@settings(max_examples=60, deadline=None)
@given(
    n_ranks=st.integers(2, 6),
    per_rank=st.integers(3, 8),
    ops=st.lists(
        st.tuples(
            st.integers(0, 5),  # rank (mod n_ranks)
            st.sampled_from(["left", "right"]),
            st.integers(1, 3),  # amount
        ),
        max_size=40,
    ),
)
def test_property_random_migrations_keep_invariants(n_ranks, per_rank, ops):
    """Any sequence of feasible migrations preserves coverage and order.

    Infeasible operations must raise PartitionError and leave the
    registry unchanged (checked via re-validation).
    """
    reg = PartitionRegistry(n_ranks * per_rank, n_ranks)
    min_keep = 1
    for rank_raw, side, amount in ops:
        rank = rank_raw % n_ranks
        dst = rank - 1 if side == "left" else rank + 1
        feasible = (
            0 <= dst < n_ranks and reg.n_local(rank) - amount >= min_keep
        )
        if feasible:
            lo, hi = reg.record_send(rank, amount, side)
            reg.record_receive(dst, lo, hi)
        else:
            with pytest.raises(PartitionError):
                reg.record_send(rank, amount, side)
        reg.check()
        assert sum(reg.sizes()) == n_ranks * per_rank
