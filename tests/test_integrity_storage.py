"""Property/fuzz tests: random byte damage to durable storage.

The data-integrity contract for the serve WAL and the run cache is
*never silent acceptance*: arbitrary on-disk damage must surface either
as a clean quarantine (damaged lines isolated, intact records kept
verbatim), an explicit :class:`~repro.serve.wal.WALError`, or — for the
cache — a miss.  What must never happen is a record or payload being
served whose bytes differ from what was written.

Hypothesis drives the damage: an arbitrary set of byte positions is
overwritten with arbitrary bytes (including newlines, which can tear a
line in two, and NULs).  Every failure shrinks to a minimal damage
pattern; the heavier cases run derandomized so CI is deterministic.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import RunCache
from repro.serve import JobWAL
from repro.serve.wal import WALError, record_crc, replay

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

#: A damage pattern: positions (as fractions of the file length, so
#: shrinking stays meaningful whatever the file size) and payload bytes.
damage_patterns = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=24,
)


def apply_damage(path, pattern) -> None:
    """Overwrite bytes of ``path`` per the damage pattern."""
    with open(path, "rb") as fh:
        data = bytearray(fh.read())
    if not data:
        return
    for fraction, value in pattern:
        data[min(int(fraction * len(data)), len(data) - 1)] = value
    with open(path, "wb") as fh:
        fh.write(bytes(data))


def write_wal(path, n_jobs=3) -> list[dict]:
    """A healthy little WAL; returns its records as written."""
    wal = JobWAL(str(path), durable=False)
    for i in range(n_jobs):
        wal.submit(
            {"id": f"j{i:06d}", "spec": {"kind": "sleep", "seconds": 0.01},
             "tenant": "default", "priority": 0, "state": "queued"}
        )
        wal.state(f"j{i:06d}", "running")
    wal.close()
    return replay(str(path))


# ----------------------------------------------------------------------
# WAL: damage is quarantined or raises — never silently accepted
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None, derandomize=True)
@given(pattern=damage_patterns)
def test_wal_damage_never_silently_accepted(tmp_path_factory, pattern):
    path = tmp_path_factory.mktemp("fuzz") / "wal.jsonl"
    originals = write_wal(path)
    apply_damage(path, pattern)

    quarantined: list = []
    try:
        records = replay(str(path), quarantine=quarantined)
    except WALError:
        # Explicit refusal (e.g. damage turned a schema byte into the
        # legacy version string) is an acceptable loud outcome.
        return
    # Every surviving record must be byte-faithful to one we wrote:
    # altering any content byte breaks the CRC, so a record can only be
    # accepted verbatim.
    by_seq = {r["seq"]: r for r in originals}
    for record in records:
        assert record == by_seq[record["seq"]], (
            "damaged record served as genuine"
        )
        assert record_crc(record) == record["crc"]
    for entry in quarantined:
        assert entry["reason"]
        assert entry["lineno"] >= 1


@settings(max_examples=60, deadline=None, derandomize=True)
@given(pattern=damage_patterns)
def test_wal_reopen_after_damage_keeps_appending(tmp_path_factory, pattern):
    """A damaged log either refuses loudly or reopens into a usable WAL."""
    path = tmp_path_factory.mktemp("fuzz") / "wal.jsonl"
    write_wal(path)
    apply_damage(path, pattern)

    try:
        wal = JobWAL(str(path), durable=False)
    except WALError:
        return
    # The reopened WAL must be append-clean: new records land after the
    # healed tail and a fresh replay accepts them.
    wal.submit(
        {"id": "j999999", "spec": {"kind": "sleep", "seconds": 0.01},
         "tenant": "default", "priority": 0, "state": "queued"}
    )
    wal.close()
    records = replay(str(path))
    assert any(
        r["type"] == "submit" and r["job"]["id"] == "j999999" for r in records
    )
    seqs = [r["seq"] for r in records]
    assert seqs == sorted(set(seqs))


@settings(max_examples=60, deadline=None, derandomize=True)
@given(
    pattern=damage_patterns,
    truncate_at=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_wal_damage_plus_torn_tail(tmp_path_factory, pattern, truncate_at):
    """Damage combined with a mid-record crash truncation stays safe."""
    path = tmp_path_factory.mktemp("fuzz") / "wal.jsonl"
    originals = write_wal(path)
    apply_damage(path, pattern)
    with open(path, "rb") as fh:
        data = fh.read()
    with open(path, "wb") as fh:
        fh.write(data[: int(truncate_at * len(data))])

    quarantined: list = []
    try:
        records = replay(str(path), quarantine=quarantined)
    except WALError:
        return
    by_seq = {r["seq"]: r for r in originals}
    for record in records:
        assert record == by_seq[record["seq"]]


# ----------------------------------------------------------------------
# Cache: damage reads as a miss or the genuine payload — never a lie
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None, derandomize=True)
@given(pattern=damage_patterns)
def test_cache_damage_is_a_miss_or_the_truth(tmp_path_factory, pattern):
    root = tmp_path_factory.mktemp("fuzz-cache")
    cache = RunCache(str(root))
    key = {"experiment": "fuzz", "cell": 7}
    payload = {"rows": [1, 2, 3], "digest": "abc123"}
    digest = cache.digest_for(key)
    cache.put(digest, key, payload)
    apply_damage(cache.path_for(digest), pattern)

    hit, value = RunCache(str(root)).get(digest)
    if hit:
        assert value == payload, "bit-rotted cache entry served as genuine"


def test_cache_single_flipped_payload_byte_is_always_a_miss(tmp_path):
    """Exhaustive single-byte sweep over the payload span of one entry.

    Complements the random fuzz above: every single-byte corruption at
    or after the payload key must read as a miss or as the genuine
    payload (CRC-32 detects all single-byte errors)."""
    cache = RunCache(str(tmp_path))
    key = {"experiment": "sweep"}
    payload = {"value": 12345.678, "tag": "genuine"}
    digest = cache.digest_for(key)
    cache.put(digest, key, payload)
    path = cache.path_for(digest)
    with open(path, "rb") as fh:
        pristine = fh.read()
    span = pristine.find(b'"payload"')
    assert span != -1
    flipped_hits = []
    for offset in range(span, len(pristine)):
        damaged = bytearray(pristine)
        damaged[offset] ^= 0x01
        with open(path, "wb") as fh:
            fh.write(bytes(damaged))
        hit, value = RunCache(str(tmp_path)).get(digest)
        if hit and value != payload:
            flipped_hits.append(offset)
    assert not flipped_hits, (
        f"payload corruption at offsets {flipped_hits} served as genuine"
    )


# ----------------------------------------------------------------------
# The CRC primitive itself
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(
    record=st.dictionaries(
        st.text(min_size=1, max_size=8).filter(lambda s: s != "crc"),
        st.one_of(
            st.integers(min_value=-(2 ** 31), max_value=2 ** 31),
            st.text(max_size=16),
            st.booleans(),
        ),
        min_size=1,
        max_size=6,
    )
)
def test_record_crc_is_content_addressed(record):
    """The CRC depends only on parsed content, not formatting or the
    stamp itself — and any single field change moves it."""
    crc = record_crc(record)
    stamped = dict(record, crc=crc)
    assert record_crc(stamped) == crc  # stamp is excluded from itself
    reparsed = json.loads(json.dumps(stamped, indent=4))
    assert record_crc(reparsed) == crc  # formatting never matters
    key = sorted(record)[0]
    altered = dict(record)
    altered[key] = "tampered-value"
    if altered != record:
        assert record_crc(altered) != crc
