"""repro.guard.watchdogs: stall detection and divergence rollback."""

import math

import numpy as np
import pytest

from repro.core import SolverConfig, run_aiac
from repro.core.solver import build_chain
from repro.grid import homogeneous_cluster
from repro.guard import GuardConfig, InvariantMonitor, InvariantViolation
from repro.guard.watchdogs import DivergenceGuard, build_stall_report
from repro.problems import HeatProblem


def _small(n=24, ranks=3, speed=2000.0):
    return (
        HeatProblem(n, t_end=0.05, n_steps=8),
        homogeneous_cluster(ranks, speed=speed),
        SolverConfig(tolerance=1e-6, max_iterations=100_000),
    )


def _wedged_run(horizon=1.0, on_stall="record"):
    """A chain with the guard attached but no rank processes: nothing
    ever sweeps, so every watchdog tick is a stall."""
    problem, platform, config = _small()
    run = build_chain(problem, platform, config, model="aiac")
    guard = InvariantMonitor(
        GuardConfig(stall_horizon=horizon, on_stall=on_stall)
    ).attach(run)
    return run, guard


# ----------------------------------------------------------------------
# Stall watchdog
# ----------------------------------------------------------------------
def test_stall_watchdog_records_report_and_fault():
    run, guard = _wedged_run(horizon=1.0)
    run.sim.at(3.5, lambda: None)
    run.sim.run(until=3.5)
    assert len(guard.stall_reports) == 3  # ticks at t=1, 2, 3
    report = guard.stall_reports[0]
    assert report.time == 1.0
    assert report.horizon == 1.0
    assert len(report.ranks) == run.n_ranks
    assert "stall" in report.format()
    faults = [f for f in run.tracer.faults if f.kind == "stall"]
    assert len(faults) == 3


def test_stall_watchdog_raise_mode_escalates():
    run, guard = _wedged_run(horizon=1.0, on_stall="raise")
    run.sim.at(2.5, lambda: None)
    with pytest.raises(Exception, match="stall"):
        run.sim.run(until=2.5)


def test_stall_watchdog_quiet_on_healthy_run():
    problem, platform, config = _small()
    guard = InvariantMonitor(GuardConfig(stall_horizon=5.0))
    result = run_aiac(problem, platform, config, guard=guard)
    assert result.converged
    assert guard.stall_reports == []


def test_stall_watchdog_does_not_rearm_after_halt():
    problem, platform, config = _small()
    guard = InvariantMonitor(GuardConfig(stall_horizon=5.0))
    result = run_aiac(problem, platform, config, guard=guard)
    # Once converged the periodic event stops re-arming, so the DES
    # queue drains: virtual time must not run away to max_time.
    assert guard.run.sim.now <= result.time + 2 * 5.0


def test_stall_report_suspects_dead_rank_first():
    run, guard = _wedged_run()
    run.ranks[1].node.alive = False
    report = build_stall_report(run, 1.0, [0] * run.n_ranks)
    assert report.suspect_rank == 1
    assert "down" in report.why
    assert report.as_fault_record().kind == "stall"
    assert report.as_fault_record().rank == 1


def test_stall_report_suspects_least_advanced_rank_and_channel():
    run, guard = _wedged_run()
    run.ranks[0].iteration = 12
    run.ranks[1].iteration = 3
    run.ranks[2].iteration = 9
    # Rank 1's left halo is fresh, its right halo lags 4 sweeps behind
    # rank 2: the starving channel is the one fed from the right.
    run.ranks[1].halo_iter_left = 12
    run.ranks[1].halo_iter_right = 5
    report = build_stall_report(run, 1.0, [12, 3, 9])
    assert report.suspect_rank == 1
    assert report.suspect_channel == "halo_from_right"
    assert "least-advanced" in report.why


def test_stall_report_suspects_busy_rank_over_slow_rank():
    run, guard = _wedged_run()
    run.ranks[0].iteration = 1  # least advanced but healthy
    run.ranks[2].iteration = 7
    original = run.rank_busy
    run.rank_busy = lambda rank: rank == 2
    try:
        report = build_stall_report(run, 1.0, [1, 0, 7])
    finally:
        run.rank_busy = original
    assert report.suspect_rank == 2
    assert "migration" in report.why


# ----------------------------------------------------------------------
# Divergence watchdog
# ----------------------------------------------------------------------
class _FakeTracer:
    def __init__(self):
        self.faults = []

    def fault(self, record):
        self.faults.append(record)


class _FakeRun:
    """Just enough ChainRun surface for DivergenceGuard.after_sweep."""

    def __init__(self, checkpoint_every=20):
        self.checkpoint_every = checkpoint_every
        self.tracer = _FakeTracer()
        self.restored = []
        self.checkpointed = []
        self.config = SolverConfig(tolerance=1e-6)

        class _Sim:
            now = 1.0

        self.sim = _Sim()

    def restore_checkpoint(self, ctx):
        self.restored.append(ctx.rank)

    def checkpoint(self, ctx):
        self.checkpointed.append(ctx.rank)


class _FakeCtx:
    def __init__(self, rank=0, residual=1.0, lo=0, hi=8):
        self.rank = rank
        self.residual = residual
        self.iteration = 1
        self.lo = lo
        self.hi = hi


def test_divergence_guard_rolls_back_on_nan_immediately():
    run = _FakeRun()
    guard = DivergenceGuard(GuardConfig())
    ctx = _FakeCtx(residual=0.5)
    assert guard.after_sweep(run, ctx) is False
    ctx.residual = float("nan")
    assert guard.after_sweep(run, ctx) is True
    assert run.restored == [0]
    assert guard.events[0]["residual"] is not ctx.residual or math.isnan(
        guard.events[0]["residual"]
    )
    assert run.tracer.faults[0].kind == "divergence-rollback"


def test_divergence_guard_needs_patience_for_finite_blowup():
    run = _FakeRun()
    guard = DivergenceGuard(GuardConfig(divergence_patience=3))
    ctx = _FakeCtx()
    ctx.residual = 1e-3
    assert not guard.after_sweep(run, ctx)  # best = 1e-3
    for expected in (False, False, True):  # 3 consecutive blow-ups
        ctx.residual = 1e3
        assert guard.after_sweep(run, ctx) is expected
    assert run.restored == [0]
    # The rollback resets the streak: the next blow-up starts over.
    ctx.residual = 1e3
    assert not guard.after_sweep(run, ctx)


def test_divergence_guard_improvement_resets_streak():
    run = _FakeRun()
    guard = DivergenceGuard(GuardConfig(divergence_patience=2))
    ctx = _FakeCtx()
    ctx.residual = 1e-3
    guard.after_sweep(run, ctx)
    ctx.residual = 1e3
    assert not guard.after_sweep(run, ctx)
    ctx.residual = 1e-4  # recovers on its own
    assert not guard.after_sweep(run, ctx)
    ctx.residual = 1e3
    assert not guard.after_sweep(run, ctx)  # streak restarted at 1
    assert run.restored == []


def test_divergence_guard_tolerance_floor_ignores_reactivation():
    """Sub-tolerance noise is convergence, not a divergence baseline."""
    run = _FakeRun()
    guard = DivergenceGuard(GuardConfig(divergence_patience=1))
    ctx = _FakeCtx()
    ctx.residual = 1e-14  # locally quiescent block
    guard.after_sweep(run, ctx)
    # Fresh boundary data re-activates the block: 1e-5 is 9 orders
    # above best but far below tolerance * factor = 1e-6 * 1e4 = 1e-2.
    ctx.residual = 1e-5
    assert not guard.after_sweep(run, ctx)
    assert run.restored == []
    # A genuine blow-up past the floored reference still trips.
    ctx.residual = 1.0
    assert guard.after_sweep(run, ctx) is True


def test_divergence_guard_resets_baseline_on_migration():
    run = _FakeRun()
    guard = DivergenceGuard(GuardConfig(divergence_patience=1))
    ctx = _FakeCtx(lo=0, hi=2)
    ctx.residual = 1e-15  # near-empty block at machine epsilon
    guard.after_sweep(run, ctx)
    # Load balancing regrows the block; its residual scale is new.
    ctx.lo, ctx.hi = 0, 12
    ctx.residual = 1e-1
    assert not guard.after_sweep(run, ctx)
    assert run.restored == []


def test_divergence_guard_refreshes_checkpoints_on_unfaulted_runs():
    run = _FakeRun(checkpoint_every=0)  # no injector = no periodic snaps
    guard = DivergenceGuard(GuardConfig(rollback_refresh=5))
    ctx = _FakeCtx()
    for i in range(11):
        ctx.residual = 1.0 / (i + 1)
        guard.after_sweep(run, ctx)
    assert run.checkpointed == [0, 0]  # refreshed at improvements 5, 10


def test_guarded_run_recovers_from_injected_nan():
    """End-to-end: poison one rank's state mid-run; the watchdog rolls
    it back to a checkpoint and the run still converges correctly."""
    problem2, platform2, config2 = _small()
    guard2 = InvariantMonitor()
    victim = {}

    import repro.core.solver as solver_mod

    original_sweep = solver_mod.ChainRun.sweep

    def poisoned_sweep(self, ctx, **kwargs):
        if ctx.rank == 1 and ctx.iteration == 30 and not victim:
            victim["hit"] = True
            ctx.state.traj[:] = np.nan
        return original_sweep(self, ctx, **kwargs)

    solver_mod.ChainRun.sweep = poisoned_sweep
    try:
        result = run_aiac(problem2, platform2, config2, guard=guard2)
    finally:
        solver_mod.ChainRun.sweep = original_sweep
    assert victim.get("hit")
    assert result.converged
    assert len(guard2.divergence_events) >= 1
    assert guard2.divergence_events[0]["rank"] == 1
    reference = problem2.reference_solution()
    assert result.max_error_vs(reference) < 1e-3
    guard2.verify_halt()
