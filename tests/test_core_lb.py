"""Integration tests for the load-balanced AIAC solver (Algorithms 4-7)."""

import numpy as np
import pytest

from repro.core import LBConfig, SolverConfig, run_aiac, run_balanced_aiac
from repro.grid import homogeneous_cluster
from repro.grid.host import Host
from repro.grid.link import Link
from repro.grid.network import Network
from repro.grid.platform import Platform
from repro.grid.traces import PiecewiseTrace
from repro.problems import BrusselatorProblem, SyntheticProblem


def synthetic(n=64, hard=0.95):
    return SyntheticProblem.with_hard_region(
        n, easy_rate=0.4, hard_rate=hard, active_cost=6.0
    )


CFG = SolverConfig(tolerance=1e-8, max_iterations=50000)


def test_balanced_still_correct_on_synthetic():
    plat = homogeneous_cluster(4, speed=100.0)
    r = run_balanced_aiac(synthetic(), plat, CFG, LBConfig(period=5))
    assert r.converged
    assert np.max(r.solution()) < 1e-8
    assert r.n_migrations > 0  # the balancer actually did something


def test_balanced_still_correct_on_brusselator():
    prob = BrusselatorProblem(12, t_end=2.0, n_steps=20)
    plat = homogeneous_cluster(3, speed=5000.0)
    r = run_balanced_aiac(
        prob,
        plat,
        SolverConfig(tolerance=1e-8, max_iterations=3000),
        LBConfig(period=5, min_components=2),
    )
    assert r.converged
    assert r.max_error_vs(prob.reference_solution()) < 1e-5


def test_lb_beats_unbalanced_on_activity_imbalance():
    """The paper's homogeneous-cluster experiment (Figure 5) in miniature."""
    plat = homogeneous_cluster(4, speed=100.0)
    r_unbal = run_aiac(synthetic(), plat, CFG)
    r_bal = run_balanced_aiac(synthetic(), plat, CFG, LBConfig(period=5))
    assert r_bal.converged and r_unbal.converged
    assert r_bal.time < r_unbal.time


def test_lb_beats_unbalanced_on_heterogeneous_speeds():
    net = Network(Link(latency=1e-4, bandwidth=1e8))
    hosts = [Host("slow", 100.0), Host("fast", 800.0)]
    plat = Platform(hosts=hosts, network=net)
    prob = lambda: SyntheticProblem(np.full(60, 0.93), coupling=0.2)  # noqa: E731
    r_unbal = run_aiac(prob(), plat, CFG)
    r_bal = run_balanced_aiac(prob(), plat, CFG, LBConfig(period=5))
    assert r_bal.converged and r_unbal.converged
    assert r_bal.time < r_unbal.time
    # The fast host ends up with more components.
    sizes = r_bal.meta["final_sizes"]
    assert sizes[1] > sizes[0]


def test_famine_guard_respected():
    plat = homogeneous_cluster(4, speed=100.0)
    lb = LBConfig(period=3, min_components=5, accuracy=1.0)
    r = run_balanced_aiac(synthetic(48), plat, CFG, lb)
    assert r.converged
    assert min(r.meta["final_sizes"]) >= 5
    # Famine must hold at every point in time, not just at the end:
    # reconstruct sizes from the migration log.
    sizes = {rank: 12 for rank in range(4)}
    for m in sorted(r.tracer.migrations, key=lambda m: m.time):
        sizes[m.src_rank] -= m.n_components
        sizes[m.dst_rank] += m.n_components
        assert sizes[m.src_rank] >= 5
    assert sizes == {
        rank: size for rank, size in enumerate(r.meta["final_sizes"])
    }


def test_components_conserved():
    plat = homogeneous_cluster(5, speed=100.0)
    r = run_balanced_aiac(synthetic(60), plat, CFG, LBConfig(period=4))
    assert sum(r.meta["final_sizes"]) == 60
    blocks = sorted(r.final_partition)
    cursor = 0
    for lo, hi in blocks:
        assert lo == cursor
        cursor = hi
    assert cursor == 60


def test_migrations_flow_toward_less_loaded_ranks():
    """Migrations are neighbour-local and predominantly high->low estimate."""
    plat = homogeneous_cluster(4, speed=100.0)
    lb = LBConfig(period=5, threshold_ratio=2.0)
    r = run_balanced_aiac(synthetic(), plat, CFG, lb)
    assert r.n_migrations > 0
    downhill = 0
    for m in r.tracer.migrations:
        assert abs(m.src_rank - m.dst_rank) == 1  # neighbour-local only
        assert m.n_components >= 1
        if m.src_residual > m.dst_residual:
            downhill += 1
    # The estimates are re-read at data-send time (after the offer), so a
    # few individual records may have flipped; the flow must still be
    # overwhelmingly downhill.
    assert downhill >= 0.8 * r.n_migrations


def test_deterministic():
    plat = homogeneous_cluster(4, speed=100.0)
    lb = LBConfig(period=5)
    r1 = run_balanced_aiac(synthetic(), plat, CFG, lb)
    r2 = run_balanced_aiac(synthetic(), plat, CFG, lb)
    assert r1.time == r2.time
    assert r1.n_migrations == r2.n_migrations
    assert r1.meta["final_sizes"] == r2.meta["final_sizes"]


def test_high_threshold_disables_lb():
    plat = homogeneous_cluster(4, speed=100.0)
    lb = LBConfig(period=5, threshold_ratio=1e12)
    r = run_balanced_aiac(synthetic(), plat, CFG, lb)
    assert r.converged
    assert r.n_migrations == 0


def test_single_rank_lb_is_noop():
    plat = homogeneous_cluster(1, speed=100.0)
    r = run_balanced_aiac(synthetic(16), plat, CFG, LBConfig(period=2))
    assert r.converged
    assert r.n_migrations == 0


def test_estimator_variants_all_converge():
    plat = homogeneous_cluster(3, speed=100.0)
    for estimator in ("residual", "iteration_time", "component_count"):
        r = run_balanced_aiac(
            synthetic(48), plat, CFG, LBConfig(period=5, estimator=estimator)
        )
        assert r.converged, estimator
        assert np.max(r.solution()) < 1e-8


def test_lb_under_external_load_changes():
    """A host that loses most of its capacity mid-run sheds components."""
    trace = PiecewiseTrace([0.0, 5.0], [1.0, 0.05])
    net = Network(Link(latency=1e-4, bandwidth=1e8))
    hosts = [
        Host("victim", 200.0, trace=trace),
        Host("steady", 200.0),
        Host("steady2", 200.0),
    ]
    plat = Platform(hosts=hosts, network=net)
    prob = SyntheticProblem(np.full(60, 0.97), coupling=0.2, active_cost=4.0)
    r = run_balanced_aiac(
        prob, plat, CFG, LBConfig(period=5, estimator="residual")
    )
    assert r.converged
    sizes = r.meta["final_sizes"]
    assert sizes[0] < max(sizes[1], sizes[2])


def test_offers_tracked_in_meta():
    plat = homogeneous_cluster(4, speed=100.0)
    r = run_balanced_aiac(synthetic(), plat, CFG, LBConfig(period=5))
    assert r.meta["offers_sent"] >= r.n_migrations
    assert r.meta["offers_rejected"] >= 0
