"""Tests for virtual-time mutexes and barriers."""

import pytest

from repro.des import Barrier, Hold, Mutex, Simulator, Wait


def test_mutex_try_acquire_and_release():
    sim = Simulator()
    m = Mutex("chan")
    assert m.try_acquire()
    assert not m.try_acquire()
    m.release(sim)
    assert m.try_acquire()


def test_mutex_release_unheld_raises():
    with pytest.raises(RuntimeError):
        Mutex().release(Simulator())


def test_mutex_fifo_handoff():
    sim = Simulator()
    m = Mutex()
    order = []

    def holder(sim):
        assert m.try_acquire()
        yield Hold(5.0)
        m.release(sim)
        order.append(("holder-released", sim.now))

    def contender(sim, label, arrival):
        yield Hold(arrival)
        if not m.try_acquire():
            yield Wait(m.acquire_signal())
        order.append((label, sim.now))
        m.release(sim)

    sim.spawn("h", holder(sim))
    sim.spawn("c1", contender(sim, "c1", 1.0))
    sim.spawn("c2", contender(sim, "c2", 2.0))
    sim.run()
    labels = [x[0] for x in order]
    assert labels == ["holder-released", "c1", "c2"]
    # Contenders get the lock only when the holder releases at t=5.
    assert all(t == 5.0 for _, t in order)


def test_barrier_releases_all_on_last_arrival():
    sim = Simulator()
    barrier = Barrier(3)
    passed = []

    def party(sim, label, delay):
        yield Hold(delay)
        signal = barrier.arrive(sim)
        if signal is not None:
            yield Wait(signal)
        passed.append((label, sim.now))

    sim.spawn("a", party(sim, "a", 1.0))
    sim.spawn("b", party(sim, "b", 3.0))
    sim.spawn("c", party(sim, "c", 2.0))
    sim.run()
    assert sorted(t for _, t in passed) == [3.0, 3.0, 3.0]
    assert barrier.generation == 1


def test_barrier_is_cyclic():
    sim = Simulator()
    barrier = Barrier(2)
    crossings = []

    def party(sim, label, period):
        for _ in range(3):
            yield Hold(period)
            signal = barrier.arrive(sim)
            if signal is not None:
                yield Wait(signal)
            crossings.append((label, sim.now))

    sim.spawn("fast", party(sim, "fast", 1.0))
    sim.spawn("slow", party(sim, "slow", 2.0))
    sim.run()
    times = sorted(t for _, t in crossings)
    # Lock-step: both cross at the slow party's pace.
    assert times == [2.0, 2.0, 4.0, 4.0, 6.0, 6.0]
    assert barrier.generation == 3


def test_barrier_single_party_never_blocks():
    sim = Simulator()
    barrier = Barrier(1)
    assert barrier.arrive(sim) is None
    assert barrier.generation == 1


def test_barrier_requires_positive_parties():
    with pytest.raises(ValueError):
        Barrier(0)
