"""Tests for configuration validation."""

import pytest

from repro.core.config import LBConfig, SolverConfig


def test_solver_defaults_valid():
    cfg = SolverConfig()
    assert cfg.tolerance > 0
    assert cfg.exclusive_sends


@pytest.mark.parametrize(
    "kwargs",
    [
        {"tolerance": 0.0},
        {"persistence": 0},
        {"max_iterations": 0},
        {"max_time": -1.0},
        {"overlap_split": 1.5},
        {"header_bytes": -1.0},
    ],
)
def test_solver_config_rejects(kwargs):
    with pytest.raises(ValueError):
        SolverConfig(**kwargs)


def test_lb_defaults_match_paper():
    cfg = LBConfig()
    assert cfg.period == 20  # Algorithm 4's OkToTryLB reset
    assert cfg.estimator == "residual"  # Section 5.2's choice


@pytest.mark.parametrize(
    "kwargs",
    [
        {"period": 0},
        {"threshold_ratio": 1.0},
        {"threshold_ratio": 0.5},
        {"min_components": 1},
        {"accuracy": 0.0},
        {"accuracy": 1.5},
        {"estimator": "magic"},
        {"retry_delay": 0},
    ],
)
def test_lb_config_rejects(kwargs):
    with pytest.raises(ValueError):
        LBConfig(**kwargs)
