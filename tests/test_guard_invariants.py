"""repro.guard.invariants: attach wiring, catalogue checks, halt oracle."""

import numpy as np
import pytest

from repro.core import SolverConfig, run_aiac, run_balanced_aiac
from repro.core.config import LBConfig
from repro.core.solver import build_chain
from repro.grid import homogeneous_cluster
from repro.guard import GuardConfig, InvariantMonitor, InvariantViolation
from repro.problems import HeatProblem


def _small(n=24, ranks=3, speed=2000.0):
    return (
        HeatProblem(n, t_end=0.05, n_steps=8),
        homogeneous_cluster(ranks, speed=speed),
        SolverConfig(tolerance=1e-6, max_iterations=100_000),
    )


# ----------------------------------------------------------------------
# GuardConfig validation
# ----------------------------------------------------------------------
def test_guard_config_rejects_bad_values():
    with pytest.raises(ValueError):
        GuardConfig(check_every=0)
    with pytest.raises(ValueError):
        GuardConfig(halt_slack=0.0)
    with pytest.raises(ValueError):
        GuardConfig(stall_horizon=-1.0)
    with pytest.raises(ValueError, match="on_stall"):
        GuardConfig(on_stall="panic")
    with pytest.raises(ValueError):
        GuardConfig(divergence_factor=0.5)
    with pytest.raises(ValueError):
        GuardConfig(rollback_refresh=-1)


# ----------------------------------------------------------------------
# Attach wiring
# ----------------------------------------------------------------------
def test_attach_occupies_profiler_slot_and_chains():
    problem, platform, config = _small()
    run = build_chain(problem, platform, config, model="aiac")

    class Recorder:
        def __init__(self):
            self.n = 0

        def record(self, event):
            self.n += 1

    recorder = Recorder()
    run.sim.profiler = recorder
    guard = InvariantMonitor().attach(run)
    assert run.sim.profiler is guard
    assert guard.chain is recorder
    assert run.guard is guard
    # Chained observer still sees every event the monitor sees.
    run.sim.at(1.0, lambda: None)
    run.sim.run(until=2.0)
    assert guard.events_seen == recorder.n > 0


def test_attach_twice_is_rejected():
    problem, platform, config = _small()
    run = build_chain(problem, platform, config, model="aiac")
    guard = InvariantMonitor().attach(run)
    with pytest.raises(RuntimeError, match="already attached"):
        guard.attach(run)


def test_attach_seeds_rollback_checkpoints():
    problem, platform, config = _small()
    run = build_chain(problem, platform, config, model="aiac")
    assert all(ctx.checkpoint is None for ctx in run.ranks)
    InvariantMonitor().attach(run)
    for ctx in run.ranks:
        snap = ctx.checkpoint
        assert snap is not None
        assert (snap["lo"], snap["hi"]) == (ctx.lo, ctx.hi)


# ----------------------------------------------------------------------
# Guarded clean runs: every model passes, answers unchanged
# ----------------------------------------------------------------------
def test_guarded_aiac_matches_unguarded_run_exactly():
    problem, platform, config = _small()
    plain = run_aiac(problem, platform, config)
    guard = InvariantMonitor()
    guarded = run_aiac(*_small(), guard=guard)
    assert guarded.converged and plain.converged
    assert guarded.time == plain.time
    assert guarded.iterations == plain.iterations
    np.testing.assert_array_equal(guarded.solution(), plain.solution())
    assert guard.checks_run > 0
    verdict = guard.verify_halt()
    assert verdict["declared_converged"]
    assert verdict["true_residual"] <= config.tolerance * 10.0


def test_guarded_balanced_run_passes_all_invariants():
    problem, platform, config = _small(n=32, ranks=4)
    guard = InvariantMonitor(GuardConfig(check_every=16, stall_horizon=50.0))
    result = run_balanced_aiac(
        problem,
        platform,
        config,
        LBConfig(period=5, min_components=2),
        guard=guard,
    )
    assert result.converged
    guard.verify_halt()
    stats = guard.stats()
    assert stats["checks_run"] > 0
    assert stats["stalls"] == 0
    assert stats["halt_verdict"]["declared_converged"]


# ----------------------------------------------------------------------
# The catalogue catches corruption (mutation tests)
# ----------------------------------------------------------------------
def _attached_run():
    problem, platform, config = _small()
    run = build_chain(problem, platform, config, model="aiac")
    guard = InvariantMonitor().attach(run)
    return run, guard


def test_conservation_catches_block_bounds_drift():
    run, guard = _attached_run()
    guard.check_invariants()  # sane to start with
    run.ranks[1].hi += 1  # rank now claims a component it does not own
    with pytest.raises(InvariantViolation, match="disagrees with registry"):
        guard.check_invariants()


def test_conservation_catches_lost_components():
    run, guard = _attached_run()
    ctx = run.ranks[1]
    # Shrink both the live block and the registry consistently, so only
    # the tiling check can notice the hole.
    run.partition._lo[ctx.rank] = ctx.lo + 1
    ctx.lo += 1
    ctx.state.traj = ctx.state.traj[1:]
    ctx.state.lo += 1
    with pytest.raises(InvariantViolation, match="lost"):
        guard.check_invariants()


def test_conservation_catches_state_length_mismatch():
    run, guard = _attached_run()
    ctx = run.ranks[0]
    ctx.state.traj = ctx.state.traj[:-1]
    with pytest.raises(InvariantViolation, match="holds"):
        guard.check_invariants()


def test_checkpoint_ownership_catches_stale_snapshot():
    run, guard = _attached_run()
    ctx = run.ranks[2]
    ctx.checkpoint["hi"] += 1
    with pytest.raises(InvariantViolation, match="checkpoint snapshots"):
        guard.check_invariants()


def test_crashed_rank_without_checkpoint_is_flagged():
    run, guard = _attached_run()
    ctx = run.ranks[0]
    ctx.node.alive = False
    ctx.checkpoint = None
    with pytest.raises(InvariantViolation, match="no checkpointed"):
        guard.check_invariants()


def test_sequence_monotonicity_catches_backwards_counter():
    # Sequence numbers exist on the resilient transport path; model a
    # sender that has issued 5 copies on the rank-0 -> rank-1 channel
    # and a receiver that saw up to seq 3 of them.
    run, guard = _attached_run()
    a, b = run.ranks[0].node, run.ranks[1].node
    a._send_seq[("probe", 1)] = 5
    b._recv_latest[("probe", 0)] = 3
    guard.check_invariants()
    a._send_seq[("probe", 1)] = 4  # counter moved backwards
    with pytest.raises(InvariantViolation, match="went backwards"):
        guard.check_invariants()


def test_sequence_monotonicity_catches_unissued_receipt():
    run, guard = _attached_run()
    a, b = run.ranks[0].node, run.ranks[1].node
    a._send_seq[("probe", 1)] = 5
    b._recv_latest[("probe", 0)] = 3
    guard.check_invariants()
    b._recv_latest[("probe", 0)] = 99  # peer never issued seq 99
    with pytest.raises(InvariantViolation, match="only issued"):
        guard.check_invariants()


# ----------------------------------------------------------------------
# The halt oracle
# ----------------------------------------------------------------------
def test_halt_oracle_flags_premature_termination():
    problem, platform, config = _small()
    guard = InvariantMonitor()
    result = run_aiac(problem, platform, config, guard=guard)
    assert result.converged
    run = guard.run
    # Corrupt one block after the fact: the detector's verdict is now
    # wrong by construction, and the oracle must notice.
    run.ranks[1].state.traj += 100.0
    with pytest.raises(InvariantViolation, match="premature termination"):
        guard.verify_halt()


def test_halt_oracle_accepts_honest_non_convergence():
    problem, platform, _ = _small()
    guard = InvariantMonitor()
    # A budget too small to converge: not converged, so no premature
    # termination no matter how large the residual is.
    config = SolverConfig(tolerance=1e-12, max_time=0.05)
    result = run_aiac(problem, platform, config, guard=guard)
    assert not result.converged
    verdict = guard.verify_halt()
    assert not verdict["declared_converged"]


def test_true_global_residual_handles_empty_blocks():
    problem, platform, config = _small()
    guard = InvariantMonitor()
    run_aiac(problem, platform, config, guard=guard)
    run = guard.run
    baseline = guard.true_global_residual()
    # Empty a middle block as a migration could: its neighbour takes
    # over the components; the walk must skip the empty block and read
    # the halo from the nearest non-empty one.
    left, mid = run.ranks[0], run.ranks[1]
    left.state.traj = np.concatenate([left.state.traj, mid.state.traj])
    left.hi = mid.hi
    mid.lo = mid.hi
    mid.state.traj = mid.state.traj[:0]
    mid.state.lo = mid.lo
    assert guard.true_global_residual() == pytest.approx(
        baseline, rel=1e-9, abs=1e-30
    )
