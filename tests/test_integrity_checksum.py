"""Unit tests for the integrity primitives (repro.integrity)."""

import numpy as np
import pytest

from repro.integrity import (
    checkpoint_crc,
    corrupt_array_inplace,
    corrupt_file,
    corrupt_payload,
    payload_checksum,
)


def rng(seed=0):
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# payload_checksum
# ----------------------------------------------------------------------
def test_checksum_is_deterministic_and_value_sensitive():
    payload = {"iteration": 12, "halo": np.arange(6, dtype=float), "k": "x"}
    assert payload_checksum(payload) == payload_checksum(payload)
    changed = {**payload, "iteration": 13}
    assert payload_checksum(changed) != payload_checksum(payload)


def test_checksum_sees_a_single_mantissa_bit():
    a = np.array([1.0, 2.0, 3.0])
    crc = payload_checksum(a)
    b = a.copy()
    # Flip the lowest mantissa bit of one element: the value changes by
    # one ulp — far below any numerical comparison, not below the CRC.
    b[1] = np.nextafter(b[1], np.inf)
    assert payload_checksum(b) != crc


def test_checksum_type_tags_prevent_structural_collisions():
    # list and tuple deliberately share the sequence tag; either is
    # distinct from a bare scalar.
    assert payload_checksum([1]) == payload_checksum((1,))
    assert payload_checksum([1]) != payload_checksum(1)
    assert payload_checksum(1) != payload_checksum(1.0)
    assert payload_checksum(True) != payload_checksum(1)
    assert payload_checksum(None) != payload_checksum(0)
    assert payload_checksum("ab") != payload_checksum(b"ab")
    assert payload_checksum({"a": 1, "b": 2}) == payload_checksum(
        {"b": 2, "a": 1}
    )


def test_checksum_distinguishes_float_bit_patterns():
    assert payload_checksum(0.0) != payload_checksum(-0.0)
    assert payload_checksum(float("nan")) == payload_checksum(float("nan"))


def test_checksum_array_shape_and_dtype_matter():
    a = np.arange(6, dtype=float)
    assert payload_checksum(a.reshape(2, 3)) != payload_checksum(a)
    assert payload_checksum(a.astype(np.float32)) != payload_checksum(a)


def test_checksum_rejects_opaque_objects():
    with pytest.raises(TypeError, match="cannot fingerprint"):
        payload_checksum(object())


# ----------------------------------------------------------------------
# checkpoint_crc
# ----------------------------------------------------------------------
def test_checkpoint_crc_ignores_stamp_and_opaque_state():
    snapshot = {
        "iteration": 40,
        "lo": 0,
        "hi": 12,
        "boundary": np.ones(4),
        "state": object(),  # opaque problem state: excluded from the walk
        "estimator": object(),  # not fingerprintable: excluded
    }
    crc = checkpoint_crc(snapshot)
    snapshot["crc"] = crc
    assert checkpoint_crc(snapshot) == crc


def test_checkpoint_crc_detects_missing_fields_and_state_damage():
    snapshot = {"iteration": 40, "lo": 0, "hi": 12, "boundary": np.ones(4)}
    state = np.linspace(0.0, 1.0, 24)
    crc = checkpoint_crc(snapshot, state)
    # The state array is part of the fingerprint...
    damaged_state = state.copy()
    damaged_state[7] = np.nextafter(damaged_state[7], np.inf)
    assert checkpoint_crc(snapshot, damaged_state) != crc
    # ...passing no view is a different fingerprint (stamp/verify must
    # agree on the view)...
    assert checkpoint_crc(snapshot) != crc
    # ...and so is a truncated snapshot (the key list is fingerprinted).
    truncated = {k: v for k, v in snapshot.items() if k != "hi"}
    assert checkpoint_crc(truncated, state) != crc


# ----------------------------------------------------------------------
# corrupt_payload / corrupt_array_inplace
# ----------------------------------------------------------------------
def test_corrupt_payload_never_mutates_the_original():
    payload = {"iteration": 3, "halo": np.arange(5, dtype=float)}
    pristine_crc = payload_checksum(payload)
    for mode in ("bitflip", "perturb", "truncate"):
        damaged, detail = corrupt_payload(payload, mode, 10.0, rng(5))
        assert detail is not None
        assert payload_checksum(payload) == pristine_crc, (
            f"{mode} mutated the sender's buffered copy"
        )
        assert payload_checksum(damaged) != pristine_crc


def test_corrupt_payload_is_seed_deterministic():
    payload = {"a": 1.5, "b": np.arange(4, dtype=float)}
    first = corrupt_payload(payload, "bitflip", 0.0, rng(9))
    second = corrupt_payload(payload, "bitflip", 0.0, rng(9))
    assert first[1] == second[1]
    assert payload_checksum(first[0]) == payload_checksum(second[0])


def test_corrupt_payload_with_nothing_corruptible():
    damaged, detail = corrupt_payload(None, "bitflip", 1.0, rng(0))
    assert damaged is None and detail is None


def test_corrupt_payload_truncate_drops_a_field():
    payload = {"a": 1.0, "b": 2.0, "c": 3.0}
    damaged, detail = corrupt_payload(payload, "truncate", 1.0, rng(1))
    assert len(damaged) == 2
    assert "dropped field" in detail


def test_corrupt_array_inplace_changes_exactly_one_element():
    arr = np.linspace(1.0, 2.0, 10)
    before = arr.copy()
    detail = corrupt_array_inplace(arr, "bitflip", 0.0, rng(2))
    assert detail.startswith("bitflip")
    assert (arr != before).sum() == 1


# ----------------------------------------------------------------------
# corrupt_file
# ----------------------------------------------------------------------
def test_corrupt_file_damages_and_is_seeded(tmp_path):
    path = tmp_path / "blob.bin"
    path.write_bytes(bytes(range(64)))
    offsets = corrupt_file(str(path), rng(3), n_bytes=4)
    assert len(offsets) == 4
    assert path.read_bytes() != bytes(range(64))
    # Same seed, same pristine file -> identical damage.
    path.write_bytes(bytes(range(64)))
    again = corrupt_file(str(path), rng(3), n_bytes=4)
    assert again == offsets


def test_corrupt_file_pinned_offset_and_edge_cases(tmp_path):
    path = tmp_path / "blob.bin"
    path.write_bytes(b"\x00" * 16)
    offsets = corrupt_file(str(path), rng(4), n_bytes=8, offset=12)
    assert offsets == [12, 13, 14, 15]  # clipped to the file
    empty = tmp_path / "empty.bin"
    empty.write_bytes(b"")
    assert corrupt_file(str(empty), rng(0)) == []
    assert corrupt_file(str(tmp_path / "missing.bin"), rng(0)) == []
