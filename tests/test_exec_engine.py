"""Unit tests for the deterministic sweep engine (repro.exec.engine)."""

import time

import pytest

from repro.exec import EngineStats, RunCache, SweepEngine, Task, normalise_payload
from repro.obs import MetricsRegistry


# ----------------------------------------------------------------------
# Task functions must be top-level (picklable by reference).
# ----------------------------------------------------------------------
def square(x):
    return {"x": x, "sq": x * x}


def slow_square(x):
    # Later-submitted tasks finish first: completion order is the
    # reverse of submission order, which the merge must undo.
    time.sleep(0.05 * (3 - x))
    return {"x": x, "sq": x * x}


def messy_payload(x):
    # Unsorted keys, tuple value: normalisation must canonicalise both.
    return {"b": (x, x + 1), "a": x}


def boom(x):
    raise RuntimeError(f"task {x} exploded")


def unpicklable_payload(x):
    return {"fn": square}


def tasks_for(fn, n=3, keyed=False):
    return [
        Task(
            fn=fn,
            args=(i,),
            key={"test": fn.__name__, "i": i} if keyed else None,
            label=f"{fn.__name__}/{i}",
        )
        for i in range(n)
    ]


# ----------------------------------------------------------------------
def test_serial_map_preserves_submission_order():
    engine = SweepEngine()
    results = engine.map(tasks_for(square))
    assert results == [{"x": i, "sq": i * i} for i in range(3)]
    assert engine.stats.tasks == 3
    assert engine.stats.hits == engine.stats.misses == 0
    assert engine.stats.wall_s > 0
    assert "serial" in engine.stats.busy_s


def test_pool_map_merges_in_submission_order():
    engine = SweepEngine(jobs=2)
    results = engine.map(tasks_for(slow_square))
    assert results == [{"x": i, "sq": i * i} for i in range(3)]


def test_serial_and_pool_payloads_identical():
    serial = SweepEngine().map(tasks_for(messy_payload))
    pooled = SweepEngine(jobs=2).map(tasks_for(messy_payload))
    assert serial == pooled
    # Canonicalised: tuples became lists on every path.
    assert serial[0] == {"a": 0, "b": [0, 1]}


def test_normalise_payload_canonicalises():
    assert normalise_payload({"b": (1, 2), "a": 0}) == {"a": 0, "b": [1, 2]}
    assert normalise_payload([1.5, "x", None]) == [1.5, "x", None]
    with pytest.raises(TypeError):
        normalise_payload({"fn": square})


def test_non_json_payload_raises_on_every_path():
    with pytest.raises(TypeError):
        SweepEngine().map(tasks_for(unpicklable_payload, n=1))


def test_task_error_propagates_serial_and_pool():
    with pytest.raises(RuntimeError, match="exploded"):
        SweepEngine().map(tasks_for(boom))
    with pytest.raises(RuntimeError, match="exploded"):
        SweepEngine(jobs=2).map(tasks_for(boom))


def test_jobs_must_be_positive():
    with pytest.raises(ValueError, match="jobs"):
        SweepEngine(jobs=0)


def test_single_pending_task_runs_in_process_even_with_jobs():
    engine = SweepEngine(jobs=4)
    assert engine.map(tasks_for(square, n=1)) == [{"x": 0, "sq": 0}]
    assert list(engine.stats.busy_s) == ["serial"]


def test_cache_counts_hits_and_misses(tmp_path):
    cache = RunCache(str(tmp_path / "cache"))
    cold = SweepEngine(cache=cache)
    first = cold.map(tasks_for(square, keyed=True))
    assert cold.stats.misses == 3 and cold.stats.hits == 0

    warm = SweepEngine(cache=RunCache(str(tmp_path / "cache")))
    second = warm.map(tasks_for(square, keyed=True))
    assert warm.stats.hits == 3 and warm.stats.misses == 0
    assert first == second
    # No work executed on the hit path.
    assert warm.stats.busy_s == {}


def test_unkeyed_tasks_bypass_cache(tmp_path):
    cache = RunCache(str(tmp_path / "cache"))
    engine = SweepEngine(cache=cache)
    engine.map(tasks_for(square, keyed=False))
    assert engine.stats.hits == engine.stats.misses == 0


def test_stats_to_dict_timing_flag():
    stats = EngineStats(jobs=2, tasks=4, hits=1, misses=3, wall_s=1.5)
    stats.record_busy("serial", 1.0)
    timed = stats.to_dict()
    assert timed["wall_s"] == 1.5
    assert timed["utilization"] == {"serial": 1.0 / 1.5}
    untimed = stats.to_dict(timing=False)
    assert untimed == {
        "jobs": 2,
        "tasks": 4,
        "cache_hits": 1,
        "cache_misses": 3,
        "cache_evictions": 0,
        "pool_starts": 0,
        "pool_reuse": 0,
    }


def sleepy(x):
    time.sleep(0.2)
    return {"x": x}


# ----------------------------------------------------------------------
# Persistent pool: reuse, idle reaping, cancellation
# ----------------------------------------------------------------------
def test_pool_persists_across_maps():
    with SweepEngine(jobs=2) as engine:
        engine.map(tasks_for(square))
        engine.map(tasks_for(square))
        assert engine.stats.pool_starts == 1
        assert engine.stats.pool_reuse == 1


def test_min_pool_tasks_one_routes_single_task_through_pool():
    # The serve daemon needs even one-task jobs in a worker process so
    # the stall watchdog can kill them.
    with SweepEngine(jobs=2, min_pool_tasks=1) as engine:
        engine.map(tasks_for(square, n=1))
        assert engine.stats.pool_starts == 1
        assert any(w.startswith("worker-") for w in engine.stats.busy_s)


def test_min_pool_tasks_must_be_positive():
    with pytest.raises(ValueError, match="min_pool_tasks"):
        SweepEngine(min_pool_tasks=0)


def test_close_is_idempotent():
    engine = SweepEngine(jobs=2)
    engine.map(tasks_for(square))
    engine.close()
    engine.close()
    # A closed engine transparently restarts its pool on the next map.
    assert engine.map(tasks_for(square)) == [
        {"x": i, "sq": i * i} for i in range(3)
    ]
    assert engine.stats.pool_starts == 2


def test_maybe_reap_tears_down_idle_pool_only():
    with SweepEngine(jobs=2) as engine:
        engine.map(tasks_for(square))
        assert engine.maybe_reap(idle_s=3600.0) is False  # too recent
        engine.last_used -= 7200.0
        assert engine.maybe_reap(idle_s=3600.0) is True
        assert engine.maybe_reap(idle_s=3600.0) is False  # already gone


def test_cancel_is_sticky_until_reset():
    from repro.exec import SweepCancelled

    engine = SweepEngine()
    engine.cancel()
    with pytest.raises(SweepCancelled):
        engine.map(tasks_for(square))
    with pytest.raises(SweepCancelled):  # sticky across maps
        engine.map(tasks_for(square))
    engine.reset_cancel()
    assert engine.map(tasks_for(square, n=1)) == [{"x": 0, "sq": 0}]


def test_cancel_aborts_in_flight_pool_map():
    import threading

    from repro.exec import SweepCancelled

    with SweepEngine(jobs=2) as engine:
        timer = threading.Timer(0.1, engine.cancel)
        timer.start()
        t0 = time.perf_counter()
        try:
            with pytest.raises(SweepCancelled):
                engine.map(tasks_for(sleepy, n=8))
        finally:
            timer.cancel()
        # The 8 x 0.2s sweep died early instead of draining.
        assert time.perf_counter() - t0 < 1.4
        # After reset the engine is reusable (fresh pool).
        engine.reset_cancel()
        assert engine.map(tasks_for(square)) == [
            {"x": i, "sq": i * i} for i in range(3)
        ]
        assert engine.stats.pool_starts == 2


def test_stats_summary_mentions_cache_state():
    stats = EngineStats(jobs=1, tasks=2)
    assert "cache off" in stats.summary()
    stats.hits = 2
    assert "2 hit(s)" in stats.summary()


def test_export_metrics_into_registry():
    stats = EngineStats(jobs=2, tasks=4, hits=1, misses=3, wall_s=2.0)
    stats.record_busy("worker-1", 0.5)
    registry = MetricsRegistry()
    stats.export_metrics(registry, run="figure5")
    records = {
        (r["name"], r["labels"].get("worker", "")): r
        for r in registry.snapshot()
    }
    assert records[("exec.tasks", "")]["value"] == 4
    assert records[("exec.cache_hits", "")]["value"] == 1
    assert records[("exec.cache_misses", "")]["value"] == 3
    assert records[("exec.jobs", "")]["value"] == 2
    assert records[("exec.worker_busy_s", "worker-1")]["value"] == 0.5
