"""Tests for trace export: TraceRing, Chrome events, metrics JSONL."""

import io
import json

from repro.obs.export import (
    METRICS_SCHEMA,
    TraceRing,
    iter_trace_events,
    metrics_jsonl_lines,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.runtime.tracer import (
    FaultRecord,
    IdleSpan,
    IterationSpan,
    MessageRecord,
    MigrationRecord,
    Tracer,
)


def make_tracer():
    t = Tracer()
    t.iteration(IterationSpan(rank=0, iteration=1, t0=0.0, t1=2.0, work=10))
    t.idle(IdleSpan(rank=1, t0=0.0, t1=0.5, reason="barrier"))
    t.message(
        MessageRecord(
            kind="halo_from_left",
            src_rank=0,
            dst_rank=1,
            size_bytes=64.0,
            send_time=1.0,
            arrival_time=1.25,
        )
    )
    t.migration(MigrationRecord(0, 1, 5, 2.0, 0.9, 0.1))
    t.fault(FaultRecord(kind="crash", time=3.0, t_end=4.5, rank=1))
    t.fault(FaultRecord(kind="reabsorb", time=5.0, t_end=5.0, rank=None))
    return t


# ----------------------------------------------------------------------
# TraceRing
# ----------------------------------------------------------------------
def test_trace_ring_keeps_last_n_in_order():
    ring = TraceRing(3)
    for i in range(7):
        ring.append(i)
    assert list(ring) == [4, 5, 6]
    assert len(ring) == 3
    assert ring.n_seen == 7
    assert ring.n_dropped == 4


def test_trace_ring_below_capacity():
    ring = TraceRing(5)
    ring.append("a")
    ring.append("b")
    assert list(ring) == ["a", "b"]
    assert ring.n_dropped == 0


def test_trace_ring_rejects_zero_capacity():
    import pytest

    with pytest.raises(ValueError):
        TraceRing(0)


# ----------------------------------------------------------------------
# Chrome trace events
# ----------------------------------------------------------------------
def test_iter_trace_events_covers_every_record_kind():
    events = list(iter_trace_events(make_tracer()))
    cats = {e["cat"] for e in events}
    assert cats == {"compute", "idle", "message", "lb", "fault"}
    # Message records become async begin/end pairs sharing an id.
    msg = [e for e in events if e["cat"] == "message"]
    assert {e["ph"] for e in msg} == {"b", "e"}
    assert msg[0]["id"] == msg[1]["id"]
    # A fault with a window is a span; an instantaneous one is instant.
    faults = {e["name"]: e for e in events if e["cat"] == "fault"}
    assert faults["fault:crash"]["ph"] == "X"
    assert faults["fault:crash"]["dur"] == (4.5 - 3.0) * 1e6
    assert faults["fault:reabsorb"]["ph"] == "i"
    assert faults["fault:reabsorb"]["tid"] == -1  # platform-wide


def test_iteration_event_times_are_microseconds():
    events = list(iter_trace_events(make_tracer()))
    it = next(e for e in events if e["cat"] == "compute")
    assert it["ts"] == 0.0
    assert it["dur"] == 2.0 * 1e6
    assert it["tid"] == 0


def test_write_chrome_trace_deterministic_and_valid_json():
    fh1, fh2 = io.StringIO(), io.StringIO()
    n1 = write_chrome_trace(fh1, make_tracer(), metadata={"run": "x"})
    n2 = write_chrome_trace(fh2, make_tracer(), metadata={"run": "x"})
    assert n1 == n2 > 0
    assert fh1.getvalue() == fh2.getvalue()
    doc = json.loads(fh1.getvalue())
    assert doc["metadata"] == {"run": "x"}
    ts = [e["ts"] for e in doc["traceEvents"]]
    assert ts == sorted(ts)


def test_write_chrome_trace_accepts_prepared_events(tmp_path):
    events = [
        {"name": "b", "ph": "i", "s": "t", "pid": 0, "tid": 0, "ts": 2.0},
        {"name": "a", "ph": "i", "s": "t", "pid": 0, "tid": 0, "ts": 1.0},
    ]
    path = str(tmp_path / "trace.json")
    assert write_chrome_trace(path, events) == 2
    doc = json.loads(open(path).read())
    assert [e["name"] for e in doc["traceEvents"]] == ["a", "b"]


# ----------------------------------------------------------------------
# Metrics JSONL
# ----------------------------------------------------------------------
def test_metrics_jsonl_header_carries_schema_and_digest():
    records = [{"name": "a", "labels": {}, "type": "counter", "value": 1.0}]
    lines = metrics_jsonl_lines(records, {"experiment": "t"})
    head = json.loads(lines[0])
    assert head["schema"] == METRICS_SCHEMA
    assert head["experiment"] == "t"
    assert head["n_records"] == 1
    assert len(head["digest"]) == 64
    assert json.loads(lines[1]) == records[0]


def test_write_metrics_jsonl_roundtrip(tmp_path):
    records = [
        {"name": "a", "labels": {"rank": 0}, "type": "counter", "value": 2.0},
        {"name": "b", "labels": {}, "type": "gauge", "value": 0.5},
    ]
    path = str(tmp_path / "m.jsonl")
    digest = write_metrics_jsonl(path, records)
    text = open(path).read()
    lines = text.strip().split("\n")
    assert len(lines) == 3
    assert json.loads(lines[0])["digest"] == digest
    assert [json.loads(l) for l in lines[1:]] == records


def test_metrics_jsonl_digest_is_content_addressed():
    a = metrics_jsonl_lines([{"v": 1}])
    b = metrics_jsonl_lines([{"v": 1}])
    c = metrics_jsonl_lines([{"v": 2}])
    assert json.loads(a[0])["digest"] == json.loads(b[0])["digest"]
    assert json.loads(a[0])["digest"] != json.loads(c[0])["digest"]
