"""Unit tests for the serve queue pieces: job table, scheduler, admission."""

import random

import pytest

from repro.serve import (
    AdmissionError,
    FairShareScheduler,
    Job,
    JobTable,
    QuotaError,
    config_digest,
    validate_spec,
)


def make_job(job_id, *, tenant="alice", priority=0, seq=0, not_before=0.0):
    return Job(
        job_id=job_id,
        tenant=tenant,
        priority=priority,
        spec={"kind": "sleep", "seconds": 0.0, "tasks": 1},
        max_retries=2,
        submitted_seq=seq,
        not_before=not_before,
    )


# ----------------------------------------------------------------------
# JobTable: quotas, counts, restore
# ----------------------------------------------------------------------
def test_quota_rejects_excess_outstanding_jobs():
    table = JobTable(quota=2)
    table.admit(make_job("j000001", seq=1))
    table.admit(make_job("j000002", seq=2))
    with pytest.raises(QuotaError, match="quota"):
        table.admit(make_job("j000003", seq=3))
    # Another tenant is unaffected; a terminal job frees the slot.
    table.admit(make_job("j000004", tenant="bob", seq=4))
    table.jobs["j000001"].state = "done"
    table.admit(make_job("j000005", seq=5))


def test_duplicate_job_id_rejected():
    table = JobTable()
    table.admit(make_job("j000001", seq=1))
    with pytest.raises(ValueError, match="duplicate"):
        table.admit(make_job("j000001", seq=2))


def test_counts_cover_every_state():
    table = JobTable()
    table.admit(make_job("j000001", seq=1))
    job = make_job("j000002", seq=2)
    table.admit(job)
    job.state = "failed"
    assert table.counts() == {
        "queued": 1, "running": 0, "done": 0, "failed": 1, "killed": 0,
    }


def test_restore_requeues_only_non_terminal_jobs():
    table = JobTable()
    records = {
        "j000001": make_job("j000001", seq=1).to_record() | {"state": "done"},
        "j000002": make_job("j000002", seq=2).to_record() | {"state": "running"},
        "j000003": make_job("j000003", seq=3).to_record() | {"state": "queued"},
    }
    candidates = table.restore(records)
    assert [j.job_id for j in candidates] == ["j000002", "j000003"]
    assert table.jobs["j000001"].state == "done"
    # Id counter resumes past the highest restored id.
    assert table.new_job_id() == "j000004"


# ----------------------------------------------------------------------
# FairShareScheduler
# ----------------------------------------------------------------------
def test_higher_priority_runs_first():
    sched = FairShareScheduler()
    jobs = [
        make_job("j000001", priority=0, seq=1),
        make_job("j000002", priority=5, seq=2),
    ]
    assert sched.pick(jobs, {}, now=0.0).job_id == "j000002"


def test_fair_share_prefers_least_served_tenant():
    sched = FairShareScheduler()
    jobs = [
        make_job("j000001", tenant="hog", seq=1),
        make_job("j000002", tenant="newcomer", seq=2),
    ]
    usage = {"hog": 100.0, "newcomer": 0.5}
    assert sched.pick(jobs, usage, now=0.0).job_id == "j000002"
    # ...but priority classes still dominate fair share.
    jobs[0] = make_job("j000001", tenant="hog", priority=1, seq=1)
    assert sched.pick(jobs, usage, now=0.0).job_id == "j000001"


def test_ties_break_by_submission_order_deterministically():
    sched = FairShareScheduler()
    jobs = [make_job(f"j{n:06d}", seq=n) for n in range(1, 6)]
    rng = random.Random(7)
    for _ in range(5):
        rng.shuffle(jobs)
        assert sched.pick(jobs, {}, now=0.0).job_id == "j000001"


def test_not_before_gates_eligibility():
    sched = FairShareScheduler()
    jobs = [make_job("j000001", seq=1, not_before=100.0)]
    assert sched.pick(jobs, {}, now=50.0) is None
    assert sched.pick(jobs, {}, now=100.0).job_id == "j000001"


def test_fairness_snapshot():
    fairness = FairShareScheduler.fairness({"a": 3.0, "b": 1.0, "idle": 0.0})
    assert fairness["shares"] == {"a": 0.75, "b": 0.25}
    assert fairness["max_over_min"] == 3.0
    assert FairShareScheduler.fairness({})["max_over_min"] == 1.0


# ----------------------------------------------------------------------
# Admission gates + config digests
# ----------------------------------------------------------------------
def test_validate_fills_defaults_for_stable_digests():
    assert validate_spec({"kind": "figure5"}) == {"kind": "figure5", "mode": "tiny"}
    # Two submissions meaning the same job digest identically.
    assert config_digest({"kind": "soak"}) == config_digest(
        {"kind": "soak", "schedules": 4, "seed": 0}
    )


@pytest.mark.parametrize(
    "spec",
    [
        "not an object",
        {"kind": "warp-drive"},
        {"kind": "figure5", "mode": "gigantic"},
        {"kind": "soak", "schedules": 0},
        {"kind": "soak", "schedules": 10_000},
        {"kind": "soak", "seed": "zero"},
        {"kind": "sleep", "seconds": -1.0},
        {"kind": "sleep", "seconds": 1e9},
        {"kind": "sleep", "tasks": 0},
    ],
)
def test_admission_gates_reject_bad_specs(spec):
    with pytest.raises(AdmissionError):
        validate_spec(spec)
