"""Tests for the topology-zoo experiment + CLI verb (ISSUE 8)."""

import json

import pytest

from repro.exec import RunCache, SweepEngine
from repro.experiments import TopologyZooScenario, run_topology_zoo


def _tiny():
    return TopologyZooScenario(
        families=("chain", "torus"),
        algorithms=("diffusion", "reactive_residual"),
        schedules=("none", "load_shock"),
        n_nodes=8,
        rounds=24,
    )


def test_rows_cover_the_grid_in_order():
    scenario = _tiny()
    result = run_topology_zoo(scenario)
    assert len(result.rows) == 8
    expected = [
        (family, algorithm, schedule)
        for family in scenario.families
        for algorithm in scenario.algorithms
        for schedule in scenario.schedules
    ]
    got = [
        (row["family"], row["algorithm"], row["schedule"])
        for row in result.rows
    ]
    assert got == expected


def test_digest_is_reproducible_across_runs():
    a = run_topology_zoo(_tiny())
    b = run_topology_zoo(_tiny())
    assert a.digest() == b.digest()
    assert a.rows == b.rows


def test_parallel_and_cached_runs_match_serial(tmp_path):
    scenario = _tiny()
    serial = run_topology_zoo(scenario)
    parallel = run_topology_zoo(scenario, engine=SweepEngine(jobs=2))
    assert parallel.digest() == serial.digest()
    cache = RunCache(str(tmp_path / "cache"))
    cold_engine = SweepEngine(cache=cache)
    cold = run_topology_zoo(scenario, engine=cold_engine)
    assert cold_engine.stats.misses == len(serial.rows)
    warm_engine = SweepEngine(cache=cache)
    warm = run_topology_zoo(scenario, engine=warm_engine)
    assert warm_engine.stats.hits == len(serial.rows)
    assert cold.digest() == serial.digest()
    assert warm.digest() == serial.digest()


def test_winners_exclude_the_centralized_oracle():
    scenario = TopologyZooScenario(
        families=("torus",),
        algorithms=("diffusion", "centralized"),
        schedules=("none",),
        n_nodes=8,
        rounds=24,
    )
    result = run_topology_zoo(scenario)
    winners = result.winners()
    assert winners[("torus", "none")]["algorithm"] == "diffusion"
    with_oracle = result.winners(include_centralized=True)
    assert with_oracle[("torus", "none")]["algorithm"] == "centralized"


def test_report_and_json(tmp_path):
    result = run_topology_zoo(_tiny())
    report = result.report()
    assert "Which decentralized LB wins where" in report
    assert "reactive_residual" in report
    assert result.digest() in report
    path = tmp_path / "zoo.json"
    result.save_json(str(path))
    data = json.loads(path.read_text())
    assert data["digest"] == result.digest()
    assert len(data["rows"]) == 8
    assert set(data["winners"]) == {
        f"{family}/{schedule}"
        for family in ("chain", "torus")
        for schedule in ("none", "load_shock")
    }


def test_scenario_validation_and_quick_preset():
    with pytest.raises(ValueError):
        TopologyZooScenario(families=("klein_bottle",))
    with pytest.raises(ValueError):
        TopologyZooScenario(algorithms=("gradient_descent",))
    with pytest.raises(ValueError):
        TopologyZooScenario(schedules=("earthquake",))
    quick = TopologyZooScenario.quick()
    # The ISSUE 8 acceptance floor: the paper's scheme plus >= 4 zoo
    # algorithms, >= 5 families, >= 2 fault schedules.
    assert "reactive_residual" in quick.algorithms
    assert len(quick.algorithms) >= 5
    assert len(quick.families) >= 5
    assert len(quick.schedules) >= 2


def test_cli_topology_zoo_verb(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "zoo.json"
    code = main(
        [
            "topology-zoo",
            "--no-cache",
            "--json",
            str(out),
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "Which decentralized LB wins where" in printed
    data = json.loads(out.read_text())
    assert data["rows"]
    assert "digest" in data
