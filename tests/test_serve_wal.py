"""Unit tests for the serve WAL (repro.serve.wal): durability semantics."""

import pytest

from repro.serve import JobWAL, WAL_SCHEMA, WALError, fold, replay


def submit_record(job_id="j000001", state="queued", **extra):
    record = {
        "job_id": job_id,
        "tenant": "alice",
        "priority": 0,
        "spec": {"kind": "sleep", "seconds": 0.1, "tasks": 1},
        "max_retries": 2,
        "submitted_seq": 1,
        "state": state,
        "attempts": 0,
        "not_before": 0.0,
    }
    record.update(extra)
    return record


# ----------------------------------------------------------------------
# Append / replay round trip
# ----------------------------------------------------------------------
def test_missing_file_is_empty_log(tmp_path):
    assert replay(str(tmp_path / "wal.jsonl")) == []


def test_append_replay_round_trip(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    wal = JobWAL(path, durable=False)
    wal.submit(submit_record())
    wal.state("j000001", "running", attempts=1)
    wal.state("j000001", "done", result={"digest": "abc"})
    wal.close()

    records = replay(path)
    assert [r["type"] for r in records] == ["submit", "state", "state"]
    assert [r["seq"] for r in records] == [1, 2, 3]
    assert all(r["schema"] == WAL_SCHEMA for r in records)


def test_seq_resumes_after_reopen(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    first = JobWAL(path, durable=False)
    first.submit(submit_record())
    first.close()

    second = JobWAL(path, durable=False)
    assert second.seq == 1
    assert second.state("j000001", "running", attempts=1) == 2
    second.close()


# ----------------------------------------------------------------------
# Crash consistency: torn tail tolerated, mid-file garbage fatal
# ----------------------------------------------------------------------
def test_torn_final_line_is_dropped(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    wal = JobWAL(path, durable=False)
    wal.submit(submit_record())
    wal.close()
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"schema": "repro-serve-wal/1", "seq": 2, "ty')  # no \n

    records = replay(path)
    assert len(records) == 1  # the torn append was never acknowledged

    # Reopening resumes from the surviving seq and the next append
    # leaves a clean, fully replayable log again.
    wal = JobWAL(path, durable=False)
    assert wal.seq == 1
    wal.state("j000001", "running", attempts=1)
    wal.close()
    # The torn fragment is still on disk mid-file now — that IS
    # corruption from replay's point of view.
    with pytest.raises(WALError, match="malformed"):
        replay(path)


def test_mid_file_garbage_raises(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("not json\n")
        fh.write('{"schema": "repro-serve-wal/1", "seq": 1, "type": "submit"}\n')
    with pytest.raises(WALError, match="malformed"):
        replay(path)


def test_foreign_schema_raises(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"schema": "other/9", "seq": 1, "type": "submit"}\n')
    with pytest.raises(WALError, match="schema"):
        replay(path)


def test_non_increasing_seq_raises(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        for seq in (1, 1):
            fh.write(
                '{"schema": "repro-serve-wal/1", "seq": %d, '
                '"type": "submit", "job": {"job_id": "j%06d"}}\n' % (seq, seq)
            )
    with pytest.raises(WALError, match="increasing"):
        replay(path)


# ----------------------------------------------------------------------
# fold: submit + state overlays -> job records
# ----------------------------------------------------------------------
def test_fold_applies_state_overlays(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    wal = JobWAL(path, durable=False)
    wal.submit(submit_record())
    wal.state("j000001", "running", attempts=1)
    wal.state("j000001", "queued", attempts=1, not_before=123.0)
    wal.state("j000001", "done", result={"digest": "abc"}, attempts=2)
    wal.close()

    jobs = fold(replay(path))
    job = jobs["j000001"]
    assert job["state"] == "done"
    assert job["attempts"] == 2
    assert job["not_before"] == 123.0
    assert job["result"] == {"digest": "abc"}


def test_fold_rejects_state_for_unknown_job():
    with pytest.raises(WALError, match="unknown job"):
        fold([
            {"schema": WAL_SCHEMA, "seq": 1, "type": "state",
             "job_id": "j000009", "state": "running"},
        ])


def test_fold_rejects_unknown_record_type():
    with pytest.raises(WALError, match="record type"):
        fold([{"schema": WAL_SCHEMA, "seq": 1, "type": "vacuum"}])
