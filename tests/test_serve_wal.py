"""Unit tests for the serve WAL (repro.serve.wal): durability semantics."""

import json

import pytest

from repro.serve import JobWAL, WAL_SCHEMA, WALError, fold, record_crc, replay


def raw_record(**fields):
    """A CRC-stamped WAL line exactly as an appender would write it."""
    record = {"schema": WAL_SCHEMA, **fields}
    record["crc"] = record_crc(record)
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


def submit_record(job_id="j000001", state="queued", **extra):
    record = {
        "job_id": job_id,
        "tenant": "alice",
        "priority": 0,
        "spec": {"kind": "sleep", "seconds": 0.1, "tasks": 1},
        "max_retries": 2,
        "submitted_seq": 1,
        "state": state,
        "attempts": 0,
        "not_before": 0.0,
    }
    record.update(extra)
    return record


# ----------------------------------------------------------------------
# Append / replay round trip
# ----------------------------------------------------------------------
def test_missing_file_is_empty_log(tmp_path):
    assert replay(str(tmp_path / "wal.jsonl")) == []


def test_append_replay_round_trip(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    wal = JobWAL(path, durable=False)
    wal.submit(submit_record())
    wal.state("j000001", "running", attempts=1)
    wal.state("j000001", "done", result={"digest": "abc"})
    wal.close()

    records = replay(path)
    assert [r["type"] for r in records] == ["submit", "state", "state"]
    assert [r["seq"] for r in records] == [1, 2, 3]
    assert all(r["schema"] == WAL_SCHEMA for r in records)


def test_seq_resumes_after_reopen(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    first = JobWAL(path, durable=False)
    first.submit(submit_record())
    first.close()

    second = JobWAL(path, durable=False)
    assert second.seq == 1
    assert second.state("j000001", "running", attempts=1) == 2
    second.close()


# ----------------------------------------------------------------------
# Crash consistency: torn tail healed, damage quarantined, version fatal
# ----------------------------------------------------------------------
def test_torn_final_line_is_dropped_and_healed(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    wal = JobWAL(path, durable=False)
    wal.submit(submit_record())
    wal.close()
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"schema": "repro-serve-wal/2", "seq": 2, "ty')  # no \n

    records = replay(path)
    assert len(records) == 1  # the torn append was never acknowledged

    # Reopening truncates the fragment (it would otherwise weld onto
    # the next append), resumes from the surviving seq, and the next
    # append leaves a clean, fully replayable log.
    wal = JobWAL(path, durable=False)
    assert wal.tail_healed
    assert wal.quarantined == []
    assert wal.seq == 1
    wal.state("j000001", "running", attempts=1)
    wal.close()
    quarantine = []
    assert len(replay(path, quarantine=quarantine)) == 2
    assert quarantine == []


def test_mid_file_garbage_is_quarantined(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("not json\n")
        fh.write(raw_record(seq=1, type="submit", job={"job_id": "j000001"}))
    quarantine = []
    records = replay(path, quarantine=quarantine)
    assert [r["seq"] for r in records] == [1]
    assert len(quarantine) == 1
    assert quarantine[0]["lineno"] == 1
    assert "malformed JSON" in quarantine[0]["reason"]


def test_crc_mismatch_is_quarantined(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    line = raw_record(seq=1, type="submit", job={"job_id": "j000001"})
    with open(path, "w", encoding="utf-8") as fh:
        # Flip one payload character: still valid JSON, wrong CRC.
        fh.write(line.replace("j000001", "j000009"))
        fh.write(raw_record(seq=2, type="submit", job={"job_id": "j000002"}))
    quarantine = []
    records = replay(path, quarantine=quarantine)
    assert [r["seq"] for r in records] == [2]
    assert quarantine[0]["reason"] == "CRC mismatch"


def test_unstamped_record_is_quarantined(tmp_path):
    # Valid JSON with our schema but no CRC at all: not a legal v2
    # record, and (unlike v1) not a recognised legacy version either.
    path = str(tmp_path / "wal.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"schema": "repro-serve-wal/2", "seq": 1, "type": "submit"}\n')
    quarantine = []
    assert replay(path, quarantine=quarantine) == []
    assert quarantine[0]["reason"] == "missing CRC stamp"


def test_intact_foreign_schema_raises(tmp_path):
    # A record whose CRC verifies was written on purpose — a schema
    # mismatch there is a version problem, not corruption.
    path = str(tmp_path / "wal.jsonl")
    record = {"schema": "repro-serve-wal/9", "seq": 1, "type": "submit"}
    record["crc"] = record_crc(record)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n")
    with pytest.raises(WALError, match="schema"):
        replay(path)


def test_legacy_v1_record_raises(tmp_path):
    # v1 records never carried CRCs, so they cannot be told apart from
    # damage by verification alone — the schema string is the tell.
    path = str(tmp_path / "wal.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"schema": "repro-serve-wal/1", "seq": 1, "type": "submit"}\n')
    with pytest.raises(WALError, match="repro-serve-wal/1"):
        replay(path)


def test_non_increasing_seq_raises(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        for seq in (1, 1):
            fh.write(
                raw_record(
                    seq=seq, type="submit", job={"job_id": f"j{seq:06d}"}
                )
            )
    with pytest.raises(WALError, match="increasing"):
        replay(path)


def test_seq_gap_from_quarantined_line_is_tolerated(tmp_path):
    # A damaged line takes its seq with it; the survivors must still
    # fold (gaps are expected, regressions are not).
    path = str(tmp_path / "wal.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(raw_record(seq=1, type="submit", job=submit_record()))
        fh.write("damaged beyond recognition\n")
        fh.write(raw_record(seq=3, type="state", job_id="j000001",
                            state="running", attempts=1))
    quarantine = []
    records = replay(path, quarantine=quarantine)
    assert [r["seq"] for r in records] == [1, 3]
    assert len(quarantine) == 1
    assert fold(records)["j000001"]["state"] == "running"


# ----------------------------------------------------------------------
# fold: submit + state overlays -> job records
# ----------------------------------------------------------------------
def test_fold_applies_state_overlays(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    wal = JobWAL(path, durable=False)
    wal.submit(submit_record())
    wal.state("j000001", "running", attempts=1)
    wal.state("j000001", "queued", attempts=1, not_before=123.0)
    wal.state("j000001", "done", result={"digest": "abc"}, attempts=2)
    wal.close()

    jobs = fold(replay(path))
    job = jobs["j000001"]
    assert job["state"] == "done"
    assert job["attempts"] == 2
    assert job["not_before"] == 123.0
    assert job["result"] == {"digest": "abc"}


def test_fold_rejects_state_for_unknown_job():
    with pytest.raises(WALError, match="unknown job"):
        fold([
            {"schema": WAL_SCHEMA, "seq": 1, "type": "state",
             "job_id": "j000009", "state": "running"},
        ])


def test_fold_collects_orphan_states_when_asked():
    # When replay quarantined lines, a state whose submit was among the
    # damage must not abort recovery of every other job.
    orphans = []
    jobs = fold(
        [
            {"schema": WAL_SCHEMA, "seq": 1, "type": "submit",
             "job": submit_record()},
            {"schema": WAL_SCHEMA, "seq": 2, "type": "state",
             "job_id": "j000009", "state": "running"},
            {"schema": WAL_SCHEMA, "seq": 3, "type": "state",
             "job_id": "j000001", "state": "running", "attempts": 1},
        ],
        orphan_states=orphans,
    )
    assert jobs["j000001"]["state"] == "running"
    assert [o["job_id"] for o in orphans] == ["j000009"]


def test_fold_rejects_unknown_record_type():
    with pytest.raises(WALError, match="record type"):
        fold([{"schema": WAL_SCHEMA, "seq": 1, "type": "vacuum"}])
