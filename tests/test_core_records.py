"""Tests for RunResult assembly, metrics and serialisation."""

import json

import numpy as np
import pytest

from repro.core import SolverConfig, run_aiac
from repro.grid import homogeneous_cluster
from repro.problems import SyntheticProblem


@pytest.fixture(scope="module")
def result():
    prob = SyntheticProblem(np.full(24, 0.8), coupling=0.3)
    plat = homogeneous_cluster(3, speed=100.0)
    return run_aiac(prob, plat, SolverConfig(tolerance=1e-8))


def test_solution_assembles_in_global_order(result):
    sol = result.solution()
    assert sol.shape == (24,)


def test_max_error_vs_shape_mismatch(result):
    with pytest.raises(ValueError, match="shape"):
        result.max_error_vs(np.zeros(7))


def test_summary_mentions_key_facts(result):
    text = result.summary()
    assert "aiac" in text
    assert "converged" in text
    assert "3 ranks" in text


def test_totals(result):
    assert result.total_iterations == sum(result.iterations)
    assert result.total_work == pytest.approx(sum(result.work))
    assert result.n_ranks == 3


def test_to_dict_round_trips_through_json(result):
    data = result.to_dict()
    text = json.dumps(data)
    back = json.loads(text)
    assert back["model"] == "aiac"
    assert back["converged"] is True
    assert len(back["iterations"]) == 3
    assert back["n_messages"] > 0
    assert "solution_blocks" not in back


def test_to_dict_with_solution(result):
    data = result.to_dict(include_solution=True)
    blocks = data["solution_blocks"]
    assert len(blocks) == 3
    flattened = [x for block in blocks for x in block]
    assert len(flattened) == 24


def test_save_json(result, tmp_path):
    path = tmp_path / "run.json"
    result.save_json(str(path))
    data = json.loads(path.read_text())
    assert data["time"] == pytest.approx(result.time)


def test_meta_non_serialisable_entries_dropped(result):
    result.meta["weird"] = object()
    try:
        data = result.to_dict()
        json.dumps(data)  # must not raise
        assert "weird" not in data["meta"]
    finally:
        del result.meta["weird"]
