"""End-to-end tests for the serve daemon over its unix-socket protocol."""

import contextlib
import time

import pytest

from repro.serve import (
    Job,
    JobWAL,
    ServeClient,
    ServeConfig,
    ServeDaemon,
    ServeError,
    audit_replay,
    execute_spec,
    read_audit,
)


@contextlib.contextmanager
def running_daemon(tmp_path, **overrides):
    """A started daemon on a tmp state dir + a connected client."""
    state_dir = str(tmp_path / "serve")
    config = ServeConfig(
        state_dir=state_dir,
        workers=2,
        durable=False,  # tests don't need fsync latency
        **overrides,
    )
    daemon = ServeDaemon(config)
    daemon.start()
    client = ServeClient(config.resolved_address())
    client.wait_until_up()
    try:
        yield daemon, client
    finally:
        daemon.stop()


SLEEP = {"kind": "sleep", "seconds": 0.01, "tasks": 2}


# ----------------------------------------------------------------------
# Submit / result / digest equality
# ----------------------------------------------------------------------
def test_served_digest_equals_direct_execution(tmp_path):
    with running_daemon(tmp_path) as (daemon, client):
        job_id = client.submit(SLEEP)
        job = client.result(job_id, follow=True, timeout=60)
        assert job["state"] == "done"
        # The serving contract: a served result digest is byte-equal to
        # an offline run of the same spec (sleep payloads are pure
        # functions of the spec, wall-clock never enters the digest).
        assert job["result"]["digest"] == execute_spec(SLEEP)["digest"]

        # Terminal results are served instantly without follow too.
        again = client.result(job_id)
        assert again["result"]["digest"] == job["result"]["digest"]


def test_follow_streams_transitions_then_result(tmp_path):
    with running_daemon(tmp_path) as (daemon, client):
        job_id = client.submit(SLEEP)
        events = list(client.follow(job_id))
        assert events[-1]["event"] == "result"
        assert events[-1]["job"]["state"] == "done"
        assert all(e["event"] in ("state", "result") for e in events)


def test_jobs_listing_and_tenant_filter(tmp_path):
    with running_daemon(tmp_path) as (daemon, client):
        a = client.submit(SLEEP, tenant="alice")
        b = client.submit(SLEEP, tenant="bob")
        client.result(a, follow=True, timeout=60)
        client.result(b, follow=True, timeout=60)
        assert {j["job_id"] for j in client.jobs()} == {a, b}
        assert [j["job_id"] for j in client.jobs(tenant="bob")] == [b]


# ----------------------------------------------------------------------
# Admission gates: bad specs and quotas never reach the queue
# ----------------------------------------------------------------------
def test_bad_spec_rejected_at_admission(tmp_path):
    with running_daemon(tmp_path) as (daemon, client):
        with pytest.raises(ServeError, match="unknown job kind"):
            client.submit({"kind": "warp-drive"})
        assert client.jobs() == []


def test_tenant_quota_enforced(tmp_path):
    with running_daemon(tmp_path, quota=1) as (daemon, client):
        client.submit({"kind": "sleep", "seconds": 5.0, "tasks": 1})
        with pytest.raises(ServeError, match="quota"):
            client.submit(SLEEP)
        # Other tenants keep their own budget.
        client.submit(SLEEP, tenant="bob")


# ----------------------------------------------------------------------
# Kill verb
# ----------------------------------------------------------------------
def test_kill_queued_job(tmp_path):
    with running_daemon(tmp_path) as (daemon, client):
        # A long sleeper occupies the dispatcher, so the next submit
        # stays queued long enough to kill deterministically.
        blocker = client.submit({"kind": "sleep", "seconds": 3.0, "tasks": 1})
        victim = client.submit(SLEEP)
        response = client.kill(victim)
        assert response["state"] == "killed"
        job = client.result(victim)
        assert job["state"] == "killed" and "operator" in job["error"]
        # The blocker is unaffected.
        assert client.result(blocker, follow=True, timeout=60)["state"] == "done"


def test_kill_running_job(tmp_path):
    with running_daemon(tmp_path) as (daemon, client):
        job_id = client.submit({"kind": "sleep", "seconds": 30.0, "tasks": 1})
        deadline = time.monotonic() + 10.0
        while client.result(job_id)["state"] != "running":
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.02)
        assert client.kill(job_id)["state"] == "killing"
        job = client.result(job_id, follow=True, timeout=60)
        assert job["state"] == "killed"


# ----------------------------------------------------------------------
# Stall watchdog: kill + requeue with backoff, capped retries
# ----------------------------------------------------------------------
def test_watchdog_kills_and_requeues_stalled_job(tmp_path):
    with running_daemon(
        tmp_path, job_timeout_s=0.3, max_retries=1, retry_backoff_s=0.1
    ) as (daemon, client):
        job_id = client.submit({"kind": "sleep", "seconds": 30.0, "tasks": 1})
        job = client.result(job_id, follow=True, timeout=60)
        assert job["state"] == "killed"
        assert job["attempts"] == 2  # original + one requeued retry
        assert "watchdog" in job["error"]
        assert client.health()["watchdog_kills"] >= 2


# ----------------------------------------------------------------------
# Crash recovery: WAL replay requeues exactly the incomplete jobs
# ----------------------------------------------------------------------
def crash_state_dir(tmp_path, n_queued=2):
    """A state dir as a kill -9 would leave it: queued + running jobs."""
    state_dir = tmp_path / "serve"
    state_dir.mkdir()
    wal = JobWAL(str(state_dir / "wal.jsonl"), durable=False)
    for n in range(1, n_queued + 2):
        job = Job(
            job_id=f"j{n:06d}",
            tenant="alice",
            priority=0,
            spec=dict(SLEEP),
            max_retries=2,
            submitted_seq=n,
        )
        wal.submit(job.to_record())
    # The last one was mid-execution when the daemon died.
    wal.state(job.job_id, "running", attempts=1)
    wal.close()
    return str(state_dir)


def test_recovery_requeues_and_completes_interrupted_jobs(tmp_path):
    state_dir = crash_state_dir(tmp_path)
    config = ServeConfig(state_dir=state_dir, workers=2, durable=False)
    daemon = ServeDaemon(config)
    daemon.start()
    try:
        client = ServeClient(config.resolved_address())
        client.wait_until_up()
        jobs = {j["job_id"]: j for j in client.jobs()}
        assert set(jobs) == {"j000001", "j000002", "j000003"}
        for job_id in sorted(jobs):
            final = client.result(job_id, follow=True, timeout=60)
            assert final["state"] == "done"
        # The interrupted attempt stays visible in the attempt count.
        assert client.result("j000003")["attempts"] == 2
        # New submissions do not collide with recovered ids.
        assert client.submit(SLEEP) == "j000004"
    finally:
        daemon.stop()


def test_recovery_preserves_terminal_results(tmp_path):
    with running_daemon(tmp_path) as (daemon, client):
        job_id = client.submit(SLEEP)
        done = client.result(job_id, follow=True, timeout=60)
    # Restart over the same state dir: the result is served from the WAL
    # without re-executing anything.
    config = ServeConfig(state_dir=daemon.config.state_dir, durable=False)
    daemon2 = ServeDaemon(config)
    daemon2.start()
    try:
        client2 = ServeClient(config.resolved_address())
        client2.wait_until_up()
        job = client2.result(job_id)
        assert job["state"] == "done"
        assert job["result"]["digest"] == done["result"]["digest"]
        assert client2.health()["states"]["queued"] == 0
    finally:
        daemon2.stop()


# ----------------------------------------------------------------------
# Audit log + offline replay
# ----------------------------------------------------------------------
def test_audit_log_replays_byte_identically(tmp_path):
    with running_daemon(tmp_path) as (daemon, client):
        for _ in range(2):
            job_id = client.submit({"kind": "figure5", "mode": "tiny"})
            job = client.result(job_id, follow=True, timeout=600)
            assert job["state"] == "done"
        audit_path = daemon.audit.path
        # The repeat submission was served from the run cache...
        assert client.health()["cache_hit_rate"] > 0.0
    records = read_audit(audit_path)
    assert [r["state"] for r in records] == ["done", "done"]
    # ...and both served digests byte-verify against an offline replay
    # (serial engine, no cache — independent of how they were served).
    report = audit_replay(audit_path, sample=2)
    assert report.ok, report.report()


# ----------------------------------------------------------------------
# Health / metrics verbs
# ----------------------------------------------------------------------
def test_health_and_metrics_verbs(tmp_path):
    with running_daemon(tmp_path) as (daemon, client):
        job_id = client.submit(SLEEP)
        client.result(job_id, follow=True, timeout=60)
        health = client.health()
        assert health["ok"] is True
        assert health["states"]["done"] == 1
        assert health["wal_seq"] >= 3  # submit + running + done
        assert health["engine"]["pool_starts"] >= 1

        names = {record["name"] for record in client.metrics()}
        assert {"serve.jobs_submitted", "serve.queue_depth",
                "serve.jobs_in_state", "serve.job_latency_s",
                "exec.tasks"} <= names


def test_unknown_verb_is_an_error(tmp_path):
    with running_daemon(tmp_path) as (daemon, client):
        with pytest.raises(ServeError, match="verb"):
            client.request("teleport")
        with pytest.raises(ServeError, match="unknown job"):
            client.result("j999999")


# ----------------------------------------------------------------------
# Client connect timeouts and retry
# ----------------------------------------------------------------------
def test_client_retries_transient_connect_failures(tmp_path, monkeypatch):
    """The dial (and only the dial) is retried on transient errors."""
    import repro.serve.protocol as protocol

    with running_daemon(tmp_path) as (daemon, client):
        real_connect = protocol._connect
        failures = {"left": 2}

        def flaky_connect(address, timeout):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise ConnectionRefusedError("simulated restart window")
            return real_connect(address, timeout)

        monkeypatch.setattr(protocol, "_connect", flaky_connect)
        retrying = ServeClient(
            daemon.config.resolved_address(),
            connect_retries=3,
            retry_backoff=0.001,
        )
        assert retrying.health()["ok"] is True
        assert failures["left"] == 0


def test_client_connect_retries_exhausted_raises_serve_error(tmp_path):
    client = ServeClient(
        str(tmp_path / "nobody-home.sock"),
        connect_timeout=0.2,
        connect_retries=2,
        retry_backoff=0.001,
    )
    with pytest.raises(ServeError, match="after 3 attempt"):
        client.health()


def test_client_zero_retries_fails_fast(tmp_path):
    client = ServeClient(
        str(tmp_path / "nobody-home.sock"),
        connect_timeout=0.2,
        connect_retries=0,
        retry_backoff=0.001,
    )
    start = time.monotonic()
    with pytest.raises(ServeError, match="cannot connect"):
        client.health()
    assert time.monotonic() - start < 1.0
