"""Tests for the fault injector: determinism, recovery, state restoration."""

import pytest

from repro.core.config import LBConfig, SolverConfig
from repro.core.lb import run_balanced_aiac
from repro.core.solver import build_chain, run_aiac
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    HostCrash,
    HostSlowdown,
    LatencySpike,
    MessageLoss,
    ResilienceConfig,
)
from repro.grid.platform import homogeneous_cluster
from repro.problems.heat import HeatProblem


def make_problem():
    # The ResilienceScenario.tiny() sizing: large enough that detection
    # slack stays well below the correctness thresholds asserted here.
    return HeatProblem(32, t_end=0.05, n_steps=8)


def make_config(**kwargs):
    kwargs.setdefault("tolerance", 1e-6)
    kwargs.setdefault("max_iterations", 50_000)
    kwargs.setdefault("max_time", 2000.0)
    return SolverConfig(**kwargs)


RESILIENCE = ResilienceConfig(
    base_timeout=0.05, heartbeat_period=1.0, liveness_timeout=3.0
)


def make_schedule(*faults, seed=11):
    return FaultSchedule(faults=faults, seed=seed, resilience=RESILIENCE)


def run_with(schedule, *, lb=False):
    injector = FaultInjector(schedule)
    if lb:
        result = run_balanced_aiac(
            make_problem(),
            homogeneous_cluster(4, speed=2000.0),
            make_config(),
            LBConfig(period=5, min_components=2),
            injector=injector,
        )
    else:
        result = run_aiac(
            make_problem(),
            homogeneous_cluster(4, speed=2000.0),
            make_config(),
            injector=injector,
        )
    return result, injector


# ----------------------------------------------------------------------
# Baseline and determinism
# ----------------------------------------------------------------------
def test_empty_schedule_is_a_correct_overhead_baseline():
    result, injector = run_with(make_schedule())
    assert result.converged
    reference = make_problem().reference_solution()
    assert result.max_error_vs(reference) < 1e-4
    assert injector.stats["messages_dropped"] == 0
    assert injector.stats["crashes"] == 0


def test_fault_runs_are_deterministic():
    schedule_faults = (
        MessageLoss(0.15),
        HostCrash(rank=2, at=2.0, downtime=(1.0, 2.0)),
    )
    a, stats_a = run_with(make_schedule(*schedule_faults))
    b, stats_b = run_with(make_schedule(*schedule_faults))
    assert a.time == b.time
    assert a.iterations == b.iterations
    assert stats_a.stats == stats_b.stats
    assert [x.tolist() for x in a.solution_blocks] == [
        x.tolist() for x in b.solution_blocks
    ]


def test_different_seed_changes_the_fault_realisation():
    fault = MessageLoss(0.3)
    a, stats_a = run_with(make_schedule(fault, seed=1))
    b, stats_b = run_with(make_schedule(fault, seed=2))
    assert stats_a.stats["messages_dropped"] != stats_b.stats["messages_dropped"]


# ----------------------------------------------------------------------
# Fault semantics, end to end
# ----------------------------------------------------------------------
def test_loss_forces_retries_but_preserves_correctness():
    result, injector = run_with(make_schedule(MessageLoss(0.2)))
    assert result.converged
    assert injector.stats["messages_dropped"] > 0
    assert injector.stats["retries"] > 0
    reference = make_problem().reference_solution()
    assert result.max_error_vs(reference) < 1e-3


def test_crash_restart_recovers_and_is_recorded():
    result, injector = run_with(
        make_schedule(HostCrash(rank=1, at=2.0, downtime=2.0))
    )
    assert result.converged
    assert injector.stats["crashes"] == 1
    assert injector.stats["restarts"] == 1
    kinds = [f.kind for f in result.tracer.faults]
    assert kinds.count("crash") == 1
    assert kinds.count("restart") == 1
    reference = make_problem().reference_solution()
    assert result.max_error_vs(reference) < 1e-3


def test_crash_without_restart_leaves_open_fault_window():
    # The dead rank never recovers: the run must stop on max_time, not
    # hang, and the crash record's window must stay open.
    injector = FaultInjector(make_schedule(HostCrash(rank=3, at=1.0)))
    result = run_aiac(
        make_problem(),
        homogeneous_cluster(4, speed=2000.0),
        make_config(max_time=20.0),
        injector=injector,
    )
    assert not result.converged
    (crash,) = [f for f in result.tracer.faults if f.kind == "crash"]
    assert crash.t_end == float("inf")
    assert injector.stats["restarts"] == 0


def test_slowdown_restores_host_speed():
    platform = homogeneous_cluster(4, speed=2000.0)
    injector = FaultInjector(
        make_schedule(
            HostSlowdown(rank=1, t0=1.0, t1=3.0, factor=0.25, ramp_steps=2)
        )
    )
    result = run_aiac(make_problem(), platform, make_config(), injector=injector)
    assert result.converged
    assert platform.hosts[1].speed == 2000.0  # ramp fully undone
    assert any(f.kind == "slowdown" for f in result.tracer.faults)


def test_latency_spike_restores_link_latency():
    platform = homogeneous_cluster(4, speed=2000.0)
    base_latency = platform.network.default_link.latency
    injector = FaultInjector(
        make_schedule(LatencySpike(t0=1.0, t1=2.0, factor=50.0))
    )
    result = run_aiac(make_problem(), platform, make_config(), injector=injector)
    assert result.converged
    assert platform.network.default_link.latency == base_latency


def test_lb_reabsorption_meta_present_under_faults():
    result, _ = run_with(
        make_schedule(MessageLoss(0.1), HostCrash(rank=2, at=2.0, downtime=1.5)),
        lb=True,
    )
    assert result.converged
    assert "reabsorbed" in result.meta
    assert "offers_timed_out" in result.meta
    reference = make_problem().reference_solution()
    assert result.max_error_vs(reference) < 1e-3


# ----------------------------------------------------------------------
# Installation guards
# ----------------------------------------------------------------------
def test_injector_is_single_use():
    injector = FaultInjector(make_schedule())
    run_aiac(
        make_problem(),
        homogeneous_cluster(4, speed=2000.0),
        make_config(),
        injector=injector,
    )
    with pytest.raises(RuntimeError, match="already installed"):
        run_aiac(
            make_problem(),
            homogeneous_cluster(4, speed=2000.0),
            make_config(),
            injector=injector,
        )


def test_injector_validates_fault_ranks():
    injector = FaultInjector(make_schedule(HostCrash(rank=9, at=1.0)))
    with pytest.raises(ValueError, match="rank 9"):
        run_aiac(
            make_problem(),
            homogeneous_cluster(4, speed=2000.0),
            make_config(),
            injector=injector,
        )


# ----------------------------------------------------------------------
# Checkpoint / restore invariants
# ----------------------------------------------------------------------
def test_restore_without_checkpoint_is_an_error():
    run = build_chain(
        make_problem(), homogeneous_cluster(4, speed=2000.0), make_config()
    )
    with pytest.raises(RuntimeError, match="checkpoint"):
        run.restore_checkpoint(run.ranks[0])


def test_checkpoint_restore_roundtrip():
    run = build_chain(
        make_problem(), homogeneous_cluster(4, speed=2000.0), make_config()
    )
    ctx = run.ranks[1]
    run.checkpoint(ctx)
    saved_iteration = ctx.iteration
    saved_lo, saved_hi = ctx.lo, ctx.hi
    ctx.iteration += 7
    ctx.halo_iter_left = 99
    run.restore_checkpoint(ctx)
    assert ctx.iteration == saved_iteration
    assert (ctx.lo, ctx.hi) == (saved_lo, saved_hi)
    assert ctx.halo_iter_left != 99
