"""Tests for the linear fixed-point problem."""

import numpy as np
import pytest

from repro.problems.linear import LinearFixedPointProblem, random_contraction_system
from repro.util.rng import spawn_generator


def make_problem(n=20, seed=0, contraction=0.8):
    rng = spawn_generator(seed, "linear")
    lower, diag, upper, b = random_contraction_system(n, rng, contraction=contraction)
    return LinearFixedPointProblem(lower, diag, upper, b)


def test_generator_contraction_bound():
    rng = spawn_generator(1, "gen")
    lower, diag, upper, _ = random_contraction_system(30, rng, contraction=0.7)
    rows = np.abs(lower) + np.abs(diag) + np.abs(upper)
    assert np.all(rows <= 0.7 + 1e-12)


def test_non_contraction_rejected():
    with pytest.raises(ValueError, match="max-norm"):
        LinearFixedPointProblem(
            np.array([0.0, 0.5]),
            np.array([0.6, 0.6]),
            np.array([0.5, 0.0]),
            np.zeros(2),
        )


def test_fixed_point_satisfies_equation():
    p = make_problem(25)
    x = p.fixed_point()
    x_pad_l = np.concatenate([[0.0], x[:-1]])
    x_pad_r = np.concatenate([x[1:], [0.0]])
    assert np.allclose(p.lower * x_pad_l + p.diag * x + p.upper * x_pad_r + p.b, x)


def test_jacobi_sweeps_converge_to_fixed_point():
    p = make_problem(25, contraction=0.6)
    state = p.initial_state(0, 25)
    for _ in range(80):
        res = p.iterate(state, np.zeros(1), np.zeros(1))
    assert res.local_residual < 1e-12
    assert np.allclose(state.x, p.fixed_point(), atol=1e-10)


def test_two_block_jacobi_converges():
    p = make_problem(30, contraction=0.7)
    a = p.initial_state(0, 17)
    b = p.initial_state(17, 30)
    for _ in range(150):
        ha_l = p.initial_halo(-1)
        ha_r = p.halo_out(b, "left")
        hb_l = p.halo_out(a, "right")
        hb_r = p.initial_halo(30)
        p.iterate(a, ha_l, ha_r)
        p.iterate(b, hb_l, hb_r)
    assembled = np.concatenate([a.x, b.x])
    assert np.allclose(assembled, p.fixed_point(), atol=1e-9)


def test_constant_work_per_component():
    p = make_problem(10)
    state = p.initial_state(0, 10)
    res = p.iterate(state, np.zeros(1), np.zeros(1))
    assert np.all(res.work == p.cost_per_component)


def test_split_merge_roundtrip():
    p = make_problem(12)
    state = p.initial_state(0, 12)
    state.x[:] = np.arange(12.0)
    payload = p.split(state, 4, "right")
    assert state.n == 8
    p.merge(state, payload, "right")
    assert np.array_equal(state.x, np.arange(12.0))


def test_shape_validation():
    with pytest.raises(ValueError):
        LinearFixedPointProblem(np.zeros(3), np.zeros(3), np.zeros(2), np.zeros(3))


def test_ordering_validation():
    rng = spawn_generator(0, "x")
    parts = random_contraction_system(5, rng)
    with pytest.raises(ValueError, match="ordering"):
        LinearFixedPointProblem(*parts, ordering="zigzag")


def test_gauss_seidel_converges_to_same_fixed_point():
    rng = spawn_generator(11, "gs")
    parts = random_contraction_system(30, rng, contraction=0.8)
    gs = LinearFixedPointProblem(*parts, ordering="gauss_seidel")
    state = gs.initial_state(0, 30)
    for _ in range(200):
        res = gs.iterate(state, np.zeros(1), np.zeros(1))
    assert res.local_residual < 1e-12
    assert np.allclose(state.x, gs.fixed_point(), atol=1e-10)


def test_gauss_seidel_converges_in_fewer_sweeps_than_jacobi():
    """Paper §1.1: Gauss-Seidel may converge faster than Jacobi."""
    rng = spawn_generator(12, "cmp")
    parts = random_contraction_system(40, rng, contraction=0.9)

    def sweeps_to(problem, tol=1e-10, cap=2000):
        state = problem.initial_state(0, 40)
        for k in range(cap):
            res = problem.iterate(state, np.zeros(1), np.zeros(1))
            if res.local_residual < tol:
                return k + 1
        raise AssertionError("did not converge")

    jacobi = sweeps_to(LinearFixedPointProblem(*parts, ordering="jacobi"))
    gs = sweeps_to(LinearFixedPointProblem(*parts, ordering="gauss_seidel"))
    assert gs < jacobi
