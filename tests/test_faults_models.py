"""Tests for the declarative fault models and schedule serialisation."""

import math

import pytest

from repro.faults.models import (
    FAULT_TYPES,
    FaultSchedule,
    HostCrash,
    HostSlowdown,
    LatencySpike,
    LinkPartition,
    MessageDuplication,
    MessageLoss,
    MessageReordering,
    PayloadCorruption,
    ResilienceConfig,
    StateCorruption,
    StorageCorruption,
)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_resilience_config_validation():
    ResilienceConfig()  # defaults are valid
    with pytest.raises(ValueError):
        ResilienceConfig(base_timeout=0.0)
    with pytest.raises(ValueError):
        ResilienceConfig(backoff=0.5)
    with pytest.raises(ValueError):
        ResilienceConfig(jitter=1.5)
    with pytest.raises(ValueError):
        ResilienceConfig(max_attempts=0)
    with pytest.raises(ValueError):
        ResilienceConfig(checkpoint_every=0)


def test_message_fault_rate_bounds():
    with pytest.raises(ValueError):
        MessageLoss(1.5)
    with pytest.raises(ValueError):
        MessageLoss(-0.1)
    with pytest.raises(ValueError):
        MessageReordering(0.5, max_extra_delay=0.0)
    with pytest.raises(ValueError):
        MessageLoss(0.5, t0=3.0, t1=1.0)  # inverted window


def test_partition_group_validation():
    with pytest.raises(ValueError):
        LinkPartition(0.0, 1.0, ranks_a=(), ranks_b=(1,))
    with pytest.raises(ValueError):
        LinkPartition(0.0, 1.0, ranks_a=(0, 1), ranks_b=(1, 2))  # overlap


def test_crash_downtime_validation():
    HostCrash(rank=0, at=1.0)  # no restart is valid
    HostCrash(rank=0, at=1.0, downtime=2.0)
    HostCrash(rank=0, at=1.0, downtime=(1.0, 2.0))
    with pytest.raises(ValueError):
        HostCrash(rank=0, at=1.0, downtime=0.0)
    with pytest.raises(ValueError):
        HostCrash(rank=0, at=1.0, downtime=(2.0, 1.0))


def test_slowdown_and_spike_validation():
    with pytest.raises(ValueError):
        HostSlowdown(rank=0, t0=0.0, t1=0.0, factor=0.5)  # empty window
    with pytest.raises(ValueError):
        HostSlowdown(rank=0, t0=0.0, t1=math.inf, factor=0.5)
    with pytest.raises(ValueError):
        HostSlowdown(rank=0, t0=0.0, t1=1.0, factor=1.5)
    with pytest.raises(ValueError):
        LatencySpike(t0=0.0, t1=1.0, factor=1.0)  # must amplify


# ----------------------------------------------------------------------
# Matching semantics
# ----------------------------------------------------------------------
def test_loss_matches_window_and_kinds():
    fault = MessageLoss(0.5, t0=2.0, t1=4.0, kinds=("halo_from_left",))
    assert fault.matches("halo_from_left", 3.0)
    assert not fault.matches("halo_from_left", 1.0)  # before window
    assert not fault.matches("halo_from_left", 5.0)  # after window
    assert not fault.matches("lb_offer_from_left", 3.0)  # other kind
    unrestricted = MessageLoss(0.5)
    assert unrestricted.matches("anything", 0.0)
    assert unrestricted.matches("anything", 1e9)  # open-ended window


def test_partition_severs_symmetrically():
    fault = LinkPartition(1.0, 2.0, ranks_a=(0, 1), ranks_b=(2, 3))
    assert fault.severs(0, 2, 1.5)
    assert fault.severs(2, 0, 1.5)  # both directions
    assert not fault.severs(0, 1, 1.5)  # same side
    assert not fault.severs(0, 2, 0.5)  # outside window


# ----------------------------------------------------------------------
# Schedule (de)serialisation
# ----------------------------------------------------------------------
def _full_schedule() -> FaultSchedule:
    return FaultSchedule(
        faults=(
            MessageLoss(0.1, kinds=("halo_from_left", "halo_from_right")),
            MessageDuplication(0.05),
            MessageReordering(0.2, max_extra_delay=0.5, t0=1.0, t1=9.0),
            LinkPartition(2.0, 3.0, ranks_a=(0,), ranks_b=(1, 2)),
            HostCrash(rank=1, at=4.0, downtime=(1.0, 2.0)),
            HostSlowdown(rank=2, t0=1.0, t1=5.0, factor=0.25, ramp_steps=3),
            LatencySpike(t0=2.0, t1=4.0, factor=8.0, sites=("a", "b")),
            PayloadCorruption(0.1, kinds=("halo_from_left",), mode="perturb"),
            StateCorruption(rank=0, at=3.0, target="checkpoint"),
            StorageCorruption(target="wal", n_bytes=2, offset=10),
        ),
        seed=7,
        resilience=ResilienceConfig(base_timeout=0.5, max_attempts=3),
    )


def test_schedule_roundtrips_through_dict():
    schedule = _full_schedule()
    data = schedule.to_dict()
    # The dict form is JSON-clean: only lists, no tuples.
    import json

    restored = FaultSchedule.from_dict(json.loads(json.dumps(data)))
    assert restored == schedule


def test_schedule_covers_every_registered_type():
    present = {type(f) for f in _full_schedule().faults}
    assert present == set(FAULT_TYPES.values())


def test_schedule_rejects_unknown_type_and_field():
    with pytest.raises(TypeError):
        FaultSchedule(faults=(object(),))
    with pytest.raises(ValueError, match="unknown fault type"):
        FaultSchedule.from_dict({"faults": [{"type": "cosmic_ray"}]})
    with pytest.raises(ValueError, match="unknown field"):
        FaultSchedule.from_dict(
            {"faults": [{"type": "message_loss", "rate": 0.1, "colour": 3}]}
        )


def test_empty_schedule_roundtrip():
    schedule = FaultSchedule()
    assert FaultSchedule.from_dict(schedule.to_dict()) == schedule
    assert FaultSchedule.from_dict({}) == schedule


# ----------------------------------------------------------------------
# Cross-fault schedule validation (strict mode)
# ----------------------------------------------------------------------
def test_schedule_rejects_overlapping_crashes_for_one_host():
    with pytest.raises(ValueError, match="rank 1 crash intervals overlap"):
        FaultSchedule(
            faults=(
                HostCrash(rank=1, at=2.0, downtime=5.0),
                HostCrash(rank=1, at=4.0, downtime=1.0),
            )
        )
    # A no-restart crash spans to infinity: any later crash overlaps.
    with pytest.raises(ValueError, match="rank 0 crash intervals overlap"):
        FaultSchedule(
            faults=(
                HostCrash(rank=0, at=1.0, downtime=None),
                HostCrash(rank=0, at=100.0, downtime=1.0),
            )
        )
    # Random downtime uses the conservative upper bound.
    with pytest.raises(ValueError, match="overlap"):
        FaultSchedule(
            faults=(
                HostCrash(rank=2, at=1.0, downtime=(0.5, 4.0)),
                HostCrash(rank=2, at=3.0, downtime=1.0),
            )
        )


def test_schedule_accepts_disjoint_crashes_and_other_hosts():
    FaultSchedule(
        faults=(
            HostCrash(rank=1, at=2.0, downtime=1.0),
            HostCrash(rank=1, at=4.0, downtime=1.0),
            HostCrash(rank=0, at=2.5, downtime=10.0),  # other rank: free
        )
    )


def test_schedule_rejects_partition_hidden_inside_crash_window():
    # Rank 3 is alone in one group and down for the partition's whole
    # duration: the cut can never be observed.
    with pytest.raises(ValueError, match="unobservable"):
        FaultSchedule(
            faults=(
                HostCrash(rank=3, at=1.0, downtime=10.0),
                LinkPartition(t0=2.0, t1=5.0, ranks_a=(0, 1, 2), ranks_b=(3,)),
            )
        )


def test_schedule_accepts_observable_partitions():
    # Partition extends past the restart: observable.
    FaultSchedule(
        faults=(
            HostCrash(rank=3, at=1.0, downtime=2.0),
            LinkPartition(t0=2.0, t1=5.0, ranks_a=(0, 1, 2), ranks_b=(3,)),
        )
    )
    # Crashed rank is in a multi-rank group: its partner still feels
    # the cut, so full containment is fine.
    FaultSchedule(
        faults=(
            HostCrash(rank=3, at=1.0, downtime=10.0),
            LinkPartition(t0=2.0, t1=5.0, ranks_a=(0, 1), ranks_b=(2, 3)),
        )
    )
