"""Unit-level tests of the migration handshake (offer / reply / data).

These drive small, crafted chains and inspect the protocol state
machines directly — complementing the end-to-end tests in
test_core_lb.py.
"""

import numpy as np
import pytest

from repro.core import LBConfig, SolverConfig, run_balanced_aiac
from repro.core.partition import PartitionError
from repro.grid import homogeneous_cluster
from repro.grid.host import Host
from repro.grid.link import Link
from repro.grid.network import Network
from repro.grid.platform import Platform
from repro.problems import SyntheticProblem


def two_rank_platform(latency=0.01):
    net = Network(Link(latency=latency, bandwidth=1e6))
    return Platform(hosts=[Host("a", 100.0), Host("b", 400.0)], network=net)


def imbalanced_problem(n=24):
    # Uniform slow rates: residual lag between unequal-speed hosts
    # triggers migrations.
    return SyntheticProblem(np.full(n, 0.9), coupling=0.2)


CFG = SolverConfig(tolerance=1e-8, max_iterations=40000)


def test_every_offer_gets_exactly_one_reply():
    r = run_balanced_aiac(
        imbalanced_problem(),
        two_rank_platform(),
        CFG,
        LBConfig(period=3, min_components=2),
    )
    assert r.converged
    offers = [m for m in r.tracer.messages if m.kind.startswith("lb_offer")]
    replies = [m for m in r.tracer.messages if m.kind.startswith("lb_reply")]
    assert len(offers) == len(replies)
    assert len(offers) == r.meta["offers_sent"]


def test_data_messages_match_accepted_offers():
    r = run_balanced_aiac(
        imbalanced_problem(),
        two_rank_platform(),
        CFG,
        LBConfig(period=3, min_components=2),
    )
    data = [m for m in r.tracer.messages if m.kind.startswith("lb_data")]
    # Every migration produced one data message; cancels (n=0) may add more.
    assert len(data) >= r.n_migrations
    accepted = r.meta["offers_sent"] - r.meta["offers_rejected"]
    assert len(data) == accepted


def test_migration_sizes_respect_caps():
    lb = LBConfig(period=3, min_components=3, max_fraction=0.25, accuracy=1.0)
    r = run_balanced_aiac(imbalanced_problem(32), two_rank_platform(), CFG, lb)
    assert r.converged
    sizes = {0: 16, 1: 16}
    for m in sorted(r.tracer.migrations, key=lambda m: m.time):
        assert m.n_components <= max(1, int(0.25 * sizes[m.src_rank]))
        sizes[m.src_rank] -= m.n_components
        sizes[m.dst_rank] += m.n_components
        assert sizes[m.src_rank] >= 3


def test_partition_registry_validates_final_blocks():
    r = run_balanced_aiac(
        imbalanced_problem(),
        two_rank_platform(),
        CFG,
        LBConfig(period=3, min_components=2),
    )
    blocks = sorted(r.final_partition)
    assert blocks[0][0] == 0
    assert blocks[-1][1] == 24
    assert blocks[0][1] == blocks[1][0]


def test_stale_halos_are_dropped_when_blocks_move():
    # Frequent migrations + noticeable latency => some in-flight halos
    # carry positions that no longer match and must be dropped.
    r = run_balanced_aiac(
        imbalanced_problem(48),
        two_rank_platform(latency=0.2),
        CFG,
        LBConfig(period=2, min_components=2, max_fraction=0.5),
    )
    assert r.converged
    assert np.max(r.solution()) < 1e-8  # correctness despite drops
    if r.n_migrations > 3:
        assert r.meta["stale_halos_dropped"] >= 0


def test_three_rank_chain_funnels_work_to_fast_middle():
    net = Network(Link(latency=0.01, bandwidth=1e6))
    plat = Platform(
        hosts=[Host("slow-l", 100.0), Host("fast", 600.0), Host("slow-r", 100.0)],
        network=net,
    )
    r = run_balanced_aiac(
        imbalanced_problem(30),
        plat,
        CFG,
        LBConfig(period=3, min_components=2),
    )
    assert r.converged
    sizes = r.meta["final_sizes"]
    assert sizes[1] > sizes[0]
    assert sizes[1] > sizes[2]


# ---------------------------------------------------------------------------
# Adaptive frequency (the paper's future work)
# ---------------------------------------------------------------------------


def test_adaptive_mode_converges_and_is_correct():
    lb = LBConfig(period=4, adaptive=True, period_min=2, period_max=32)
    r = run_balanced_aiac(imbalanced_problem(), two_rank_platform(), CFG, lb)
    assert r.converged
    assert np.max(r.solution()) < 1e-8


def test_adaptive_mode_sends_fewer_offers_when_balanced():
    """On an already-balanced homogeneous run, adaptive backs off."""
    prob = lambda: SyntheticProblem(np.full(32, 0.9), coupling=0.2)  # noqa: E731
    plat = homogeneous_cluster(2, speed=100.0)
    fixed = run_balanced_aiac(
        prob(), plat, CFG, LBConfig(period=4, threshold_ratio=1e9)
    )
    adaptive = run_balanced_aiac(
        prob(),
        plat,
        CFG,
        LBConfig(period=4, threshold_ratio=1e9, adaptive=True, period_max=64),
    )
    assert adaptive.converged and fixed.converged
    # Neither migrates (threshold is huge); both stay healthy.
    assert adaptive.n_migrations == fixed.n_migrations == 0


def test_adaptive_config_validation():
    with pytest.raises(ValueError):
        LBConfig(period_min=0)
    with pytest.raises(ValueError):
        LBConfig(period_min=8, period_max=4)


def test_paper_mode_retries_every_sweep_once_triggered():
    """Without adaptivity, a node whose counter hit 0 keeps trying every
    sweep until a migration fires (Algorithm 4/5 semantics)."""
    r = run_balanced_aiac(
        imbalanced_problem(),
        two_rank_platform(),
        CFG,
        LBConfig(period=10, min_components=2),
    )
    assert r.converged
    assert r.meta["offers_sent"] >= r.n_migrations
