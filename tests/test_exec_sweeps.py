"""Byte-identity of sweep reports: serial vs worker pool vs cache.

The engine's whole contract is that ``--jobs`` and the run cache are
pure accelerators: the rendered report (and therefore its digest) is
byte-identical on every path.  These tests pin that for the three
sweeps CI parallelises — figure5, resilience and the guard soak — by
running each one serially, through a 2-worker pool into a cold cache,
and again fully from cache.
"""

import pytest

from repro.exec import RunCache, SweepEngine


def run_three_ways(tmp_path, run):
    """serial / jobs=2+cold-cache / warm-cache reports for one sweep."""
    cache_dir = str(tmp_path / "cache")
    serial = run(SweepEngine())
    cold_engine = SweepEngine(jobs=2, cache=RunCache(cache_dir))
    cold = run(cold_engine)
    warm_engine = SweepEngine(cache=RunCache(cache_dir))
    warm = run(warm_engine)
    assert cold_engine.stats.misses == cold_engine.stats.tasks
    assert warm_engine.stats.hits == warm_engine.stats.tasks
    assert warm_engine.stats.misses == 0
    return serial, cold, warm


def test_figure5_report_identical_on_all_paths(tmp_path):
    from repro.experiments import run_figure5
    from repro.workloads import Figure5Scenario

    scenario = Figure5Scenario.tiny()

    def run(engine):
        return run_figure5(scenario, engine=engine)

    serial, cold, warm = run_three_ways(tmp_path, run)
    assert serial.report() == cold.report() == warm.report()
    assert serial.digest() == cold.digest() == warm.digest()


def test_resilience_report_identical_on_all_paths(tmp_path):
    from repro.experiments import run_resilience
    from repro.workloads import ResilienceScenario

    scenario = ResilienceScenario.tiny()

    def run(engine):
        return run_resilience(scenario, engine=engine)

    serial, cold, warm = run_three_ways(tmp_path, run)
    assert serial.report() == cold.report() == warm.report()
    assert serial.digest() == cold.digest() == warm.digest()


def test_soak_report_identical_on_all_paths(tmp_path):
    from repro.guard.soak import run_soak

    def run(engine):
        return run_soak(
            n_schedules=2,
            seed=0,
            models=("sisc", "aiac"),
            out_dir=str(tmp_path),
            shrink=False,
            engine=engine,
        )

    serial, cold, warm = run_three_ways(tmp_path, run)
    assert serial.ok and cold.ok and warm.ok
    assert serial.report() == cold.report() == warm.report()


def test_figure5_scenario_change_misses_cache(tmp_path):
    from repro.experiments import run_figure5
    from repro.workloads import Figure5Scenario

    cache_dir = str(tmp_path / "cache")
    first = SweepEngine(cache=RunCache(cache_dir))
    run_figure5(Figure5Scenario.tiny(), engine=first)
    assert first.stats.hits == 0

    # Any scenario field change must invalidate every run.
    import dataclasses

    changed = dataclasses.replace(Figure5Scenario.tiny(), active_cost=31.0)
    second = SweepEngine(cache=RunCache(cache_dir))
    run_figure5(changed, engine=second)
    assert second.stats.hits == 0
    assert second.stats.misses == second.stats.tasks


def test_sidecar_sweeps_bypass_pool_and_cache(tmp_path):
    # An observed sweep must scrape live RunResult objects, so the
    # sidecar path always runs serially in process: identical report,
    # zero engine traffic recorded.
    from repro.experiments import run_figure5
    from repro.obs.harness import MetricsSidecar
    from repro.workloads import Figure5Scenario

    scenario = Figure5Scenario.tiny()
    plain = run_figure5(scenario)
    observed = run_figure5(scenario, sidecar=MetricsSidecar())
    assert plain.report() == observed.report()
