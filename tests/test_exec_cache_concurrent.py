"""Concurrent-access contract of the run cache (repro.exec.cache).

Several processes may share one cache root (parallel CI jobs, the serve
daemon next to an offline ``repro figure5``).  The cache is lock-free
on purpose, so the contract is *benign racing*: whatever interleaving
of writers, readers, repairers and evictors occurs, a ``get`` either
misses or returns a complete, correct payload — never a torn or foreign
one — and a ``put`` never corrupts an entry another process wrote.
"""

import json
import multiprocessing
import os
import random

import pytest

from repro.exec import RunCache


def expected_payload(name):
    return {"name": name, "value": [ord(c) for c in name]}


# ----------------------------------------------------------------------
# Process-level races (real concurrency, fork start method)
# ----------------------------------------------------------------------
def _hammer_put(root, name, n_rounds):
    cache = RunCache(root)
    digest = cache.digest_for(name)
    for _ in range(n_rounds):
        cache.put(digest, name, expected_payload(name))


def _hammer_get(root, name, n_rounds, out):
    cache = RunCache(root)
    digest = cache.digest_for(name)
    bad = 0
    for _ in range(n_rounds):
        hit, payload = cache.get(digest)
        if hit and payload != expected_payload(name):
            bad += 1
    out.put(bad)


def test_write_write_race_on_same_digest(tmp_path):
    """Two processes writing the same digest: last replace wins, the
    entry is always complete and correct."""
    root = str(tmp_path / "cache")
    ctx = multiprocessing.get_context("fork")
    writers = [
        ctx.Process(target=_hammer_put, args=(root, "shared", 200))
        for _ in range(2)
    ]
    for p in writers:
        p.start()
    for p in writers:
        p.join(timeout=60)
        assert p.exitcode == 0

    cache = RunCache(root)
    digest = cache.digest_for("shared")
    assert cache.get(digest) == (True, expected_payload("shared"))
    # The envelope on disk is complete JSON (no torn writes survived).
    with open(cache.path_for(digest), encoding="utf-8") as fh:
        assert json.load(fh)["digest"] == digest
    # No stray temp files left behind.
    leftovers = [
        name
        for _, _, names in os.walk(root)
        for name in names
        if ".tmp." in name
    ]
    assert leftovers == []


def test_read_during_repair_race(tmp_path):
    """A reader racing a writer that is repairing a corrupted entry only
    ever sees a miss or the correct payload."""
    root = str(tmp_path / "cache")
    cache = RunCache(root)
    digest = cache.digest_for("repair")
    # Seed a corrupt entry under the final name.
    os.makedirs(os.path.dirname(cache.path_for(digest)), exist_ok=True)
    with open(cache.path_for(digest), "w", encoding="utf-8") as fh:
        fh.write("garbage{")

    ctx = multiprocessing.get_context("fork")
    out = ctx.Queue()
    reader = ctx.Process(target=_hammer_get, args=(root, "repair", 400, out))
    writer = ctx.Process(target=_hammer_put, args=(root, "repair", 200))
    reader.start()
    writer.start()
    for p in (writer, reader):
        p.join(timeout=60)
        assert p.exitcode == 0
    assert out.get(timeout=10) == 0  # no hit ever returned a wrong payload
    assert cache.get(digest) == (True, expected_payload("repair"))


# ----------------------------------------------------------------------
# Seeded interleavings (deterministic property test, in process)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(5))
def test_seeded_interleavings_preserve_get_contract(tmp_path, seed):
    """Two cache handles over one root, driven through a seeded random
    schedule of put / get / corrupt / evict operations.  Invariant:
    every hit returns the exact payload its name maps to."""
    root = str(tmp_path / "cache")
    handles = [
        RunCache(root),
        RunCache(root, max_bytes=1024),  # an evicting handle in the mix
    ]
    names = [f"entry-{n}" for n in range(6)]
    rng = random.Random(seed)
    for _ in range(300):
        cache = rng.choice(handles)
        name = rng.choice(names)
        digest = cache.digest_for(name)
        op = rng.randrange(4)
        if op == 0:
            cache.put(digest, name, expected_payload(name))
        elif op == 1:
            hit, payload = cache.get(digest)
            if hit:
                assert payload == expected_payload(name)
        elif op == 2:  # crash artefact: truncate whatever is there
            try:
                with open(cache.path_for(digest), "r+", encoding="utf-8") as fh:
                    fh.truncate(rng.randrange(40))
            except OSError:
                pass
        else:  # concurrent janitor: force the evictor through its scan
            if cache.max_bytes is not None:
                cache._evict()
    # Steady state: one final put of every name makes every get hit.
    final = RunCache(root)
    for name in names:
        digest = final.digest_for(name)
        final.put(digest, name, expected_payload(name))
        assert final.get(digest) == (True, expected_payload(name))
