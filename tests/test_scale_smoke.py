"""Large-N smoke tests: the scale path stays deterministic and guarded.

CI-sized versions of the BENCH_scale.json acceptance criteria: a
128-rank run must fingerprint identically whether executed serially,
over a 2-worker process pool, or replayed from the run cache; the
bucket-indexed event queue must agree with the legacy binary heap; and
the invariant guard must stay attachable (and clean) at scale.
"""

from dataclasses import replace

from repro.analysis.perf import run_fingerprint
from repro.core.solver import build_chain
from repro.des import Barrier, LegacyEventQueue
from repro.exec import RunCache, SweepEngine, Task
from repro.guard import GuardConfig, InvariantMonitor
from repro.models import run_sisc_batched
from repro.models.sisc import _sisc_process
from repro.workloads import ScaleScenario

RANKS = 128
PER_RANK = 32
ROUNDS = 12


def _capped_config(scenario, rounds=ROUNDS):
    return replace(scenario.solver_config(), max_iterations=rounds)


# Top-level so the process pool can pickle it by reference.
def lockstep_fingerprint(n_ranks, components_per_rank, rounds):
    scenario = ScaleScenario(
        n_ranks=n_ranks, components_per_rank=components_per_rank
    )
    result = run_sisc_batched(
        scenario.problem(), scenario.platform(), _capped_config(scenario, rounds)
    )
    assert result.meta["engine"] == "lockstep"
    return {"fingerprint": run_fingerprint(result)}


def _tasks(n=3):
    # n distinct round counts => n distinct runs, parallelisable.
    return [
        Task(
            fn=lockstep_fingerprint,
            args=(RANKS, PER_RANK, ROUNDS + i),
            key={"scale_smoke": [RANKS, PER_RANK, ROUNDS + i]},
            label=f"scale/{i}",
        )
        for i in range(n)
    ]


def test_scale_digest_serial_pool_and_cache_agree(tmp_path):
    cache_dir = str(tmp_path / "cache")
    serial = SweepEngine(jobs=1).map(_tasks())
    pooled = SweepEngine(jobs=2).map(_tasks())
    assert serial == pooled

    cold = SweepEngine(cache=RunCache(cache_dir))
    assert cold.map(_tasks()) == serial
    assert cold.stats.misses == len(_tasks())
    warm = SweepEngine(cache=RunCache(cache_dir))
    assert warm.map(_tasks()) == serial
    assert warm.stats.hits == len(_tasks()) and warm.stats.misses == 0


def _event_driven(scenario, *, legacy_queue):
    run = build_chain(
        scenario.problem(),
        scenario.platform(),
        _capped_config(scenario),
        model="sisc",
    )
    if legacy_queue:
        assert run.sim._queue.peek_time() is None  # nothing scheduled yet
        run.sim._queue = LegacyEventQueue()
    barrier = Barrier(run.n_ranks, name="sisc")
    for ctx in run.ranks:
        run.sim.spawn(f"sisc-rank-{ctx.rank}", _sisc_process(run, ctx, barrier))
    run.run()
    return run


def test_indexed_queue_matches_legacy_heap_at_scale():
    scenario = ScaleScenario(n_ranks=64, components_per_rank=16)
    legacy = _event_driven(scenario, legacy_queue=True)
    indexed = _event_driven(scenario, legacy_queue=False)
    assert legacy.sim.n_dispatched == indexed.sim.n_dispatched
    assert legacy.sim._queue.peak_size == indexed.sim._queue.peak_size
    assert run_fingerprint(legacy.result()) == run_fingerprint(
        indexed.result()
    )


def test_brusselator_guard_stays_on_at_scale():
    # Same regression fence for the real PDE path: a guarded 256-rank
    # Brusselator lockstep run (rank-batched Newton sweeps, adaptive
    # skipping on) must not fall back, and every check must pass.
    scenario = ScaleScenario.brusselator_smoke()
    guard = InvariantMonitor(GuardConfig(check_every=64))
    result = run_sisc_batched(
        scenario.problem(),
        scenario.platform(),
        _capped_config(scenario),
        guard=guard,
    )
    assert result.meta["engine"] == "lockstep"
    assert guard.checks_run > 0
    assert guard.stats()["divergence_rollbacks"] == 0
    assert guard.verify_halt()


def test_guard_stays_on_at_scale():
    # The guard regression the benchmark is not allowed to buy speed
    # with: a guarded 128-rank lockstep run must not fall back, and
    # every invariant check must pass.
    scenario = ScaleScenario(n_ranks=RANKS, components_per_rank=PER_RANK)
    guard = InvariantMonitor(GuardConfig(check_every=64))
    result = run_sisc_batched(
        scenario.problem(),
        scenario.platform(),
        _capped_config(scenario),
        guard=guard,
    )
    assert result.meta["engine"] == "lockstep"
    assert guard.checks_run > 0  # any violation would have raised
    assert guard.stats()["divergence_rollbacks"] == 0
    assert guard.verify_halt()  # the halt oracle raises on a wrong halt
