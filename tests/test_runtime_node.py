"""Tests for the PM2-like messaging layer."""

import pytest

from repro.des import Hold, Simulator, SimulationError
from repro.grid.host import Host
from repro.grid.link import Link
from repro.grid.network import Network
from repro.runtime.node import GridNode
from repro.runtime.tracer import Tracer


def make_pair(latency=1.0, bandwidth=1e6):
    sim = Simulator()
    net = Network(Link(latency=latency, bandwidth=bandwidth))
    tracer = Tracer()
    a = GridNode(sim, 0, Host("a", 1.0), net, tracer)
    b = GridNode(sim, 1, Host("b", 1.0), net, tracer)
    return sim, a, b, tracer


def test_send_delivers_to_handler_at_arrival_time():
    sim, a, b, _ = make_pair(latency=2.0)
    received = []
    b.register_handler("data", lambda msg: received.append((sim.now, msg.payload)))

    def sender(sim):
        yield Hold(1.0)
        a.send(b, "data", {"x": 1}, size_bytes=0)

    sim.spawn("s", sender(sim))
    sim.run()
    assert received == [(3.0, {"x": 1})]


def test_handler_sees_message_metadata():
    sim, a, b, _ = make_pair(latency=0.5)
    seen = []
    b.register_handler("data", lambda msg: seen.append(msg))
    a.send(b, "data", None, size_bytes=100)
    sim.run()
    (msg,) = seen
    assert msg.src_rank == 0
    assert msg.dst_rank == 1
    assert msg.send_time == 0.0
    assert msg.arrival_time == pytest.approx(0.5 + 100 / 1e6)


def test_missing_handler_is_an_error():
    sim, a, b, _ = make_pair()
    a.send(b, "unknown", None, size_bytes=0)
    with pytest.raises(SimulationError, match="no handler"):
        sim.run()


def test_duplicate_handler_rejected():
    sim, a, _, _ = make_pair()
    a.register_handler("k", lambda m: None)
    with pytest.raises(ValueError):
        a.register_handler("k", lambda m: None)


def test_exclusive_send_suppressed_while_in_flight():
    sim, a, b, _ = make_pair(latency=10.0)
    received = []
    b.register_handler("halo", lambda msg: received.append(msg.payload))

    def sender(sim):
        assert a.send(b, "halo", 1, size_bytes=0, exclusive=True)
        yield Hold(1.0)
        # Previous send still in flight (arrives at t=10): suppressed.
        assert not a.send(b, "halo", 2, size_bytes=0, exclusive=True)
        assert a.channel_busy("halo", b.rank)
        yield Hold(10.0)  # now t=11, first send arrived at t=10
        assert not a.channel_busy("halo", b.rank)
        assert a.send(b, "halo", 3, size_bytes=0, exclusive=True)

    sim.spawn("s", sender(sim))
    sim.run()
    assert received == [1, 3]


def test_exclusive_channels_are_per_kind_and_destination():
    sim, a, b, _ = make_pair(latency=10.0)
    b.register_handler("left", lambda m: None)
    b.register_handler("right", lambda m: None)
    assert a.send(b, "left", None, 0, exclusive=True)
    # Different kind: independent channel.
    assert a.send(b, "right", None, 0, exclusive=True)
    sim.run()


def test_non_exclusive_sends_never_suppressed():
    sim, a, b, _ = make_pair(latency=10.0)
    received = []
    b.register_handler("data", lambda msg: received.append(msg.payload))
    for i in range(5):
        assert a.send(b, "data", i, size_bytes=0)
    sim.run()
    assert received == [0, 1, 2, 3, 4]


def test_fifo_ordering_preserved_for_growing_sizes():
    # A later small message must not overtake an earlier big one.
    sim, a, b, _ = make_pair(latency=0.0, bandwidth=1.0)
    received = []
    b.register_handler("data", lambda msg: received.append(msg.payload))

    def sender(sim):
        a.send(b, "data", "big", size_bytes=100.0)
        yield Hold(1.0)
        a.send(b, "data", "small", size_bytes=1.0)

    sim.spawn("s", sender(sim))
    sim.run()
    assert received == ["big", "small"]


def test_tracer_records_messages():
    sim, a, b, tracer = make_pair(latency=1.0)
    b.register_handler("data", lambda m: None)
    a.send(b, "data", None, size_bytes=64)
    sim.run()
    (rec,) = tracer.messages
    assert rec.kind == "data"
    assert rec.src_rank == 0 and rec.dst_rank == 1
    assert rec.size_bytes == 64
    assert rec.arrival_time > rec.send_time


def test_handler_can_send_back():
    sim, a, b, _ = make_pair(latency=1.0)
    log = []
    b.register_handler("ping", lambda m: b.send(a, "pong", m.payload + 1, 0))
    a.register_handler("pong", lambda m: log.append((sim.now, m.payload)))
    a.send(b, "ping", 10, 0)
    sim.run()
    assert log == [(2.0, 11)]
