"""Regression tests for the optimised kernels (banded LU, Newton, DES).

The performance rewrite (vectorized banded kernels, Newton active-set
compaction, slots-based DES events with batched dispatch) promises one
thing above all: **no observable change**.  These tests pin that promise
down:

* property tests of the hybrid banded LU against the scipy oracle over
  random bandwidths, including the degenerate shapes ``kl = 0``,
  ``ku = 0``, ``kl != ku`` and ``n = 1``;
* bit-identity of the tuned paths against the retained scalar reference
  (``lu_factor_scalar`` / ``solve_scalar``);
* :class:`~repro.numerics.banded.BandedLUCache` reuse semantics;
* equivalence of compacted vs full-batch ``newton_batched_2x2``;
* modified-Newton (``jacobian_refresh``) reaching the same fixed point;
* the event queue's live-only ``len()``, tombstone compaction and
  ``pop_at`` batched dispatch;
* determinism of a full AIAC run — the event trace and solution bytes
  are identical run-to-run.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.event import EventQueue
from repro.numerics.banded import (
    BandedLUCache,
    BandedMatrix,
    solve_banded_system,
    thomas_solve,
)
from repro.numerics.euler import implicit_euler_banded
from repro.numerics.newton import NewtonOptions, newton_batched_2x2

scipy_linalg = pytest.importorskip("scipy.linalg")


def random_banded_dd(n, kl, ku, rng):
    """Random strictly diagonally dominant banded matrix (dense)."""
    a = np.zeros((n, n))
    for i in range(n):
        for j in range(max(0, i - kl), min(n, i + ku + 1)):
            if i != j:
                a[i, j] = rng.uniform(-1, 1)
        a[i, i] = np.sum(np.abs(a[i])) + rng.uniform(1.0, 2.0)
    return a


# ----------------------------------------------------------------------
# Banded LU vs scipy oracle
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    kl=st.integers(min_value=0, max_value=5),
    ku=st.integers(min_value=0, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_lu_matches_scipy_property(n, kl, ku, seed):
    rng = np.random.default_rng(seed)
    kl = min(kl, n - 1)
    ku = min(ku, n - 1)
    a = random_banded_dd(n, kl, ku, rng)
    b = rng.normal(size=n)
    m = BandedMatrix.from_dense(a, kl, ku)
    x = m.lu_factor().solve(b)
    x_ref = scipy_linalg.solve_banded((kl, ku), m.bands, b)
    assert np.allclose(x, x_ref, rtol=1e-10, atol=1e-12)


@pytest.mark.parametrize(
    "n,kl,ku",
    [
        (1, 0, 0),  # scalar system
        (128, 0, 5),  # upper triangular band (no elimination)
        (128, 5, 0),  # lower triangular band (no back-band)
        (257, 12, 4),  # kl != ku, vectorized path
        (64, 3, 9),  # kl != ku the other way
        (513, 16, 16),  # wide symmetric band, bulk strided path
        (40, 39, 39),  # full bandwidth (band == dense)
    ],
)
def test_lu_matches_scipy_edge_shapes(n, kl, ku):
    rng = np.random.default_rng(n * 1000 + kl * 10 + ku)
    a = random_banded_dd(n, kl, ku, rng)
    b = rng.normal(size=n)
    m = BandedMatrix.from_dense(a, kl, ku)
    x = m.lu_factor().solve(b)
    x_ref = scipy_linalg.solve_banded((kl, ku), m.bands, b)
    assert np.allclose(x, x_ref, rtol=1e-10, atol=1e-12)


@pytest.mark.parametrize("n,kl,ku", [(45, 2, 2), (200, 1, 3), (30, 0, 2)])
def test_narrow_paths_bit_identical_to_scalar_reference(n, kl, ku):
    """Narrow-band factor/solve must reproduce the seed scalar path exactly.

    Narrow bands (the kl=ku=2 hot case) dispatch to the Python-list
    sweep, which performs the same scalar operations in the same order
    as the retained closure reference — the results are bitwise equal,
    which is what keeps AIAC runs bit-identical to the seed.
    """
    rng = np.random.default_rng(7)
    a = random_banded_dd(n, kl, ku, rng)
    b = rng.normal(size=n)
    m = BandedMatrix.from_dense(a, kl, ku)
    lu_new = m.lu_factor()
    lu_ref = m.lu_factor_scalar()
    np.testing.assert_array_equal(lu_new._lu, lu_ref._lu)
    np.testing.assert_array_equal(lu_new.solve(b), lu_ref.solve_scalar(b))


def test_wide_path_close_to_scalar_reference():
    """The vectorized wide-band path reorders the arithmetic, so it is
    allclose (not bitwise equal) to the scalar reference."""
    rng = np.random.default_rng(7)
    n, kl, ku = 64, 16, 16
    a = random_banded_dd(n, kl, ku, rng)
    b = rng.normal(size=n)
    m = BandedMatrix.from_dense(a, kl, ku)
    x_new = m.lu_factor().solve(b)
    x_ref = m.lu_factor_scalar().solve_scalar(b)
    np.testing.assert_allclose(x_new, x_ref, rtol=1e-12, atol=1e-14)


def test_thomas_matches_banded():
    rng = np.random.default_rng(3)
    n = 50
    a = random_banded_dd(n, 1, 1, rng)
    b = rng.normal(size=n)
    m = BandedMatrix.from_dense(a, 1, 1)
    x_thomas = thomas_solve(
        np.r_[0.0, np.diag(a, -1)], np.diag(a).copy(), np.r_[np.diag(a, 1), 0.0], b
    )
    x_banded = solve_banded_system(m, b, backend="native")
    assert np.allclose(x_thomas, x_banded, rtol=1e-12, atol=1e-14)


def test_singular_pivot_raises_on_both_paths():
    bands = np.zeros((3, 6))
    bands[1, :] = 1.0
    bands[1, 3] = 0.0  # exact zero pivot mid-matrix
    m = BandedMatrix(bands, 1, 1)
    with pytest.raises(np.linalg.LinAlgError):
        m.lu_factor()
    with pytest.raises(np.linalg.LinAlgError):
        m.lu_factor_scalar()


# ----------------------------------------------------------------------
# LU reuse cache
# ----------------------------------------------------------------------
def test_lu_cache_reuses_up_to_max_uses():
    rng = np.random.default_rng(11)
    m = BandedMatrix.from_dense(random_banded_dd(12, 2, 2, rng), 2, 2)
    cache = BandedLUCache(max_uses=3)
    assert cache.get(0.5) is None  # miss on empty cache
    lu = cache.put(0.5, m.lu_factor())  # put counts as the first use
    assert cache.get(0.5) is lu  # use 2
    assert cache.get(0.5) is lu  # use 3
    assert cache.get(0.5) is None  # exhausted -> refactor
    assert cache.misses == 2 and cache.hits == 2


def test_lu_cache_key_change_invalidates():
    rng = np.random.default_rng(12)
    m = BandedMatrix.from_dense(random_banded_dd(8, 1, 1, rng), 1, 1)
    cache = BandedLUCache(max_uses=100)
    cache.put(0.5, m.lu_factor())
    assert cache.get(0.25) is None  # different dt -> stale
    lu2 = cache.put(0.25, m.lu_factor())
    assert cache.get(0.25) is lu2


# ----------------------------------------------------------------------
# Newton compaction equivalence
# ----------------------------------------------------------------------
def _make_quadratic_problem(n, seed):
    """Independent 2x2 systems u^2 + v - a = 0, v^2 - u - b = 0."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(1.0, 3.0, size=n)
    b = rng.uniform(0.5, 2.0, size=n)

    def f(u, v, idx=None):
        aa = a if idx is None else a[idx]
        bb = b if idx is None else b[idx]
        f1 = u * u + v - aa
        f2 = v * v - u - bb
        return f1, f2, 2.0 * u, np.ones_like(u), -np.ones_like(u), 2.0 * v

    f.newton_compactable = True
    return f, rng.uniform(0.5, 2.0, size=n), rng.uniform(0.5, 2.0, size=n)


@pytest.mark.parametrize("threshold", [None, 0.99, 0.5, 0.1])
def test_newton_compaction_bit_identical(threshold):
    f, u0, v0 = _make_quadratic_problem(400, seed=21)
    base = newton_batched_2x2(f, u0, v0, NewtonOptions(tol=1e-12))
    opt = NewtonOptions(tol=1e-12, compact_threshold=threshold)
    res = newton_batched_2x2(f, u0, v0, opt)
    np.testing.assert_array_equal(res.u, base.u)
    np.testing.assert_array_equal(res.v, base.v)
    np.testing.assert_array_equal(res.iterations, base.iterations)
    np.testing.assert_array_equal(res.converged, base.converged)
    # The batch deliberately contains both kinds of exits: most systems
    # converge (drop out of the active set) while a few exhaust the
    # budget, so compaction and budget-exhaustion paths are both hit.
    n_conv = int(res.converged.sum())
    assert 0 < n_conv < res.converged.shape[0]
    assert n_conv > 0.9 * res.converged.shape[0]


def test_newton_compaction_requires_opt_in():
    """Callbacks without the marker attribute never see an idx argument."""
    n = 100
    rng = np.random.default_rng(5)
    target = rng.uniform(1.0, 2.0, size=n)

    def f(u, v):  # no idx parameter, no newton_compactable attribute
        one = np.ones_like(u)
        return u - target, v - target, one, 0.0 * one, 0.0 * one, one

    res = newton_batched_2x2(
        f, np.zeros(n), np.zeros(n), NewtonOptions(compact_threshold=0.5)
    )
    assert res.all_converged
    np.testing.assert_allclose(res.u, target)


def test_newton_default_options_not_shared():
    """options=None constructs fresh defaults (no mutable-default alias)."""
    f, u0, v0 = _make_quadratic_problem(10, seed=2)
    r1 = newton_batched_2x2(f, u0, v0)
    r2 = newton_batched_2x2(f, u0, v0, None)
    np.testing.assert_array_equal(r1.u, r2.u)
    np.testing.assert_array_equal(r1.iterations, r2.iterations)


# ----------------------------------------------------------------------
# Modified Newton (frozen Jacobian) in implicit Euler
# ----------------------------------------------------------------------
def test_implicit_euler_jacobian_refresh_same_fixed_point():
    """Reusing the LU across Newton iterations must not move the answer.

    Convergence is judged on the true residual, so modified Newton can
    take more iterations but lands inside the same tolerance ball.
    """
    decay = np.array([0.5, 1.0, 2.0, 4.0])

    def rhs(t, y):
        return -decay * y

    def jac_banded(t, y):
        return -decay[None, :].copy()  # kl = ku = 0

    y0 = np.ones(4)
    t_grid = np.linspace(0.0, 1.0, 21)
    exact = implicit_euler_banded(rhs, jac_banded, 0, 0, y0, t_grid)
    frozen = implicit_euler_banded(
        rhs, jac_banded, 0, 0, y0, t_grid,
        options=NewtonOptions(tol=1e-10, max_iter=50, jacobian_refresh=5),
    )
    assert np.allclose(frozen, exact, rtol=1e-9, atol=1e-10)


def test_implicit_euler_refresh_one_matches_seed_path():
    """refresh=1 must take the exact-Newton branch (bitwise same result)."""
    def rhs(t, y):
        return np.sin(y) - y

    def jac_banded(t, y):
        return (np.cos(y) - 1.0)[None, :].copy()

    y0 = np.array([0.3, 1.2, 2.0])
    t_grid = np.linspace(0.0, 0.5, 6)
    a = implicit_euler_banded(rhs, jac_banded, 0, 0, y0, t_grid, backend="native")
    b = implicit_euler_banded(
        rhs, jac_banded, 0, 0, y0, t_grid, backend="native",
        options=NewtonOptions(tol=1e-10, max_iter=50, jacobian_refresh=1),
    )
    np.testing.assert_array_equal(a, b)


# ----------------------------------------------------------------------
# Event queue: live len, compaction, batched pop
# ----------------------------------------------------------------------
def test_len_counts_only_live_events():
    q = EventQueue()
    events = [q.push(float(i), lambda: None) for i in range(10)]
    assert len(q) == 10
    for e in events[:4]:
        e.cancel()
    assert len(q) == 6  # tombstones excluded (seed counted them)
    e = q.pop()
    assert e is events[4]
    assert len(q) == 5


def test_cancel_after_pop_does_not_corrupt_len():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    popped = q.pop()
    assert popped is e1
    popped.cancel()  # already out of the heap: must not decrement len
    assert len(q) == 1
    assert q.pop() is not None
    assert len(q) == 0


def test_cancel_is_idempotent_for_len():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    e.cancel()
    e.cancel()
    e.cancel()
    assert len(q) == 1


def test_compaction_keeps_order_and_bounds_heap():
    q = EventQueue()
    events = [q.push(float(i), lambda i=i: i) for i in range(300)]
    # Cancel most of them; the queue should compact itself.
    for e in events[:250]:
        e.cancel()
    assert q._size < 100  # tombstones physically removed
    assert len(q) == 50
    times = []
    while (e := q.pop()) is not None:
        times.append(e.time)
    assert times == [float(i) for i in range(250, 300)]


def test_pop_at_only_drains_exact_timestamp():
    q = EventQueue()
    q.push(1.0, lambda: "a")
    q.push(1.0, lambda: "b")
    q.push(2.0, lambda: "c")
    assert q.pop_at(1.0) is not None
    assert q.pop_at(1.0) is not None
    assert q.pop_at(1.0) is None  # next event is at t=2.0
    assert len(q) == 1


def test_pop_at_skips_tombstone_but_not_later_times():
    """A cancelled head must not let pop_at leak a later-time event."""
    q = EventQueue()
    e1 = q.push(1.0, lambda: "a")
    q.push(2.0, lambda: "b")
    e1.cancel()
    assert q.pop_at(1.0) is None
    assert q.peek_time() == 2.0


# ----------------------------------------------------------------------
# End-to-end AIAC determinism
# ----------------------------------------------------------------------
def _aiac_fingerprint(profiler=None):
    """Event-trace + solution fingerprint of a small deterministic run.

    ``profiler`` is forwarded to the solver so the obs tests can assert
    that an attached :class:`~repro.obs.profile.SimProfiler` leaves the
    trace bit-identical.
    """
    from repro.core.solver import run_aiac
    from repro.workloads.scenarios import Table1Scenario

    sc = Table1Scenario(
        n_points=30, t_end=1.0, n_steps=8, tolerance=1e-3, load_dwell=50.0
    )
    plat = sc.platform()
    res = run_aiac(
        sc.problem(), plat, sc.solver_config(trace=True),
        host_order=sc.host_order(plat), profiler=profiler,
    )
    h = hashlib.sha256()
    for blk in res.solution_blocks:
        h.update(np.ascontiguousarray(blk).tobytes())
    for rec in res.tracer.iterations:
        h.update(repr(rec).encode())
    for rec in res.tracer.messages:
        h.update(repr(rec).encode())
    for rec in res.tracer.residuals:
        h.update(repr(rec).encode())
    h.update(repr((res.time, res.converged, res.iterations)).encode())
    return h.hexdigest()


def test_aiac_run_is_deterministic():
    """Same scenario, two fresh simulators: byte-identical event trace.

    This is the guard-rail for the whole performance layer — tombstone
    compaction, batched same-time dispatch and the Newton fast paths
    must be invisible in the RunResult.
    """
    assert _aiac_fingerprint() == _aiac_fingerprint()
