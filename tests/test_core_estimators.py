"""Tests for load estimators."""

import pytest

from repro.core.estimators import (
    ComponentCountEstimator,
    IterationTimeEstimator,
    ResidualEstimator,
    make_estimator,
)


def test_residual_estimator_l2_tracks_mass():
    e = ResidualEstimator(norm="l2")
    assert e.value() == float("inf")  # no sweep yet
    e.update(residual=0.5, residual_l2=2.5, sweep_duration=1.0, n_local=10)
    assert e.value() == 2.5
    e.update(residual=0.1, residual_l2=0.4, sweep_duration=2.0, n_local=10)
    assert e.value() == 0.4


def test_residual_estimator_max_tracks_worst_component():
    e = ResidualEstimator(norm="max")
    e.update(residual=0.5, residual_l2=2.5, sweep_duration=1.0, n_local=10)
    assert e.value() == 0.5


def test_residual_estimator_norm_validation():
    with pytest.raises(ValueError):
        ResidualEstimator(norm="l7")


def test_iteration_time_estimator_windows():
    e = IterationTimeEstimator(window=3)
    assert e.value() == float("inf")
    for d in [1.0, 2.0, 3.0]:
        e.update(0.0, 0.0, d, 10)
    assert e.value() == pytest.approx(2.0)
    e.update(0.0, 0.0, 6.0, 10)  # evicts 1.0 -> mean(2, 3, 6)
    assert e.value() == pytest.approx(11.0 / 3.0)


def test_iteration_time_window_validation():
    with pytest.raises(ValueError):
        IterationTimeEstimator(window=0)


def test_component_count_estimator():
    e = ComponentCountEstimator()
    e.update(0.0, 0.0, 0.0, 42)
    assert e.value() == 42.0


def test_factory():
    assert isinstance(make_estimator("residual"), ResidualEstimator)
    assert make_estimator("residual").norm == "l2"
    assert make_estimator("residual_max").norm == "max"
    assert isinstance(make_estimator("iteration_time"), IterationTimeEstimator)
    assert isinstance(make_estimator("component_count"), ComponentCountEstimator)
    with pytest.raises(ValueError):
        make_estimator("nope")
