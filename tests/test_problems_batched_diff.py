"""Property tests: batched chain sweepers ≡ per-rank scalar iterate().

The lockstep replay's correctness rests on one claim: a problem's
``batched_chain_sweeper`` advancing the whole chain in one vectorised
pass produces, for every rank, *bit-identical* residual / work /
solution to the per-rank ``iterate()`` path the event-driven solver
runs.  Hypothesis drives that claim across ragged partitions (including
one-component and empty blocks), the Brusselator's adaptive-skip
options (threshold, refresh cadence, the optimistic-step verification
and its scalar tail) and Newton jacobian-refresh cadences.

The scalar reference below replays exactly what a synchronous round
does: gather every rank's previous-sweep boundary trajectories (walking
past empty blocks, like the solver's halo wiring after a full
migration), then iterate each block against them.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.problems.advection import AdvectionDiffusionProblem
from repro.problems.brusselator import BrusselatorProblem
from repro.problems.heat import HeatProblem


def _halo(problem, blocks, states, rank, side):
    """Previous-sweep halo for ``rank``, walking past empty blocks."""
    j = blocks[rank][0] - 1 if side == "left" else blocks[rank][1]
    if j < 0 or j >= problem.n_components:
        return problem.initial_halo(j)
    owner = next(q for q, (lo, hi) in enumerate(blocks) if lo <= j < hi)
    return problem.halo_out(
        states[owner], "right" if side == "left" else "left"
    )


def assert_batched_matches_scalar(problem, blocks, n_sweeps):
    sweeper = problem.batched_chain_sweeper(blocks)
    states = {
        r: problem.initial_state(lo, hi)
        for r, (lo, hi) in enumerate(blocks)
        if hi > lo
    }
    for _ in range(n_sweeps):
        # Jacobi round: all halos are read before any state mutates.
        halos = {
            r: (
                _halo(problem, blocks, states, r, "left"),
                _halo(problem, blocks, states, r, "right"),
            )
            for r in states
        }
        residual, work = sweeper.sweep()
        for r, state in states.items():
            res = problem.iterate(state, *halos[r])
            assert res.local_residual == residual[r]
            assert res.total_work == work[r]
            assert np.array_equal(
                problem.solution(state), sweeper.solution_block(r)
            )
        for r, (lo, hi) in enumerate(blocks):
            if hi == lo:  # a rank that migrated everything away
                assert residual[r] == 0.0 and work[r] == 0.0
                assert sweeper.solution_block(r).size == 0


@st.composite
def chain_partitions(draw, n_min=4, n_max=18, max_ranks=5):
    """A component count and a contiguous tiling of it, empties allowed."""
    n = draw(st.integers(n_min, n_max))
    n_ranks = draw(st.integers(1, max_ranks))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(0, n), min_size=n_ranks - 1, max_size=n_ranks - 1
            )
        )
    )
    bounds = [0, *cuts, n]
    return n, list(zip(bounds[:-1], bounds[1:]))


@settings(max_examples=40, deadline=None)
@given(
    part=chain_partitions(),
    n_steps=st.integers(4, 10),
    skip=st.booleans(),
    skip_threshold=st.sampled_from([1e-2, 1e-4]),
    refresh_period=st.integers(1, 4),
    jacobian_refresh=st.integers(1, 3),
    n_sweeps=st.integers(1, 6),
)
def test_brusselator_batched_equals_scalar(
    part, n_steps, skip, skip_threshold, refresh_period, jacobian_refresh,
    n_sweeps,
):
    n, blocks = part
    # t_end/n_steps keeps dt <= 0.25: large implicit Euler steps make
    # the inner Newton diverge (legitimately, in both paths).
    problem = BrusselatorProblem(
        n,
        t_end=1.0,
        n_steps=n_steps,
        newton_jacobian_refresh=jacobian_refresh,
        skip_converged=skip,
        skip_threshold=skip_threshold,
        refresh_period=refresh_period,
    )
    assert_batched_matches_scalar(problem, blocks, n_sweeps)


def test_brusselator_scalar_tail_and_empty_blocks():
    # Deterministic companion to the property test: blocks small enough
    # for the scalar Newton tail, plus one-component and empty blocks
    # in one partition, swept long enough for skipping to engage.
    problem = BrusselatorProblem(
        12,
        t_end=1.0,
        n_steps=6,
        skip_converged=True,
        skip_threshold=1e-3,
        refresh_period=3,
    )
    blocks = [(0, 1), (1, 1), (1, 5), (5, 6), (6, 6), (6, 12)]
    assert_batched_matches_scalar(problem, blocks, 25)


@settings(max_examples=25, deadline=None)
@given(part=chain_partitions(), n_sweeps=st.integers(1, 5))
def test_heat_batched_equals_scalar(part, n_sweeps):
    n, blocks = part
    problem = HeatProblem(n, n_steps=12)
    assert_batched_matches_scalar(problem, blocks, n_sweeps)


@settings(max_examples=25, deadline=None)
@given(
    part=chain_partitions(),
    velocity=st.sampled_from([0.0, 1.0]),
    n_sweeps=st.integers(1, 5),
)
def test_advection_batched_equals_scalar(part, velocity, n_sweeps):
    n, blocks = part
    problem = AdvectionDiffusionProblem(n, n_steps=10, velocity=velocity)
    assert_batched_matches_scalar(problem, blocks, n_sweeps)
