"""Tests for the Brusselator adaptive-skip extension.

The optimisation: components whose own and neighbouring residuals were
below ``skip_threshold`` keep their trajectory without recomputation
(cost 1 unit instead of ~n_steps·newton_iters), with one-hop-per-sweep
reactivation and a periodic safety refresh.  The paper's implementation
plausibly did the equivalent inside its Solve — it is what makes
converged regions nearly free and the residual a sharp load signal.
"""

import numpy as np
import pytest

from repro.problems.brusselator import BrusselatorProblem


def make(skip=True, **kw):
    defaults = dict(
        n_points=16, t_end=1.0, n_steps=10, skip_converged=skip,
        skip_threshold=1e-8, refresh_period=10,
    )
    defaults.update(kw)
    return BrusselatorProblem(**defaults)


def relax(p, st, sweeps, hl=None, hr=None):
    hl = hl if hl is not None else p.initial_halo(-1)
    hr = hr if hr is not None else p.initial_halo(p.n_components)
    res = None
    for _ in range(sweeps):
        res = p.iterate(st, hl, hr)
    return res


def test_validation():
    with pytest.raises(ValueError):
        make(skip_threshold=0.0)
    with pytest.raises(ValueError):
        make(refresh_period=0)


def test_skip_disabled_has_no_bookkeeping():
    p = make(skip=False)
    st = p.initial_state(0, 16)
    relax(p, st, 3)
    assert st.prev_res is None
    assert st.skip_streak is None


def test_converged_components_get_skipped_and_cost_one_unit():
    p = make()
    st = p.initial_state(0, 16)
    relax(p, st, 200)  # fully converged
    res = p.iterate(st, p.initial_halo(-1), p.initial_halo(16))
    # Interior fully quiet: everything skippable (modulo refresh).
    assert np.count_nonzero(res.work == 1.0) > 10
    assert res.local_residual < 1e-8


def test_skip_does_not_change_the_answer():
    ref = make(skip=False)
    st_ref = ref.initial_state(0, 16)
    relax(ref, st_ref, 200)
    p = make()
    st = p.initial_state(0, 16)
    relax(p, st, 200)
    assert np.max(np.abs(st.traj - st_ref.traj)) < 1e-9


def test_halo_change_reactivates_boundary_component():
    p = make()
    st = p.initial_state(0, 16)
    hl = p.initial_halo(-1)
    hr = p.initial_halo(16)
    relax(p, st, 200, hl, hr)
    res_quiet = p.iterate(st, hl, hr)
    assert res_quiet.work[0] == 1.0  # boundary component was skipped
    # Perturb the left halo: the leftmost component must recompute.
    hl_new = hl.copy()
    hl_new[0, :] += 0.05
    res = p.iterate(st, hl_new, hr)
    assert res.work[0] > 1.0
    # Its residual jumps back above the threshold.
    assert res.residuals[0] > p.skip_threshold


def test_reactivation_propagates_one_hop_per_sweep():
    p = make()
    st = p.initial_state(0, 16)
    hl = p.initial_halo(-1)
    hr = p.initial_halo(16)
    relax(p, st, 200, hl, hr)
    hl_new = hl.copy()
    hl_new[0, :] += 0.05
    first = p.iterate(st, hl_new, hr)
    second = p.iterate(st, hl_new, hr)
    # Sweep 1 recomputes component 0; by sweep 2 its change has made
    # component 1 non-skippable too.
    assert first.work[0] > 1.0
    assert second.work[1] > 1.0


def test_refresh_period_forces_recompute():
    p = make(refresh_period=3)
    st = p.initial_state(0, 16)
    relax(p, st, 200)
    hl = p.initial_halo(-1)
    hr = p.initial_halo(16)
    costs = []
    for _ in range(5):
        res = p.iterate(st, hl, hr)
        costs.append(res.work.copy())
    # Within any refresh_period+1 consecutive sweeps, every component
    # was recomputed at least once.
    window = np.array(costs[:4])
    assert np.all((window > 1.0).any(axis=0))


def test_migration_invalidates_skip_state():
    p = make()
    st = p.initial_state(0, 16)
    relax(p, st, 200)
    assert st.prev_res is not None
    payload = p.split(st, 4, "left")
    assert st.prev_res is None
    assert st.skip_streak is None
    p.merge(st, payload, "left")
    assert st.prev_res is None
    # Next sweep recomputes the whole block (no skips on unknown state).
    res = p.iterate(st, p.initial_halo(-1), p.initial_halo(16))
    assert np.all(res.work > 1.0)


def test_skip_saves_work_when_convergence_is_nonuniform():
    """Clamp one side's halo to a perturbed value: near that side the
    relaxation keeps working while the far side converges and skips."""
    p = make(n_points=32, refresh_period=10**6)
    st = p.initial_state(0, 32)
    hl = p.initial_halo(-1)
    hr = p.initial_halo(32)
    relax(p, st, 300, hl, hr)
    # Oscillating left halo: the left region stays busy forever.
    total_skipped = 0
    for k in range(10):
        hl_osc = hl.copy()
        hl_osc[0, :] += 0.02 * ((-1) ** k)
        res = p.iterate(st, hl_osc, hr)
        total_skipped += int(np.count_nonzero(res.work == 1.0))
    assert total_skipped > 5 * 10  # the right region skips repeatedly
