"""Tests for the topology-generic LB zoo driver (repro.balancing.zoo)."""

import numpy as np
import pytest

from repro.balancing.zoo import (
    ZOO_ALGORITHMS,
    ZOO_SCHEDULES,
    TriggerPolicy,
    ZooParams,
    initial_load,
    make_zoo_schedule,
    run_zoo,
)
from repro.topology.graphs import Topology, build_topology, spec_for_family


def _params(rounds=48, **kwargs):
    return ZooParams(rounds=rounds, **kwargs)


@pytest.mark.parametrize("algorithm", ZOO_ALGORITHMS)
@pytest.mark.parametrize("schedule_name", ZOO_SCHEDULES)
def test_every_algorithm_conserves_load_under_every_schedule(
    algorithm, schedule_name
):
    topo = build_topology(spec_for_family("torus", 16, seed=0))
    params = _params()
    schedule = make_zoo_schedule(schedule_name, topo, params.rounds, seed=1)
    # run_zoo asserts conservation internally every balancing step; a
    # completed run with a sane final imbalance is the pass signal.
    result = run_zoo(topo, algorithm, params=params, schedule=schedule, seed=1)
    assert result.final_imbalance >= 1.0 - 1e-9
    assert result.rounds == params.rounds
    assert result.checks == -(-params.rounds // params.trigger.check_every)


@pytest.mark.parametrize("algorithm", ZOO_ALGORITHMS)
def test_runs_are_deterministic(algorithm):
    topo = build_topology(spec_for_family("random_geometric", 12, seed=4))
    params = _params()
    schedule = make_zoo_schedule("link_flap", topo, params.rounds, seed=2)
    a = run_zoo(topo, algorithm, params=params, schedule=schedule, seed=2)
    b = run_zoo(topo, algorithm, params=params, schedule=schedule, seed=2)
    assert a.to_row() == b.to_row()


def test_trigger_threshold_gates_steps():
    topo = build_topology(spec_for_family("torus", 16, seed=0))
    # Threshold above the spike's imbalance (max/mean == n) -> never fires.
    lazy = ZooParams(
        rounds=32, trigger=TriggerPolicy(check_every=1, threshold=100.0)
    )
    result = run_zoo(topo, "diffusion", params=lazy, seed=0)
    assert result.triggers == 0
    assert result.volume == 0.0
    assert result.final_imbalance == pytest.approx(16.0)
    # Threshold 1.02 on the same spike -> fires until balanced.
    eager = ZooParams(
        rounds=32, trigger=TriggerPolicy(check_every=1, threshold=1.02)
    )
    result = run_zoo(topo, "diffusion", params=eager, seed=0)
    assert result.triggers > 0
    assert result.final_imbalance < 16.0


def test_trigger_check_every_skips_rounds():
    topo = build_topology(spec_for_family("ring", 8, seed=0))
    params = ZooParams(
        rounds=40, trigger=TriggerPolicy(check_every=8, threshold=1.02)
    )
    result = run_zoo(topo, "diffusion", params=params, seed=0)
    assert result.checks == 5
    assert result.triggers <= 5


def test_node_outage_freezes_the_node():
    topo = Topology.chain(6)
    params = _params(rounds=20)
    schedule = make_zoo_schedule("node_outage", topo, params.rounds, seed=3)
    assert len(schedule.node_outages) == 1
    result = run_zoo(topo, "diffusion", params=params, schedule=schedule, seed=3)
    # The run completes and stays conserved (asserted internally) even
    # though a node sat out a window with its load frozen.
    assert result.final_imbalance >= 1.0


def test_link_flap_schedule_targets_real_edges():
    topo = build_topology(spec_for_family("hypercube", 16, seed=0))
    schedule = make_zoo_schedule("link_flap", topo, 60, seed=5)
    edges = set(topo.edges())
    assert schedule.link_outages
    for outage in schedule.link_outages:
        assert (min(outage.u, outage.v), max(outage.u, outage.v)) in edges
        assert 0 <= outage.start < outage.end <= 60


def test_load_shock_raises_total_then_rebalances():
    topo = build_topology(spec_for_family("torus", 16, seed=0))
    params = _params(rounds=60)
    schedule = make_zoo_schedule("load_shock", topo, params.rounds, seed=1)
    assert len(schedule.shocks) == 2
    quiet = run_zoo(topo, "accelerated", params=params, seed=1)
    shocked = run_zoo(
        topo, "accelerated", params=params, schedule=schedule, seed=1
    )
    # The shocks show up as extra transfer volume and a higher peak.
    assert shocked.volume > quiet.volume
    assert shocked.peak_imbalance > 1.0


def test_wan_edges_cost_more_on_hierarchies():
    topo = build_topology(spec_for_family("hierarchy", 16, seed=0))
    params = _params()
    result = run_zoo(topo, "diffusion", params=params, seed=0)
    assert result.wan_volume > 0.0
    # Every WAN unit is charged wan_cost, LAN units cost 1.
    lan_volume = result.volume - result.wan_volume
    expected = lan_volume + params.wan_cost * result.wan_volume
    assert result.comm_cost == pytest.approx(expected)


def test_accelerated_limiter_keeps_loads_nonnegative():
    # A chain spike is the worst case for momentum overdraw.
    topo = Topology.chain(8)
    params = ZooParams(
        rounds=80, trigger=TriggerPolicy(check_every=1, threshold=1.01)
    )
    result = run_zoo(topo, "accelerated", params=params, seed=0)
    # The imbalance metric is only meaningful for nonnegative loads; a
    # negative mean would have poisoned it.  The history must always be
    # >= 1 (max/mean of a nonnegative vector).
    assert all(h >= 1.0 - 1e-9 for h in result.history)
    assert result.final_imbalance < 2.0


def test_initial_load_kinds():
    topo = build_topology(spec_for_family("torus", 16, seed=0))
    for kind in ("spike", "uniform", "bimodal"):
        load = initial_load(topo, kind, seed=3)
        assert load.shape == (16,)
        assert np.all(load >= 0.0)
        assert load.sum() == pytest.approx(8.0 * 16)
    assert initial_load(topo, "spike")[0] == pytest.approx(128.0)
    with pytest.raises(ValueError):
        initial_load(topo, "gaussian")


def test_unknown_algorithm_and_schedule_raise():
    topo = Topology.chain(4)
    with pytest.raises(ValueError):
        run_zoo(topo, "simulated_annealing", params=_params(rounds=2))
    with pytest.raises(ValueError):
        make_zoo_schedule("meteor_strike", topo, 10)


def test_params_validation():
    with pytest.raises(ValueError):
        ZooParams(rounds=0)
    with pytest.raises(ValueError):
        ZooParams(threshold_ratio=1.0)
    with pytest.raises(ValueError):
        ZooParams(accuracy=0.0)
    with pytest.raises(ValueError):
        TriggerPolicy(check_every=0)
    with pytest.raises(ValueError):
        TriggerPolicy(threshold=0.9)


def test_centralized_routes_through_the_graph():
    # On a chain, moving the spike from node 0 to node 5 must traverse
    # every intermediate edge: volume counts each hop.
    topo = Topology.chain(6)
    params = ZooParams(
        rounds=4, trigger=TriggerPolicy(check_every=1, threshold=1.02)
    )
    result = run_zoo(topo, "centralized", params=params, seed=0)
    # Balancing the spike needs sum over dst of amount*hops; direct
    # endpoint-to-endpoint accounting would report only ~40 units.
    direct_total = 8.0 * 6 - 8.0  # everything except node 0's fair share
    assert result.volume > direct_total
    assert result.final_imbalance == pytest.approx(1.0)


def test_reactive_residual_levels_a_two_node_imbalance():
    topo = Topology.chain(2)
    params = ZooParams(
        rounds=40, trigger=TriggerPolicy(check_every=1, threshold=1.02)
    )
    result = run_zoo(topo, "reactive_residual", params=params, seed=0)
    assert result.final_imbalance < 1.1


def test_value_corruption_lies_change_decisions_but_conserve_load():
    topo = build_topology(spec_for_family("torus", 16, seed=0))
    params = _params(rounds=60)
    schedule = make_zoo_schedule("value_corruption", topo, params.rounds, seed=7)
    assert len(schedule.corruptions) == 2
    over, under = schedule.corruptions
    assert over.factor > 1.0 > under.factor
    assert over.node != under.node
    for lie in schedule.corruptions:
        assert 0 <= lie.node < 16
        assert 0 <= lie.start < lie.end <= params.rounds
    honest = run_zoo(topo, "diffusion", params=params, seed=7)
    lied = run_zoo(topo, "diffusion", params=params, schedule=schedule, seed=7)
    # The lies changed balancing decisions (run_zoo asserts the true
    # total stayed conserved every step of both runs)...
    assert lied.to_row() != honest.to_row()
    # ...and the forced outflow limiter kept true loads nonnegative:
    # max/mean of a nonnegative vector is always >= 1.
    assert all(h >= 1.0 - 1e-9 for h in lied.history)
