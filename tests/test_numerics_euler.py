"""Tests for implicit Euler integrators (dense and banded)."""

import numpy as np
import pytest

from repro.numerics.euler import implicit_euler_banded, implicit_euler_dense


def test_scalar_decay_matches_backward_euler_formula():
    # y' = -2y: backward Euler gives y_k = y0 / (1 + 2 dt)^k.
    lam = 2.0
    t = np.linspace(0, 1, 11)
    dt = t[1] - t[0]
    traj = implicit_euler_dense(
        lambda tt, y: -lam * y,
        lambda tt, y: np.array([[-lam]]),
        np.array([1.0]),
        t,
    )
    expected = 1.0 / (1.0 + lam * dt) ** np.arange(11)
    assert np.allclose(traj[:, 0], expected, atol=1e-9)


def test_linear_system_against_expm_like_reference():
    # Stiff linear system: y' = A y; implicit Euler == (I - dt A)^-1 step.
    a = np.array([[-5.0, 1.0], [0.0, -0.5]])
    t = np.linspace(0, 1, 21)
    dt = t[1] - t[0]
    traj = implicit_euler_dense(
        lambda tt, y: a @ y, lambda tt, y: a, np.array([1.0, 1.0]), t
    )
    step = np.linalg.inv(np.eye(2) - dt * a)
    y = np.array([1.0, 1.0])
    for k in range(1, 21):
        y = step @ y
        assert np.allclose(traj[k], y, atol=1e-9)


def test_first_row_is_initial_condition():
    t = np.linspace(0, 1, 5)
    traj = implicit_euler_dense(
        lambda tt, y: -y, lambda tt, y: -np.eye(1), np.array([7.0]), t
    )
    assert traj[0, 0] == 7.0


def test_grid_validation():
    with pytest.raises(ValueError):
        implicit_euler_dense(
            lambda t, y: y, lambda t, y: np.eye(1), np.array([1.0]), np.array([0.0])
        )
    with pytest.raises(ValueError):
        implicit_euler_dense(
            lambda t, y: y,
            lambda t, y: np.eye(1),
            np.array([1.0]),
            np.array([0.0, 0.0, 1.0]),
        )


@pytest.mark.parametrize("backend", ["native", "scipy"])
def test_banded_matches_dense_on_heat_chain(backend):
    if backend == "scipy":
        pytest.importorskip("scipy")
    # y' = L y with L the 1-D Laplacian: tridiagonal, kl = ku = 1.
    n = 12
    main = -2.0 * np.ones(n)
    off = np.ones(n - 1)
    lap = np.diag(main) + np.diag(off, 1) + np.diag(off, -1)

    def rhs(t, y):
        return lap @ y

    def jac_dense(t, y):
        return lap

    def jac_banded(t, y):
        bands = np.zeros((3, n))
        bands[0, 1:] = off
        bands[1, :] = main
        bands[2, :-1] = off
        return bands

    y0 = np.sin(np.linspace(0, np.pi, n))
    t = np.linspace(0, 0.5, 26)
    dense = implicit_euler_dense(rhs, jac_dense, y0, t)
    banded = implicit_euler_banded(rhs, jac_banded, 1, 1, y0, t, backend=backend)
    assert np.allclose(dense, banded, atol=1e-8)


def test_nonlinear_banded_newton_converges():
    # y'_i = -y_i^3 (diagonal, nonlinear): banded with kl=ku=0.
    n = 4

    def rhs(t, y):
        return -(y**3)

    def jac_banded(t, y):
        return (-3.0 * y**2)[None, :]

    y0 = np.full(n, 2.0)
    t = np.linspace(0, 1, 11)
    traj = implicit_euler_banded(rhs, jac_banded, 0, 0, y0, t, backend="native")
    # Monotone decay towards zero, no blow-up.
    assert np.all(np.diff(traj[:, 0]) < 0)
    assert traj[-1, 0] > 0
