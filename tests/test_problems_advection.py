"""Tests for the advection-diffusion waveform relaxation."""

import numpy as np
import pytest

from repro.core import SolverConfig, run_aiac
from repro.grid import homogeneous_cluster
from repro.problems.advection import AdvectionDiffusionProblem


@pytest.fixture(scope="module")
def problem():
    return AdvectionDiffusionProblem(
        24, velocity=1.0, kappa=0.01, t_end=0.3, n_steps=30
    )


def test_initial_condition_is_a_pulse(problem):
    st = problem.initial_state(0, 24)
    u0 = st.traj[:, 0]
    peak = np.argmax(u0)
    x = problem.x_grid()
    assert abs(x[peak] - problem.pulse_center) < 0.06
    assert u0[peak] > 10 * u0[-1]


def test_single_block_converges_to_reference(problem):
    st = problem.initial_state(0, 24)
    hl = problem.initial_halo(-1)
    hr = problem.initial_halo(24)
    for _ in range(500):
        res = problem.iterate(st, hl, hr)
        if res.local_residual < 1e-12:
            break
    ref = problem.reference_solution()
    assert np.max(np.abs(st.traj - ref)) < 1e-9


def test_pulse_travels_downstream(problem):
    ref = problem.reference_solution()
    x = problem.x_grid()
    start_peak = x[np.argmax(ref[:, 0])]
    end_peak = x[np.argmax(ref[:, -1])]
    assert end_peak > start_peak + 0.1  # advection moved the pulse right


def test_activity_concentrates_near_the_pulse_path(problem):
    st = problem.initial_state(0, 24)
    hl = problem.initial_halo(-1)
    hr = problem.initial_halo(24)
    for _ in range(300):
        problem.iterate(st, hl, hr)
    activity = problem.activity_profile(st)
    # Components far downstream of the pulse's reach barely move.
    assert activity.max() > 20 * (activity[-1] + 1e-12)


def test_asymmetric_coupling_left_dominates(problem):
    """Upwind: perturbing the left halo matters far more than the right."""
    base = problem.initial_state(0, 24)
    hl = problem.initial_halo(-1)
    hr = problem.initial_halo(24)
    for _ in range(300):
        problem.iterate(base, hl, hr)
    converged = base.traj.copy()

    def perturb(side):
        st = problem.initial_state(0, 24)
        st.traj = converged.copy()
        halo = np.full((1, problem.n_steps + 1), 0.1)
        if side == "left":
            res = problem.iterate(st, halo, hr)
        else:
            res = problem.iterate(st, hl, halo)
        return res.local_residual

    # Left coefficient = adv + dif = 0.3125, right = dif = 0.0625:
    # a 5x asymmetry in the immediate response.
    assert perturb("left") > 4.5 * perturb("right")


def test_parallel_solve_matches_reference(problem):
    plat = homogeneous_cluster(3, speed=5000.0)
    fresh = AdvectionDiffusionProblem(
        24, velocity=1.0, kappa=0.01, t_end=0.3, n_steps=30
    )
    r = run_aiac(fresh, plat, SolverConfig(tolerance=1e-10, max_iterations=20000))
    assert r.converged
    assert r.max_error_vs(problem.reference_solution()) < 1e-7


def test_split_merge_roundtrip(problem):
    st = problem.initial_state(0, 24)
    original = st.traj.copy()
    payload = problem.split(st, 7, "right")
    problem.merge(st, payload, "right")
    assert np.array_equal(st.traj, original)


def test_validation():
    with pytest.raises(ValueError):
        AdvectionDiffusionProblem(0)
    with pytest.raises(ValueError):
        AdvectionDiffusionProblem(10, kappa=0.0)
    with pytest.raises(ValueError):
        AdvectionDiffusionProblem(10, velocity=-1.0)


def test_pure_diffusion_limit_is_symmetric():
    p = AdvectionDiffusionProblem(16, velocity=0.0, kappa=0.05, t_end=0.1, n_steps=20)
    assert p.adv == 0.0
    st = p.initial_state(0, 16)
    for _ in range(400):
        res = p.iterate(st, p.initial_halo(-1), p.initial_halo(16))
    assert res.local_residual < 1e-12
    assert np.max(np.abs(st.traj - p.reference_solution())) < 1e-9