"""Differential tests: the lockstep SISC replay vs the reference DES run.

``run_sisc_batched`` promises *bit-identical* results to ``run_sisc``
whenever its preconditions hold.  These tests hold it to that promise
across the tricky regimes — heterogeneous speeds, forced exact-time
ties on homogeneous clusters, 1–2 rank chains, horizon/abort
truncations, permuted host orders — comparing not just the numerical
answer but the tracer's span records, the dispatched-event count and
the guard's observation stream.
"""

import numpy as np
import pytest

from repro.core import SolverConfig
from repro.core.solver import build_chain
from repro.des import Barrier
from repro.grid import homogeneous_cluster
from repro.grid.host import Host
from repro.grid.link import Link
from repro.grid.network import Network
from repro.grid.platform import Platform
from repro.guard import GuardConfig, InvariantMonitor
from repro.models import run_sisc, run_sisc_batched
from repro.models.sisc import _sisc_process
from repro.analysis.perf import run_fingerprint
from repro.problems import SyntheticProblem
from repro.problems.advection import AdvectionDiffusionProblem
from repro.problems.brusselator import BrusselatorProblem
from repro.problems.heat import HeatProblem


def hetero_platform(speeds=(200.0, 130.0, 100.0, 170.0), latency=0.02):
    net = Network(Link(latency=latency, bandwidth=1e6))
    hosts = [Host(f"h{i}", speed=s) for i, s in enumerate(speeds)]
    return Platform(hosts=hosts, network=net)


def hard_problem(n=64):
    return SyntheticProblem.with_hard_region(n, easy_rate=0.5, hard_rate=0.9)


def assert_same_run(ref, fast):
    """Field-by-field bit-identity of two RunResults."""
    assert fast.meta["engine"] == "lockstep"  # no silent fallback
    assert ref.converged == fast.converged
    assert ref.time == fast.time
    assert list(ref.iterations) == list(fast.iterations)
    assert list(ref.work) == list(fast.work)
    for a, b in zip(ref.solution_blocks, fast.solution_blocks):
        assert np.array_equal(a, b)
    assert list(ref.final_partition) == list(fast.final_partition)
    assert list(ref.residuals_at_stop) == list(fast.residuals_at_stop)
    # Tracer span records (frozen dataclasses): same spans, same order.
    assert ref.tracer.iterations == fast.tracer.iterations
    assert ref.tracer.residuals == fast.tracer.residuals
    assert ref.tracer.messages == fast.tracer.messages
    assert ref.tracer.idles == fast.tracer.idles
    for r in range(ref.n_ranks):
        assert ref.tracer.busy_time_of(r) == fast.tracer.busy_time_of(r)
        assert ref.tracer.idle_time_of(r) == fast.tracer.idle_time_of(r)
    assert ref.tracer.n_messages() == fast.tracer.n_messages()
    skip = ("engine", "events_dispatched")
    assert {k: v for k, v in ref.meta.items() if k not in skip} == {
        k: v for k, v in fast.meta.items() if k not in skip
    }
    assert run_fingerprint(ref) == run_fingerprint(fast)


CASES = {
    "hetero": (
        hard_problem(),
        hetero_platform(),
        SolverConfig(tolerance=1e-8),
    ),
    # Homogeneous + equal blocks: every rank ties every round, the
    # all-vectorised tie-resolution path.
    "homo_ties": (
        hard_problem(),
        homogeneous_cluster(8, speed=500.0),
        SolverConfig(tolerance=1e-8),
    ),
    "single_rank": (
        hard_problem(16),
        homogeneous_cluster(1, speed=500.0),
        SolverConfig(tolerance=1e-8),
    ),
    "two_ranks": (
        hard_problem(18),
        hetero_platform(speeds=(150.0, 100.0)),
        SolverConfig(tolerance=1e-8),
    ),
    "persistence": (
        hard_problem(),
        hetero_platform(),
        SolverConfig(tolerance=1e-6, persistence=3),
    ),
    "horizon": (
        hard_problem(),
        hetero_platform(),
        SolverConfig(tolerance=1e-12, max_time=2.5),
    ),
    "horizon_ties": (
        hard_problem(),
        homogeneous_cluster(6, speed=400.0),
        SolverConfig(tolerance=1e-12, max_time=1.0),
    ),
    "abort": (
        hard_problem(),
        hetero_platform(),
        SolverConfig(tolerance=1e-12, max_iterations=40),
    ),
    "no_trace": (
        hard_problem(),
        hetero_platform(),
        SolverConfig(tolerance=1e-8, trace=False),
    ),
    "min_sweep_duration": (
        hard_problem(),
        hetero_platform(),
        SolverConfig(tolerance=1e-8, min_sweep_duration=0.05),
    ),
    "uneven_blocks": (
        hard_problem(61),  # 61 over 4 ranks: per-slice reduction path
        hetero_platform(),
        SolverConfig(tolerance=1e-8),
    ),
    # The real PDE problems through their rank-batched Newton / linear
    # chain sweepers (not the synthetic closed form).
    "brusselator": (
        BrusselatorProblem(24, t_end=1.0, n_steps=8),
        hetero_platform(),
        SolverConfig(tolerance=1e-6),
    ),
    "brusselator_skip": (
        BrusselatorProblem(
            24, t_end=1.0, n_steps=8,
            skip_converged=True, skip_threshold=1e-4, refresh_period=5,
        ),
        hetero_platform(),
        SolverConfig(tolerance=1e-6),
    ),
    "heat": (
        HeatProblem(32, n_steps=10),
        hetero_platform(),
        SolverConfig(tolerance=1e-7),
    ),
    "advection": (
        AdvectionDiffusionProblem(32, n_steps=10),
        hetero_platform(),
        SolverConfig(tolerance=1e-7),
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_lockstep_matches_reference(name):
    problem, platform, cfg = CASES[name]
    ref = run_sisc(problem, platform, cfg)
    fast = run_sisc_batched(problem, platform, cfg)
    assert_same_run(ref, fast)


def test_lockstep_matches_reference_host_order_permutation():
    problem, platform = hard_problem(), hetero_platform()
    cfg = SolverConfig(tolerance=1e-8)
    order = [2, 0, 3, 1]
    ref = run_sisc(problem, platform, cfg, host_order=order)
    fast = run_sisc_batched(problem, platform, cfg, host_order=order)
    assert_same_run(ref, fast)


def _reference_events(problem, platform, cfg):
    """run_sisc, but keeping the simulator to read its event counter."""
    run = build_chain(problem, platform, cfg, model="sisc")
    barrier = Barrier(run.n_ranks, name="sisc")
    for ctx in run.ranks:
        run.sim.spawn(f"sisc-rank-{ctx.rank}", _sisc_process(run, ctx, barrier))
    run.run()
    return run.result(), run.sim.n_dispatched


@pytest.mark.parametrize(
    "name", ["hetero", "homo_ties", "two_ranks", "horizon", "abort"]
)
def test_lockstep_event_count_matches_reference(name):
    problem, platform, cfg = CASES[name]
    ref, ref_events = _reference_events(problem, platform, cfg)
    fast = run_sisc_batched(problem, platform, cfg)
    assert fast.meta["engine"] == "lockstep"
    assert fast.meta["events_dispatched"] == ref_events
    assert run_fingerprint(ref) == run_fingerprint(fast)


@pytest.mark.parametrize("name", ["hetero", "homo_ties", "abort"])
def test_lockstep_guard_parity(name):
    """The guard observes the identical event/check stream either way."""
    problem, platform, cfg = CASES[name]
    gcfg = GuardConfig(check_every=16)
    g_ref = InvariantMonitor(gcfg)
    g_fast = InvariantMonitor(gcfg)
    ref = run_sisc(problem, platform, cfg, guard=g_ref)
    fast = run_sisc_batched(problem, platform, cfg, guard=g_fast)
    assert fast.meta["engine"] == "lockstep"
    assert g_ref.events_seen == g_fast.events_seen
    assert g_ref.checks_run == g_fast.checks_run
    assert g_ref.stats() == g_fast.stats()
    v_ref = g_ref.verify_halt()
    v_fast = g_fast.verify_halt()
    assert v_ref == v_fast
    assert run_fingerprint(ref) == run_fingerprint(fast)


def test_lockstep_brusselator_fingerprint_at_256_ranks():
    """The CI-sized version of the BENCH_scale Brusselator criterion:
    256 ranks of real PDE numerics, lockstep vs event-driven, identical
    fingerprint at the round cap."""
    from dataclasses import replace

    from repro.workloads import ScaleScenario

    scenario = ScaleScenario.brusselator_smoke()
    cfg = replace(scenario.solver_config(), max_iterations=12)
    fast = run_sisc_batched(scenario.problem(), scenario.platform(), cfg)
    assert fast.meta["engine"] == "lockstep"
    ref = run_sisc(scenario.problem(), scenario.platform(), cfg)
    assert run_fingerprint(ref) == run_fingerprint(fast)


def test_lockstep_fallback_is_observable(caplog):
    """A fallback must be loud: logged, counted on the metrics registry
    with the gate's reason string — and still fingerprint-identical."""
    import logging

    from repro.obs import MetricsRegistry

    problem, platform = hard_problem(), hetero_platform()
    cfg = SolverConfig(tolerance=1e-8, detection="token_ring")
    registry = MetricsRegistry()
    with caplog.at_level(logging.INFO, logger="repro.models.lockstep"):
        fast = run_sisc_batched(problem, platform, cfg, metrics=registry)
    assert fast.meta.get("engine") != "lockstep"
    counter = registry.counter(
        "lockstep.fallback_reason",
        reason="detection:token_ring",
        problem=problem.name,
    )
    assert counter.value == 1
    assert any(
        "falling back to the event-driven engine" in r.getMessage()
        for r in caplog.records
    )
    ref = run_sisc(problem, platform, cfg)
    assert run_fingerprint(ref) == run_fingerprint(fast)


def test_lockstep_no_fallback_counter_on_the_fast_path():
    from repro.obs import MetricsRegistry

    problem, platform, cfg = CASES["hetero"]
    registry = MetricsRegistry()
    fast = run_sisc_batched(problem, platform, cfg, metrics=registry)
    assert fast.meta["engine"] == "lockstep"
    assert len(registry) == 0  # nothing counted on the fast path


def test_lockstep_falls_back_without_oracle_detection():
    problem, platform = hard_problem(), hetero_platform()
    cfg = SolverConfig(tolerance=1e-8, detection="token_ring")
    ref = run_sisc(problem, platform, cfg)
    fast = run_sisc_batched(problem, platform, cfg)
    assert fast.meta.get("engine") != "lockstep"
    assert run_fingerprint(ref) == run_fingerprint(fast)


def test_lockstep_falls_back_with_stall_watchdog():
    problem, platform = hard_problem(), hetero_platform()
    cfg = SolverConfig(tolerance=1e-8)
    guard = InvariantMonitor(GuardConfig(stall_horizon=50.0))
    fast = run_sisc_batched(problem, platform, cfg, guard=guard)
    assert fast.meta.get("engine") != "lockstep"
    ref = run_sisc(problem, platform, cfg)
    assert run_fingerprint(ref) == run_fingerprint(fast)


# ----------------------------------------------------------------------
# The rank-batched sweeper itself: one global vectorised sweep must
# reproduce the per-rank scalar path bit for bit.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "blocks",
    [
        [(0, 16), (16, 32), (32, 48)],  # equal widths: reshape reduction
        [(0, 7), (7, 19), (19, 48)],  # unequal: per-slice reduction
        [(0, 48)],  # single rank
    ],
)
def test_batched_sweeper_matches_scalar_iterate(blocks):
    problem = hard_problem(48)
    sweeper = problem.batched_chain_sweeper(blocks)
    states = [problem.initial_state(lo, hi) for lo, hi in blocks]
    last = len(blocks) - 1
    for _ in range(12):
        residual, work = sweeper.sweep()
        # Jacobi round: gather all halos before any state mutates.
        halos = [
            (
                problem.initial_halo(-1)
                if r == 0
                else np.array([states[r - 1].e[-1]]),
                problem.initial_halo(problem.n_components)
                if r == last
                else np.array([states[r + 1].e[0]]),
            )
            for r in range(len(blocks))
        ]
        for r, (state, (left, right)) in enumerate(zip(states, halos)):
            res = problem.iterate(state, left, right)
            assert res.local_residual == residual[r]
            assert res.total_work == work[r]
        for r in range(len(blocks)):
            assert np.array_equal(sweeper.solution_block(r), states[r].e)


def test_run_fingerprint_ignores_engine_meta():
    problem, platform, cfg = CASES["hetero"]
    fast = run_sisc_batched(problem, platform, cfg)
    fp = run_fingerprint(fast)
    fast.meta["engine"] = "something-else"
    fast.meta["events_dispatched"] = -1
    assert run_fingerprint(fast) == fp
    fast.meta["aborted_reason"] = "tampered"
    assert run_fingerprint(fast) != fp
