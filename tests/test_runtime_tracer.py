"""Tests for the execution tracer."""

from repro.runtime.tracer import (
    FaultRecord,
    IdleSpan,
    IterationSpan,
    MessageRecord,
    MigrationRecord,
    ResidualRecord,
    Tracer,
)


def test_busy_and_idle_accounting():
    t = Tracer()
    t.iteration(IterationSpan(rank=0, iteration=0, t0=0.0, t1=2.0, work=10))
    t.iteration(IterationSpan(rank=0, iteration=1, t0=3.0, t1=5.0, work=10))
    t.iteration(IterationSpan(rank=1, iteration=0, t0=0.0, t1=1.0, work=5))
    t.idle(IdleSpan(rank=0, t0=2.0, t1=3.0, reason="barrier"))
    assert t.busy_time_of(0) == 4.0
    assert t.busy_time_of(1) == 1.0
    assert t.idle_time_of(0) == 1.0
    assert t.idle_time_of(1) == 0.0
    assert len(t.iterations_of(0)) == 2
    assert t.iteration_count_of(0) == 2
    assert t.iteration_count_of(1) == 1


def test_disabled_tracer_gates_all_lists_but_keeps_aggregates():
    """The disabled-mode contract: no record list accumulates (including
    migrations and faults, which used to leak), while every aggregate
    query stays correct."""
    t = Tracer(enabled=False)
    t.iteration(IterationSpan(0, 0, 0.0, 1.5, 1))
    t.idle(IdleSpan(0, 1.5, 2.0, "barrier"))
    t.residual(ResidualRecord(0, 0, 1.0, 0.5, 10))
    t.message(MessageRecord("halo_from_left", 0, 1, 64.0, 0.0, 0.1))
    t.migration(MigrationRecord(0, 1, 5, 2.0, 0.9, 0.1))
    t.fault(FaultRecord(kind="crash", time=3.0, t_end=4.0, rank=0))
    # All lists empty, uniformly.
    assert t.iterations == []
    assert t.idles == []
    assert t.residuals == []
    assert t.messages == []
    assert t.migrations == []
    assert t.faults == []
    # Aggregates are always on.
    assert t.busy_time_of(0) == 1.5
    assert t.idle_time_of(0) == 0.5
    assert t.iteration_count_of(0) == 1
    assert t.n_messages() == 1
    assert t.n_migrations() == 1
    assert t.components_migrated() == 5
    assert t.n_faults() == 1


def test_enabled_tracer_records_everything():
    t = Tracer()
    t.migration(MigrationRecord(0, 1, 5, 2.0, 0.9, 0.1))
    t.fault(FaultRecord(kind="crash", time=3.0, t_end=4.0, rank=0))
    assert len(t.migrations) == 1
    assert len(t.faults) == 1
    assert t.n_migrations() == 1
    assert t.n_faults() == 1


def test_migration_aggregates():
    t = Tracer()
    t.migration(MigrationRecord(0, 1, 5, 1.0, 0.9, 0.1))
    t.migration(MigrationRecord(2, 1, 3, 2.0, 0.8, 0.2))
    assert t.n_migrations() == 2
    assert t.components_migrated() == 8


def test_export_metrics_identical_for_enabled_and_disabled():
    """export_metrics depends only on the aggregates, so an enabled and
    a disabled tracer fed the same records export the same snapshot."""
    from repro.obs.registry import MetricsRegistry

    def feed(t):
        t.iteration(IterationSpan(0, 0, 0.0, 2.0, 10))
        t.iteration(IterationSpan(1, 0, 0.0, 1.0, 5))
        t.idle(IdleSpan(1, 1.0, 1.5, "wait"))
        t.message(MessageRecord("halo_from_left", 0, 1, 64.0, 0.0, 0.1))
        t.migration(MigrationRecord(0, 1, 4, 2.0, 0.9, 0.1))
        t.fault(FaultRecord(kind="crash", time=3.0, t_end=4.0, rank=0))

    on, off = Tracer(enabled=True), Tracer(enabled=False)
    feed(on)
    feed(off)
    reg_on, reg_off = MetricsRegistry(), MetricsRegistry()
    on.export_metrics(reg_on, run="r")
    off.export_metrics(reg_off, run="r")
    assert reg_on.snapshot() == reg_off.snapshot()
    names = {r["name"] for r in reg_on.snapshot()}
    assert {
        "trace.busy_time",
        "trace.idle_time",
        "trace.iterations",
        "trace.messages",
        "trace.message_bytes",
        "trace.faults",
        "trace.migrations",
        "trace.components_migrated",
    } <= names
