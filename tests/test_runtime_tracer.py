"""Tests for the execution tracer."""

from repro.runtime.tracer import (
    IdleSpan,
    IterationSpan,
    MigrationRecord,
    ResidualRecord,
    Tracer,
)


def test_busy_and_idle_accounting():
    t = Tracer()
    t.iteration(IterationSpan(rank=0, iteration=0, t0=0.0, t1=2.0, work=10))
    t.iteration(IterationSpan(rank=0, iteration=1, t0=3.0, t1=5.0, work=10))
    t.iteration(IterationSpan(rank=1, iteration=0, t0=0.0, t1=1.0, work=5))
    t.idle(IdleSpan(rank=0, t0=2.0, t1=3.0, reason="barrier"))
    assert t.busy_time_of(0) == 4.0
    assert t.busy_time_of(1) == 1.0
    assert t.idle_time_of(0) == 1.0
    assert t.idle_time_of(1) == 0.0
    assert len(t.iterations_of(0)) == 2


def test_disabled_tracer_skips_detail_but_keeps_migrations():
    t = Tracer(enabled=False)
    t.iteration(IterationSpan(0, 0, 0.0, 1.0, 1))
    t.residual(ResidualRecord(0, 0, 1.0, 0.5, 10))
    t.migration(MigrationRecord(0, 1, 5, 2.0, 0.9, 0.1))
    assert t.iterations == []
    assert t.residuals == []
    assert t.n_migrations() == 1
    assert t.components_migrated() == 5


def test_migration_aggregates():
    t = Tracer()
    t.migration(MigrationRecord(0, 1, 5, 1.0, 0.9, 0.1))
    t.migration(MigrationRecord(2, 1, 3, 2.0, 0.8, 0.2))
    assert t.n_migrations() == 2
    assert t.components_migrated() == 8
