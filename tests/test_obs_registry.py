"""Tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.obs.registry import DEFAULT_BUCKETS, Histogram, MetricsRegistry


def test_counter_accumulates_and_rejects_negative():
    reg = MetricsRegistry()
    c = reg.counter("sends", rank=0)
    c.inc()
    c.inc(2.5)
    c.add(1.5)
    assert c.value == 5.0
    with pytest.raises(ValueError, match="cannot decrease"):
        c.inc(-1.0)


def test_get_or_create_is_keyed_by_name_and_labels():
    reg = MetricsRegistry()
    a = reg.counter("sends", rank=0)
    b = reg.counter("sends", rank=0)
    c = reg.counter("sends", rank=1)
    d = reg.counter("retries", rank=0)
    assert a is b
    assert a is not c and a is not d
    assert len(reg) == 3


def test_label_order_does_not_matter():
    reg = MetricsRegistry()
    a = reg.counter("m", rank=0, channel="halo")
    b = reg.counter("m", channel="halo", rank=0)
    assert a is b


def test_type_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("x", rank=0)
    with pytest.raises(TypeError, match="already registered as Counter"):
        reg.gauge("x", rank=0)


def test_gauge_keeps_last_value():
    reg = MetricsRegistry()
    g = reg.gauge("residual", rank=2)
    g.set(1.0)
    g.set(0.25)
    assert g.value == 0.25
    assert g.to_record()["type"] == "gauge"


def test_histogram_bucketing_and_overflow():
    reg = MetricsRegistry()
    h = reg.histogram("t", buckets=(1.0, 10.0), rank=0)
    for v in (0.5, 1.0, 5.0, 100.0):
        h.observe(v)
    # Inclusive upper bounds: 1.0 lands in the first bucket.
    assert h.counts == [2, 1, 1]
    assert h.count == 4
    assert h.total == pytest.approx(106.5)
    assert sum(h.counts) == h.count


def test_histogram_rejects_non_finite_and_bad_buckets():
    reg = MetricsRegistry()
    h = reg.histogram("t", buckets=(1.0,))
    with pytest.raises(ValueError, match="non-finite"):
        h.observe(float("nan"))
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram("bad", {}, (1.0, 1.0))
    with pytest.raises(ValueError, match="at least one bucket"):
        Histogram("empty", {}, ())


def test_histogram_bucket_mismatch_raises():
    reg = MetricsRegistry()
    reg.histogram("t", buckets=(1.0, 2.0), rank=0)
    with pytest.raises(ValueError, match="already registered"):
        reg.histogram("t", buckets=(1.0, 3.0), rank=0)


def test_histogram_merge_counts():
    reg = MetricsRegistry()
    h = reg.histogram("t", buckets=(1.0, 10.0))
    h.observe(0.5)
    h.merge_counts([1, 2, 0], total=7.0, count=3)
    assert h.counts == [2, 2, 0]
    assert h.count == 4
    with pytest.raises(ValueError, match="bucket"):
        h.merge_counts([1, 2], total=1.0, count=3)


def test_snapshot_is_sorted_and_insertion_order_independent():
    reg1 = MetricsRegistry()
    reg1.counter("b", rank=1).inc(2)
    reg1.counter("a", rank=0).inc(1)
    reg1.gauge("b", rank=0).set(3.0)

    reg2 = MetricsRegistry()
    reg2.gauge("b", rank=0).set(3.0)
    reg2.counter("a", rank=0).inc(1)
    reg2.counter("b", rank=1).inc(2)

    assert reg1.snapshot() == reg2.snapshot()
    assert reg1.digest() == reg2.digest()
    names = [r["name"] for r in reg1.snapshot()]
    assert names == sorted(names)


def test_digest_changes_with_values():
    reg = MetricsRegistry()
    reg.counter("a").inc()
    d1 = reg.digest()
    reg.counter("a").inc()
    assert reg.digest() != d1


def test_default_buckets_are_strictly_increasing():
    assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
