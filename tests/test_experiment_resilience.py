"""End-to-end tests for the resilience experiment sweep."""

import json

import pytest

from repro.analysis.perf import stable_digest
from repro.experiments import run_resilience
from repro.workloads import ResilienceScenario


@pytest.fixture(scope="module")
def tiny_result():
    return run_resilience(ResilienceScenario.tiny())


def test_sweep_covers_every_schedule_model_pair(tiny_result):
    scenario = ResilienceScenario.tiny()
    seen = {(row["schedule"], row["model"]) for row in tiny_result.rows}
    expected = {
        (s, m) for s in scenario.schedule_names for m in scenario.models
    }
    assert seen == expected


def test_headline_row_converges_correctly(tiny_result):
    scenario = ResilienceScenario.tiny()
    row = tiny_result.row(scenario.headline, "aiac+lb")
    assert row is not None
    assert row["converged"]
    assert row["max_error"] < 1e-3
    assert row["crashes"] == 1
    assert row["restarts"] == 1


def test_sweep_is_deterministic(tiny_result):
    again = run_resilience(ResilienceScenario.tiny())
    assert again.digest() == tiny_result.digest()
    assert again.rows == tiny_result.rows


def test_report_carries_digest_and_fault_overlay(tiny_result):
    report = tiny_result.report()
    assert tiny_result.digest() in report
    # The headline Gantt must overlay the injected crash window.
    assert "✖" in tiny_result.headline_gantt
    assert tiny_result.headline_gantt in report


def test_save_json_round_trip(tiny_result, tmp_path):
    path = tmp_path / "bench.json"
    tiny_result.save_json(str(path))
    data = json.loads(path.read_text())
    assert data["digest"] == tiny_result.digest()
    assert data["rows"] == tiny_result.rows
    # The stored digest re-derives from the stored rows alone.
    assert stable_digest({"rows": data["rows"]}) == data["digest"]


def test_unknown_schedule_name_is_rejected():
    scenario = ResilienceScenario(schedule_names=("none", "nope"))
    with pytest.raises(ValueError, match="nope"):
        scenario.schedule("nope")
