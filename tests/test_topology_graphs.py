"""Property tests for the topology graph layer (ISSUE 8 tentpole)."""

import networkx as nx
import pytest

from repro.topology.graphs import (
    TOPOLOGY_FAMILIES,
    Topology,
    TopologySpec,
    build_topology,
    spec_for_family,
)


@pytest.mark.parametrize("family", TOPOLOGY_FAMILIES)
@pytest.mark.parametrize("n", [8, 16, 25])
def test_generators_connected_and_well_formed(family, n):
    topo = build_topology(spec_for_family(family, n, seed=2))
    g = nx.Graph()
    g.add_nodes_from(range(topo.n_nodes))
    g.add_edges_from(topo.edges())
    assert nx.is_connected(g)
    # Integer nodes 0..n-1, canonical u < v edges, sorted neighbours.
    for u, v in topo.edges():
        assert 0 <= u < v < topo.n_nodes
    for u in range(topo.n_nodes):
        nbrs = topo.neighbors(u)
        assert list(nbrs) == sorted(nbrs)
        assert u not in nbrs
        assert topo.degree(u) == len(nbrs)
    assert topo.max_degree() < topo.n_nodes


@pytest.mark.parametrize("family", TOPOLOGY_FAMILIES)
def test_generators_seed_deterministic(family):
    spec = spec_for_family(family, 16, seed=7)
    a = build_topology(spec)
    b = build_topology(spec)
    assert a.edges() == b.edges()
    assert a.digest() == b.digest()


@pytest.mark.parametrize("family", ["random_geometric", "expander"])
def test_random_families_vary_with_seed(family):
    a = build_topology(spec_for_family(family, 32, seed=0))
    b = build_topology(spec_for_family(family, 32, seed=1))
    assert a.edges() != b.edges()
    assert a.digest() != b.digest()


def test_digest_covers_edges_not_just_spec():
    spec = spec_for_family("ring", 8)
    topo = build_topology(spec)
    digests = {build_topology(spec).digest() for _ in range(3)}
    assert digests == {topo.digest()}
    # Different families at the same size have different digests.
    assert (
        build_topology(spec_for_family("chain", 8)).digest()
        != topo.digest()
    )


def test_spec_round_trip_and_validation():
    spec = spec_for_family("torus", 16, seed=3)
    again = TopologySpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.digest() == spec.digest()
    with pytest.raises(ValueError):
        TopologySpec(family="moebius", n=8)


@pytest.mark.parametrize(
    "family,expected_degree",
    [("mesh2d", 4), ("torus", 4), ("hypercube", 4), ("mesh3d", 6)],
)
def test_degree_bounds(family, expected_degree):
    topo = build_topology(spec_for_family(family, 16, seed=0))
    assert topo.max_degree() <= expected_degree


def test_hypercube_requires_power_of_two():
    with pytest.raises(ValueError):
        build_topology(TopologySpec(family="hypercube", n=12))
    topo = build_topology(TopologySpec(family="hypercube", n=16))
    assert all(topo.degree(u) == 4 for u in range(16))


def test_hierarchy_link_classes():
    topo = build_topology(spec_for_family("hierarchy", 16, seed=0))
    classes = {topo.link_class(u, v) for u, v in topo.edges()}
    assert classes == {"lan", "wan"}
    assert topo.stats()["n_wan_edges"] > 0
    # Non-hierarchy families are all-LAN.
    flat = build_topology(spec_for_family("torus", 16, seed=0))
    assert {flat.link_class(u, v) for u, v in flat.edges()} == {"lan"}


def test_chain_is_path_and_path_neighbor():
    topo = Topology.chain(5)
    assert topo.is_path()
    assert topo.path_neighbor(0, "left") is None
    assert topo.path_neighbor(0, "right") == 1
    assert topo.path_neighbor(4, "right") is None
    assert topo.path_neighbor(3, "left") == 2
    with pytest.raises(ValueError):
        topo.path_neighbor(2, "up")
    ring = build_topology(spec_for_family("ring", 8))
    assert not ring.is_path()
    with pytest.raises(ValueError):
        ring.path_neighbor(0, "left")


def test_stats_include_family_and_label():
    topo = build_topology(spec_for_family("expander", 16, seed=1))
    stats = topo.stats()
    assert stats["family"] == "expander"
    assert stats["label"] == "expander[16]"
    assert stats["connected"]


def test_disconnected_edge_set_rejected():
    spec = TopologySpec(family="chain", n=4)
    g = nx.Graph()
    g.add_nodes_from(range(4))
    g.add_edge(0, 1)
    with pytest.raises(ValueError):
        Topology(spec, g)
