"""Tests for metrics, gantt rendering and report formatting."""

import numpy as np
import pytest

from repro.analysis import (
    efficiency,
    format_series,
    format_table,
    idle_fraction,
    render_gantt,
    speedup_series,
    time_ratio,
    work_imbalance,
)
from repro.core import SolverConfig, run_aiac
from repro.core.records import RunResult
from repro.grid import homogeneous_cluster
from repro.models import run_sisc
from repro.problems import SyntheticProblem
from repro.runtime.tracer import Tracer


def small_run(runner=run_aiac, trace=True):
    prob = SyntheticProblem(np.full(24, 0.8), coupling=0.3)
    plat = homogeneous_cluster(3, speed=100.0)
    return runner(prob, plat, SolverConfig(tolerance=1e-8, trace=trace))


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def test_idle_fraction_zero_for_aiac():
    r = small_run()
    assert idle_fraction(r) == 0.0


def test_idle_fraction_positive_for_sisc_on_uneven_platform():
    from repro.grid.host import Host
    from repro.grid.link import Link
    from repro.grid.network import Network
    from repro.grid.platform import Platform

    plat = Platform(
        hosts=[Host("fast", 200.0), Host("slow", 100.0)],
        network=Network(Link(latency=0.05, bandwidth=1e6)),
    )
    prob = SyntheticProblem(np.full(24, 0.8), coupling=0.3)
    r = run_sisc(prob, plat, SolverConfig(tolerance=1e-8))
    assert idle_fraction(r) > 0.05


def test_idle_fraction_requires_trace():
    r = small_run(trace=False)
    with pytest.raises(ValueError, match="trace"):
        idle_fraction(r)


def test_work_imbalance_near_one_for_uniform_problem():
    r = small_run()
    assert 1.0 <= work_imbalance(r) < 1.5


def test_speedup_and_efficiency():
    times = {1: 100.0, 2: 50.0, 4: 30.0}
    s = speedup_series(times)
    assert s[1] == 1.0
    assert s[2] == 2.0
    assert s[4] == pytest.approx(100 / 30)
    e = efficiency(times)
    assert e[2] == pytest.approx(1.0)
    assert e[4] == pytest.approx(100 / 30 / 4)
    with pytest.raises(ValueError):
        speedup_series({})


def test_time_ratio():
    a = small_run()
    assert time_ratio(a, a) == 1.0


# ---------------------------------------------------------------------------
# Gantt
# ---------------------------------------------------------------------------


def test_gantt_renders_rows_per_rank():
    r = small_run()
    text = render_gantt(r, width=40)
    lines = text.splitlines()
    assert len(lines) == 1 + r.n_ranks
    for line in lines[1:]:
        assert line.count("|") == 2
        body = line.split("|")[1]
        assert len(body) == 40


def test_gantt_busy_everywhere_for_aiac():
    r = small_run()
    text = render_gantt(r, width=30)
    for line in text.splitlines()[1:]:
        body = line.split("|")[1]
        assert "░" not in body  # AIAC records no idle


def test_gantt_validation():
    r = small_run()
    with pytest.raises(ValueError):
        render_gantt(r, width=3)
    r_untraced = small_run(trace=False)
    with pytest.raises(ValueError, match="trace"):
        render_gantt(r_untraced)


def test_gantt_t_max_window():
    r = small_run()
    text = render_gantt(r, width=20, t_max=r.time / 2)
    assert f"[0, {r.time / 2:.3g}]" in text


def test_gantt_marks_migrations():
    from repro.core import LBConfig, run_balanced_aiac
    from repro.problems import SyntheticProblem as SP

    prob = SP.with_hard_region(48, easy_rate=0.4, hard_rate=0.95, active_cost=6.0)
    plat = homogeneous_cluster(3, speed=100.0)
    r = run_balanced_aiac(
        prob, plat, SolverConfig(tolerance=1e-8), LBConfig(period=5)
    )
    assert r.n_migrations > 0
    text = render_gantt(r, width=100)
    assert "▼" in text


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def test_format_table_alignment_and_rule():
    out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert set(lines[1].replace(" ", "")) == {"-"}
    # All lines are padded to the same width.
    assert len({len(line) for line in lines}) == 1


def test_format_table_validation():
    with pytest.raises(ValueError):
        format_table([], [])
    with pytest.raises(ValueError):
        format_table(["a"], [[1, 2]])


def test_format_series():
    out = format_series("scaling", [1, 2], [10.0, 5.0], x_label="p", y_label="t")
    assert out.startswith("scaling")
    assert "p" in out and "t" in out
    with pytest.raises(ValueError):
        format_series("bad", [1], [1, 2])
