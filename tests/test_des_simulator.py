"""Tests for the simulation kernel: processes, clock, signals, errors."""

import pytest

from repro.des import Hold, Signal, Simulator, SimulationError, Wait


def test_hold_advances_clock():
    sim = Simulator()
    times = []

    def proc(sim):
        yield Hold(2.5)
        times.append(sim.now)
        yield Hold(1.5)
        times.append(sim.now)

    sim.spawn("p", proc(sim))
    sim.run()
    assert times == [2.5, 4.0]


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    log = []

    def proc(sim, period, label, n):
        for _ in range(n):
            yield Hold(period)
            log.append((sim.now, label))

    sim.spawn("a", proc(sim, 1.0, "a", 3))
    sim.spawn("b", proc(sim, 1.5, "b", 2))
    sim.run()
    # At t == 3.0, b resumes first: its Hold was scheduled at t == 1.5,
    # before a's at t == 2.0, and ties fire in scheduling order.
    assert log == [(1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b"), (3.0, "a")]


def test_signal_wait_and_payload():
    sim = Simulator()
    sig = Signal("data")
    received = []

    def waiter(sim):
        payload = yield Wait(sig)
        received.append((sim.now, payload))

    def sender(sim):
        yield Hold(5.0)
        sig.trigger(sim, {"value": 7})

    sim.spawn("w", waiter(sim))
    sim.spawn("s", sender(sim))
    sim.run()
    assert received == [(5.0, {"value": 7})]


def test_signal_wakes_all_current_waiters_only():
    sim = Simulator()
    sig = Signal()
    woken = []

    def waiter(sim, label):
        yield Wait(sig)
        woken.append(label)

    def late_waiter(sim):
        yield Hold(2.0)
        yield Wait(sig)  # waits for a second trigger that never comes
        woken.append("late")

    def sender(sim):
        yield Hold(1.0)
        sig.trigger(sim)

    sim.spawn("w1", waiter(sim, "w1"))
    sim.spawn("w2", waiter(sim, "w2"))
    sim.spawn("late", late_waiter(sim))
    sim.spawn("s", sender(sim))
    sim.run()
    assert woken == ["w1", "w2"]


def test_run_until_horizon_resumable():
    sim = Simulator()
    ticks = []

    def ticker(sim):
        while True:
            yield Hold(1.0)
            ticks.append(sim.now)

    sim.spawn("t", ticker(sim))
    sim.run(until=3.5)
    assert sim.now == 3.5
    assert ticks == [1.0, 2.0, 3.0]
    sim.run(until=5.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_process_return_value_and_done_signal():
    sim = Simulator()
    results = []

    def worker(sim):
        yield Hold(1.0)
        return 42

    def watcher(sim, proc):
        value = yield Wait(proc.done)
        results.append(value)

    p = sim.spawn("w", worker(sim))
    sim.spawn("watch", watcher(sim, p))
    sim.run()
    assert p.result == 42
    assert not p.alive
    assert results == [42]


def test_process_error_aborts_run():
    sim = Simulator()

    def bad(sim):
        yield Hold(1.0)
        raise ValueError("boom")

    sim.spawn("bad", bad(sim))
    with pytest.raises(SimulationError, match="bad"):
        sim.run()


def test_yield_garbage_is_an_error():
    sim = Simulator()

    def bad(sim):
        yield 123

    sim.spawn("bad", bad(sim))
    with pytest.raises(SimulationError, match="expected Hold"):
        sim.run()


def test_negative_hold_rejected():
    with pytest.raises(ValueError):
        Hold(-1.0)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule_at(1.0, sim.stop)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_stop_halts_loop():
    sim = Simulator()
    ticks = []

    def ticker(sim):
        while True:
            yield Hold(1.0)
            ticks.append(sim.now)
            if sim.now >= 3.0:
                sim.stop()

    sim.spawn("t", ticker(sim))
    sim.run()
    assert ticks == [1.0, 2.0, 3.0]


def test_yield_none_requeues_same_time():
    sim = Simulator()
    log = []

    def a(sim):
        log.append("a1")
        yield None
        log.append("a2")

    def b(sim):
        log.append("b1")
        yield None
        log.append("b2")

    sim.spawn("a", a(sim))
    sim.spawn("b", b(sim))
    sim.run()
    assert log == ["a1", "b1", "a2", "b2"]
    assert sim.now == 0.0


def test_run_until_signal():
    sim = Simulator()
    sig = Signal()

    def sender(sim):
        yield Hold(2.0)
        sig.trigger(sim)
        yield Hold(100.0)

    sim.spawn("s", sender(sim))
    fired = sim.run_until_signal(sig)
    assert fired
    assert sim.now == 2.0


def test_run_until_signal_horizon_miss():
    sim = Simulator()
    sig = Signal()

    def nothing(sim):
        yield Hold(10.0)

    sim.spawn("n", nothing(sim))
    fired = sim.run_until_signal(sig, horizon=1.0)
    assert not fired
    assert sim.now == 1.0


def test_at_binds_args_and_runs_at_time():
    sim = Simulator()
    calls = []
    sim.at(3.0, lambda x, y: calls.append((sim.now, x, y)), "a", 7)
    sim.run()
    assert calls == [(3.0, "a", 7)]


def test_at_rejects_past_and_non_finite_times():
    sim = Simulator()

    def advance(sim):
        yield Hold(5.0)

    sim.spawn("p", advance(sim))
    sim.run()
    with pytest.raises(ValueError, match="past"):
        sim.at(4.0, lambda: None)
    with pytest.raises(ValueError, match="finite"):
        sim.at(float("inf"), lambda: None)
    with pytest.raises(ValueError, match="finite"):
        sim.at(float("nan"), lambda: None)


def test_at_event_is_cancellable():
    sim = Simulator()
    calls = []
    event = sim.at(1.0, calls.append, "doomed")
    sim.at(2.0, calls.append, "kept")
    event.cancel()
    sim.run()
    assert calls == ["kept"]


# ----------------------------------------------------------------------
# run(until=...) boundary semantics
# ----------------------------------------------------------------------
def test_event_exactly_at_until_fires():
    """`until` is an inclusive horizon: an event scheduled exactly there
    runs, and the clock ends on its timestamp."""
    sim = Simulator()
    fired = []
    sim.at(5.0, fired.append, "at-horizon")
    sim.at(5.000001, fired.append, "past-horizon")
    sim.run(until=5.0)
    assert fired == ["at-horizon"]
    assert sim.now == 5.0


def test_until_with_only_later_events_advances_clock_to_until():
    sim = Simulator()
    fired = []
    sim.at(10.0, fired.append, "later")
    sim.run(until=3.0)
    assert fired == []
    assert sim.now == 3.0
    # The event stays queued and fires on a subsequent run().
    sim.run()
    assert fired == ["later"]
    assert sim.now == 10.0


def test_until_with_empty_queue_leaves_clock_at_last_event():
    sim = Simulator()
    sim.at(1.0, lambda: None)
    sim.run(until=100.0)
    # Queue drained before the horizon: now is the last event time, not
    # the horizon (run() only advances the clock to `until` when events
    # remain pending past it).
    assert sim.now == 1.0


def test_until_before_now_raises():
    sim = Simulator()
    sim.at(2.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError, match="before now"):
        sim.run(until=1.0)


def test_run_until_signal_fires_exactly_at_horizon():
    """A signal triggered exactly at the horizon wins the tie: the
    triggering event is at the horizon, so it dispatches before the
    loop checks `next_time > until`."""
    sim = Simulator()
    sig = Signal("s")

    def trigger(sim):
        yield Hold(5.0)
        sig.trigger(sim)

    sim.spawn("t", trigger(sim))
    assert sim.run_until_signal(sig, horizon=5.0) is True
    assert sim.now == 5.0


def test_run_until_signal_just_past_horizon_returns_false():
    sim = Simulator()
    sig = Signal("s")

    def trigger(sim):
        yield Hold(5.0)
        sig.trigger(sim)

    sim.spawn("t", trigger(sim))
    assert sim.run_until_signal(sig, horizon=4.999) is False
    assert sim.now == 4.999


# ----------------------------------------------------------------------
# Profiler hook
# ----------------------------------------------------------------------
def test_attach_profiler_observes_every_dispatch():
    class Recorder:
        def __init__(self):
            self.events = []

        def record(self, event):
            self.events.append(event.time)

    sim = Simulator()
    recorder = Recorder()
    assert sim.attach_profiler(recorder) is sim
    sim.at(1.0, lambda: None)
    sim.at(2.0, lambda: None)
    sim.at(2.0, lambda: None)
    sim.run()
    assert recorder.events == [1.0, 2.0, 2.0]


def test_profiled_run_matches_unprofiled_run():
    def workload(sim, log):
        def proc(sim, period, n):
            for _ in range(n):
                yield Hold(period)
                log.append(sim.now)

        sim.spawn("a", proc(sim, 1.0, 5))
        sim.spawn("b", proc(sim, 1.7, 4))

    class Counter:
        n = 0

        def record(self, event):
            self.n += 1

    plain_log, prof_log = [], []
    sim1 = Simulator()
    workload(sim1, plain_log)
    sim1.run()
    sim2 = Simulator()
    counter = Counter()
    sim2.attach_profiler(counter)
    workload(sim2, prof_log)
    sim2.run()
    assert plain_log == prof_log
    assert sim1.now == sim2.now
    assert counter.n > 0
