"""Property-based tests of the messaging runtime and the spin throttle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SolverConfig, run_aiac
from repro.des import Hold, Simulator
from repro.grid import homogeneous_cluster
from repro.grid.host import Host
from repro.grid.link import Link
from repro.grid.network import Network
from repro.problems import BrusselatorProblem, SyntheticProblem
from repro.runtime.node import GridNode


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0),  # send delay
            st.floats(min_value=0.0, max_value=1000.0),  # size bytes
        ),
        min_size=1,
        max_size=30,
    )
)
def test_property_fifo_per_channel_under_any_schedule(sends):
    """Messages on one channel arrive in send order, whatever their sizes."""
    sim = Simulator()
    net = Network(Link(latency=0.01, bandwidth=100.0))  # size matters a lot
    a = GridNode(sim, 0, Host("a", 1.0), net)
    b = GridNode(sim, 1, Host("b", 1.0), net)
    received = []
    b.register_handler("data", lambda m: received.append(m.payload))

    def sender(sim):
        for i, (delay, size) in enumerate(sends):
            yield Hold(delay)
            a.send(b, "data", i, size_bytes=size)

    sim.spawn("s", sender(sim))
    sim.run()
    assert received == list(range(len(sends)))


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=20)
)
def test_property_exclusive_channel_never_doubles_in_flight(delays):
    """Under exclusive sends, at most one message per channel in flight."""
    sim = Simulator()
    net = Network(Link(latency=1.0, bandwidth=1e9))
    a = GridNode(sim, 0, Host("a", 1.0), net)
    b = GridNode(sim, 1, Host("b", 1.0), net)
    in_flight = [0]
    max_in_flight = [0]

    def on_data(msg):
        in_flight[0] -= 1

    b.register_handler("halo", on_data)

    def sender(sim):
        for delay in delays:
            yield Hold(delay)
            if a.send(b, "halo", None, 8.0, exclusive=True):
                in_flight[0] += 1
                max_in_flight[0] = max(max_in_flight[0], in_flight[0])

    sim.spawn("s", sender(sim))
    sim.run()
    assert max_in_flight[0] <= 1


# ---------------------------------------------------------------------------
# Spin throttle (SolverConfig.min_sweep_duration)
# ---------------------------------------------------------------------------


def test_throttle_validation():
    with pytest.raises(ValueError):
        SolverConfig(min_sweep_duration=-0.1)


def test_throttle_reduces_sweep_count_without_changing_answer():
    def prob():
        return SyntheticProblem(np.full(24, 0.8), coupling=0.3)

    plat = homogeneous_cluster(3, speed=1e6)  # near-free sweeps: spin city
    free = run_aiac(prob(), plat, SolverConfig(tolerance=1e-8))
    throttled = run_aiac(
        prob(), plat, SolverConfig(tolerance=1e-8, min_sweep_duration=0.01)
    )
    assert free.converged and throttled.converged
    assert throttled.total_iterations < free.total_iterations
    assert np.max(throttled.solution()) < 1e-8


def test_throttle_noop_when_sweeps_already_slow():
    def prob():
        return SyntheticProblem(np.full(24, 0.8), coupling=0.3)

    plat = homogeneous_cluster(2, speed=100.0)  # sweeps ~0.25s >> floor
    base = run_aiac(prob(), plat, SolverConfig(tolerance=1e-8))
    floored = run_aiac(
        prob(), plat, SolverConfig(tolerance=1e-8, min_sweep_duration=1e-4)
    )
    assert base.time == floored.time
    assert base.iterations == floored.iterations


def test_throttle_with_skip_problem_bounds_spinning():
    """The motivating case: a fully-skipped rank must not spin wildly."""
    def prob(skip):
        return BrusselatorProblem(
            24, t_end=2.0, n_steps=15,
            skip_converged=skip, skip_threshold=1e-5,
        )

    net = Network(Link(latency=1e-4, bandwidth=1e8))
    from repro.grid.platform import Platform

    plat = Platform(
        hosts=[Host("fast", 50_000.0), Host("slow", 5_000.0)], network=net
    )
    cfg = SolverConfig(
        tolerance=1e-7, max_iterations=30_000, min_sweep_duration=0.005
    )
    r = run_aiac(prob(True), plat, cfg)
    assert r.converged
    ref = prob(False).reference_solution()
    assert r.max_error_vs(ref) < 1e-4
