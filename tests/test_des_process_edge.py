"""Edge-case tests of the DES process machinery not covered elsewhere."""

import pytest

from repro.des import Hold, Signal, Simulator, SimulationError, Wait


def test_process_done_signal_carries_return_value_to_multiple_watchers():
    sim = Simulator()
    got = []

    def worker(sim):
        yield Hold(1.0)
        return {"answer": 42}

    def watcher(sim, proc, label):
        value = yield Wait(proc.done)
        got.append((label, value["answer"]))

    p = sim.spawn("w", worker(sim))
    sim.spawn("w1", watcher(sim, p, "a"))
    sim.spawn("w2", watcher(sim, p, "b"))
    sim.run()
    assert sorted(got) == [("a", 42), ("b", 42)]


def test_signal_trigger_counts():
    sim = Simulator()
    sig = Signal("x")

    def fire(sim):
        yield Hold(1.0)
        sig.trigger(sim)
        yield Hold(1.0)
        sig.trigger(sim, payload=7)

    sim.spawn("f", fire(sim))
    sim.run()
    assert sig.trigger_count == 2
    assert sig.n_waiting == 0


def test_error_in_scheduled_callback_aborts_run():
    sim = Simulator()

    def boom():
        raise RuntimeError("callback exploded")

    sim.schedule_in(1.0, boom)
    with pytest.raises(SimulationError, match="callback"):
        sim.run()


def test_simulation_continues_after_process_completes():
    sim = Simulator()
    log = []

    def short(sim):
        yield Hold(1.0)
        log.append("short done")

    def long(sim):
        yield Hold(5.0)
        log.append("long done")

    sim.spawn("s", short(sim))
    sim.spawn("l", long(sim))
    sim.run()
    assert log == ["short done", "long done"]
    assert sim.now == 5.0


def test_spawn_inside_process():
    sim = Simulator()
    log = []

    def child(sim, tag):
        yield Hold(0.5)
        log.append(tag)

    def parent(sim):
        yield Hold(1.0)
        sim.spawn("c1", child(sim, "c1"))
        yield Hold(1.0)
        sim.spawn("c2", child(sim, "c2"))

    sim.spawn("p", parent(sim))
    sim.run()
    assert log == ["c1", "c2"]


def test_nonfinite_event_time_rejected():
    sim = Simulator()
    with pytest.raises(ValueError, match="finite"):
        sim.schedule_at(float("inf"), lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_in(-1.0, lambda: None)


def test_run_until_before_now_rejected():
    sim = Simulator()
    sim.schedule_at(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_processes_list_tracks_spawns():
    sim = Simulator()

    def p(sim):
        yield Hold(1.0)

    sim.spawn("a", p(sim))
    sim.spawn("b", p(sim))
    assert [proc.name for proc in sim.processes] == ["a", "b"]
    sim.run()
    assert all(not proc.alive for proc in sim.processes)
