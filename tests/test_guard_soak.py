"""repro.guard.soak: schedule generation, shrinking, the soak harness."""

import json

import pytest

from repro.faults.models import FaultSchedule, HostCrash, MessageLoss
from repro.guard.soak import (
    SoakScenario,
    random_schedule,
    run_soak,
    shrink_schedule,
)
from repro.util.rng import RngTree

TINY = SoakScenario(models=("aiac", "aiac+lb"))


# ----------------------------------------------------------------------
# random_schedule
# ----------------------------------------------------------------------
def test_random_schedules_are_valid_and_deterministic():
    scenario = SoakScenario()
    tree = RngTree(123).child("guard-soak")
    again = RngTree(123).child("guard-soak")
    for index in range(30):
        schedule = random_schedule(scenario, tree, index)
        # FaultSchedule.__post_init__ validates: reaching here means the
        # draw respected the strict cross-fault rules.
        assert 1 <= len(schedule.faults) <= scenario.max_faults + 1
        assert schedule.to_dict() == random_schedule(
            scenario, again, index
        ).to_dict()


def test_random_schedule_is_index_independent():
    """Schedule i does not depend on how many schedules preceded it."""
    scenario = SoakScenario()
    one = random_schedule(scenario, RngTree(0).child("guard-soak"), 7)
    tree = RngTree(0).child("guard-soak")
    for index in range(5):
        random_schedule(scenario, tree, index)
    other = random_schedule(scenario, tree, 7)
    assert one.to_dict() == other.to_dict()


def test_random_schedules_cover_every_fault_kind():
    scenario = SoakScenario()
    tree = RngTree(0).child("guard-soak")
    kinds = set()
    for index in range(50):
        for fault in random_schedule(scenario, tree, index).faults:
            kinds.add(type(fault).__name__)
    assert kinds == {
        "MessageLoss",
        "MessageDuplication",
        "MessageReordering",
        "HostCrash",
        "HostSlowdown",
        "LinkPartition",
    }


# ----------------------------------------------------------------------
# shrink_schedule
# ----------------------------------------------------------------------
def _schedule(*faults):
    return FaultSchedule(faults=tuple(faults), seed=9)


def test_shrink_removes_irrelevant_faults():
    crash = HostCrash(rank=1, at=2.0, downtime=1.0)
    noise1 = MessageLoss(0.1)
    noise2 = MessageLoss(0.2, t0=5.0, t1=9.0)
    schedule = _schedule(noise1, crash, noise2)

    def failing(candidate):
        return any(isinstance(f, HostCrash) for f in candidate.faults)

    minimal = shrink_schedule(schedule, failing)
    assert [type(f).__name__ for f in minimal.faults] == ["HostCrash"]
    assert minimal.seed == schedule.seed


def test_shrink_keeps_jointly_required_faults():
    crash = HostCrash(rank=1, at=2.0, downtime=1.0)
    loss = MessageLoss(0.1)
    schedule = _schedule(crash, loss)

    def failing(candidate):
        kinds = {type(f) for f in candidate.faults}
        return HostCrash in kinds and MessageLoss in kinds

    minimal = shrink_schedule(schedule, failing)
    assert len(minimal.faults) == 2


def test_shrink_of_never_failing_schedule_is_empty():
    schedule = _schedule(MessageLoss(0.1), MessageLoss(0.2, t0=3.0))
    minimal = shrink_schedule(schedule, lambda candidate: True)
    assert minimal.faults == ()


# ----------------------------------------------------------------------
# run_soak
# ----------------------------------------------------------------------
def test_soak_passes_and_is_reproducible(tmp_path):
    first = run_soak(
        TINY, n_schedules=2, seed=0, out_dir=str(tmp_path)
    )
    assert first.ok, first.report()
    # Baselines + 2 schedules for each of the two models.
    assert len(first.rows) == 2 + 2 * 2
    second = run_soak(
        TINY, n_schedules=2, seed=0, out_dir=str(tmp_path)
    )
    assert first.digest() == second.digest()
    assert first.to_dict() == second.to_dict()


def test_soak_report_mentions_models_and_digest(tmp_path):
    result = run_soak(TINY, n_schedules=1, seed=3, out_dir=str(tmp_path))
    report = result.report()
    assert "aiac+lb" in report
    assert result.digest() in report
    assert "all invariants held" in report


def test_soak_save_json_round_trips(tmp_path):
    result = run_soak(TINY, n_schedules=1, seed=0, out_dir=str(tmp_path))
    path = tmp_path / "soak.json"
    result.save_json(str(path))
    data = json.loads(path.read_text())
    assert data["digest"] == result.digest()
    assert data["n_schedules"] == 1
    assert len(data["rows"]) == len(result.rows)


def test_soak_seed_override_changes_schedules(tmp_path):
    a = run_soak(TINY, n_schedules=1, seed=0, out_dir=str(tmp_path))
    b = run_soak(TINY, n_schedules=1, seed=1, out_dir=str(tmp_path))
    faults_a = [r.get("faults") for r in a.rows if r["schedule"] != "baseline"]
    faults_b = [r.get("faults") for r in b.rows if r["schedule"] != "baseline"]
    assert a.digest() != b.digest() or faults_a != faults_b


# ----------------------------------------------------------------------
# Mutation test: a seeded conservation bug must be caught AND shrunk
# ----------------------------------------------------------------------
def test_soak_catches_seeded_conservation_bug(tmp_path, monkeypatch):
    """Corrupt crash recovery so a restore grows the rank's block by
    one component: the conservation invariant must fire on every
    schedule containing a crash, and the shrinker must reduce the
    reproducer to the crash alone."""
    import repro.core.solver as solver_mod

    original = solver_mod.ChainRun.restore_checkpoint

    def corrupted(self, ctx):
        original(self, ctx)
        ctx.hi += 1  # the seeded bug: restore resurrects a component

    monkeypatch.setattr(solver_mod.ChainRun, "restore_checkpoint", corrupted)

    # Find a seed whose first schedule contains a crash for model aiac.
    scenario = SoakScenario(models=("aiac",))
    seed = None
    for candidate in range(40):
        tree = RngTree(candidate).child("guard-soak")
        faults = random_schedule(scenario, tree, 0).faults
        if any(isinstance(f, HostCrash) for f in faults):
            seed = candidate
            break
    assert seed is not None

    result = run_soak(
        scenario, n_schedules=1, seed=seed, out_dir=str(tmp_path)
    )
    assert not result.ok
    failure = result.failures[0]
    assert failure["model"] == "aiac"
    assert "invariant violated" in failure["error"]
    # Shrunk to the minimal reproducer: the crash alone triggers it.
    assert failure["minimized_faults"] == ["HostCrash"]
    repro_path = failure["repro_path"]
    assert repro_path is not None
    payload = json.loads(open(repro_path).read())
    assert payload["schema"] == "repro-guard-repro/1"
    assert [f["type"] for f in payload["minimized"]["faults"]] == [
        "host_crash"
    ]
    # The reproducer replays: rebuild the minimized schedule and check
    # it still trips the guard.
    minimized = FaultSchedule.from_dict(payload["minimized"])
    assert any(isinstance(f, HostCrash) for f in minimized.faults)


def test_soak_continues_after_a_failure(tmp_path, monkeypatch):
    """One failing (schedule, model) pair does not abort the soak."""
    import repro.core.solver as solver_mod

    original = solver_mod.ChainRun.restore_checkpoint

    def corrupted(self, ctx):
        original(self, ctx)
        ctx.hi += 1

    monkeypatch.setattr(solver_mod.ChainRun, "restore_checkpoint", corrupted)

    scenario = SoakScenario(models=("aiac",))
    # Use a seed window wide enough to contain crash and no-crash
    # schedules so both paths execute.
    tree = RngTree(0).child("guard-soak")
    has_crash = [
        any(
            isinstance(f, HostCrash)
            for f in random_schedule(scenario, tree, i).faults
        )
        for i in range(6)
    ]
    if not (any(has_crash) and not all(has_crash)):
        pytest.skip("seed 0 draw pattern changed; adjust the window")
    result = run_soak(
        scenario, n_schedules=6, seed=0, out_dir=str(tmp_path), shrink=False
    )
    assert not result.ok
    # Crash-free schedules still ran and passed.
    passed = [r for r in result.rows if r["schedule"] != "baseline"]
    assert len(passed) == has_crash.count(False)
    assert len(result.failures) == has_crash.count(True)
    # shrink=False skips reproducer files.
    assert all(f["repro_path"] is None for f in result.failures)
