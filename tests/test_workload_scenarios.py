"""Tests for the frozen scenario definitions themselves."""

import numpy as np
import pytest

from repro.workloads import (
    Figure5Scenario,
    ModelsComparisonScenario,
    Table1Scenario,
    TraceFigureScenario,
)


def test_figure5_problem_matches_parameters():
    sc = Figure5Scenario()
    prob = sc.problem()
    assert prob.n_components == sc.n_components
    hard = prob.rates == sc.hard_rate
    assert hard.sum() == pytest.approx(
        sc.n_components * (sc.hard_region[1] - sc.hard_region[0]), abs=2
    )
    assert prob.active_threshold == pytest.approx(100 * sc.tolerance)


def test_figure5_quick_and_tiny_are_smaller():
    full, quick, tiny = (
        Figure5Scenario(),
        Figure5Scenario.quick(),
        Figure5Scenario.tiny(),
    )
    assert tiny.n_components < quick.n_components < full.n_components
    assert max(tiny.proc_counts) <= max(quick.proc_counts) < max(full.proc_counts)


def test_figure5_platform_is_homogeneous():
    sc = Figure5Scenario.quick()
    plat = sc.platform(8)
    assert len(plat) == 8
    assert len({h.speed for h in plat.hosts}) == 1


def test_table1_platform_matches_paper_shape():
    sc = Table1Scenario()
    plat = sc.platform()
    assert len(plat) == 15
    assert sorted(plat.sites) == ["belfort", "grenoble", "montbeliard"]
    speeds = np.array([h.speed for h in plat.hosts])
    # PII-400 .. Athlon-1.4G divided by the work-unit divisor.
    assert speeds.min() >= 400.0 / sc.speed_divisor
    assert speeds.max() <= 1400.0 / sc.speed_divisor
    assert speeds.max() / speeds.min() > 1.5


def test_table1_platform_deterministic_per_seed():
    a = Table1Scenario().platform()
    b = Table1Scenario().platform()
    assert [h.speed for h in a.hosts] == [h.speed for h in b.hosts]
    c = Table1Scenario(seed=7).platform()
    assert [h.speed for h in a.hosts] != [h.speed for h in c.hosts]


def test_table1_host_order_is_intersite():
    sc = Table1Scenario()
    plat = sc.platform()
    order = sc.host_order(plat)
    sites = [plat.hosts[i].site for i in order]
    assert all(s1 != s2 for s1, s2 in zip(sites, sites[1:]))


def test_table1_quick_is_smaller():
    assert Table1Scenario.quick().n_points < Table1Scenario().n_points


def test_models_comparison_grid_slower_than_cluster_links():
    sc = ModelsComparisonScenario()
    cluster = sc.cluster_platform()
    grid = sc.grid_platform()
    ha = grid.sites["a"][0]
    hb = grid.sites["b"][0]
    wan = grid.network.link_for(ha, hb)
    lan = cluster.network.link_for(cluster.hosts[0], cluster.hosts[1])
    assert wan.latency > 10 * lan.latency
    assert wan.bandwidth < lan.bandwidth


def test_trace_scenario_two_unequal_hosts():
    sc = TraceFigureScenario()
    plat = sc.platform()
    assert len(plat) == 2
    assert plat.hosts[0].speed != plat.hosts[1].speed
    assert sc.solver_config().trace


def test_scale_scenario_tiles_components_exactly():
    from repro.workloads import ScaleScenario

    sc = ScaleScenario(n_ranks=32, components_per_rank=10)
    assert sc.n_components == 320
    prob = sc.problem()
    assert prob.n_components == sc.n_components
    plat = sc.platform()
    assert len(plat) == 32
    assert len({h.speed for h in plat.hosts}) == 1  # homogeneous
    assert not sc.solver_config().trace  # span records are O(ranks x rounds)


def test_scale_scenario_presets():
    from repro.workloads import ScaleScenario

    smoke, flagship = ScaleScenario.smoke(), ScaleScenario.flagship()
    assert smoke.n_ranks < flagship.n_ranks
    assert flagship.n_ranks == 1024
    assert flagship.n_components >= 1_000_000


def test_figure5_scale_preset_reaches_1024_ranks():
    assert Figure5Scenario.scale().proc_counts[-1] == 1024
    assert Figure5Scenario.scale().n_components > Figure5Scenario.quick().n_components


def test_problem_kind_dispatch():
    import dataclasses

    from repro.problems.brusselator import BrusselatorProblem
    from repro.workloads import ScaleScenario

    for sc in (
        dataclasses.replace(Figure5Scenario.quick(), problem_kind="brusselator"),
        ScaleScenario.brusselator_smoke(),
    ):
        prob = sc.problem()
        assert isinstance(prob, BrusselatorProblem)
        assert prob.n_components == sc.n_components
        assert prob.skip_converged  # the activity mechanism
        assert prob.skip_threshold == pytest.approx(100 * sc.tolerance)
        # alpha derives from the coupling target: c * dt == coupling,
        # keeping the relaxation's contraction rate N-independent.
        assert prob.c * prob.dt == pytest.approx(sc.coupling)
    with pytest.raises(ValueError, match="problem_kind"):
        dataclasses.replace(Figure5Scenario(), problem_kind="nope").problem()
    with pytest.raises(ValueError, match="problem_kind"):
        ScaleScenario(problem_kind="nope").problem()


def test_scale_scenario_brusselator_presets():
    from repro.workloads import ScaleScenario

    gate = ScaleScenario.brusselator_gate()
    flagship = ScaleScenario.brusselator_flagship()
    assert gate.n_ranks == 1024
    assert flagship.n_ranks >= 4096
    assert flagship.problem_kind == gate.problem_kind == "brusselator"
    ten_k = ScaleScenario.synthetic_10k()
    assert ten_k.n_ranks >= 10_000
    assert ten_k.problem_kind == "synthetic"
    assert Figure5Scenario.scale_brusselator().proc_counts[-1] == 1024
    assert Figure5Scenario.scale_brusselator().problem_kind == "brusselator"
