"""Tests for the Brusselator waveform-relaxation problem.

The central correctness property: repeated `iterate` sweeps (sequential,
one or two blocks) converge to the fully-coupled implicit Euler
reference solution on the same grid.
"""

import numpy as np
import pytest

from repro.problems.brusselator import (
    BrusselatorProblem,
    U_BOUNDARY,
    V_BOUNDARY,
)


@pytest.fixture(scope="module")
def small_problem():
    return BrusselatorProblem(n_points=12, t_end=2.0, n_steps=20)


def sweep_to_convergence(problem, states, tol=1e-8, max_sweeps=400):
    """Jacobi sweeps over a list of adjacent blocks until residual < tol."""
    n_blocks = len(states)
    for sweep in range(max_sweeps):
        halos_left = []
        halos_right = []
        for i, st in enumerate(states):
            if i == 0:
                halos_left.append(problem.initial_halo(-1))
            else:
                halos_left.append(problem.halo_out(states[i - 1], "right"))
            if i == n_blocks - 1:
                halos_right.append(problem.initial_halo(problem.n_components))
            else:
                halos_right.append(problem.halo_out(states[i + 1], "left"))
        max_res = 0.0
        for st, hl, hr in zip(states, halos_left, halos_right):
            res = problem.iterate(st, hl, hr)
            max_res = max(max_res, res.local_residual)
        if max_res < tol:
            return sweep + 1
    raise AssertionError(f"did not converge in {max_sweeps} sweeps (res={max_res})")


def test_initial_state_shape_and_values(small_problem):
    p = small_problem
    st = p.initial_state(0, p.n_components)
    assert st.traj.shape == (12, 2, 21)
    # v starts at 3 everywhere; u at 1 + sin(2 pi x).
    assert np.allclose(st.traj[:, 1, :], 3.0)
    x = (np.arange(12) + 1) / 13
    assert np.allclose(st.traj[:, 0, 0], 1 + np.sin(2 * np.pi * x))
    # Trajectory guess is constant in time.
    assert np.allclose(st.traj[:, 0, 5], st.traj[:, 0, 0])


def test_invalid_block_rejected(small_problem):
    with pytest.raises(ValueError):
        small_problem.initial_state(5, 5)
    with pytest.raises(ValueError):
        small_problem.initial_state(-1, 5)
    with pytest.raises(ValueError):
        small_problem.initial_state(0, 99)


def test_edge_halos_are_boundary_conditions(small_problem):
    p = small_problem
    left = p.initial_halo(-1)
    right = p.initial_halo(p.n_components)
    assert np.allclose(left[0], U_BOUNDARY)
    assert np.allclose(left[1], V_BOUNDARY)
    assert np.allclose(right[0], U_BOUNDARY)


def test_single_block_converges_to_reference(small_problem):
    p = small_problem
    st = p.initial_state(0, p.n_components)
    sweeps = sweep_to_convergence(p, [st], tol=1e-9)
    assert sweeps > 1  # it is a genuine iteration, not a direct solve
    ref = p.reference_solution(backend="scipy")
    assert np.max(np.abs(st.traj - ref)) < 1e-6


def test_two_blocks_converge_to_reference(small_problem):
    p = small_problem
    states = [p.initial_state(0, 7), p.initial_state(7, 12)]
    sweep_to_convergence(p, states, tol=1e-9)
    assembled = np.concatenate([states[0].traj, states[1].traj], axis=0)
    ref = p.reference_solution(backend="scipy")
    assert np.max(np.abs(assembled - ref)) < 1e-6


def test_partition_does_not_change_fixed_point(small_problem):
    p = small_problem
    states_a = [p.initial_state(0, 4), p.initial_state(4, 12)]
    states_b = [p.initial_state(0, 9), p.initial_state(9, 12)]
    sweep_to_convergence(p, states_a, tol=1e-9)
    sweep_to_convergence(p, states_b, tol=1e-9)
    sol_a = np.concatenate([s.traj for s in states_a], axis=0)
    sol_b = np.concatenate([s.traj for s in states_b], axis=0)
    assert np.max(np.abs(sol_a - sol_b)) < 1e-6


def test_residual_decreases_and_work_shrinks(small_problem):
    p = small_problem
    st = p.initial_state(0, p.n_components)
    hl = p.initial_halo(-1)
    hr = p.initial_halo(p.n_components)
    first = p.iterate(st, hl, hr)
    mid = None
    for _ in range(20):
        mid = p.iterate(st, hl, hr)
    assert mid.local_residual < first.local_residual
    # Near convergence the sweep gets cheaper (verification-only Newton).
    assert mid.total_work < first.total_work


def test_converged_components_cost_one_unit_per_step(small_problem):
    p = small_problem
    st = p.initial_state(0, p.n_components)
    hl = p.initial_halo(-1)
    hr = p.initial_halo(p.n_components)
    for _ in range(200):
        res = p.iterate(st, hl, hr)
    # Fully converged: every component pays exactly one Newton iteration
    # (the verification) per time step.
    assert res.local_residual < 1e-12
    assert np.allclose(res.work, p.n_steps)


def test_split_merge_roundtrip(small_problem):
    p = small_problem
    st = p.initial_state(0, 12)
    original = st.traj.copy()
    payload = p.split(st, 4, "left")
    assert st.n == 8
    assert st.lo == 4
    p.merge(st, payload, "left")
    assert st.n == 12
    assert st.lo == 0
    assert np.array_equal(st.traj, original)

    payload = p.split(st, 3, "right")
    assert st.n == 9 and st.lo == 0
    p.merge(st, payload, "right")
    assert np.array_equal(st.traj, original)


def test_split_validation(small_problem):
    p = small_problem
    st = p.initial_state(0, 6)
    with pytest.raises(ValueError):
        p.split(st, 0, "left")
    with pytest.raises(ValueError):
        p.split(st, 6, "left")
    with pytest.raises(ValueError):
        p.split(st, 2, "up")


def test_halo_out_matches_boundary_trajectories(small_problem):
    p = small_problem
    st = p.initial_state(2, 9)
    left = p.halo_out(st, "left")
    right = p.halo_out(st, "right")
    assert np.array_equal(left, st.traj[0])
    assert np.array_equal(right, st.traj[-1])


def test_sizes_positive(small_problem):
    assert small_problem.halo_nbytes() > 0
    assert small_problem.component_nbytes() > 0


def test_reference_backends_agree():
    p = BrusselatorProblem(n_points=6, t_end=1.0, n_steps=10)
    ref_native = p.reference_solution(backend="native")
    ref_scipy = p.reference_solution(backend="scipy")
    assert np.max(np.abs(ref_native - ref_scipy)) < 1e-8


def test_solution_oscillates():
    """The Brusselator's hallmark: concentrations oscillate in time."""
    p = BrusselatorProblem(n_points=8, t_end=10.0, n_steps=100)
    ref = p.reference_solution(backend="scipy")
    u_mid = ref[4, 0, :]
    # sign changes of the derivative => non-monotone behaviour
    diffs = np.diff(u_mid)
    assert np.any(diffs > 0) and np.any(diffs < 0)
