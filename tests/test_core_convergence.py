"""Tests for convergence detection (oracle and token ring)."""

import pytest

from repro.core.convergence import SupervisorMonitor, TokenRingDetector


class Recorder:
    def __init__(self):
        self.fired = 0

    def __call__(self):
        self.fired += 1


def test_monitor_requires_persistence_on_all_ranks():
    rec = Recorder()
    m = SupervisorMonitor(2, tolerance=1e-3, persistence=2, on_converged=rec)
    m.report(0, 1e-4, now=1.0)
    m.report(1, 1e-4, now=1.0)
    assert not m.converged
    m.report(0, 1e-4, now=2.0)
    assert not m.converged  # rank 1 streak still 1
    m.report(1, 1e-4, now=2.5)
    assert m.converged
    assert m.convergence_time == 2.5
    assert rec.fired == 1


def test_monitor_streak_resets_on_regression():
    rec = Recorder()
    m = SupervisorMonitor(1, 1e-3, 3, rec)
    m.report(0, 1e-4, 1.0)
    m.report(0, 1e-4, 2.0)
    m.report(0, 5.0, 3.0)  # regression
    m.report(0, 1e-4, 4.0)
    m.report(0, 1e-4, 5.0)
    assert not m.converged
    m.report(0, 1e-4, 6.0)
    assert m.converged


def test_monitor_migration_resets_rank():
    rec = Recorder()
    m = SupervisorMonitor(2, 1e-3, 2, rec)
    m.report(0, 1e-4, 1.0)
    m.report(1, 1e-4, 1.0)
    m.reset_rank(0)  # migration touched rank 0
    m.report(1, 1e-4, 2.0)
    assert not m.converged
    m.report(0, 1e-4, 3.0)
    m.report(0, 1e-4, 4.0)
    assert m.converged


def test_monitor_ignores_reports_after_convergence():
    rec = Recorder()
    m = SupervisorMonitor(1, 1e-3, 1, rec)
    m.report(0, 1e-9, 1.0)
    assert m.converged
    m.report(0, 100.0, 2.0)
    assert m.converged
    assert rec.fired == 1


def test_monitor_validation():
    with pytest.raises(ValueError):
        SupervisorMonitor(0, 1e-3, 1, lambda: None)


# ---------------------------------------------------------------------------
# Token ring
# ---------------------------------------------------------------------------


def drive_ring(n_ranks, persistence=2):
    det = TokenRingDetector(n_ranks, tolerance=1e-3, persistence=persistence)
    return det


def converge_rank(det, rank, times=None):
    for _ in range(times or det.persistence):
        det.report(rank, 1e-6)


def test_ring_single_rank_converges_locally():
    det = drive_ring(1)
    converge_rank(det, 0)
    token = det.should_launch(0)
    assert token is None
    assert det.converged


def test_ring_full_round_trip():
    det = drive_ring(3)
    for r in range(3):
        converge_rank(det, r)
    token = det.should_launch(0)
    assert token == {"phase": "query", "epoch": 1}
    # Token travels right: rank 1 forwards, rank 2 turns it around.
    fwd, d = det.on_token(1, token)
    assert d == +1 and fwd["phase"] == "query"
    back, d = det.on_token(2, fwd)
    assert d == -1 and back["phase"] == "verify"
    mid, d = det.on_token(1, back)
    assert d == -1
    halt, d = det.on_token(0, mid)
    assert det.converged
    assert halt["phase"] == "halt" and d == +1
    nxt, d = det.on_token(1, halt)
    assert nxt["phase"] == "halt"
    end, d = det.on_token(2, nxt)
    assert end is None and d == 0


def test_ring_cancelled_by_unconverged_rank():
    det = drive_ring(3)
    converge_rank(det, 0)
    converge_rank(det, 2)
    token = det.should_launch(0)
    cancel, d = det.on_token(1, token)  # rank 1 not converged
    assert cancel == {"phase": "cancel", "epoch": 1} and d == -1
    # The cancel travels home and closes the round, enabling a relaunch.
    done, d = det.on_token(0, cancel)
    assert done is None and d == 0
    converge_rank(det, 1)
    relaunch = det.should_launch(0)
    assert relaunch == {"phase": "query", "epoch": 2}


def test_ring_regression_during_verification_cancels():
    det = drive_ring(3)
    for r in range(3):
        converge_rank(det, r)
    token = det.should_launch(0)
    fwd, _ = det.on_token(1, token)
    back, _ = det.on_token(2, fwd)
    det.report(1, 1.0)  # rank 1 regresses before verification reaches it
    cancel, d = det.on_token(1, back)
    assert cancel["phase"] == "cancel" and d == -1
    assert not det.converged


def test_ring_no_launch_while_round_active():
    det = drive_ring(2)
    converge_rank(det, 0)
    converge_rank(det, 1)
    assert det.should_launch(0) is not None
    assert det.should_launch(0) is None  # round already active


def test_ring_relaunch_after_own_regression():
    det = drive_ring(2)
    converge_rank(det, 0)
    converge_rank(det, 1)
    assert det.should_launch(0) is not None
    det.report(0, 9.0)  # our own regression cancels the round
    converge_rank(det, 0)
    token = det.should_launch(0)
    assert token is not None
    assert token["epoch"] == 2


def test_ring_non_zero_rank_never_launches():
    det = drive_ring(3)
    converge_rank(det, 1)
    assert det.should_launch(1) is None


# ---------------------------------------------------------------------------
# Two-phase verification under message reordering (PR 4 satellite):
# in-flight halo data can reawaken a rank *between* the query and
# verification tokens — the reawakened rank must veto the halt.
# ---------------------------------------------------------------------------


def test_ring_reawakened_rank_between_query_and_verify_vetoes_halt():
    det = drive_ring(3)
    for r in range(3):
        converge_rank(det, r)
    token = det.should_launch(0)
    fwd, _ = det.on_token(1, token)  # rank 1 agreed during the query pass
    back, d = det.on_token(2, fwd)
    assert back["phase"] == "verify" and d == -1
    # A halo message that was in flight when rank 1 answered the query
    # lands now and wakes it up: its residual jumps above tolerance.
    det.report(1, 5e-2)
    assert not det.locally_converged(1)
    # The verification token reaching the reawakened rank must cancel.
    cancel, d = det.on_token(1, back)
    assert cancel == {"phase": "cancel", "epoch": 1} and d == -1
    assert not det.converged
    done, d = det.on_token(0, cancel)
    assert done is None and d == 0
    # Once the wave settles the ring halts on a fresh epoch — the
    # vetoed round left no residue.
    converge_rank(det, 1)
    token = det.should_launch(0)
    assert token == {"phase": "query", "epoch": 2}
    fwd, _ = det.on_token(1, token)
    back, _ = det.on_token(2, fwd)
    mid, _ = det.on_token(1, back)
    halt, _ = det.on_token(0, mid)
    assert det.converged and halt["phase"] == "halt"


def test_ring_reawakened_last_rank_turns_query_into_cancel():
    det = drive_ring(3)
    for r in range(3):
        converge_rank(det, r)
    token = det.should_launch(0)
    fwd, _ = det.on_token(1, token)
    # Reordered halo data reaches the last rank before the query does.
    det.report(2, 1.0)
    cancel, d = det.on_token(2, fwd)
    assert cancel["phase"] == "cancel" and d == -1
    assert not det.converged


def test_ring_migration_between_query_and_verify_vetoes_halt():
    # A load-balancing migration (reset_rank) between the two passes is
    # the other reawakening path: the rank's block changed, so its old
    # persistence streak says nothing about the new block.
    det = drive_ring(3)
    for r in range(3):
        converge_rank(det, r)
    token = det.should_launch(0)
    fwd, _ = det.on_token(1, token)
    back, _ = det.on_token(2, fwd)
    det.reset_rank(1)
    cancel, d = det.on_token(1, back)
    assert cancel["phase"] == "cancel" and d == -1
    assert not det.converged


def test_ring_stale_tokens_from_cancelled_round_are_dropped():
    # Reordering can deliver a token from a cancelled epoch after a new
    # round launched; both the stale verify (at rank 0) and the stale
    # cancel must be ignored, leaving the live round untouched.
    det = drive_ring(3)
    for r in range(3):
        converge_rank(det, r)
    token = det.should_launch(0)
    fwd, _ = det.on_token(1, token)
    stale_verify, _ = det.on_token(2, fwd)  # epoch-1 verify, in flight
    det.report(1, 1.0)  # reawakening cancels epoch 1 at the next hop
    cancel, _ = det.on_token(1, stale_verify)
    det.on_token(0, cancel)  # round closed
    converge_rank(det, 1)
    relaunch = det.should_launch(0)
    assert relaunch["epoch"] == 2
    # The duplicated epoch-1 verify token (e.g. a retransmitted copy)
    # finally arrives home: dropped, epoch-2 round still active.
    dropped, d = det.on_token(0, stale_verify)
    assert dropped is None and d == 0
    assert not det.converged
    assert det.should_launch(0) is None  # round 2 is still in flight
    # A stale epoch-1 cancel arriving home must not close round 2.
    stale_cancel = {"phase": "cancel", "epoch": 1}
    dropped, d = det.on_token(0, stale_cancel)
    assert dropped is None and d == 0
    assert det.should_launch(0) is None  # round 2 survived
    # Round 2 itself still completes.
    fwd, _ = det.on_token(1, relaunch)
    back, _ = det.on_token(2, fwd)
    mid, _ = det.on_token(1, back)
    halt, _ = det.on_token(0, mid)
    assert det.converged and halt["phase"] == "halt"
