"""Tests for links, network routing and FIFO delivery."""

import pytest

from repro.grid.host import Host
from repro.grid.link import Link
from repro.grid.network import Network
from repro.grid.traces import PiecewiseTrace


def make_hosts():
    a = Host("a", speed=1.0, site="s1")
    b = Host("b", speed=1.0, site="s1")
    c = Host("c", speed=1.0, site="s2")
    return a, b, c


def test_link_transfer_time():
    link = Link(latency=0.01, bandwidth=1e6)
    assert link.transfer_time(0, 0.0) == pytest.approx(0.01)
    assert link.transfer_time(1e6, 0.0) == pytest.approx(1.01)


def test_link_fluctuation_slows_transfers():
    bw_trace = PiecewiseTrace([0.0, 10.0], [1.0, 0.5])
    link = Link(latency=0.0, bandwidth=1e6, bandwidth_trace=bw_trace)
    assert link.transfer_time(1e6, 0.0) == pytest.approx(1.0)
    assert link.transfer_time(1e6, 10.0) == pytest.approx(2.0)


def test_link_latency_fluctuation():
    lat_trace = PiecewiseTrace([0.0, 10.0], [1.0, 0.5])
    link = Link(latency=0.01, bandwidth=1e9, latency_trace=lat_trace)
    assert link.transfer_time(0, 20.0) == pytest.approx(0.02)


def test_link_validation():
    with pytest.raises(ValueError):
        Link(latency=-1, bandwidth=1)
    with pytest.raises(ValueError):
        Link(latency=0, bandwidth=0)


def test_network_routing_priority():
    a, b, c = make_hosts()
    default = Link(latency=1.0, bandwidth=1e6, name="default")
    site = Link(latency=2.0, bandwidth=1e6, name="site")
    pair = Link(latency=3.0, bandwidth=1e6, name="pair")
    net = Network(default)
    assert net.link_for(a, b) is default
    net.set_site_link("s1", "s2", site)
    assert net.link_for(a, c) is site
    assert net.link_for(c, a) is site  # registered both ways
    net.set_pair_link(a, c, pair)
    assert net.link_for(a, c) is pair
    assert net.link_for(c, a) is site  # pair links are directed


def test_fifo_no_overtaking():
    a, b, _ = make_hosts()
    # Bandwidth such that a big message takes 10 s, a small one 1 s.
    net = Network(Link(latency=0.0, bandwidth=1.0))
    t_big = net.arrival_time(a, b, nbytes=10.0, now=0.0)
    t_small = net.arrival_time(a, b, nbytes=1.0, now=0.5)
    assert t_big == pytest.approx(10.0)
    assert t_small > t_big  # clamped behind the big message


def test_fifo_independent_channels():
    a, b, c = make_hosts()
    net = Network(Link(latency=0.0, bandwidth=1.0))
    t_ab = net.arrival_time(a, b, nbytes=10.0, now=0.0)
    t_ac = net.arrival_time(a, c, nbytes=1.0, now=0.0)
    assert t_ac == pytest.approx(1.0)
    assert t_ab == pytest.approx(10.0)
    # Reverse direction is its own channel too.
    t_ba = net.arrival_time(b, a, nbytes=1.0, now=0.0)
    assert t_ba == pytest.approx(1.0)


def test_network_accounting():
    a, b, _ = make_hosts()
    net = Network(Link(latency=0.0, bandwidth=1e3))
    net.arrival_time(a, b, 100.0, 0.0)
    net.arrival_time(a, b, 200.0, 0.0)
    assert net.bytes_sent == 300.0
    assert net.messages_sent == 2


def test_site_link_key_is_symmetric():
    a, b, c = make_hosts()
    net = Network(Link(latency=0.0, bandwidth=1.0))
    fast = Link(latency=0.001, bandwidth=1e9)
    net.set_site_link("s1", "s2", fast)
    # Lookup and registration must agree regardless of argument order.
    assert net.site_link("s2", "s1") is fast
    assert net.site_link("s1", "s2") is fast
    slow = Link(latency=0.5, bandwidth=1.0)
    net.set_site_link("s2", "s1", slow)  # overwrite via the flipped key
    assert net.site_link("s1", "s2") is slow


# ----------------------------------------------------------------------
# reset(): per-run state must not leak across runs
# ----------------------------------------------------------------------
def _arrival_sequence(network, a, b):
    return [network.arrival_time(a, b, 1000.0, t) for t in (0.0, 0.0, 0.5)]


def test_reset_clears_fifo_clamp_and_counters():
    a, b, _ = make_hosts()
    network = Network(Link(latency=0.01, bandwidth=1e6))
    first = _arrival_sequence(network, a, b)
    assert network.messages_sent == 3
    assert network.bytes_sent == pytest.approx(3000.0)
    network.reset()
    assert network.messages_sent == 0
    assert network.bytes_sent == 0.0
    # Back-to-back runs over the same network are identical after reset.
    assert _arrival_sequence(network, a, b) == first


def test_without_reset_fifo_state_leaks_into_next_run():
    """Documents the bug reset() fixes: a reused network clamps the next
    run's arrivals behind the previous run's last delivery."""
    a, b, _ = make_hosts()
    network = Network(Link(latency=0.01, bandwidth=1e6))
    first = _arrival_sequence(network, a, b)
    leaked = _arrival_sequence(network, a, b)
    assert leaked[0] > first[0]


def test_export_metrics_reports_totals():
    from repro.obs.registry import MetricsRegistry

    a, b, _ = make_hosts()
    network = Network(Link(latency=0.01, bandwidth=1e6))
    _arrival_sequence(network, a, b)
    reg = MetricsRegistry()
    network.export_metrics(reg, run="x")
    records = {r["name"]: r for r in reg.snapshot()}
    assert records["net.messages_sent"]["value"] == 3
    assert records["net.bytes_sent"]["value"] == pytest.approx(3000.0)
    assert records["net.active_channels"]["value"] == 1
    assert records["net.messages_sent"]["labels"] == {"run": "x"}
