"""Tests for platform builders."""

import pytest

from repro.grid.platform import (
    Platform,
    SiteSpec,
    homogeneous_cluster,
    multi_site_grid,
    paper_heterogeneous_grid,
)
from repro.grid.host import Host
from repro.grid.link import Link
from repro.grid.network import Network
from repro.util.rng import RngTree


def test_homogeneous_cluster_shape():
    p = homogeneous_cluster(8, speed=500.0)
    assert len(p) == 8
    assert all(h.speed == 500.0 for h in p.hosts)
    assert all(h.site == "cluster" for h in p.hosts)
    # Dedicated machines: availability is 1 everywhere.
    assert all(h.effective_speed(123.0) == 500.0 for h in p.hosts)


def test_homogeneous_cluster_unique_names_and_lookup():
    p = homogeneous_cluster(4)
    names = {h.name for h in p.hosts}
    assert len(names) == 4
    assert p.host("node-02").name == "node-02"
    with pytest.raises(KeyError):
        p.host("nope")


def test_platform_rejects_duplicate_names():
    h = Host("x", 1.0)
    with pytest.raises(ValueError):
        Platform(hosts=[h, Host("x", 2.0)], network=Network(Link(0, 1)))


def test_multi_site_grid_structure():
    tree = RngTree(11)
    sites = [
        SiteSpec("a", 3, speed_range=(100.0, 200.0)),
        SiteSpec("b", 2, speed_range=(300.0, 400.0)),
    ]
    p = multi_site_grid(sites, tree)
    assert len(p) == 5
    assert sorted(p.sites) == ["a", "b"]
    assert len(p.sites["a"]) == 3
    for h in p.sites["a"]:
        assert 100.0 <= h.speed <= 200.0
    for h in p.sites["b"]:
        assert 300.0 <= h.speed <= 400.0


def test_multi_site_grid_intersite_link_is_slower():
    tree = RngTree(11)
    sites = [SiteSpec("a", 1), SiteSpec("b", 1)]
    p = multi_site_grid(sites, tree)
    ha, hb = p.sites["a"][0], p.sites["b"][0]
    wan = p.network.link_for(ha, hb)
    lan = p.network.link_for(ha, ha)
    assert wan.latency > lan.latency
    assert wan.bandwidth < lan.bandwidth


def test_multi_site_grid_deterministic():
    p1 = multi_site_grid([SiteSpec("a", 4)], RngTree(5))
    p2 = multi_site_grid([SiteSpec("a", 4)], RngTree(5))
    assert [h.speed for h in p1.hosts] == [h.speed for h in p2.hosts]
    p3 = multi_site_grid([SiteSpec("a", 4)], RngTree(6))
    assert [h.speed for h in p1.hosts] != [h.speed for h in p3.hosts]


def test_multi_site_grid_requires_sites():
    with pytest.raises(ValueError):
        multi_site_grid([], RngTree(0))


def test_paper_grid_is_15_machines_3_sites():
    p = paper_heterogeneous_grid(RngTree(42))
    assert len(p) == 15
    assert len(p.sites) == 3
    speeds = [h.speed for h in p.hosts]
    # Heterogeneity: the spread should approach the paper's 3.5x.
    assert max(speeds) / min(speeds) > 1.5
    # Multi-user machines: availability varies over time for at least one host.
    h = p.hosts[0]
    values = {h.trace.value(t) for t in range(0, 500, 7)}
    assert len(values) > 1
