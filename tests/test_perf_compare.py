"""Tests for report-to-report comparison and the bench-compare verb."""

import json

import pytest

from repro.analysis.perf import compare


def report_dict(**best_by_name):
    return {
        "title": "t",
        "results": [
            {"name": name, "best_s": best, "median_s": best, "mean_s": best,
             "repeats": 3}
            for name, best in best_by_name.items()
        ],
    }


def test_compare_flags_only_above_threshold():
    old = report_dict(a=1.0, b=1.0, c=1.0)
    new = report_dict(a=1.05, b=1.11, c=0.5)
    result = compare(old, new, threshold=0.10)
    by_name = {row["name"]: row for row in result.rows}
    assert not by_name["a"]["regressed"]  # +5% is inside the threshold
    assert by_name["b"]["regressed"]  # +11% is out
    assert not by_name["c"]["regressed"]  # a speedup never regresses
    assert [r["name"] for r in result.regressions] == ["b"]
    assert not result.ok


def test_compare_ok_when_everything_within_threshold():
    old = report_dict(a=1.0)
    new = report_dict(a=1.02)
    result = compare(old, new, threshold=0.10)
    assert result.ok
    assert "0 regression(s)" in result.report()


def test_compare_unmatched_names_never_fail_the_gate():
    old = report_dict(kept=1.0, retired=1.0)
    new = report_dict(kept=1.0, added=9.9)
    result = compare(old, new)
    assert result.ok
    assert result.only_old == ["retired"]
    assert result.only_new == ["added"]
    assert "retired" in result.report() and "added" in result.report()


def test_compare_zero_old_best_counts_as_regression():
    result = compare(report_dict(a=0.0), report_dict(a=0.1))
    assert result.rows[0]["ratio"] == float("inf")
    assert not result.ok


def test_compare_rejects_negative_threshold():
    with pytest.raises(ValueError, match="threshold"):
        compare(report_dict(), report_dict(), threshold=-0.1)


def test_compare_loads_from_paths(tmp_path):
    old_path = tmp_path / "old.json"
    new_path = tmp_path / "new.json"
    old_path.write_text(json.dumps(report_dict(a=1.0)))
    new_path.write_text(json.dumps(report_dict(a=2.0)))
    result = compare(str(old_path), str(new_path))
    assert result.rows[0]["ratio"] == pytest.approx(2.0)
    assert not result.ok


# ----------------------------------------------------------------------
# The CLI verb: exit status is the CI contract
# ----------------------------------------------------------------------
def _write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


def test_bench_compare_cli_passes_within_threshold(tmp_path, capsys):
    from repro.cli import main

    old = _write(tmp_path, "old.json", report_dict(a=1.0))
    new = _write(tmp_path, "new.json", report_dict(a=1.05))
    assert main(["bench-compare", old, new]) == 0
    assert "0 regression(s)" in capsys.readouterr().out


def test_bench_compare_cli_fails_on_regression(tmp_path, capsys):
    from repro.cli import main

    old = _write(tmp_path, "old.json", report_dict(a=1.0))
    new = _write(tmp_path, "new.json", report_dict(a=1.5))
    with pytest.raises(SystemExit, match="regressed"):
        main(["bench-compare", old, new])
    assert "REGRESSION" in capsys.readouterr().out


def test_bench_compare_cli_threshold_flag(tmp_path):
    from repro.cli import main

    old = _write(tmp_path, "old.json", report_dict(a=1.0))
    new = _write(tmp_path, "new.json", report_dict(a=1.4))
    assert main(["bench-compare", old, new, "--threshold", "0.5"]) == 0
