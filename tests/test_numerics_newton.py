"""Tests for the batched 2x2 Newton solver."""

import numpy as np
import pytest

from repro.numerics.newton import NewtonOptions, newton_batched_2x2


def quadratic_system(targets_u, targets_v):
    """F = (u^2 - a, v^2 - b): roots at (sqrt(a), sqrt(b))."""

    def f(u, v):
        f1 = u * u - targets_u
        f2 = v * v - targets_v
        j11 = 2 * u
        j12 = np.zeros_like(u)
        j21 = np.zeros_like(u)
        j22 = 2 * v
        return f1, f2, j11, j12, j21, j22

    return f


def test_solves_batch_of_quadratics():
    a = np.array([4.0, 9.0, 2.0])
    b = np.array([16.0, 1.0, 3.0])
    res = newton_batched_2x2(quadratic_system(a, b), np.ones(3) * 3, np.ones(3) * 3)
    assert res.all_converged
    assert np.allclose(res.u, np.sqrt(a), atol=1e-8)
    assert np.allclose(res.v, np.sqrt(b), atol=1e-8)


def test_coupled_system():
    # F1 = u + v - 3, F2 = u*v - 2  -> (1, 2) or (2, 1).
    def f(u, v):
        return (
            u + v - 3.0,
            u * v - 2.0,
            np.ones_like(u),
            np.ones_like(u),
            v,
            u,
        )

    res = newton_batched_2x2(f, np.array([0.5]), np.array([2.5]))
    assert res.all_converged
    assert res.u[0] + res.v[0] == pytest.approx(3.0)
    assert res.u[0] * res.v[0] == pytest.approx(2.0)


def test_converged_guess_costs_one_iteration():
    a = np.array([4.0, 9.0])
    b = np.array([4.0, 9.0])
    # Start exactly at the roots: residual already satisfies tol.
    res = newton_batched_2x2(
        quadratic_system(a, b), np.array([2.0, 3.0]), np.array([2.0, 3.0])
    )
    assert res.all_converged
    # Verification-only cost: exactly one work unit.
    assert np.array_equal(res.iterations, [1, 1])


def test_active_components_cost_more_than_converged():
    a = np.array([4.0, 4.0])
    b = np.array([4.0, 4.0])
    u0 = np.array([2.0, 37.0])  # first at root, second far away
    v0 = np.array([2.0, 41.0])
    res = newton_batched_2x2(quadratic_system(a, b), u0, v0)
    assert res.all_converged
    assert res.iterations[0] == 1
    assert res.iterations[1] > res.iterations[0]


def test_max_iter_exhaustion_flags_unconverged():
    a = np.array([4.0])
    b = np.array([4.0])
    res = newton_batched_2x2(
        quadratic_system(a, b),
        np.array([1e8]),
        np.array([1e8]),
        NewtonOptions(tol=1e-14, max_iter=2),
    )
    assert not res.all_converged
    assert res.iterations[0] == 2


def test_singular_jacobian_does_not_raise():
    def f(u, v):
        z = np.zeros_like(u)
        return u - 1.0, v - 1.0, z, z, z, z  # singular everywhere

    res = newton_batched_2x2(f, np.array([0.0]), np.array([0.0]))
    assert not res.converged[0]


def test_input_not_mutated():
    u0 = np.array([3.0])
    v0 = np.array([3.0])
    newton_batched_2x2(quadratic_system(np.array([4.0]), np.array([4.0])), u0, v0)
    assert u0[0] == 3.0 and v0[0] == 3.0


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        newton_batched_2x2(
            quadratic_system(np.ones(2), np.ones(2)), np.ones(2), np.ones(3)
        )


def test_options_validation():
    with pytest.raises(ValueError):
        NewtonOptions(tol=0.0)
    with pytest.raises(ValueError):
        NewtonOptions(max_iter=0)
    with pytest.raises(ValueError):
        NewtonOptions(damping=0.0)
    with pytest.raises(ValueError):
        NewtonOptions(damping=1.5)


def test_damped_newton_still_converges():
    a = np.array([4.0])
    b = np.array([9.0])
    res = newton_batched_2x2(
        quadratic_system(a, b),
        np.array([5.0]),
        np.array([5.0]),
        NewtonOptions(damping=0.7, max_iter=60),
    )
    assert res.all_converged
    assert np.allclose(res.u, [2.0], atol=1e-7)


def test_total_work_property():
    a = np.array([4.0, 9.0])
    res = newton_batched_2x2(quadratic_system(a, a), np.ones(2) * 5, np.ones(2) * 5)
    assert res.total_work == float(res.iterations.sum())


# ----------------------------------------------------------------------
# Divergence-guarded wrapper
# ----------------------------------------------------------------------
def sqrt_system():
    """F = (sqrt(u) - 2, sqrt(v) - 2): full Newton from a far guess
    overshoots into negative territory and the residual goes NaN;
    damped steps converge to (4, 4)."""

    def f(u, v):
        with np.errstate(divide="ignore", invalid="ignore"):
            su = np.sqrt(u)
            sv = np.sqrt(v)
            j11 = 0.5 / su
            j22 = 0.5 / sv
        zero = np.zeros_like(u)
        return su - 2.0, sv - 2.0, j11, zero, zero, j22

    return f


def test_guarded_matches_plain_kernel_on_happy_path():
    from repro.numerics.newton import newton_batched_2x2_guarded

    a = np.array([4.0, 9.0, 2.0])
    b = np.array([16.0, 1.0, 3.0])
    u0 = np.ones(3) * 3
    v0 = np.ones(3) * 3
    plain = newton_batched_2x2(quadratic_system(a, b), u0, v0)
    guarded = newton_batched_2x2_guarded(quadratic_system(a, b), u0, v0)
    np.testing.assert_array_equal(plain.u, guarded.u)
    np.testing.assert_array_equal(plain.v, guarded.v)
    np.testing.assert_array_equal(plain.iterations, guarded.iterations)
    np.testing.assert_array_equal(plain.converged, guarded.converged)


def test_guarded_recovers_nan_components_with_damped_retry():
    from repro.numerics.newton import newton_batched_2x2_guarded

    # From u0 = 100: step = (sqrt(100) - 2) / (0.5 / 10) = 160, so full
    # Newton jumps to -60 and the next residual is NaN.
    u0 = np.array([100.0, 4.5])
    v0 = np.array([100.0, 4.5])
    plain = newton_batched_2x2(
        sqrt_system(), u0, v0, NewtonOptions(max_iter=50)
    )
    assert not np.isfinite(plain.u[0])  # the failure mode is real
    guarded = newton_batched_2x2_guarded(
        sqrt_system(), u0, v0, NewtonOptions(max_iter=50)
    )
    assert np.isfinite(guarded.u).all() and np.isfinite(guarded.v).all()
    assert guarded.converged.all()
    assert np.allclose(guarded.u, [4.0, 4.0], atol=1e-7)
    # Retried components carry the retry's work on top of the first
    # attempt's budget.
    assert guarded.iterations[0] > plain.iterations[1]


def test_guarded_falls_back_to_initial_guess_when_retries_exhausted():
    from repro.numerics.newton import newton_batched_2x2_guarded

    def always_nan(u, v):
        bad = np.full_like(u, np.nan)
        one = np.ones_like(u)
        return bad, bad, one, np.zeros_like(u), np.zeros_like(u), one

    u0 = np.array([1.5, 2.5])
    v0 = np.array([0.5, 3.5])
    res = newton_batched_2x2_guarded(always_nan, u0, v0, max_retries=1)
    np.testing.assert_array_equal(res.u, u0)
    np.testing.assert_array_equal(res.v, v0)
    assert not res.converged.any()
    assert (u0 == [1.5, 2.5]).all()  # inputs untouched


def test_guarded_validates_retry_parameters():
    from repro.numerics.newton import newton_batched_2x2_guarded

    u = np.array([1.0])
    with pytest.raises(ValueError, match="max_retries"):
        newton_batched_2x2_guarded(sqrt_system(), u, u, max_retries=-1)
    with pytest.raises(ValueError, match="damping_factor"):
        newton_batched_2x2_guarded(sqrt_system(), u, u, damping_factor=1.0)
