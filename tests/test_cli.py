"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "figure5" in out
    assert "table1" in out
    assert "ablations" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["warp-drive"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_full_flag_only_on_scalable_commands():
    parser = build_parser()
    args = parser.parse_args(["figure5", "--full"])
    assert args.full
    with pytest.raises(SystemExit):
        parser.parse_args(["models", "--full"])


def test_scale_flag_selects_1024_rank_preset():
    parser = build_parser()
    args = parser.parse_args(["figure5", "--scale"])
    assert args.scale
    with pytest.raises(SystemExit):
        parser.parse_args(["models", "--scale"])


def test_figure5_problem_flag_parses():
    parser = build_parser()
    args = parser.parse_args(["figure5", "--problem", "brusselator"])
    assert args.problem == "brusselator"
    assert parser.parse_args(["figure5"]).problem == "synthetic"
    with pytest.raises(SystemExit):
        parser.parse_args(["figure5", "--problem", "nope"])


def test_ablations_unknown_key_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["ablations", "--only", "nonsense"])


def test_figures_command_runs_end_to_end(capsys):
    assert main(["figures-1-4"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "idle fraction" in out
    assert "completed in" in out


def test_models_command_runs_end_to_end(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "cluster" in out and "grid" in out


def test_solve_command_heat_with_lb(capsys, tmp_path):
    json_path = tmp_path / "run.json"
    assert (
        main(
            [
                "solve",
                "--problem", "heat",
                "--size", "32",
                "--ranks", "3",
                "--slow-factor", "4",
                "--lb",
                "--json", str(json_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "converged" in out
    assert "max error vs sequential reference" in out
    assert "final blocks" in out
    assert json_path.exists()


def test_solve_command_synthetic_sisc(capsys):
    assert (
        main(
            [
                "solve",
                "--problem", "synthetic",
                "--size", "48",
                "--ranks", "4",
                "--model", "sisc",
                "--tolerance", "1e-8",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "sisc: converged" in out
    assert "max residual error" in out


def test_solve_command_gantt(capsys):
    assert (
        main(["solve", "--problem", "synthetic", "--size", "32", "--ranks", "2",
              "--gantt"])
        == 0
    )
    out = capsys.readouterr().out
    assert "█" in out


def test_solve_rejects_unknown_problem():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["solve", "--problem", "navier-stokes"])


# ----------------------------------------------------------------------
# Serve verbs
# ----------------------------------------------------------------------
def test_list_mentions_serve_verbs(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for verb in ("serve", "submit", "jobs", "result", "health", "audit-replay"):
        assert verb in out


def test_serve_verbs_parse():
    parser = build_parser()
    args = parser.parse_args(
        ["serve", "--state-dir", "st", "--workers", "3", "--job-timeout", "5",
         "--cache-max-mb", "10", "--no-fsync"]
    )
    assert args.state_dir == "st" and args.workers == 3
    assert args.cache_max_mb == 10.0 and args.no_fsync

    args = parser.parse_args(
        ["submit", "--kind", "soak", "--schedules", "3", "--seed", "7",
         "--tenant", "alice", "--priority", "2", "--wait"]
    )
    assert args.kind == "soak" and args.schedules == 3 and args.wait

    args = parser.parse_args(["result", "j000001", "--follow"])
    assert args.job_id == "j000001" and args.follow

    with pytest.raises(SystemExit):
        parser.parse_args(["submit", "--kind", "warp-drive"])
    with pytest.raises(SystemExit):
        parser.parse_args(["submit"])  # --kind is required


def test_engine_flags_accept_cache_cap():
    args = build_parser().parse_args(["figure5", "--cache-max-mb", "64"])
    assert args.cache_max_mb == 64.0

    from repro.cli import _engine_for

    engine = _engine_for(args)
    assert engine.cache.max_bytes == 64_000_000


def test_audit_replay_command_offline(capsys, tmp_path):
    from repro.serve import AuditLog, config_digest, execute_spec

    spec = {"kind": "sleep", "seconds": 0.0, "tasks": 1}
    log = AuditLog(str(tmp_path / "audit.jsonl"), durable=False)
    log.append(
        job_id="j000001",
        tenant="t",
        spec=spec,
        config_digest=config_digest(spec),
        result_digest=execute_spec(spec)["digest"],
        state="done",
    )
    log.close()
    assert main(["audit-replay", "--state-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "0 mismatch(es)" in out


def test_audit_replay_command_flags_mismatch(capsys, tmp_path):
    from repro.serve import AuditLog, config_digest

    spec = {"kind": "sleep", "seconds": 0.0, "tasks": 1}
    log = AuditLog(str(tmp_path / "audit.jsonl"), durable=False)
    log.append(
        job_id="j000001",
        tenant="t",
        spec=spec,
        config_digest=config_digest(spec),
        result_digest="0" * 64,  # a served digest that cannot reproduce
        state="done",
    )
    log.close()
    with pytest.raises(SystemExit, match="audit-replay failed"):
        main(["audit-replay", "--audit", str(tmp_path / "audit.jsonl")])
