"""Tests for the experiment result containers and their reports."""

import pytest

from repro.experiments.ablations import AblationResult
from repro.experiments.figure5 import Figure5Result


def make_figure5():
    return Figure5Result(
        proc_counts=[4, 8, 16],
        time_unbalanced=[1000.0, 500.0, 300.0],
        time_balanced=[400.0, 200.0, 100.0],
        migrations=[10, 20, 30],
    )


def test_figure5_ratios_and_mean():
    r = make_figure5()
    assert r.ratios == [2.5, 2.5, 3.0]
    assert r.mean_ratio == pytest.approx((2.5 + 2.5 + 3.0) / 3)


def test_figure5_report_contains_table_and_plot():
    report = make_figure5().report()
    assert "procs" in report
    assert "without LB" in report
    assert "mean ratio" in report
    assert "[log-log]" in report  # the ASCII plot
    assert "legend:" in report


def test_figure5_report_with_empty_migrations_keeps_all_rows():
    # Regression: an empty migrations column used to truncate the
    # five-way zip in report() to zero data rows, silently emitting an
    # empty table.  It must instead pad with zeros and keep every row.
    r = Figure5Result(
        proc_counts=[4, 8, 16],
        time_unbalanced=[1000.0, 500.0, 300.0],
        time_balanced=[400.0, 200.0, 100.0],
        migrations=[],
    )
    report = r.report()
    for p in (4, 8, 16):
        assert any(line.strip().startswith(str(p)) for line in report.splitlines())
    assert "1,000.0" in report and "2.50" in report


def test_figure5_report_rejects_inconsistent_columns():
    r = Figure5Result(
        proc_counts=[4, 8],
        time_unbalanced=[1000.0],
        time_balanced=[400.0, 200.0],
    )
    with pytest.raises(ValueError, match="columns disagree"):
        r.report()
    with pytest.raises(ValueError, match="migration"):
        Figure5Result(
            proc_counts=[4, 8],
            time_unbalanced=[1000.0, 500.0],
            time_balanced=[400.0, 200.0],
            migrations=[1],
        ).report()


def test_figure5_digest_and_to_dict_roundtrip():
    r = make_figure5()
    data = r.to_dict()
    assert data["digest"] == r.digest()
    assert data["proc_counts"] == [4, 8, 16]
    # The digest covers only the result columns, not derived fields.
    r2 = make_figure5()
    assert r2.digest() == r.digest()


def test_ablation_result_best_and_report():
    r = AblationResult(
        name="demo sweep",
        parameter="knob",
        values=[1, 2, 3],
        times=[30.0, 10.0, 20.0],
        migrations=[5, 6, 7],
        extra={"note": ["a", "b", "c"]},
    )
    assert r.best() == 2
    report = r.report()
    assert "demo sweep" in report
    assert "knob" in report
    assert "best: knob = 2" in report
    assert "note" in report


def test_ablation_report_without_extra_columns():
    r = AblationResult(
        name="x", parameter="p", values=[1], times=[1.0], migrations=[0], extra={}
    )
    assert "best: p = 1" in r.report()
