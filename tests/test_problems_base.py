"""Tests for the Problem base class helpers and IterationResult."""

import numpy as np
import pytest

from repro.problems import HeatProblem, SyntheticProblem
from repro.problems.base import IterationResult


def test_iteration_result_aligns_shapes():
    with pytest.raises(ValueError, match="align"):
        IterationResult(residuals=np.zeros(3), work=np.zeros(2))


def test_iteration_result_metrics():
    res = IterationResult(
        residuals=np.array([0.1, 0.5, 0.2]), work=np.array([1.0, 2.0, 3.0])
    )
    assert res.local_residual == 0.5
    assert res.total_work == 6.0


def test_iteration_result_empty_block():
    res = IterationResult(residuals=np.zeros(0), work=np.zeros(0))
    assert res.local_residual == 0.0
    assert res.total_work == 0.0


def test_check_side():
    prob = SyntheticProblem(np.full(4, 0.5))
    assert prob.check_side("left") == "left"
    with pytest.raises(ValueError, match="side"):
        prob.check_side("up")


def test_default_payload_edge_halo_matches_halo_format():
    """For array-per-component problems, the default implementation's
    output must be shape-compatible with halo_out."""
    prob = HeatProblem(10, t_end=0.05, n_steps=8)
    state = prob.initial_state(0, 10)
    payload = prob.split(state, 4, "left")
    first = prob.payload_edge_halo(payload, "first")
    last = prob.payload_edge_halo(payload, "last")
    reference_halo = prob.halo_out(state, "left")
    assert first.shape == reference_halo.shape
    assert last.shape == reference_halo.shape
    assert np.array_equal(last, payload[-1:])
    with pytest.raises(ValueError, match="edge"):
        prob.payload_edge_halo(payload, "middle")


def test_brusselator_payload_edge_halo_drops_component_axis():
    from repro.problems import BrusselatorProblem

    prob = BrusselatorProblem(10, t_end=1.0, n_steps=8)
    state = prob.initial_state(0, 10)
    payload = prob.split(state, 4, "right")
    halo = prob.payload_edge_halo(payload, "first")
    assert halo.shape == (2, prob.n_steps + 1)
    assert np.array_equal(halo, payload[0])
    with pytest.raises(ValueError):
        prob.payload_edge_halo(payload, "center")
