"""Property-based end-to-end fuzzing of the full solver stack.

Hypothesis draws random platforms (rank counts, speed spreads, link
latencies, load traces) and solver/LB configurations; every draw must
converge to the correct fixed point.  This is the library's central
correctness claim — asynchronous iterations with migrations are correct
under *any* schedule — exercised on schedules nobody hand-picked.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LBConfig, SolverConfig, run_aiac, run_balanced_aiac
from repro.grid.host import Host
from repro.grid.link import Link
from repro.grid.network import Network
from repro.grid.platform import Platform
from repro.grid.traces import MarkovTrace
from repro.models import run_siac, run_sisc
from repro.problems import SyntheticProblem
from repro.util.rng import spawn_generator

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def build_platform(n_ranks, speeds, latency, load_seed, fluctuate):
    hosts = []
    for i in range(n_ranks):
        trace = None
        if fluctuate:
            trace = MarkovTrace(
                spawn_generator(load_seed, f"h{i}"),
                mean_dwell=3.0,
                low=0.3,
                high=1.0,
            )
        hosts.append(Host(f"h{i}", speed=speeds[i], trace=trace))
    return Platform(hosts=hosts, network=Network(Link(latency=latency, bandwidth=1e6)))


platform_strategy = st.builds(
    build_platform,
    n_ranks=st.shared(st.integers(1, 4), key="ranks"),
    speeds=st.shared(st.integers(1, 4), key="ranks").flatmap(
        lambda n: st.lists(
            st.floats(min_value=50.0, max_value=500.0), min_size=n, max_size=n
        )
    ),
    latency=st.floats(min_value=0.0, max_value=0.2),
    load_seed=st.integers(0, 99),
    fluctuate=st.booleans(),
)


def problem(seed):
    rng = spawn_generator(seed, "rates")
    rates = rng.uniform(0.3, 0.9, 20)
    return SyntheticProblem(rates, coupling=0.3)


@SLOW
@given(platform=platform_strategy, seed=st.integers(0, 50))
def test_property_aiac_always_correct(platform, seed):
    result = run_aiac(
        problem(seed), platform, SolverConfig(tolerance=1e-7, max_iterations=30000)
    )
    assert result.converged
    assert np.max(result.solution()) < 1e-7


@SLOW
@given(
    platform=platform_strategy,
    seed=st.integers(0, 50),
    period=st.integers(1, 12),
    threshold=st.floats(min_value=1.1, max_value=8.0),
    accuracy=st.floats(min_value=0.1, max_value=1.0),
    max_fraction=st.floats(min_value=0.1, max_value=1.0),
    adaptive=st.booleans(),
)
def test_property_balanced_aiac_always_correct(
    platform, seed, period, threshold, accuracy, max_fraction, adaptive
):
    lb = LBConfig(
        period=period,
        threshold_ratio=threshold,
        accuracy=accuracy,
        max_fraction=max_fraction,
        min_components=2,
        adaptive=adaptive,
    )
    result = run_balanced_aiac(
        problem(seed),
        platform,
        SolverConfig(tolerance=1e-7, max_iterations=30000),
        lb,
    )
    assert result.converged
    assert np.max(result.solution()) < 1e-7
    # Partition stayed a tiling of the component space.
    blocks = sorted(result.final_partition)
    cursor = 0
    for lo, hi in blocks:
        assert lo == cursor
        cursor = hi
    assert cursor == 20


@SLOW
@given(platform=platform_strategy, seed=st.integers(0, 50))
def test_property_synchronous_models_always_correct(platform, seed):
    cfg = SolverConfig(tolerance=1e-7, max_iterations=30000)
    for runner in (run_sisc, run_siac):
        result = runner(problem(seed), platform, cfg)
        assert result.converged
        assert np.max(result.solution()) < 1e-7


@SLOW
@given(
    seed=st.integers(0, 50),
    crash_rank=st.integers(0, 3),
    crash_at=st.floats(min_value=0.5, max_value=6.0),
    downtime=st.floats(min_value=0.3, max_value=2.0),
    loss_rate=st.floats(min_value=0.0, max_value=0.2),
    period=st.integers(3, 12),
)
def test_property_crash_recovery_agrees_with_fault_free(
    seed, crash_rank, crash_at, downtime, loss_rate, period
):
    """Crash + restart (optionally under loss) on AIAC+LB: the run must
    still converge, agree with its fault-free twin, and end with the
    partition tiling the component space — the guard invariants hold
    throughout."""
    from repro.faults.injector import FaultInjector
    from repro.faults.models import (
        FaultSchedule,
        HostCrash,
        MessageLoss,
        ResilienceConfig,
    )
    from repro.guard import GuardConfig, InvariantMonitor
    from repro.problems import HeatProblem

    def heat():
        return HeatProblem(24, t_end=0.05, n_steps=8)

    platform = build_platform(
        4, [2000.0, 2500.0, 1800.0, 2200.0], 0.001, 0, False
    )
    cfg = SolverConfig(tolerance=1e-6, max_iterations=100_000, max_time=500.0)
    lb = LBConfig(period=period, min_components=2)

    baseline = run_balanced_aiac(heat(), platform, cfg, lb)
    assert baseline.converged

    faults = [HostCrash(rank=crash_rank, at=crash_at, downtime=downtime)]
    if loss_rate > 0.0:
        faults.append(MessageLoss(loss_rate))
    schedule = FaultSchedule(
        faults=tuple(faults),
        seed=seed,
        resilience=ResilienceConfig(
            base_timeout=0.05,
            heartbeat_period=1.0,
            liveness_timeout=3.0,
            checkpoint_every=20,
        ),
    )
    guard = InvariantMonitor(GuardConfig(check_every=32, stall_horizon=50.0))
    result = run_balanced_aiac(
        heat(),
        platform,
        cfg,
        lb,
        injector=FaultInjector(schedule),
        guard=guard,
    )
    assert result.converged
    guard.verify_halt()  # invariants + no premature termination
    assert guard.stall_reports == []
    # The recovered run's answer agrees with the fault-free twin.
    drift = float(np.max(np.abs(result.solution() - baseline.solution())))
    assert drift < 1e-3
    # Conservation at the end: the partition still tiles [0, 24).
    blocks = sorted(result.final_partition)
    cursor = 0
    for lo, hi in blocks:
        assert lo == cursor
        cursor = hi
    assert cursor == 24
