"""Property-based end-to-end fuzzing of the full solver stack.

Hypothesis draws random platforms (rank counts, speed spreads, link
latencies, load traces) and solver/LB configurations; every draw must
converge to the correct fixed point.  This is the library's central
correctness claim — asynchronous iterations with migrations are correct
under *any* schedule — exercised on schedules nobody hand-picked.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LBConfig, SolverConfig, run_aiac, run_balanced_aiac
from repro.grid.host import Host
from repro.grid.link import Link
from repro.grid.network import Network
from repro.grid.platform import Platform
from repro.grid.traces import MarkovTrace
from repro.models import run_siac, run_sisc
from repro.problems import SyntheticProblem
from repro.util.rng import spawn_generator

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def build_platform(n_ranks, speeds, latency, load_seed, fluctuate):
    hosts = []
    for i in range(n_ranks):
        trace = None
        if fluctuate:
            trace = MarkovTrace(
                spawn_generator(load_seed, f"h{i}"),
                mean_dwell=3.0,
                low=0.3,
                high=1.0,
            )
        hosts.append(Host(f"h{i}", speed=speeds[i], trace=trace))
    return Platform(hosts=hosts, network=Network(Link(latency=latency, bandwidth=1e6)))


platform_strategy = st.builds(
    build_platform,
    n_ranks=st.shared(st.integers(1, 4), key="ranks"),
    speeds=st.shared(st.integers(1, 4), key="ranks").flatmap(
        lambda n: st.lists(
            st.floats(min_value=50.0, max_value=500.0), min_size=n, max_size=n
        )
    ),
    latency=st.floats(min_value=0.0, max_value=0.2),
    load_seed=st.integers(0, 99),
    fluctuate=st.booleans(),
)


def problem(seed):
    rng = spawn_generator(seed, "rates")
    rates = rng.uniform(0.3, 0.9, 20)
    return SyntheticProblem(rates, coupling=0.3)


@SLOW
@given(platform=platform_strategy, seed=st.integers(0, 50))
def test_property_aiac_always_correct(platform, seed):
    result = run_aiac(
        problem(seed), platform, SolverConfig(tolerance=1e-7, max_iterations=30000)
    )
    assert result.converged
    assert np.max(result.solution()) < 1e-7


@SLOW
@given(
    platform=platform_strategy,
    seed=st.integers(0, 50),
    period=st.integers(1, 12),
    threshold=st.floats(min_value=1.1, max_value=8.0),
    accuracy=st.floats(min_value=0.1, max_value=1.0),
    max_fraction=st.floats(min_value=0.1, max_value=1.0),
    adaptive=st.booleans(),
)
def test_property_balanced_aiac_always_correct(
    platform, seed, period, threshold, accuracy, max_fraction, adaptive
):
    lb = LBConfig(
        period=period,
        threshold_ratio=threshold,
        accuracy=accuracy,
        max_fraction=max_fraction,
        min_components=2,
        adaptive=adaptive,
    )
    result = run_balanced_aiac(
        problem(seed),
        platform,
        SolverConfig(tolerance=1e-7, max_iterations=30000),
        lb,
    )
    assert result.converged
    assert np.max(result.solution()) < 1e-7
    # Partition stayed a tiling of the component space.
    blocks = sorted(result.final_partition)
    cursor = 0
    for lo, hi in blocks:
        assert lo == cursor
        cursor = hi
    assert cursor == 20


@SLOW
@given(platform=platform_strategy, seed=st.integers(0, 50))
def test_property_synchronous_models_always_correct(platform, seed):
    cfg = SolverConfig(tolerance=1e-7, max_iterations=30000)
    for runner in (run_sisc, run_siac):
        result = runner(problem(seed), platform, cfg)
        assert result.converged
        assert np.max(result.solution()) < 1e-7
