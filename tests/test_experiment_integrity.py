"""End-to-end tests for the integrity experiment sweep."""

import json

import pytest

from repro.analysis.perf import stable_digest
from repro.experiments.integrity import _classify, run_integrity
from repro.workloads import IntegrityScenario


@pytest.fixture(scope="module")
def tiny_result():
    return run_integrity(IntegrityScenario.tiny())


def test_sweep_covers_every_grid_cell(tiny_result):
    scenario = IntegrityScenario.tiny()
    seen = [(r["arm"], r["schedule"], r["model"]) for r in tiny_result.rows]
    assert seen == scenario.grid()


def test_detect_arm_recovers_from_payload_corruption(tiny_result):
    scenario = IntegrityScenario.tiny()
    for model in scenario.models:
        row = tiny_result.row("detect", "flip_hi", model)
        assert row is not None
        assert row["outcome"] == "recovered"
        assert row["converged"]
        assert row["max_error"] < scenario.error_tol
        # Recall 1.0 on the wire: every corrupted delivery fails its
        # checksum and is refetched.
        assert row["corruptions_injected"] > 0
        assert row["corruptions_detected"] == row["corruptions_injected"]
        # Every rejection is healed by the RTO path (a retransmission
        # can itself be re-corrupted, so retries slightly undercounts
        # detections — but the retransmit machinery must have run).
        assert row["retries"] > 0


def test_blind_arm_fails_loudly_never_silently(tiny_result):
    # Unchecked bit-flipped halos either crash a handler contract
    # (aiac+lb: corrupted migration payloads) or keep the residual from
    # ever settling (aiac).  Neither run converges wrong.
    crashed = tiny_result.row("blind", "flip_hi", "aiac+lb")
    assert crashed["outcome"] == "crashed"
    assert crashed["time"] is None
    assert not crashed["converged"]
    assert crashed["crash"]  # the original exception's type name
    assert crashed["corruptions_detected"] == 0

    stalled = tiny_result.row("blind", "flip_hi", "aiac")
    assert stalled["outcome"] == "stalled"
    assert not stalled["converged"]
    assert stalled["corruptions_detected"] == 0


def test_gate_quantities(tiny_result):
    assert tiny_result.wrong_detected_rows() == []
    # Zero-corruption rows are bit-identical across arms: detection is
    # inert when no corruption fault is scheduled.
    assert tiny_result.clean_arm_mismatches() == []
    for row in tiny_result.rows:
        if row["schedule"] == "none":
            assert row["outcome"] == "clean"
            assert row["corruptions_injected"] == 0


def test_sweep_is_deterministic(tiny_result):
    again = run_integrity(IntegrityScenario.tiny())
    assert again.digest() == tiny_result.digest()
    assert again.rows == tiny_result.rows


def test_report_carries_digest_and_gate_line(tiny_result):
    report = tiny_result.report()
    assert tiny_result.digest() in report
    assert "zero wrong answers with detection armed" in report
    assert "GATE VIOLATION" not in report


def test_save_json_round_trip(tiny_result, tmp_path):
    path = tmp_path / "bench.json"
    tiny_result.save_json(str(path))
    data = json.loads(path.read_text())
    assert data["digest"] == tiny_result.digest()
    assert data["rows"] == tiny_result.rows
    # The stored digest re-derives from the stored rows alone.
    assert stable_digest({"rows": data["rows"]}) == data["digest"]


def test_unknown_schedule_name_is_rejected():
    with pytest.raises(ValueError, match="nope"):
        IntegrityScenario().schedule("nope", detect=True)


def test_truncate_is_detect_only():
    grid = IntegrityScenario().grid()
    assert ("detect", "truncate", "aiac") in grid
    assert all(
        schedule != "truncate" for arm, schedule, _ in grid if arm == "blind"
    )


def test_classify_taxonomy():
    tol = 1e-3
    assert _classify(True, 1e-9, 0, 0, tol) == "clean"
    assert _classify(True, 1e-9, 5, 5, tol) == "recovered"
    assert _classify(True, 1e-9, 5, 0, tol) == "masked"
    assert _classify(False, 1.0, 5, 5, tol) == "stalled"
    # The one unacceptable outcome: converged, but to the wrong answer.
    assert _classify(True, 1.0, 5, 5, tol) == "WRONG"
    assert _classify(True, 1.0, 5, 0, tol) == "WRONG"
