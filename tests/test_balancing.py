"""Tests for the standalone load-balancing algorithm library."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balancing import (
    BertsekasParams,
    centralized_balance,
    diffusion_balance,
    diffusion_step,
    dimension_exchange_balance,
    dimension_exchange_round,
    edge_colouring,
    imbalance_ratio,
    load_stddev,
    mean_load,
    optimal_alpha,
    simulate_bertsekas_lb,
)
from repro.balancing.centralized import centralized_cost_model


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def test_metrics_basics():
    load = np.array([1.0, 3.0, 2.0])
    assert mean_load(load) == pytest.approx(2.0)
    assert imbalance_ratio(load) == pytest.approx(1.5)
    assert load_stddev(np.array([2.0, 2.0])) == 0.0
    assert imbalance_ratio(np.zeros(3)) == 1.0


def test_metrics_validation():
    with pytest.raises(ValueError):
        mean_load(np.array([]))
    with pytest.raises(ValueError):
        imbalance_ratio(np.array([-1.0, 2.0]))


# ---------------------------------------------------------------------------
# Diffusion
# ---------------------------------------------------------------------------


def test_diffusion_step_conserves_load():
    g = nx.path_graph(5)
    load = np.array([10.0, 0.0, 0.0, 0.0, 0.0])
    new = diffusion_step(g, load, 0.25)
    assert new.sum() == pytest.approx(load.sum())
    assert new[1] > 0  # flow happened


@pytest.mark.parametrize(
    "graph",
    [nx.path_graph(6), nx.cycle_graph(7), nx.hypercube_graph(3), nx.star_graph(5)],
)
def test_diffusion_balances_connected_graphs(graph):
    n = graph.number_of_nodes()
    load = np.zeros(n)
    load[0] = float(n * 4)
    final, rounds = diffusion_balance(graph, load, tol=1e-8)
    assert rounds > 0
    assert np.allclose(final, 4.0, atol=1e-6)


def test_diffusion_rejects_disconnected():
    g = nx.Graph()
    g.add_edges_from([(0, 1), (2, 3)])
    with pytest.raises(ValueError, match="connected"):
        diffusion_balance(g, np.array([4.0, 0.0, 0.0, 0.0]))


def test_diffusion_alpha_validation():
    g = nx.path_graph(3)
    with pytest.raises(ValueError):
        diffusion_step(g, np.zeros(3), 0.0)
    with pytest.raises(ValueError):
        diffusion_step(g, np.zeros(2), 0.25)  # wrong shape


def test_optimal_alpha():
    assert optimal_alpha(nx.star_graph(4)) == pytest.approx(1.0 / 5.0)
    with pytest.raises(ValueError):
        optimal_alpha(nx.Graph())


def test_optimal_alpha_edgeless_is_accepted_by_diffusion():
    # Regression (ISSUE 8): deg_max == 0 used to yield alpha = 1.0,
    # which diffusion_step's own validation rejects — diffusion_balance
    # crashed on an input it should trivially accept.
    g = nx.empty_graph(3)
    alpha = optimal_alpha(g)
    assert 0 < alpha <= 0.5
    load = np.array([1.0, 2.0, 3.0])
    assert np.array_equal(diffusion_step(g, load, alpha), load)
    single = nx.empty_graph(1)
    balanced, rounds = diffusion_balance(single, np.array([5.0]))
    assert rounds == 0
    assert balanced[0] == 5.0


def test_diffusion_step_rejects_divergent_alpha_on_stars():
    # Regression (ISSUE 8): alpha = 0.5 on a star of degree >= 3 makes
    # the iteration matrix's extreme eigenvalue < -1; the hub and leaves
    # swap ever-growing loads instead of converging, and
    # diffusion_balance burned all max_rounds before raising.  The step
    # must reject alpha > 1/deg_max up front.
    g = nx.star_graph(3)  # hub degree 3: stable only for alpha <= 1/3
    load = np.array([12.0, 0.0, 0.0, 0.0])
    with pytest.raises(ValueError, match="alpha"):
        diffusion_step(g, load, 0.5)
    with pytest.raises(ValueError, match="alpha"):
        diffusion_balance(g, load, alpha=0.5, max_rounds=50)
    # The divergence the validation prevents, shown on the raw update:
    # one unvalidated round at alpha = 0.5 overshoots the hub below
    # every leaf (negative load!), and the oscillation never decays.
    stddevs = [float(np.std(load))]
    current = load.copy()
    for _ in range(6):
        new = current.copy()
        for u, v in g.edges():
            flow = 0.5 * (current[u] - current[v])
            new[u] -= flow
            new[v] += flow
        current = new
        stddevs.append(float(np.std(current)))
    assert stddevs[-1] >= stddevs[1]  # not converging
    # With the validated safe alpha the same spike balances fine.
    balanced, _ = diffusion_balance(g, load, tol=1e-6)
    assert load_stddev(balanced) <= 1e-6


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100), n=st.integers(2, 12))
def test_property_diffusion_monotone_stddev(seed, n):
    rng = np.random.default_rng(seed)
    g = nx.cycle_graph(n)
    load = rng.uniform(0, 10, n)
    alpha = optimal_alpha(g)
    before = load_stddev(load)
    after = load_stddev(diffusion_step(g, load, alpha))
    assert after <= before + 1e-12


# ---------------------------------------------------------------------------
# Dimension exchange
# ---------------------------------------------------------------------------


def test_edge_colouring_is_proper():
    g = nx.hypercube_graph(3)
    colours = edge_colouring(g)
    all_edges = [e for c in colours for e in c]
    assert len(all_edges) == g.number_of_edges()
    for matching in colours:
        nodes = [n for e in matching for n in e]
        assert len(nodes) == len(set(nodes))  # a valid matching


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 500))
def test_edge_colouring_ignores_construction_order(seed):
    # Regression (ISSUE 8): networkx yields each edge in insertion
    # orientation, and the old code sorted the raw (u, v) tuples — the
    # same graph built in a different order produced different
    # matchings.  Endpoints must be normalized before sorting.
    edges = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]
    reference = nx.Graph()
    reference.add_edges_from(edges)
    rng = np.random.default_rng(seed)
    shuffled = nx.Graph()
    for i in rng.permutation(len(edges)):
        u, v = edges[i]
        if rng.integers(2):
            u, v = v, u  # insert in flipped orientation
        shuffled.add_edge(u, v)
    assert edge_colouring(shuffled) == edge_colouring(reference)


def test_dimension_exchange_round_averages_pairs():
    g = nx.path_graph(2)
    new = dimension_exchange_round(g, np.array([10.0, 0.0]), [(0, 1)])
    assert np.allclose(new, [5.0, 5.0])


def test_dimension_exchange_round_rejects_nonmatching():
    g = nx.path_graph(3)
    with pytest.raises(ValueError, match="matching"):
        dimension_exchange_round(g, np.zeros(3), [(0, 1), (1, 2)])


@pytest.mark.parametrize("graph", [nx.path_graph(6), nx.hypercube_graph(3)])
def test_dimension_exchange_balances(graph):
    n = graph.number_of_nodes()
    load = np.zeros(n)
    load[0] = float(n)
    final, cycles = dimension_exchange_balance(graph, load, tol=1e-8)
    assert np.allclose(final, 1.0, atol=1e-6)
    assert cycles >= 1


def test_dimension_exchange_hypercube_one_cycle_is_exact():
    """On a d-cube, one sweep through the d dimensions balances exactly."""
    g = nx.hypercube_graph(3)
    n = g.number_of_nodes()
    rng = np.random.default_rng(3)
    load = rng.uniform(0, 10, n)
    final, cycles = dimension_exchange_balance(g, load, tol=1e-9)
    assert cycles <= 3  # colouring may not align with dimensions exactly
    assert np.allclose(final, load.mean(), atol=1e-8)


# ---------------------------------------------------------------------------
# Centralized
# ---------------------------------------------------------------------------


def test_centralized_balances_in_one_round():
    load = np.array([10.0, 2.0, 0.0])
    final, plan = centralized_balance(load)
    assert np.allclose(final, 4.0)
    # The plan actually realises the balance.
    realised = load.copy()
    for src, dst, amount in plan:
        realised[src] -= amount
        realised[dst] += amount
    assert np.allclose(realised, 4.0)


def test_centralized_plan_empty_when_balanced():
    _, plan = centralized_balance(np.array([3.0, 3.0, 3.0]))
    assert plan == []


def test_centralized_cost_scales_linearly():
    c4 = centralized_cost_model(4, latency=1e-3)
    c16 = centralized_cost_model(16, latency=1e-3)
    assert c16 / c4 == pytest.approx(15 / 3)
    with pytest.raises(ValueError):
        centralized_cost_model(0, latency=1e-3)


# ---------------------------------------------------------------------------
# Bertsekas asynchronous model
# ---------------------------------------------------------------------------


def test_bertsekas_reduces_imbalance_on_path():
    g = nx.path_graph(5)
    load = np.array([100.0, 0.0, 0.0, 0.0, 0.0])
    res = simulate_bertsekas_lb(g, load, BertsekasParams(horizon=300.0), seed=1)
    assert res.transfers > 0
    assert res.final_imbalance < imbalance_ratio(load) / 2
    assert res.final_load.sum() == pytest.approx(100.0, rel=1e-9)


def test_bertsekas_variants_both_balance():
    g = nx.cycle_graph(6)
    rng = np.random.default_rng(0)
    load = rng.uniform(0, 50, 6)
    for variant in ("lightest", "all_lighter"):
        res = simulate_bertsekas_lb(
            g, load, BertsekasParams(variant=variant, horizon=400.0), seed=2
        )
        assert res.final_imbalance < 1.3, variant


def test_bertsekas_threshold_prevents_thrashing_when_balanced():
    g = nx.path_graph(4)
    load = np.full(4, 10.0)
    res = simulate_bertsekas_lb(
        g, load, BertsekasParams(horizon=50.0, threshold_ratio=1.5), seed=3
    )
    assert res.transfers == 0


def test_bertsekas_history_is_sampled():
    g = nx.path_graph(3)
    res = simulate_bertsekas_lb(
        g,
        np.array([30.0, 0.0, 0.0]),
        BertsekasParams(horizon=100.0),
        seed=4,
        sample_period=2.0,
    )
    assert len(res.history_times) >= 40
    # Imbalance trends down over the run (from 3.0 at t=0).
    assert res.history_imbalance[0] <= 3.0
    assert res.history_imbalance[-1] < 1.5
    assert res.history_imbalance[-1] <= res.history_imbalance[0]


def test_bertsekas_deterministic_per_seed():
    g = nx.path_graph(4)
    load = np.array([40.0, 0.0, 0.0, 0.0])
    r1 = simulate_bertsekas_lb(g, load, BertsekasParams(horizon=100.0), seed=7)
    r2 = simulate_bertsekas_lb(g, load, BertsekasParams(horizon=100.0), seed=7)
    assert np.array_equal(r1.final_load, r2.final_load)
    assert r1.transfers == r2.transfers


def test_bertsekas_validation():
    g = nx.path_graph(3)
    with pytest.raises(ValueError):
        simulate_bertsekas_lb(g, np.zeros(2))
    with pytest.raises(ValueError):
        simulate_bertsekas_lb(g, np.array([-1.0, 0.0, 0.0]))
    with pytest.raises(ValueError):
        BertsekasParams(threshold_ratio=1.0)
    with pytest.raises(ValueError):
        BertsekasParams(variant="middle")
    with pytest.raises(ValueError):
        BertsekasParams(transfer_fraction=0.0)
