"""Tests for the resilient transport layer of :mod:`repro.runtime.node`.

Unit-level: two nodes wired to an armed injector, no solver on top.
The out-of-order tests are property tests over fixed schedule seeds —
reordering delays are drawn from the injector's deterministic streams,
so each seed is one reproducible adversarial delivery schedule.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Hold, Simulator
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    MessageDuplication,
    MessageLoss,
    MessageReordering,
    ResilienceConfig,
)
from repro.grid.host import Host
from repro.grid.link import Link
from repro.grid.network import Network
from repro.runtime.node import GridNode
from repro.runtime.tracer import Tracer


def make_pair(*faults, seed=0, latency=0.01, resilience=None):
    """Two nodes with an armed injector (no ChainRun underneath)."""
    sim = Simulator()
    net = Network(Link(latency=latency, bandwidth=1e6))
    tracer = Tracer()
    a = GridNode(sim, 0, Host("a", 1.0), net, tracer)
    b = GridNode(sim, 1, Host("b", 1.0), net, tracer)
    injector = FaultInjector(
        FaultSchedule(
            faults=faults,
            seed=seed,
            resilience=resilience or ResilienceConfig(base_timeout=0.5),
        )
    )
    # Minimal manual arm: message filtering and retry policy need only
    # the simulator and tracer, not the full ChainRun wiring.
    injector.sim = sim
    injector.tracer = tracer
    a.injector = injector
    b.injector = injector
    return sim, a, b, injector


# ----------------------------------------------------------------------
# channel_busy (paper §5.1 mutual exclusion)
# ----------------------------------------------------------------------
def test_channel_busy_fast_path_clears_on_arrival():
    sim = Simulator()
    net = Network(Link(latency=2.0, bandwidth=1e6))
    a = GridNode(sim, 0, Host("a", 1.0), net)
    b = GridNode(sim, 1, Host("b", 1.0), net)
    b.register_handler("halo", lambda m: None)
    assert not a.channel_busy("halo", 1)
    assert a.send(b, "halo", None, 8.0, exclusive=True)
    assert a.channel_busy("halo", 1)  # in flight
    assert not a.channel_busy("halo", 0)  # per destination
    assert not a.channel_busy("data", 1)  # per kind
    assert not a.send(b, "halo", None, 8.0, exclusive=True)  # suppressed
    sim.run()
    assert not a.channel_busy("halo", 1)  # cleared at arrival


def test_channel_busy_resilient_clears_on_ack():
    sim, a, b, _ = make_pair(latency=1.0)
    b.register_handler("halo", lambda m: None)
    assert a.send(b, "halo", None, 8.0, exclusive=True)
    assert a.channel_busy("halo", 1)
    sim.run()
    # The ack round trip completed: channel free again.
    assert not a.channel_busy("halo", 1)


def test_exclusive_resilient_send_buffers_latest_payload():
    # Three sends while the first transfer is unacked: the middle one
    # must be superseded — the receiver sees the first (in flight when
    # buffering began) and the last (flushed on ack), never the stale
    # intermediate.
    sim, a, b, _ = make_pair(latency=1.0)
    got = []
    b.register_handler("halo", lambda m: got.append(m.payload))

    def sender(sim):
        a.send(b, "halo", "v1", 8.0, exclusive=True)
        yield Hold(0.1)
        assert not a.send(b, "halo", "v2", 8.0, exclusive=True)
        yield Hold(0.1)
        assert not a.send(b, "halo", "v3", 8.0, exclusive=True)

    sim.spawn("s", sender(sim))
    sim.run()
    assert got == ["v1", "v3"]


# ----------------------------------------------------------------------
# Reliability mechanics
# ----------------------------------------------------------------------
def test_lost_message_is_retransmitted():
    # Loss window covers only the first attempt; the retry gets through.
    sim, a, b, injector = make_pair(
        MessageLoss(1.0, t0=0.0, t1=0.1), latency=0.01
    )
    got = []
    b.register_handler("data", lambda m: got.append(m.payload))
    a.send(b, "data", 42, 8.0)
    sim.run()
    assert got == [42]
    assert injector.stats["messages_dropped"] == 1
    assert injector.stats["retries"] == 1


def test_exhausted_retries_fire_failure_handler():
    sim, a, b, injector = make_pair(
        MessageLoss(1.0),  # everything drops, forever
        resilience=ResilienceConfig(base_timeout=0.1, max_attempts=3),
    )
    b.register_handler("data", lambda m: None)
    failures = []
    a.register_failure_handler("data", lambda m, d: failures.append((m.payload, d)))
    a.send(b, "data", "doomed", 8.0)
    sim.run()
    assert failures == [("doomed", False)]  # never delivered
    assert injector.stats["sends_failed"] == 1
    assert injector.stats["retries"] == 2  # attempts 2 and 3


def test_duplicates_are_suppressed():
    sim, a, b, injector = make_pair(MessageDuplication(1.0))
    got = []
    b.register_handler("data", lambda m: got.append(m.payload))
    a.send(b, "data", "once", 8.0)
    sim.run()
    assert got == ["once"]
    assert injector.stats["duplicates_injected"] >= 1
    assert b.duplicates_suppressed >= 1


def test_liveness_follows_heartbeats_and_silence():
    resilience = ResilienceConfig(
        base_timeout=0.5, heartbeat_period=1.0, liveness_timeout=2.5
    )
    sim, a, b, _ = make_pair(resilience=resilience)
    assert a.peer_alive(1)  # nothing heard yet, but t=0 is within timeout

    def beat(sim):
        for _ in range(3):
            yield Hold(1.0)
            b.send(a, "__hb__", None, 8.0)

    def probe(sim):
        yield Hold(3.0)
        alive_while_beating = a.peer_alive(1)
        yield Hold(4.0)  # beacons stopped at t=3
        assert alive_while_beating
        assert not a.peer_alive(1)

    sim.spawn("beat", beat(sim))
    sim.spawn("probe", probe(sim))
    sim.run()
    assert sim.now == 7.0


def test_crash_before_first_heartbeat_is_marked_dead():
    # Regression: a host that crashes with an unacked transfer pending
    # used to keep retransmitting from the grave (its retry timer never
    # checked ``alive``), and every ghost delivery refreshed the
    # receiver's ``_last_heard`` — so a peer that crashed before its
    # first heartbeat was never marked dead by ``peer_alive``.
    resilience = ResilienceConfig(
        base_timeout=1.0, liveness_timeout=2.5, max_attempts=8
    )
    sim, a, b, injector = make_pair(
        MessageLoss(rate=1.0, t0=0.0, t1=0.5), resilience=resilience
    )
    a.register_handler("data", lambda m: None)
    # b starts a reliable transfer whose first copy is lost, then
    # crashes before the retry timer (t = base_timeout) fires.
    assert b.send(a, "data", b"payload", 64.0)
    sim.at(0.2, lambda: setattr(b, "alive", False))
    for t in (1.0, 2.0, 3.0, 4.0):  # keep virtual time advancing
        sim.at(t, lambda: None)
    sim.run(until=4.0)
    # No ghost retransmissions: the transfer parked, a never heard
    # from the dead b, and the liveness view flipped to dead once the
    # timeout elapsed.
    assert b.retries == 0
    assert 1 not in a._last_heard
    assert not a.peer_alive(1)
    # Restart re-arms the parked transfer and it completes normally.
    b.alive = True
    assert b.resume_parked() == 1
    sim.run()
    assert b.retries == 1 and b.sends_failed == 0
    assert a.peer_alive(1)  # the (live) retransmission was heard


def test_resume_parked_skips_transfers_acked_during_downtime():
    # A copy already on the wire at crash time may deliver and ack
    # while the sender is down; the parked entry must then resolve
    # silently at restart instead of retransmitting a completed send.
    resilience = ResilienceConfig(base_timeout=0.5, max_attempts=8)
    sim, a, b, _ = make_pair(latency=1.0, resilience=resilience)
    a.register_handler("data", lambda m: None)
    assert b.send(a, "data", b"payload", 64.0)  # arrival ≈ t=1.0
    # Crash after the copy is in flight; the retry timer fires at
    # t=0.5 with in_flight > 0, re-arms, then fires again at t≈1.0+
    # after the ack — acked, so nothing parks; force the parked path
    # by crashing *before* the first timer instead.
    sim.at(0.1, lambda: setattr(b, "alive", False))
    sim.run(until=2.5)  # copy lands ≈ t=1.0, ack back ≈ t=2.0
    assert b._parked and b._parked[0].acked  # ack raced in while down
    b.alive = True
    assert b.resume_parked() == 0  # nothing to re-arm
    sim.run()
    assert b.retries == 0 and b.sends_failed == 0


# ----------------------------------------------------------------------
# Out-of-order delivery (property over fixed seeds)
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_messages=st.integers(min_value=2, max_value=25),
)
def test_property_newest_wins_never_regresses(seed, n_messages):
    """Under random reordering delays, a newest-wins channel delivers a
    subsequence of strictly increasing versions ending at the newest."""
    sim, a, b, _ = make_pair(
        MessageReordering(0.8, max_extra_delay=3.0), seed=seed, latency=0.01
    )
    got = []
    b.register_handler("state", lambda m: got.append(m.payload), newest_wins=True)

    def sender(sim):
        for version in range(n_messages):
            a.send(b, "state", version, 8.0)
            yield Hold(0.05)  # well below max_extra_delay: races guaranteed

    sim.spawn("s", sender(sim))
    sim.run()
    assert got, "nothing delivered (reordering must not lose messages)"
    assert got == sorted(set(got)), f"stale state handled: {got}"
    assert got[-1] == n_messages - 1, "the newest version must win"
    # Every arriving copy is either handled or rejected as stale; with
    # retransmissions there may be more copies than messages.
    assert len(got) + b.stale_rejected >= n_messages


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_ordinary_kinds_deliver_exactly_once(seed):
    """Reordering scrambles arrival order but every distinct message is
    handled exactly once (duplicates from retries are suppressed)."""
    n_messages = 20
    sim, a, b, _ = make_pair(
        MessageReordering(0.8, max_extra_delay=3.0),
        MessageDuplication(0.3),
        seed=seed,
        latency=0.01,
    )
    got = []
    b.register_handler("event", lambda m: got.append(m.payload))

    def sender(sim):
        for i in range(n_messages):
            a.send(b, "event", i, 8.0)
            yield Hold(0.05)

    sim.spawn("s", sender(sim))
    sim.run()
    assert sorted(got) == list(range(n_messages))


def test_two_seeds_give_identical_delivery_schedules():
    def deliveries(seed):
        sim, a, b, _ = make_pair(
            MessageReordering(0.8, max_extra_delay=3.0), seed=seed
        )
        log = []
        b.register_handler("event", lambda m: log.append((sim.now, m.payload)))

        def sender(sim):
            for i in range(15):
                a.send(b, "event", i, 8.0)
                yield Hold(0.05)

        sim.spawn("s", sender(sim))
        sim.run()
        return log

    assert deliveries(7) == deliveries(7)
    assert deliveries(7) != deliveries(8)
