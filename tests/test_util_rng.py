"""Tests for repro.util.rng: determinism and independence of named streams."""

import numpy as np
import pytest

from repro.util.rng import RngTree, spawn_generator


def test_same_seed_same_name_same_stream():
    a = spawn_generator(42, "host/0/load").random(16)
    b = spawn_generator(42, "host/0/load").random(16)
    assert np.array_equal(a, b)


def test_different_names_differ():
    a = spawn_generator(42, "host/0/load").random(16)
    b = spawn_generator(42, "host/1/load").random(16)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = spawn_generator(42, "x").random(16)
    b = spawn_generator(43, "x").random(16)
    assert not np.array_equal(a, b)


def test_tree_returns_same_object_for_same_name():
    tree = RngTree(7)
    assert tree.generator("a") is tree.generator("a")


def test_tree_order_independence():
    t1 = RngTree(99)
    t2 = RngTree(99)
    # Construct in different orders; streams must match by name.
    g1a = t1.generator("a")
    _ = t1.generator("b")
    _ = t2.generator("b")
    g2a = t2.generator("a")
    assert np.array_equal(g1a.random(8), g2a.random(8))


def test_child_trees_are_independent_and_deterministic():
    t = RngTree(5)
    c1 = t.child("scenario")
    c2 = RngTree(5).child("scenario")
    assert np.array_equal(c1.generator("x").random(4), c2.generator("x").random(4))
    other = t.child("other")
    assert not np.array_equal(
        t.child("scenario").generator("x").random(4), other.generator("x").random(4)
    )


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RngTree("nope")  # type: ignore[arg-type]
