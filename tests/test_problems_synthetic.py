"""Tests for the synthetic contraction problem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems.synthetic import SyntheticProblem


def make_problem(n=20, **kw):
    return SyntheticProblem.with_hard_region(n, **kw)


def relax(problem, state, sweeps):
    hl = problem.initial_halo(state.lo - 1)
    hr = problem.initial_halo(state.lo + state.n)
    res = None
    for _ in range(sweeps):
        res = problem.iterate(state, hl, hr)
    return res


def test_rates_validation():
    with pytest.raises(ValueError):
        SyntheticProblem(np.array([1.0]))  # rate must be < 1
    with pytest.raises(ValueError):
        SyntheticProblem(np.array([-0.1]))
    with pytest.raises(ValueError):
        SyntheticProblem(np.array([]))
    with pytest.raises(ValueError):
        SyntheticProblem(np.full((2, 2), 0.5))


def test_hard_region_rates():
    p = make_problem(10, easy_rate=0.3, hard_rate=0.9, region=(0.4, 0.6))
    assert p.rates.min() == 0.3
    assert p.rates.max() == 0.9
    assert (p.rates == 0.9).sum() == 2  # indices 4, 5 of 10


def test_hard_region_validation():
    with pytest.raises(ValueError):
        SyntheticProblem.with_hard_region(10, region=(0.8, 0.2))


def test_error_contracts_every_sweep():
    p = make_problem(16)
    state = p.initial_state(0, 16)
    prev = state.e.copy()
    for _ in range(10):
        p.iterate(state, np.zeros(1), np.zeros(1))
        assert np.all(state.e <= prev + 1e-15)
        prev = state.e.copy()


def test_converges_to_zero_fixed_point():
    p = make_problem(16, hard_rate=0.8)
    state = p.initial_state(0, 16)
    res = relax(p, state, 200)
    assert res.local_residual < 1e-10


def test_hard_region_converges_last():
    p = make_problem(20, easy_rate=0.2, hard_rate=0.95, region=(0.4, 0.6))
    state = p.initial_state(0, 20)
    relax(p, state, 30)
    hard = p.rates >= 0.95
    assert state.e[hard].min() > state.e[~hard].max()


def test_active_components_cost_more():
    p = make_problem(10, base_cost=1.0)
    p_state = p.initial_state(0, 10)
    first = p.iterate(p_state, np.zeros(1), np.zeros(1))
    assert np.all(first.work == 1.0 + p.active_cost)  # all active initially
    relax(p, p_state, 500)
    final = p.iterate(p_state, np.zeros(1), np.zeros(1))
    assert np.all(final.work == 1.0)  # all converged: base cost only


def test_coupling_pulls_error_from_neighbours():
    p = SyntheticProblem(np.full(5, 0.1), coupling=0.9)
    state = p.initial_state(0, 5)
    state.e[:] = 0.0
    state.e[2] = 1.0
    p.iterate(state, np.zeros(1), np.zeros(1))
    # Components 1 and 3 absorbed 0.9 * neighbour error.
    assert state.e[1] == pytest.approx(0.9)
    assert state.e[3] == pytest.approx(0.9)


def test_split_merge_roundtrip():
    p = make_problem(12)
    state = p.initial_state(0, 12)
    state.e[:] = np.arange(12, dtype=float) / 100 + 0.001
    original = state.e.copy()
    payload = p.split(state, 5, "right")
    assert state.n == 7
    p.merge(state, payload, "right")
    assert np.array_equal(state.e, original)
    payload = p.split(state, 3, "left")
    assert state.lo == 3
    p.merge(state, payload, "left")
    assert state.lo == 0
    assert np.array_equal(state.e, original)


def test_rates_follow_components_after_migration():
    """After a split, the remaining block iterates with its own global rates."""
    p = make_problem(10, easy_rate=0.5, hard_rate=0.9, region=(0.0, 0.3))
    state = p.initial_state(0, 10)
    p.split(state, 3, "left")  # drop the hard region
    assert state.lo == 3
    res = p.iterate(state, np.full(1, 1.0), np.zeros(1))
    # All remaining components contract at the easy rate (max neighbour
    # coupling could dominate; use tiny coupling to isolate).
    p2 = SyntheticProblem(p.rates, coupling=0.0)
    st2 = p2.initial_state(3, 10)
    p2.iterate(st2, np.zeros(1), np.zeros(1))
    assert np.allclose(st2.e, 0.5)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(4, 40),
    coupling=st.floats(min_value=0.0, max_value=0.9),
    seed=st.integers(0, 100),
)
def test_property_max_norm_contraction(n, coupling, seed):
    rng = np.random.default_rng(seed)
    rates = rng.uniform(0.0, 0.95, n)
    p = SyntheticProblem(rates, coupling=coupling)
    state = p.initial_state(0, n)
    factor = max(rates.max(), coupling)
    before = state.e.max()
    p.iterate(state, np.zeros(1), np.zeros(1))
    assert state.e.max() <= factor * before + 1e-15
