"""Tests for the deterministic event queue."""

from hypothesis import given
from hypothesis import strategies as st

from repro.des.event import EventQueue


def test_pop_orders_by_time():
    q = EventQueue()
    order = []
    q.push(3.0, lambda: order.append("c"))
    q.push(1.0, lambda: order.append("a"))
    q.push(2.0, lambda: order.append("b"))
    while (e := q.pop()) is not None:
        e.callback()
    assert order == ["a", "b", "c"]


def test_ties_break_in_scheduling_order():
    q = EventQueue()
    order = []
    for i in range(10):
        q.push(1.0, lambda i=i: order.append(i))
    while (e := q.pop()) is not None:
        e.callback()
    assert order == list(range(10))


def test_cancelled_events_skipped():
    q = EventQueue()
    fired = []
    e1 = q.push(1.0, lambda: fired.append(1))
    q.push(2.0, lambda: fired.append(2))
    e1.cancel()
    while (e := q.pop()) is not None:
        e.callback()
    assert fired == [2]


def test_peek_time_skips_cancelled():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(5.0, lambda: None)
    assert q.peek_time() == 1.0
    e1.cancel()
    assert q.peek_time() == 5.0


def test_peek_time_empty():
    assert EventQueue().peek_time() is None
    assert EventQueue().pop() is None


def test_len_counts_entries():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
def test_property_pops_sorted(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while (e := q.pop()) is not None:
        popped.append(e.time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)


@given(
    st.lists(
        st.tuples(st.sampled_from([0.0, 1.0, 2.0]), st.integers(0, 99)),
        min_size=1,
        max_size=100,
    )
)
def test_property_equal_times_fifo(items):
    q = EventQueue()
    out = []
    for t, tag in items:
        q.push(t, lambda t=t, tag=tag: out.append((t, tag)))
    while (e := q.pop()) is not None:
        e.callback()
    # Within each time bucket, tags appear in original scheduling order.
    for bucket_time in (0.0, 1.0, 2.0):
        expected = [tag for t, tag in items if t == bucket_time]
        actual = [tag for t, tag in out if t == bucket_time]
        assert actual == expected
