"""White-box tests of the chain solver machinery."""

import numpy as np
import pytest

from repro.core import SolverConfig, run_aiac
from repro.core.solver import build_chain
from repro.grid import homogeneous_cluster
from repro.problems import SyntheticProblem
from repro.runtime.message import Message


def make_run(n_ranks=3, n=24):
    problem = SyntheticProblem(np.full(n, 0.8), coupling=0.3)
    platform = homogeneous_cluster(n_ranks, speed=100.0)
    return build_chain(problem, platform, SolverConfig(tolerance=1e-8))


def halo_message(kind, payload):
    return Message(
        kind=kind, payload=payload, size_bytes=8, src_rank=0, dst_rank=1
    )


def test_on_halo_accepts_matching_position():
    run = make_run()
    ctx = run.ranks[1]  # block [8, 16)
    msg = halo_message(
        "halo_from_left",
        {"data": np.array([0.5]), "position": 7, "estimate": 0.9, "iteration": 3},
    )
    run._on_halo(ctx, "left", msg)
    assert ctx.halo_left[0] == 0.5
    assert ctx.halo_iter_left == 3
    assert ctx.neighbor_estimate["left"] == 0.9
    assert ctx.stale_halos_dropped == 0


def test_on_halo_drops_stale_position_but_keeps_estimate():
    run = make_run()
    ctx = run.ranks[1]
    before = np.array(ctx.halo_left, copy=True)
    msg = halo_message(
        "halo_from_left",
        {"data": np.array([9.9]), "position": 5, "estimate": 0.7, "iteration": 4},
    )
    run._on_halo(ctx, "left", msg)
    assert np.array_equal(ctx.halo_left, before)  # data dropped
    assert ctx.halo_iter_left == -1
    assert ctx.neighbor_estimate["left"] == 0.7  # Algorithm 7: residual kept
    assert ctx.stale_halos_dropped == 1


def test_on_halo_right_side_position_check():
    run = make_run()
    ctx = run.ranks[1]  # block [8, 16): expects right halo position 16
    msg = halo_message(
        "halo_from_right",
        {"data": np.array([0.2]), "position": 16, "estimate": 0.1, "iteration": 2},
    )
    run._on_halo(ctx, "right", msg)
    assert ctx.halo_right[0] == 0.2
    assert ctx.halo_iter_right == 2


def test_send_halo_at_chain_edges_is_noop():
    run = make_run()
    assert not run.send_halo(run.ranks[0], "left", estimate=1.0, exclusive=False)
    assert not run.send_halo(run.ranks[2], "right", estimate=1.0, exclusive=False)
    assert run.send_halo(run.ranks[0], "right", estimate=1.0, exclusive=False)


def test_neighbor_resolution():
    run = make_run()
    assert run.neighbor(0, "left") is None
    assert run.neighbor(0, "right") is run.ranks[1]
    assert run.neighbor(2, "right") is None
    assert run.neighbor(2, "left") is run.ranks[1]


def test_abort_sets_reason_once():
    run = make_run()
    run.abort("first")
    run.abort("second")
    assert run.aborted_reason == "first"
    assert all(ctx.node.stop_requested for ctx in run.ranks)


def test_result_before_running_is_not_converged():
    run = make_run()
    result = run.result()
    assert not result.converged
    assert result.time == 0.0
    assert result.iterations == [0, 0, 0]


def test_initial_partition_matches_registry():
    run = make_run(n_ranks=3, n=25)
    assert [ctx.n_local for ctx in run.ranks] == run.partition.sizes()
    assert run.partition.sizes() == [9, 8, 8]


def test_detection_wiring_registers_handler_only_for_token_ring():
    problem = SyntheticProblem(np.full(12, 0.8), coupling=0.3)
    platform = homogeneous_cluster(2, speed=100.0)
    oracle = build_chain(problem, platform, SolverConfig(tolerance=1e-8))
    assert oracle.detector is None
    ring = build_chain(
        problem, platform, SolverConfig(tolerance=1e-8, detection="token_ring")
    )
    assert ring.detector is not None
    assert "detect_token" in ring.ranks[0].node._handlers


def test_token_ring_result_time_not_before_oracle_time():
    problem = SyntheticProblem(np.full(24, 0.85), coupling=0.3)
    platform = homogeneous_cluster(3, speed=100.0)
    r = run_aiac(
        problem, platform, SolverConfig(tolerance=1e-8, detection="token_ring")
    )
    assert r.converged
    assert r.meta["oracle_detection_time"] is not None
    assert r.time >= r.meta["oracle_detection_time"]
    assert r.meta["detection_messages"] > 0
