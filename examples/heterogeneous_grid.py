#!/usr/bin/env python3
"""Grid computing: the Table 1 experiment at reduced size.

Builds the paper's heterogeneous platform — 15 machines over three
sites, speeds spanning a PII-400 to an Athlon-1.4G, multi-user external
load, slow fluctuating inter-site links, irregular logical chain — and
compares the balanced and non-balanced AIAC solvers on the Brusselator.

Run:  python examples/heterogeneous_grid.py
"""

from repro.analysis import render_gantt
from repro.core import run_aiac, run_balanced_aiac
from repro.workloads import Table1Scenario


def main() -> None:
    scenario = Table1Scenario.quick()
    platform = scenario.platform()
    order = scenario.host_order(platform)
    config = scenario.solver_config(trace=True)

    print("Heterogeneous grid (Table 1 setting, reduced size)")
    print(f"{platform.description}")
    print("chain order (rank -> host):")
    for rank, host_idx in enumerate(order):
        host = platform.hosts[host_idx]
        print(
            f"  rank {rank:2d} -> {host.name:16s} "
            f"site={host.site:12s} speed={host.speed:7.1f}"
        )

    print("\nrunning the non-balanced AIAC solver ...")
    unbalanced = run_aiac(
        scenario.problem(), platform, config, host_order=order
    )
    print(f"  {unbalanced.summary()}")

    print("running the load-balanced AIAC solver ...")
    balanced = run_balanced_aiac(
        scenario.problem(),
        platform,
        config,
        scenario.lb_config(),
        host_order=order,
    )
    print(f"  {balanced.summary()}")

    ratio = unbalanced.time / balanced.time
    print(f"\nexecution-time ratio (paper Table 1 reports 4.88): {ratio:.2f}")
    print(
        f"final block sizes along the chain: {balanced.meta['final_sizes']}"
    )

    window = min(balanced.time, 120.0)
    print("\nbalanced run, first part of the execution:")
    print(render_gantt(balanced, width=90, t_max=window))

    assert unbalanced.converged and balanced.converged
    assert ratio > 1.0
    print("\nOK — load balancing wins on the heterogeneous grid")


if __name__ == "__main__":
    main()
