#!/usr/bin/env python3
"""Quickstart: solve a PDE with asynchronous iterations + load balancing.

Solves the 1-D heat equation on a simulated 4-machine cluster where one
machine is much slower than the others, first with plain asynchronous
iterations (AIAC) and then with the paper's residual-driven dynamic load
balancing coupled in.  Prints both timings and verifies the solutions
against the sequential reference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Host,
    LBConfig,
    Link,
    Network,
    Platform,
    SolverConfig,
    run_aiac,
    run_balanced_aiac,
)
from repro.problems import HeatProblem


def make_platform() -> Platform:
    """Three fast machines and one 4x slower one on a LAN."""
    network = Network(Link(latency=1e-4, bandwidth=100e6))
    hosts = [
        Host("fast-0", speed=4000.0),
        Host("fast-1", speed=4000.0),
        Host("fast-2", speed=4000.0),
        Host("slow-0", speed=1000.0),
    ]
    return Platform(hosts=hosts, network=network)


def main() -> None:
    problem = HeatProblem(n_points=64, kappa=1.0, t_end=0.05, n_steps=40)
    platform = make_platform()
    config = SolverConfig(tolerance=1e-9)

    print("Solving the 1-D heat equation (64 points, 40 time steps)")
    print(f"Platform: {platform.description or '4-host cluster, one slow'}\n")

    unbalanced = run_aiac(problem, platform, config)
    print(f"  without load balancing: {unbalanced.summary()}")

    balanced = run_balanced_aiac(
        problem, platform, config, LBConfig(period=10, min_components=2)
    )
    print(f"  with    load balancing: {balanced.summary()}")

    reference = problem.reference_solution()
    err_u = unbalanced.max_error_vs(reference)
    err_b = balanced.max_error_vs(reference)
    print(f"\n  max error vs sequential reference: "
          f"unbalanced={err_u:.2e}, balanced={err_b:.2e}")
    print(f"  speed-up from load balancing: "
          f"{unbalanced.time / balanced.time:.2f}x")
    print(f"  final block sizes (components per rank): "
          f"{balanced.meta['final_sizes']}  "
          f"(the slow machine ends with the smallest block)")

    sizes = balanced.meta["final_sizes"]
    assert unbalanced.converged and balanced.converged
    assert max(err_u, err_b) < 1e-6
    assert sizes[3] == min(sizes), "slow host should hold the fewest components"
    print("\nOK")


if __name__ == "__main__":
    main()
