#!/usr/bin/env python3
"""Tuning the load balancer: the trade-offs of paper Section 6.

The paper closes with four conditions for effective load balancing —
enough iterations, a reasonable computation/communication ratio, a
frequency "neither too high nor too low", and the accuracy vs network
load trade-off.  This example sweeps the frequency, the accuracy and
the load estimator on a fixed activity-imbalanced workload and prints
the measured trade-off curves.

Run:  python examples/lb_tuning.py
"""

from repro.experiments.ablations import (
    sweep_accuracy,
    sweep_estimator,
    sweep_lb_period,
)


def main() -> None:
    print("LB frequency sweep (OkToTryLB period; paper hard-codes 20)")
    period = sweep_lb_period(values=(1, 5, 20, 80, 320), n_procs=8)
    print(period.report())
    # Both extremes lose: too frequent churns, too rare leaves imbalance.
    times = dict(zip(period.values, period.times))
    assert min(times[5], times[20]) <= min(times[1], times[320]) * 1.5

    print("\nMigration accuracy sweep (coarse vs fine, Section 6)")
    accuracy = sweep_accuracy(values=(0.1, 0.25, 0.5, 1.0), n_procs=8)
    print(accuracy.report())

    print("\nLoad estimator comparison (Section 5.2)")
    estimator = sweep_estimator(n_procs=8)
    print(estimator.report())
    est_times = dict(zip(estimator.values, estimator.times))
    assert est_times["residual"] < est_times["component_count"], (
        "the residual estimator must beat the naive component count on an "
        "activity-imbalanced workload"
    )

    print("\nOK")


if __name__ == "__main__":
    main()
