#!/usr/bin/env python3
"""A travelling pulse: advection-diffusion under asynchronous iterations.

The fourth problem of the library: upwind advection moves a Gaussian
pulse downstream while diffusion spreads it.  Two things to see here:

* the *asymmetric* coupling (components lean on their upstream
  neighbour), which the chain solver handles untouched;
* the activity profile: the relaxation works hardest along the pulse's
  path — printed at the end as a bar chart per rank.

Run:  python examples/advection_pulse.py
"""

import numpy as np

from repro import SolverConfig, homogeneous_cluster, run_aiac
from repro.problems import AdvectionDiffusionProblem


def main() -> None:
    problem = AdvectionDiffusionProblem(
        48, velocity=1.0, kappa=0.01, t_end=0.4, n_steps=40,
        pulse_center=0.2,
    )
    platform = homogeneous_cluster(4, speed=8000.0)
    config = SolverConfig(tolerance=1e-9)

    print("Advection-diffusion pulse, 48 points, 4 processors")
    result = run_aiac(problem, platform, config)
    print(f"  {result.summary()}")

    reference = problem.reference_solution()
    error = result.max_error_vs(reference)
    print(f"  max error vs sequential reference: {error:.2e}")
    print(
        f"  network: {result.meta['network_messages']} messages, "
        f"{result.meta['network_bytes'] / 1024:.1f} KiB"
    )

    # Where did the pulse act?  Total trajectory variation per component,
    # aggregated per rank.
    solution = result.solution()  # (48, n_steps + 1)
    variation = np.abs(np.diff(solution, axis=1)).sum(axis=1)
    print("\n  activity per rank (total trajectory variation):")
    blocks = np.array_split(variation, 4)
    peak = variation.sum()
    for rank, block in enumerate(blocks):
        share = block.sum() / peak
        bar = "#" * int(40 * share)
        print(f"    rank {rank}: {bar} {share:5.1%}")

    # The pulse starts at x=0.2 (rank 0/1 territory) and travels right:
    # the upstream half carries most of the action.
    shares = [b.sum() / peak for b in blocks]
    assert result.converged
    assert error < 1e-6
    assert shares[0] + shares[1] > shares[2] + shares[3]
    print("\nOK — the activity follows the pulse, as the residual estimator would see")


if __name__ == "__main__":
    main()
