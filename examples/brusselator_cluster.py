#!/usr/bin/env python3
"""The paper's problem: the Brusselator reaction-diffusion ODE system.

Reproduces Section 4/5 of the paper at laptop scale: the Brusselator is
decomposed over a chain of processors and solved by the two-stage
iteration (implicit Euler + per-component Newton) under all three
execution models — SISC, SIAC and AIAC — plus the load-balanced AIAC,
on a homogeneous cluster.  Every solution is checked against the
sequential fully-coupled implicit Euler reference.

Run:  python examples/brusselator_cluster.py
"""

from repro import (
    BrusselatorProblem,
    LBConfig,
    SolverConfig,
    homogeneous_cluster,
    run_aiac,
    run_balanced_aiac,
    run_siac,
    run_sisc,
)
from repro.analysis import format_table


def main() -> None:
    def problem() -> BrusselatorProblem:
        return BrusselatorProblem(n_points=48, t_end=4.0, n_steps=40)

    platform = homogeneous_cluster(4, speed=20_000.0)
    config = SolverConfig(tolerance=1e-7)
    reference = problem().reference_solution()

    print("Brusselator, 48 spatial points, t in [0, 4], 40 Euler steps")
    print(f"{platform.description}\n")

    rows = []
    for name, runner in [
        ("SISC", run_sisc),
        ("SIAC", run_siac),
        ("AIAC", run_aiac),
    ]:
        result = runner(problem(), platform, config)
        assert result.converged, name
        rows.append(
            (
                name,
                result.time,
                result.total_iterations,
                result.max_error_vs(reference),
            )
        )

    balanced = run_balanced_aiac(
        problem(),
        platform,
        config,
        LBConfig(period=10, min_components=2, threshold_ratio=2.0),
    )
    assert balanced.converged
    rows.append(
        (
            "AIAC + LB",
            balanced.time,
            balanced.total_iterations,
            balanced.max_error_vs(reference),
        )
    )

    print(
        format_table(
            ["model", "time (s)", "total sweeps", "max error vs reference"],
            rows,
        )
    )
    print(
        f"\nload balancing moved {balanced.components_migrated} components "
        f"in {balanced.n_migrations} migrations; "
        f"final blocks: {balanced.meta['final_sizes']}"
    )

    worst_error = max(row[3] for row in rows)
    assert worst_error < 1e-4, "all models must agree with the reference"
    print("\nOK — all four variants converge to the same trajectories")


if __name__ == "__main__":
    main()
