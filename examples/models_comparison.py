#!/usr/bin/env python3
"""Execution-model taxonomy: SISC vs SIAC vs AIAC (paper Figures 1-4).

Runs the four model variants on two unequal processors with visible
network latency and prints their execution flows as ASCII Gantt charts —
the reproduction of the paper's Figures 1-4 — followed by the idle-time
summary, then compares all three models on a cluster vs a grid platform
(the Section 6 discussion).

Run:  python examples/models_comparison.py
"""

from repro.experiments import run_models_comparison, run_trace_figures


def main() -> None:
    print("=" * 72)
    print("Execution flows on two processors (paper Figures 1-4)")
    print("=" * 72)
    traces = run_trace_figures()
    print(traces.report())

    idle = traces.idle_fractions()
    assert idle["figure3_aiac_eager"] == 0.0
    assert idle["figure1_sisc"] > 0.0

    print()
    print("=" * 72)
    print("Cluster vs grid (paper Section 6 discussion)")
    print("=" * 72)
    comparison = run_models_comparison()
    print(comparison.report())

    assert comparison.advantage("grid") > comparison.advantage("cluster")
    print("\nOK — asynchronism pays off exactly where the paper says it does")


if __name__ == "__main__":
    main()
