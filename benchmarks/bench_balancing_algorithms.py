"""§3 — the non-centralized load-balancing algorithm families.

Compares the classical synchronous schemes (Cybenko diffusion,
dimension exchange) and the asynchronous Bertsekas–Tsitsiklis model —
both variants — on the solver's chain topology, plus the centralized
baseline's message cost.  Supports the paper's §3 choice: the
asynchronous lightest-neighbour variant balances without any global
synchronisation, which is what the AIAC coupling requires.
"""

import networkx as nx
import numpy as np
from conftest import save_report

from repro.analysis.reporting import format_table
from repro.balancing import (
    BertsekasParams,
    centralized_balance,
    diffusion_balance,
    dimension_exchange_balance,
    imbalance_ratio,
    simulate_bertsekas_lb,
)
from repro.balancing.centralized import centralized_cost_model


def test_balancing_families(once):
    def run_all():
        n = 16
        graph = nx.path_graph(n)
        load = np.zeros(n)
        load[0] = 160.0  # all load on one end of the chain

        rows = []
        final, rounds = diffusion_balance(graph, load, tol=1e-3)
        rows.append(("diffusion (Cybenko)", rounds, imbalance_ratio(final), "sync"))
        final, cycles = dimension_exchange_balance(graph, load, tol=1e-3)
        rows.append(("dimension exchange", cycles, imbalance_ratio(final), "sync"))
        # The Bertsekas model balances to within a *threshold-bounded
        # neighbourhood* of uniform (that is exactly what B&T prove):
        # on a chain the steady profile is geometric with ratio θ, so
        # max/mean plateaus at n(1-1/θ)/(1-θ^-n).  Two thresholds show
        # the plateau tightening.
        for theta in (1.2, 1.05):
            res = simulate_bertsekas_lb(
                graph,
                load,
                BertsekasParams(
                    variant="lightest", threshold_ratio=theta, horizon=2500.0
                ),
                seed=11,
            )
            bound = n * (1 - 1 / theta) / (1 - theta ** (-n))
            rows.append(
                (
                    f"bertsekas (lightest, θ={theta})",
                    res.transfers,
                    res.final_imbalance,
                    f"async (bound {bound:.2f})",
                )
            )
        balanced, plan = centralized_balance(load)
        rows.append(
            ("centralized", len(plan), imbalance_ratio(balanced), "global sync")
        )
        table = format_table(
            ["scheme", "rounds/transfers", "final max/mean", "coordination"],
            rows,
        )
        cost16 = centralized_cost_model(16, latency=15e-3)
        cost128 = centralized_cost_model(128, latency=15e-3)
        return (
            "Non-centralized LB families on a 16-node chain "
            "(all load starts at node 0)\n"
            f"{table}\n"
            f"centralized round cost grows linearly: "
            f"{cost16:.3f}s @16 nodes -> {cost128:.3f}s @128 nodes"
        ), rows

    report, rows = once(run_all)
    save_report("balancing_algorithms", report)

    by_name = {r[0]: r for r in rows}
    assert by_name["diffusion (Cybenko)"][2] < 1.05
    assert by_name["dimension exchange"][2] < 1.05
    # Threshold-bounded plateaus (the B&T guarantee), tighter for the
    # tighter threshold.
    theta_12 = by_name["bertsekas (lightest, θ=1.2)"][2]
    theta_105 = by_name["bertsekas (lightest, θ=1.05)"][2]
    assert theta_12 < 16 * (1 - 1 / 1.2) / (1 - 1.2 ** (-16)) * 1.1
    assert theta_105 < theta_12
    assert theta_105 < 1.6
