#!/usr/bin/env python
"""Kernel + end-to-end benchmark harness (``BENCH_kernels.json``).

Times the hot paths every experiment funnels through:

* banded LU factor+solve (native path, plus the retained scalar
  reference path for an in-run speedup ratio) across sizes/bandwidths,
* the batched 2x2 Newton kernel (with and without active-set
  compaction when available),
* the Thomas tridiagonal solve,
* raw DES event dispatch (processes looping on ``Hold``),
* two end-to-end ``run_aiac`` solves: a Brusselator grid run
  (numerics-bound) and a Figure-5-style synthetic cluster run
  (event-loop-bound).

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_kernels.py \
        --baseline benchmarks/out/seed_baseline.json -o BENCH_kernels.json

With ``--baseline`` each entry gains ``speedup_vs_baseline`` (baseline
best time / current best time), which is how the checked-in
``BENCH_kernels.json`` documents the speedup against the pre-
optimisation seed.  ``--save-baseline`` captures such a reference file.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.perf import BenchReport, bench
from repro.core.solver import run_aiac
from repro.des import Hold, Simulator
from repro.numerics.banded import BandedMatrix, thomas_solve
from repro.numerics.newton import NewtonOptions, newton_batched_2x2
from repro.workloads.scenarios import Figure5Scenario, Table1Scenario


# ----------------------------------------------------------------------
# Workload builders
# ----------------------------------------------------------------------
def banded_case(n: int, half_bw: int, seed: int = 0):
    """A strictly diagonally dominant banded system in band storage."""
    rng = np.random.default_rng(seed)
    kl = ku = half_bw
    bands = rng.uniform(-1.0, 1.0, (kl + ku + 1, n))
    bands[ku] = 5.0 + np.abs(bands).sum(axis=0)
    b = rng.standard_normal(n)
    return BandedMatrix(bands, kl, ku), b


def newton_problem(n: int):
    """Independent 2x2 systems u^2 = v^2 = target (from bench_numerics)."""
    targets = np.linspace(1.0, 9.0, n)

    def f(u, v, idx=None):
        t = targets if idx is None else targets[idx]
        return (
            u * u - t,
            v * v - t,
            2.0 * u,
            np.zeros_like(u),
            np.zeros_like(u),
            2.0 * v,
        )

    f.newton_compactable = True
    return f


def des_dispatch_workload(n_procs: int, n_holds: int) -> None:
    """Pure event-loop churn: processes looping on Hold, no numerics."""
    sim = Simulator()

    def worker(period: float):
        for _ in range(n_holds):
            yield Hold(period)

    for p in range(n_procs):
        sim.spawn(f"w{p}", worker(1.0 + 0.01 * p))
    sim.run()


def brusselator_e2e_scenario(quick: bool) -> Table1Scenario:
    """A reduced Table-1 grid run: real Brusselator numerics end to end."""
    if quick:
        return Table1Scenario(
            n_points=30, t_end=1.0, n_steps=8, tolerance=1e-3, load_dwell=50.0
        )
    return Table1Scenario(
        n_points=45, t_end=2.5, n_steps=12, tolerance=1e-4, load_dwell=100.0
    )


def run_brusselator_e2e(scenario: Table1Scenario) -> None:
    platform = scenario.platform()
    result = run_aiac(
        scenario.problem(),
        platform,
        scenario.solver_config(trace=True),
        host_order=scenario.host_order(platform),
    )
    assert result.converged, "benchmark run must converge"


def synthetic_e2e_scenario(quick: bool) -> tuple[Figure5Scenario, int]:
    if quick:
        return Figure5Scenario.tiny(), 8
    return Figure5Scenario.quick(), 16


def run_synthetic_e2e(scenario: Figure5Scenario, n_procs: int) -> None:
    result = run_aiac(
        scenario.problem(),
        scenario.platform(n_procs),
        scenario.solver_config(trace=True),
    )
    assert result.converged, "benchmark run must converge"


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------
def build_report(quick: bool, baseline: dict | None) -> BenchReport:
    report = BenchReport("repro kernel benchmarks", baseline=baseline)
    repeats = 3 if quick else 7
    min_time = 0.02 if quick else 0.25

    # --- banded LU: native path vs retained scalar reference ----------
    sizes = [(512, 2), (512, 8), (512, 16)] if quick else [
        (512, 2), (512, 8), (512, 16), (1024, 2), (1024, 16),
    ]
    for n, hw in sizes:
        matrix, b = banded_case(n, hw)
        native = report.run(
            lambda m=matrix, rhs=b: m.lu_factor().solve(rhs),
            name=f"banded_lu_solve_n{n}_w{2 * hw + 1}",
            repeats=repeats,
            min_time=min_time,
            meta={"n": n, "kl": hw, "ku": hw, "path": "native"},
        )
        # The seed has no separate scalar path; after the vectorization
        # PR the scalar reference is retained for exactly this ratio.
        scalar_factor = getattr(matrix, "lu_factor_scalar", None)
        if scalar_factor is not None:
            scalar = report.run(
                lambda m=matrix, rhs=b: m.lu_factor_scalar().solve_scalar(rhs),
                name=f"banded_lu_solve_scalar_n{n}_w{2 * hw + 1}",
                repeats=max(2, repeats - 2),
                min_time=min_time,
                meta={"n": n, "kl": hw, "ku": hw, "path": "scalar-reference"},
            )
            native.meta["speedup_vs_scalar"] = scalar.best / native.best

    # --- batched Newton ----------------------------------------------
    n_newton = 1024 if quick else 4096
    f = newton_problem(n_newton)
    u0 = np.full(n_newton, 5.0)
    v0 = np.full(n_newton, 5.0)
    report.run(
        lambda: newton_batched_2x2(f, u0, v0),
        name=f"newton_batched_n{n_newton}",
        repeats=repeats,
        min_time=min_time,
        meta={"n": n_newton},
    )
    try:
        compact = NewtonOptions(compact_threshold=0.9)
    except TypeError:  # seed NewtonOptions has no compaction knob
        compact = None
    if compact is not None:
        report.run(
            lambda: newton_batched_2x2(f, u0, v0, compact),
            name=f"newton_batched_compacted_n{n_newton}",
            repeats=repeats,
            min_time=min_time,
            meta={"n": n_newton, "compact_threshold": 0.9},
        )

    # --- Thomas solve -------------------------------------------------
    n_tri = 4096
    rng = np.random.default_rng(7)
    lower = rng.uniform(-1, 1, n_tri)
    upper = rng.uniform(-1, 1, n_tri)
    diag = np.abs(lower) + np.abs(upper) + rng.uniform(1, 2, n_tri)
    lower[0] = upper[-1] = 0.0
    rhs = rng.standard_normal(n_tri)
    report.run(
        lambda: thomas_solve(lower, diag, upper, rhs),
        name=f"thomas_n{n_tri}",
        repeats=repeats,
        min_time=min_time,
    )

    # --- raw DES dispatch --------------------------------------------
    n_procs, n_holds = (16, 500) if quick else (50, 2000)
    report.run(
        lambda: des_dispatch_workload(n_procs, n_holds),
        name=f"des_dispatch_{n_procs}x{n_holds}",
        repeats=max(2, repeats - 2),
        meta={"n_procs": n_procs, "n_holds": n_holds},
    )

    # --- end to end ---------------------------------------------------
    bruss = brusselator_e2e_scenario(quick)
    report.run(
        lambda: run_brusselator_e2e(bruss),
        name="aiac_brusselator_e2e" + ("_quick" if quick else ""),
        repeats=2,
        warmup=0,
        meta={"n_points": bruss.n_points, "n_steps": bruss.n_steps},
    )
    synth, procs = synthetic_e2e_scenario(quick)
    report.run(
        lambda: run_synthetic_e2e(synth, procs),
        name="aiac_synthetic_e2e" + ("_quick" if quick else ""),
        repeats=2,
        warmup=0,
        meta={"n_components": synth.n_components, "n_procs": procs},
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument(
        "-o", "--out", default=None,
        help="JSON output path (default: BENCH_kernels.json, repo root)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="previously saved report; adds speedup_vs_baseline fields",
    )
    parser.add_argument(
        "--save-baseline", default=None, metavar="PATH",
        help="also save this run as a baseline reference file",
    )
    args = parser.parse_args(argv)

    baseline = BenchReport.load(args.baseline) if args.baseline else None
    report = build_report(args.quick, baseline)
    print(report.format_table())

    out = args.out
    if out is None:
        from pathlib import Path

        out = str(Path(__file__).resolve().parent.parent / "BENCH_kernels.json")
    report.save(out)
    print(f"[report saved to {out}]")
    if args.save_baseline:
        report.save(args.save_baseline)
        print(f"[baseline saved to {args.save_baseline}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
