#!/usr/bin/env python
"""Large-N scaling benchmark (``BENCH_scale.json``).

A problem × ranks × components grid of SISC runs, each executed by up
to three engines:

* ``legacy``   — the reference event-driven solver on the pre-PR flat
  binary heap (:class:`repro.des.LegacyEventQueue`): the baseline the
  acceptance criteria measure against;
* ``indexed``  — the same solver on the bucket-indexed
  :class:`repro.des.EventQueue` (O(1) same-time batch dispatch);
* ``lockstep`` — :func:`repro.models.run_sisc_batched`, the rank-batched
  round replay that dispatches no per-rank events at all.

The problem axis covers the synthetic activity-concentration workload
*and* the real Brusselator PDE (rank-batched Newton sweeps through
:meth:`~repro.problems.brusselator.BrusselatorProblem.
batched_chain_sweeper`, with the adaptive-skip machinery on), plus a
10k-rank synthetic point that only the lockstep replay runs — an
event-driven run at that width would take minutes for no extra
information.

Every engine must produce the *same answer*: each grid point asserts
that :func:`repro.analysis.perf.run_fingerprint` of all the engines it
runs is identical, so the benchmark doubles as a large-N determinism
check.

The throughput column is **events/sec**: dispatched events (for the
lockstep replay, the events the reference semantics *would* dispatch —
it replays them in closed form) divided by wall-clock.  Runs are capped
at a fixed round count (``max_iterations``) so the virtual work per grid
point is identical across engines and the wall-clock budget stays
bounded at 1024 ranks; ``meta`` records the honest core count and the
process peak RSS after each run (a high-water mark — points run
smallest to largest so the column is attributable).

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_scale.py            # full grid
    PYTHONPATH=src python benchmarks/bench_scale.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_scale.py --check    # CI gate

``--check`` enforces three gates:

* lockstep >= 10x *legacy* events/sec at the scheduler-bound synthetic
  point (the 1024-rank synthetic entry with the smallest per-rank
  blocks — the regime the lockstep replay optimises);
* lockstep >= 5x *indexed* events/sec at the 1024-rank Brusselator
  point (tiny per-rank blocks, so the gate measures the rank-batched
  replay against the best event-driven scheduler, not the Newton
  kernel);
* process peak RSS after every lockstep row stays under
  :data:`MEMORY_BUDGET_BYTES` — the rank-batched global state must not
  blow up the memory profile the lockstep replay exists to avoid.

At the 10⁶-component synthetic flagship point the numpy sweep itself,
identical work in every engine, dominates the round and compresses the
scheduler speedup; that row is reported but not gated, because a gate
on it would measure the problem kernel, not the scheduler.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import replace
from typing import Any

from repro.analysis.perf import BenchReport, BenchResult, run_fingerprint
from repro.core.records import RunResult
from repro.core.solver import build_chain
from repro.des import Barrier, LegacyEventQueue
from repro.models import run_sisc_batched
from repro.models.sisc import _sisc_process
from repro.runtime.memory import peak_rss_bytes
from repro.workloads import ScaleScenario

ALL_ENGINES: tuple[str, ...] = ("legacy", "indexed", "lockstep")

#: Process peak-RSS ceiling asserted (under ``--check``) after every
#: lockstep row.  The largest rank-batched state on the grid is the
#: 10⁶-component synthetic flagship's event-driven baseline (~0.5 GB
#: high-water in practice); the budget leaves ~3x headroom so the gate
#: trips on a memory blow-up, not on allocator noise.
MEMORY_BUDGET_BYTES: int = int(1.5 * 2**30)

#: (problem, n_ranks, components_per_rank, rounds, engines) — smaller
#: memory footprints first, so the peak-RSS column (a process
#: high-water mark) is attributable to the point it is recorded after.
#: The Brusselator points keep tiny per-rank blocks: the PDE state is
#: ~50x the synthetic state per component, and scheduler behaviour —
#: what this grid measures — depends on ranks, not block width.
#: Ordered by expected memory footprint, smallest first:
#: ``peak_rss_bytes`` is the *process-lifetime* high-water mark, so a
#: monotone schedule keeps each row's reading attributable to that row.
FULL_GRID: tuple[tuple[str, int, int, int, tuple[str, ...]], ...] = (
    ("brusselator", 256, 4, 30, ALL_ENGINES),
    ("synthetic", 64, 1600, 50, ALL_ENGINES),
    ("synthetic", 256, 400, 50, ALL_ENGINES),
    ("synthetic", 1024, 100, 50, ALL_ENGINES),
    ("brusselator", 1024, 4, 30, ALL_ENGINES),
    ("synthetic", 1024, 1024, 50, ALL_ENGINES),
    ("synthetic", 10240, 100, 50, ("lockstep",)),
    ("brusselator", 4096, 8, 30, ALL_ENGINES),
)

#: CI smoke grid: seconds, not minutes, but still wide enough that the
#: lockstep replay's advantage is unambiguous on both problems.
QUICK_GRID: tuple[tuple[str, int, int, int, tuple[str, ...]], ...] = (
    ("brusselator", 256, 4, 20, ALL_ENGINES),
    ("synthetic", 64, 100, 30, ALL_ENGINES),
    ("synthetic", 256, 100, 30, ALL_ENGINES),
)


def scenario_for(
    problem: str, n_ranks: int, components_per_rank: int
) -> ScaleScenario:
    return ScaleScenario(
        problem_kind=problem,
        n_ranks=n_ranks,
        components_per_rank=components_per_rank,
    )


def _config(scenario: ScaleScenario, rounds: int):
    # Cap the round count: identical virtual work for every engine and a
    # bounded wall-clock at 1024 ranks.  The runs abort at the cap by
    # design; abort is a deterministic, bit-replayable path.
    return replace(scenario.solver_config(), max_iterations=rounds)


def run_reference(
    scenario: ScaleScenario, rounds: int, *, legacy_queue: bool
) -> tuple[RunResult, int]:
    """One event-driven SISC run; returns (result, events dispatched)."""
    run = build_chain(
        scenario.problem(),
        scenario.platform(),
        _config(scenario, rounds),
        model="sisc",
    )
    if legacy_queue:
        # Swap before anything is scheduled; build_chain schedules
        # nothing, which the peek assertion pins down.
        assert run.sim._queue.peek_time() is None
        run.sim._queue = LegacyEventQueue()
    barrier = Barrier(run.n_ranks, name="sisc")
    for ctx in run.ranks:
        run.sim.spawn(f"sisc-rank-{ctx.rank}", _sisc_process(run, ctx, barrier))
    run.run()
    return run.result(), run.sim.n_dispatched


def run_lockstep(scenario: ScaleScenario, rounds: int) -> tuple[RunResult, int]:
    result = run_sisc_batched(
        scenario.problem(), scenario.platform(), _config(scenario, rounds)
    )
    return result, int(result.meta["events_dispatched"])


def bench_point(
    report: BenchReport,
    problem: str,
    n_ranks: int,
    components_per_rank: int,
    rounds: int,
    engine_names: tuple[str, ...] = ALL_ENGINES,
) -> dict[str, Any]:
    """The selected engines at one grid point; asserts identical answers."""
    scenario = scenario_for(problem, n_ranks, components_per_rank)
    cores = len(os.sched_getaffinity(0))
    point = f"{problem}_r{n_ranks}_c{scenario.n_components}"
    base_meta = {
        "cores": cores,
        "problem": problem,
        "n_ranks": n_ranks,
        "n_components": scenario.n_components,
        "rounds": rounds,
    }

    all_engines = {
        "legacy": lambda: run_reference(scenario, rounds, legacy_queue=True),
        "indexed": lambda: run_reference(scenario, rounds, legacy_queue=False),
        "lockstep": lambda: run_lockstep(scenario, rounds),
    }
    engines = {name: all_engines[name] for name in engine_names}
    stats: dict[str, dict[str, Any]] = {}
    fingerprints: dict[str, str] = {}
    for engine, fn in engines.items():
        t0 = time.perf_counter()
        result, events = fn()
        wall = time.perf_counter() - t0
        fingerprints[engine] = run_fingerprint(result)
        stats[engine] = {
            "wall_s": wall,
            "events": events,
            "events_per_sec": events / wall if wall > 0 else float("inf"),
            "peak_rss_bytes": peak_rss_bytes(),
        }
        report.add(
            BenchResult(
                name=f"scale_{point}_{engine}",
                best=wall,
                median=wall,
                mean=wall,
                repeats=1,
                meta={
                    **base_meta,
                    "events": events,
                    "events_per_sec": stats[engine]["events_per_sec"],
                    "peak_rss_bytes": stats[engine]["peak_rss_bytes"],
                },
            )
        )

    if len(set(fingerprints.values())) != 1:
        raise AssertionError(
            f"{point}: engines disagree — fingerprints {fingerprints}"
        )
    ev = {e: s["events_per_sec"] for e, s in stats.items()}
    lockstep_ev = ev.get("lockstep")
    speedup_legacy = (
        lockstep_ev / ev["legacy"]
        if lockstep_ev is not None and "legacy" in ev
        else None
    )
    speedup_indexed = (
        lockstep_ev / ev["indexed"]
        if lockstep_ev is not None and "indexed" in ev
        else None
    )
    parts = [f"{e} {rate:,.0f} ev/s" for e, rate in ev.items()]
    if speedup_legacy is not None:
        parts.append(f"({speedup_legacy:.1f}x vs legacy)")
    rss_engine = "lockstep" if "lockstep" in stats else next(iter(stats))
    parts.append(f"rss {stats[rss_engine]['peak_rss_bytes'] / 1e6:,.0f} MB")
    print(f"{point}: " + ", ".join(parts))
    return {
        "point": point,
        "problem": problem,
        "n_ranks": n_ranks,
        "n_components": scenario.n_components,
        "speedup_vs_legacy": speedup_legacy,
        "speedup_vs_indexed": speedup_indexed,
        "lockstep_peak_rss_bytes": (
            stats["lockstep"]["peak_rss_bytes"] if "lockstep" in stats else None
        ),
        **{f"{e}_events_per_sec": rate for e, rate in ev.items()},
    }


def build_report(quick: bool) -> tuple[BenchReport, list[dict[str, Any]]]:
    report = BenchReport("repro large-N scaling benchmarks")
    grid = QUICK_GRID if quick else FULL_GRID
    summaries = [
        bench_point(report, problem, r, c, rounds, engines)
        for problem, r, c, rounds, engines in grid
    ]
    return report, summaries


def check(summaries: list[dict[str, Any]]) -> list[str]:
    """The CI gates (see the module docstring for the rationale).

    Speedup gates anchor at each problem's 1024-rank, fewest-components
    entry (the strong-scaling point, where per-event scheduler overhead
    — not the shared numpy sweep — is the bottleneck); on the quick
    grid, at the largest rank below that.  Rows above 1024 ranks are
    reported, never gated: there is no event-driven baseline worth
    waiting for at 10k ranks, and the 4096-rank Brusselator round is
    increasingly kernel-bound.
    """
    problems: list[str] = []

    def gated_point(problem: str, speedup_key: str) -> dict[str, Any] | None:
        rows = [
            s
            for s in summaries
            if s["problem"] == problem
            and s[speedup_key] is not None
            and s["n_ranks"] <= 1024
        ]
        if not rows:
            return None
        top_ranks = max(s["n_ranks"] for s in rows)
        return min(
            (s for s in rows if s["n_ranks"] == top_ranks),
            key=lambda s: s["n_components"],
        )

    gated = gated_point("synthetic", "speedup_vs_legacy")
    if gated is not None and gated["speedup_vs_legacy"] < 10.0:
        problems.append(
            f"{gated['point']}: lockstep only "
            f"{gated['speedup_vs_legacy']:.1f}x the legacy scheduler's "
            f"events/sec (expected >= 10x)"
        )

    gated = gated_point("brusselator", "speedup_vs_indexed")
    if gated is not None and gated["speedup_vs_indexed"] < 5.0:
        problems.append(
            f"{gated['point']}: lockstep only "
            f"{gated['speedup_vs_indexed']:.1f}x the indexed scheduler's "
            f"events/sec (expected >= 5x)"
        )

    for s in summaries:
        rss = s["lockstep_peak_rss_bytes"]
        if rss is not None and rss > MEMORY_BUDGET_BYTES:
            problems.append(
                f"{s['point']}: peak RSS {rss / 2**30:.2f} GiB after the "
                f"lockstep run exceeds the "
                f"{MEMORY_BUDGET_BYTES / 2**30:.1f} GiB budget"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke grid")
    parser.add_argument(
        "-o", "--out", default=None,
        help="JSON output path (default: BENCH_scale.json, repo root)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the speedup and memory gates pass "
        "(see module docstring)",
    )
    args = parser.parse_args(argv)

    report, summaries = build_report(args.quick)
    print(report.format_table())

    out = args.out
    if out is None:
        from pathlib import Path

        out = str(Path(__file__).resolve().parent.parent / "BENCH_scale.json")
    report.save(out)
    print(f"[report saved to {out}]")

    if args.check:
        problems = check(summaries)
        if problems:
            for p in problems:
                print(f"CHECK FAILED: {p}", file=sys.stderr)
            return 1
        print("[--check passed: speedup and memory gates hold]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
