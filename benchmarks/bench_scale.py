#!/usr/bin/env python
"""Large-N scaling benchmark (``BENCH_scale.json``).

A ranks × components grid of SISC runs, each executed by three engines:

* ``legacy``   — the reference event-driven solver on the pre-PR flat
  binary heap (:class:`repro.des.LegacyEventQueue`): the baseline the
  acceptance criteria measure against;
* ``indexed``  — the same solver on the bucket-indexed
  :class:`repro.des.EventQueue` (O(1) same-time batch dispatch);
* ``lockstep`` — :func:`repro.models.run_sisc_batched`, the rank-batched
  round replay that dispatches no per-rank events at all.

Every engine must produce the *same answer*: each grid point asserts
that :func:`repro.analysis.perf.run_fingerprint` of all three results is
identical, so the benchmark doubles as a large-N determinism check.

The throughput column is **events/sec**: dispatched events (for the
lockstep replay, the events the reference semantics *would* dispatch —
it replays them in closed form) divided by wall-clock.  Runs are capped
at a fixed round count (``max_iterations``) so the virtual work per grid
point is identical across engines and the wall-clock budget stays
bounded at 1024 ranks; ``meta`` records the honest core count and the
process peak RSS after each run (a high-water mark — points run
smallest to largest so the column is attributable).

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_scale.py            # full grid
    PYTHONPATH=src python benchmarks/bench_scale.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_scale.py --check    # CI gate

``--check`` exits non-zero unless the lockstep engine clears >= 10x the
legacy events/sec at the *scheduler-bound* largest-rank grid point (the
1024-rank strong-scaling point with the smallest per-rank blocks — the
regime this PR optimises).  At the 10⁶-component flagship point the
numpy sweep itself, identical work in every engine, dominates the round
and compresses the scheduler speedup; that row is reported but not
gated, because a gate on it would measure the problem kernel, not the
scheduler.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import replace
from typing import Any

from repro.analysis.perf import BenchReport, BenchResult, run_fingerprint
from repro.core.records import RunResult
from repro.core.solver import build_chain
from repro.des import Barrier, LegacyEventQueue
from repro.models import run_sisc_batched
from repro.models.sisc import _sisc_process
from repro.runtime.memory import peak_rss_bytes
from repro.workloads import ScaleScenario

#: (n_ranks, components_per_rank, rounds) — smallest first, so the
#: peak-RSS column (a process high-water mark) is attributable to the
#: point it is recorded after.  The last point is the flagship: 1024
#: ranks, 2**20 components.
FULL_GRID: tuple[tuple[int, int, int], ...] = (
    (64, 1600, 50),
    (256, 400, 50),
    (1024, 100, 50),
    (1024, 1024, 50),
)

#: CI smoke grid: seconds, not minutes, but still wide enough that the
#: lockstep replay's advantage is unambiguous.
QUICK_GRID: tuple[tuple[int, int, int], ...] = (
    (64, 100, 30),
    (256, 100, 30),
)


def scenario_for(n_ranks: int, components_per_rank: int) -> ScaleScenario:
    return ScaleScenario(
        n_ranks=n_ranks, components_per_rank=components_per_rank
    )


def _config(scenario: ScaleScenario, rounds: int):
    # Cap the round count: identical virtual work for every engine and a
    # bounded wall-clock at 1024 ranks.  The runs abort at the cap by
    # design; abort is a deterministic, bit-replayable path.
    return replace(scenario.solver_config(), max_iterations=rounds)


def run_reference(
    scenario: ScaleScenario, rounds: int, *, legacy_queue: bool
) -> tuple[RunResult, int]:
    """One event-driven SISC run; returns (result, events dispatched)."""
    run = build_chain(
        scenario.problem(),
        scenario.platform(),
        _config(scenario, rounds),
        model="sisc",
    )
    if legacy_queue:
        # Swap before anything is scheduled; build_chain schedules
        # nothing, which the peek assertion pins down.
        assert run.sim._queue.peek_time() is None
        run.sim._queue = LegacyEventQueue()
    barrier = Barrier(run.n_ranks, name="sisc")
    for ctx in run.ranks:
        run.sim.spawn(f"sisc-rank-{ctx.rank}", _sisc_process(run, ctx, barrier))
    run.run()
    return run.result(), run.sim.n_dispatched


def run_lockstep(scenario: ScaleScenario, rounds: int) -> tuple[RunResult, int]:
    result = run_sisc_batched(
        scenario.problem(), scenario.platform(), _config(scenario, rounds)
    )
    return result, int(result.meta["events_dispatched"])


def bench_point(
    report: BenchReport,
    n_ranks: int,
    components_per_rank: int,
    rounds: int,
) -> dict[str, Any]:
    """All three engines at one grid point; asserts identical answers."""
    scenario = scenario_for(n_ranks, components_per_rank)
    cores = len(os.sched_getaffinity(0))
    point = f"r{n_ranks}_c{scenario.n_components}"
    base_meta = {
        "cores": cores,
        "n_ranks": n_ranks,
        "n_components": scenario.n_components,
        "rounds": rounds,
    }

    engines = {
        "legacy": lambda: run_reference(scenario, rounds, legacy_queue=True),
        "indexed": lambda: run_reference(scenario, rounds, legacy_queue=False),
        "lockstep": lambda: run_lockstep(scenario, rounds),
    }
    stats: dict[str, dict[str, Any]] = {}
    fingerprints: dict[str, str] = {}
    for engine, fn in engines.items():
        t0 = time.perf_counter()
        result, events = fn()
        wall = time.perf_counter() - t0
        fingerprints[engine] = run_fingerprint(result)
        stats[engine] = {
            "wall_s": wall,
            "events": events,
            "events_per_sec": events / wall if wall > 0 else float("inf"),
            "peak_rss_bytes": peak_rss_bytes(),
        }
        report.add(
            BenchResult(
                name=f"scale_{point}_{engine}",
                best=wall,
                median=wall,
                mean=wall,
                repeats=1,
                meta={
                    **base_meta,
                    "events": events,
                    "events_per_sec": stats[engine]["events_per_sec"],
                    "peak_rss_bytes": stats[engine]["peak_rss_bytes"],
                },
            )
        )

    if len(set(fingerprints.values())) != 1:
        raise AssertionError(
            f"{point}: engines disagree — fingerprints {fingerprints}"
        )
    speedup = (
        stats["lockstep"]["events_per_sec"] / stats["legacy"]["events_per_sec"]
    )
    print(
        f"{point}: legacy {stats['legacy']['events_per_sec']:,.0f} ev/s, "
        f"indexed {stats['indexed']['events_per_sec']:,.0f} ev/s, "
        f"lockstep {stats['lockstep']['events_per_sec']:,.0f} ev/s "
        f"({speedup:.1f}x vs legacy), "
        f"rss {stats['lockstep']['peak_rss_bytes'] / 1e6:,.0f} MB"
    )
    return {
        "point": point,
        "n_ranks": n_ranks,
        "n_components": scenario.n_components,
        "speedup_vs_legacy": speedup,
        **{f"{e}_events_per_sec": s["events_per_sec"] for e, s in stats.items()},
    }


def build_report(quick: bool) -> tuple[BenchReport, list[dict[str, Any]]]:
    report = BenchReport("repro large-N scaling benchmarks")
    grid = QUICK_GRID if quick else FULL_GRID
    summaries = [bench_point(report, r, c, rounds) for r, c, rounds in grid]
    return report, summaries


def check(summaries: list[dict[str, Any]]) -> list[str]:
    """CI gate: >= 10x events/sec over legacy at the scheduler-bound point.

    Gated point: the largest-rank entry with the fewest components (the
    strong-scaling point, where per-event scheduler overhead — not the
    shared numpy sweep — is the bottleneck).
    """
    top_ranks = max(s["n_ranks"] for s in summaries)
    gated = min(
        (s for s in summaries if s["n_ranks"] == top_ranks),
        key=lambda s: s["n_components"],
    )
    if gated["speedup_vs_legacy"] < 10.0:
        return [
            f"{gated['point']}: lockstep only "
            f"{gated['speedup_vs_legacy']:.1f}x the legacy scheduler's "
            f"events/sec (expected >= 10x)"
        ]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke grid")
    parser.add_argument(
        "-o", "--out", default=None,
        help="JSON output path (default: BENCH_scale.json, repo root)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless lockstep >= 10x legacy at the top point",
    )
    args = parser.parse_args(argv)

    report, summaries = build_report(args.quick)
    print(report.format_table())

    out = args.out
    if out is None:
        from pathlib import Path

        out = str(Path(__file__).resolve().parent.parent / "BENCH_scale.json")
    report.save(out)
    print(f"[report saved to {out}]")

    if args.check:
        problems = check(summaries)
        if problems:
            for p in problems:
                print(f"CHECK FAILED: {p}", file=sys.stderr)
            return 1
        print("[--check passed: >= 10x events/sec at the top grid point]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
