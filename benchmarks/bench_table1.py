"""Table 1 — heterogeneous 3-site grid: non-balanced vs balanced AIAC.

Regenerates the paper's Table 1 row (non-balanced time, balanced time,
ratio) on the simulated 15-machine grid.  Paper: 515.3 / 105.5 / 4.88.
Our shape band: balanced wins with ratio in [1.5, 9] (the absolute times
differ — our substrate is a simulator and the waveform-relaxation sweep
counts are budgeted down; see EXPERIMENTS.md).
"""

from conftest import full_mode, save_report

from repro.experiments import run_table1
from repro.workloads import Table1Scenario


def test_table1(once):
    scenario = Table1Scenario() if full_mode() else Table1Scenario.quick()
    result = once(run_table1, scenario)
    save_report("table1", result.report())

    # Quick mode measures ~1.8; the full run's longer horizon spends a
    # larger share of its time re-adapting to the drifting multi-user
    # load and lands lower (~1.35) — both bands recorded in
    # EXPERIMENTS.md with the gap analysis.
    floor = 1.25 if full_mode() else 1.5
    assert result.ratio > floor, f"balanced must win, got {result.ratio:.2f}"
    assert result.ratio < 9.0
    assert result.migrations > 0
