"""Figures 1-4 — execution flows of SISC / SIAC / AIAC / AIAC-variant.

Regenerates the four execution-flow figures as ASCII Gantt charts plus
the quantity they communicate: idle time per model.  Shape assertions:
idle(SISC) >= idle(SIAC) > idle(AIAC) == 0, and the mutual-exclusion
variant (Figure 4) sends fewer halo messages than the eager one
(Figure 3) — the paper's "this has also the advantage to generate less
communications".
"""

from conftest import save_report

from repro.experiments import run_trace_figures
from repro.workloads import TraceFigureScenario


def test_figures_1_to_4(once):
    result = once(run_trace_figures, TraceFigureScenario())
    save_report("figures_1_to_4", result.report())

    idle = result.idle_fractions()
    assert idle["figure3_aiac_eager"] == 0.0
    assert idle["figure4_aiac_exclusive"] == 0.0
    assert idle["figure2_siac"] > 0.0
    assert idle["figure1_sisc"] >= idle["figure2_siac"] * 0.9

    messages = result.halo_messages()
    assert messages["figure4_aiac_exclusive"] < messages["figure3_aiac_eager"]

    times = {key: run.time for key, run in result.runs.items()}
    assert times["figure3_aiac_eager"] <= times["figure2_siac"]
    assert times["figure2_siac"] <= times["figure1_sisc"]
