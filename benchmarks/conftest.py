"""Shared benchmark plumbing.

* ``REPRO_BENCH_FULL=1`` switches the experiment benches from the quick
  (seconds) scenarios to the full paper-scale sweeps (minutes).
* Reports are printed *and* written to ``benchmarks/out/<name>.txt`` so
  they survive pytest's output capture; EXPERIMENTS.md quotes them.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def full_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def save_report(name: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[report saved to {path}]")


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
