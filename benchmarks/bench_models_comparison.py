"""§6 discussion — SISC vs SIAC vs AIAC on cluster and grid platforms.

Regenerates the comparison behind the paper's argument that
"load balancing AIAC algorithms in a local homogeneous context would
only produce slightly better results than their SISC counterparts
whereas in the global context the difference will be much larger":
the three models must be close on the cluster and clearly separated on
the grid.
"""

from conftest import save_report

from repro.experiments import run_models_comparison
from repro.workloads import ModelsComparisonScenario


def test_models_comparison(once):
    result = once(run_models_comparison, ModelsComparisonScenario())
    save_report("models_comparison", result.report())

    assert result.advantage("cluster") < 1.3
    assert result.advantage("grid") > 1.3
    assert result.advantage("grid") > 1.5 * result.advantage("cluster")
    grid = result.grid
    assert grid["aiac"].time <= grid["siac"].time <= grid["sisc"].time
