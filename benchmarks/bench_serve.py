#!/usr/bin/env python
"""Serve-daemon benchmark harness (``BENCH_serve.json``).

Starts an in-process ``repro.serve`` daemon and drives it with N
concurrent clients (default 8, the acceptance floor) submitting a mixed
figure5 / resilience / soak / sleep workload over the unix-socket
JSON-lines protocol, then restarts the daemon over the same state
directory and keeps serving — the committed numbers cover a full
restart cycle, not a pristine process.

Reported per entry (lower-better seconds in ``best/median/mean``,
everything else in ``meta``):

* ``serve_submit_ack``   — submit round trip (WAL fsync included),
* ``serve_job_latency``  — submit → terminal-result latency across all
  jobs (meta: p50/p95/p99, throughput in jobs/s),
* ``serve_warm_job``     — latency of jobs whose spec was already
  served once (dominated by queueing + cache hits, not simulation),
* ``serve_restart``      — daemon restart over the populated state dir
  (WAL replay + recovery included).

The benchmark is also a correctness harness: every served result digest
is compared against an offline ``execute_spec`` of the same spec, and
the audit log is byte-verified with ``audit_replay`` after the restart.
A digest mismatch fails the run even without ``--check``.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_serve.py             # full
    PYTHONPATH=src python benchmarks/bench_serve.py --quick     # CI smoke
    PYTHONPATH=src python benchmarks/bench_serve.py --clients 16
    PYTHONPATH=src python benchmarks/bench_serve.py --check     # CI gate

``--check`` exits non-zero unless every job finished ``done``, every
served digest matched its direct run, the audit replay verified, and
the warm (repeat-spec) cache hit-rate reached 50%.
"""

from __future__ import annotations

import argparse
import math
import os
import shutil
import sys
import tempfile
import threading
import time
from typing import Any

from repro.analysis.perf import BenchReport, BenchResult
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServeDaemon,
    audit_replay,
    execute_spec,
)

#: The mixed workload: each client walks this ring round-robin from its
#: own offset, so concurrent clients hit overlapping specs (exercising
#: the run cache) in different orders (exercising the scheduler).
SPEC_RING = [
    {"kind": "figure5", "mode": "tiny"},
    {"kind": "resilience", "mode": "tiny"},
    {"kind": "soak", "schedules": 2, "seed": 0},
    {"kind": "sleep", "seconds": 0.05, "tasks": 2},
    {"kind": "figure5", "mode": "tiny"},
    {"kind": "soak", "schedules": 2, "seed": 1},
]


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[index]


def spec_key(spec: dict[str, Any]) -> str:
    return repr(sorted(spec.items()))


# ----------------------------------------------------------------------
# Client driver
# ----------------------------------------------------------------------
def drive_client(
    address: str,
    client_id: int,
    jobs_per_client: int,
    rows: list[dict[str, Any]],
    lock: threading.Lock,
) -> None:
    """One concurrent client: submit its share, follow every result."""
    client = ServeClient(address, timeout=600.0)
    for n in range(jobs_per_client):
        spec = SPEC_RING[(client_id + n) % len(SPEC_RING)]
        t0 = time.perf_counter()
        job_id = client.submit(spec, tenant=f"client-{client_id}")
        ack_s = time.perf_counter() - t0
        job = client.result(job_id, follow=True, timeout=600.0)
        row = {
            "client": client_id,
            "job_id": job_id,
            "spec": spec,
            "state": job["state"],
            "digest": (job.get("result") or {}).get("digest"),
            "ack_s": ack_s,
            "latency_s": time.perf_counter() - t0,
        }
        with lock:
            rows.append(row)


def run_phase(
    address: str, clients: int, jobs_per_client: int
) -> tuple[list[dict[str, Any]], float]:
    rows: list[dict[str, Any]] = []
    lock = threading.Lock()
    threads = [
        threading.Thread(
            target=drive_client,
            args=(address, c, jobs_per_client, rows, lock),
            name=f"bench-client-{c}",
        )
        for c in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return rows, time.perf_counter() - t0


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
def build_report(
    quick: bool, clients: int, scratch: str
) -> tuple[BenchReport, dict[str, Any]]:
    jobs_per_client = 2 if quick else 3
    state_dir = os.path.join(scratch, "serve-state")
    config = ServeConfig(state_dir=state_dir, workers=2, durable=True)
    address = config.resolved_address()

    # Offline reference digests: the serving contract is that the daemon
    # returns exactly these, however the jobs were scheduled or cached.
    direct = {
        spec_key(spec): execute_spec(spec)["digest"] for spec in SPEC_RING
    }

    daemon = ServeDaemon(config)
    daemon.start()
    ServeClient(address).wait_until_up()
    try:
        rows, wall_s = run_phase(address, clients, jobs_per_client)
    finally:
        daemon.stop()

    # Restart over the populated state dir: WAL replay + recovery are
    # part of the served lifecycle, so they are timed and the second
    # phase runs against the warmed cache.
    t0 = time.perf_counter()
    daemon = ServeDaemon(ServeConfig(state_dir=state_dir, workers=2, durable=True))
    daemon.start()
    ServeClient(address).wait_until_up()
    restart_s = time.perf_counter() - t0
    try:
        warm_rows, warm_wall_s = run_phase(address, clients, 1)
        rows += warm_rows
        hits = daemon.engine.stats.hits
        lookups = hits + daemon.engine.stats.misses
        warm_hit_rate = hits / lookups if lookups else 0.0
    finally:
        daemon.stop()

    audit = audit_replay(
        os.path.join(state_dir, "audit.jsonl"), sample=4 if quick else 6
    )

    # ------------------------------------------------------------------
    n_jobs = len(rows)
    done = [r for r in rows if r["state"] == "done"]
    mismatches = [
        r for r in done if r["digest"] != direct[spec_key(r["spec"])]
    ]
    acks = [r["ack_s"] for r in rows]
    lats = [r["latency_s"] for r in rows]
    # A spec's first serving simulates; repeats are queue + cache cost.
    seen: set[str] = set()
    warm_lats = []
    for row in rows:
        key = spec_key(row["spec"])
        if key in seen:
            warm_lats.append(row["latency_s"])
        seen.add(key)
    throughput = n_jobs / (wall_s + warm_wall_s)

    cores = len(os.sched_getaffinity(0))
    meta = {
        "cores": cores,
        "clients": clients,
        "n_jobs": n_jobs,
        "n_done": len(done),
        "digest_mismatches": len(mismatches),
        "audit_replay_ok": audit.ok,
        "audit_records": audit.n_records,
        "warm_cache_hit_rate": warm_hit_rate,
        "throughput_jobs_per_s": throughput,
    }

    report = BenchReport("repro serve-daemon benchmarks")
    report.add(
        BenchResult(
            name="serve_submit_ack",
            best=min(acks), median=percentile(acks, 0.5),
            mean=sum(acks) / len(acks), repeats=len(acks),
            meta={**meta, "p95_s": percentile(acks, 0.95),
                  "p99_s": percentile(acks, 0.99)},
        )
    )
    report.add(
        BenchResult(
            name="serve_job_latency",
            best=min(lats), median=percentile(lats, 0.5),
            mean=sum(lats) / len(lats), repeats=len(lats),
            meta={**meta, "p50_s": percentile(lats, 0.5),
                  "p95_s": percentile(lats, 0.95),
                  "p99_s": percentile(lats, 0.99)},
        )
    )
    report.add(
        BenchResult(
            name="serve_warm_job",
            best=min(warm_lats), median=percentile(warm_lats, 0.5),
            mean=sum(warm_lats) / len(warm_lats), repeats=len(warm_lats),
            meta={**meta, "p95_s": percentile(warm_lats, 0.95)},
        )
    )
    report.add(
        BenchResult(
            name="serve_restart",
            best=restart_s, median=restart_s, mean=restart_s, repeats=1,
            meta={"cores": cores, "recovered_wal_records": audit.n_records},
        )
    )

    summary = {
        **meta,
        "p50_latency_s": percentile(lats, 0.5),
        "p95_latency_s": percentile(lats, 0.95),
        "p99_latency_s": percentile(lats, 0.99),
        "mismatch_rows": mismatches,
        "states": sorted({r["state"] for r in rows}),
    }
    return report, summary


def check(summary: dict[str, Any]) -> list[str]:
    """The CI acceptance gate (sized for the 1-core container too)."""
    problems = []
    if summary["n_done"] != summary["n_jobs"]:
        problems.append(
            f"{summary['n_jobs'] - summary['n_done']} of "
            f"{summary['n_jobs']} job(s) did not finish done"
        )
    if summary["digest_mismatches"]:
        problems.append(
            f"{summary['digest_mismatches']} served digest(s) differ from "
            f"direct execution: {summary['mismatch_rows']}"
        )
    if not summary["audit_replay_ok"]:
        problems.append("audit_replay found digest mismatches")
    if summary["warm_cache_hit_rate"] < 0.5:
        problems.append(
            f"warm cache hit-rate {summary['warm_cache_hit_rate']:.2f} "
            f"(expected >= 0.5 on the repeat-heavy mix)"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument(
        "--clients", type=int, default=8,
        help="concurrent submitting clients (default 8)",
    )
    parser.add_argument(
        "-o", "--out", default=None,
        help="JSON output path (default: BENCH_serve.json, repo root)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the digest/audit/cache gates hold",
    )
    args = parser.parse_args(argv)

    scratch = tempfile.mkdtemp(prefix="bench-serve-")
    try:
        report, summary = build_report(args.quick, args.clients, scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    print(report.format_table())
    print(
        f"{summary['n_jobs']} job(s) over {summary['clients']} client(s): "
        f"p50 {summary['p50_latency_s']:.2f}s, "
        f"p95 {summary['p95_latency_s']:.2f}s, "
        f"p99 {summary['p99_latency_s']:.2f}s, "
        f"{summary['throughput_jobs_per_s']:.2f} jobs/s, warm hit-rate "
        f"{summary['warm_cache_hit_rate']:.2f}, digests "
        f"{'ok' if not summary['digest_mismatches'] else 'MISMATCHED'}, "
        f"audit {'ok' if summary['audit_replay_ok'] else 'MISMATCHED'}"
    )

    out = args.out
    if out is None:
        from pathlib import Path

        out = str(Path(__file__).resolve().parent.parent / "BENCH_serve.json")
    report.save(out)
    print(f"[report saved to {out}]")

    problems = check(summary)
    if args.check:
        if problems:
            for p in problems:
                print(f"CHECK FAILED: {p}", file=sys.stderr)
            return 1
        print("[--check passed: digest, audit and cache gates hold]")
    elif summary["digest_mismatches"] or not summary["audit_replay_ok"]:
        # Correctness failures are fatal even without --check.
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
