"""Microbenchmarks of the numerical substrates.

These are classic pytest-benchmark timings (multiple rounds) of the hot
kernels: a Brusselator waveform sweep, the batched 2x2 Newton solve, the
banded LU, and the sequential reference integrator.  They document the
per-sweep cost model that the work-unit accounting abstracts.
"""

import numpy as np

from repro.numerics.banded import BandedMatrix
from repro.numerics.newton import newton_batched_2x2
from repro.problems.brusselator import BrusselatorProblem


def test_brusselator_sweep_speed(benchmark):
    problem = BrusselatorProblem(n_points=128, t_end=2.0, n_steps=40)
    state = problem.initial_state(0, 128)
    left = problem.initial_halo(-1)
    right = problem.initial_halo(128)

    result = benchmark(problem.iterate, state, left, right)
    assert result.total_work > 0


def test_batched_newton_speed(benchmark):
    n = 4096
    targets = np.linspace(1.0, 9.0, n)

    def f(u, v):
        return (
            u * u - targets,
            v * v - targets,
            2 * u,
            np.zeros_like(u),
            np.zeros_like(u),
            2 * v,
        )

    res = benchmark(newton_batched_2x2, f, np.full(n, 5.0), np.full(n, 5.0))
    assert res.all_converged


def test_banded_lu_speed(benchmark):
    rng = np.random.default_rng(0)
    n = 400
    bands = rng.uniform(-1, 1, (5, n))
    bands[2] = 5.0 + np.abs(bands).sum(axis=0)  # diagonally dominant
    matrix = BandedMatrix(bands, kl=2, ku=2)
    b = rng.standard_normal(n)

    x = benchmark(lambda: matrix.lu_factor().solve(b))
    assert np.all(np.isfinite(x))


def test_reference_solution_speed(benchmark):
    problem = BrusselatorProblem(n_points=64, t_end=2.0, n_steps=20)
    traj = benchmark(problem.reference_solution)
    assert traj.shape == (64, 2, 21)
