#!/usr/bin/env python
"""Sweep-engine benchmark harness (``BENCH_sweeps.json``).

Times the experiment sweeps end to end under the four ``repro.exec``
configurations the engine promises are byte-identical:

* ``serial`` — ``jobs=1``, no cache (the legacy path),
* ``jobsN`` — the worker pool at ``--jobs N`` (default 4), no cache,
* ``cache_cold`` — ``--jobs N`` into a fresh cache directory,
* ``cache_hit`` — the same sweep again, served entirely from cache.

Workloads: the quick Figure 5 sweep, the quick resilience sweep, and a
16-schedule guard soak — the three sweeps CI runs.  Each parallel /
cached entry records ``speedup_vs_serial`` (and the cache-hit entry its
fraction of the cold time) in ``meta``, along with the CPU count the
run actually had: speedups are meaningless without knowing the core
budget, and a 1-core container honestly reports ~1x.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_sweeps.py             # full
    PYTHONPATH=src python benchmarks/bench_sweeps.py --quick     # CI smoke
    PYTHONPATH=src python benchmarks/bench_sweeps.py --jobs 8
    PYTHONPATH=src python benchmarks/bench_sweeps.py --check     # CI gate

``--check`` exits non-zero unless the soak speedup at ``--jobs 4``+ is
>= 2x and the cache-hit rerun costs < 10% of the cold run — the
acceptance numbers for the multi-core CI runner class.  Every timed
run's report is also byte-compared against the serial run's, so the
benchmark doubles as an end-to-end determinism check.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import time
from typing import Any, Callable

from repro.analysis.perf import BenchReport, BenchResult
from repro.exec import RunCache, SweepEngine


# ----------------------------------------------------------------------
# Workload builders: name -> callable(engine) -> report text
# ----------------------------------------------------------------------
def figure5_workload(quick: bool) -> Callable[[SweepEngine], str]:
    from repro.experiments import run_figure5
    from repro.workloads import Figure5Scenario

    scenario = Figure5Scenario.tiny() if quick else Figure5Scenario.quick()

    def run(engine: SweepEngine) -> str:
        return run_figure5(scenario, engine=engine).report()

    return run


def resilience_workload(quick: bool) -> Callable[[SweepEngine], str]:
    from repro.experiments import run_resilience
    from repro.workloads import ResilienceScenario

    scenario = ResilienceScenario.tiny() if quick else ResilienceScenario.quick()

    def run(engine: SweepEngine) -> str:
        return run_resilience(scenario, engine=engine).report()

    return run


def soak_workload(quick: bool, out_dir: str) -> Callable[[SweepEngine], str]:
    from repro.guard.soak import run_soak

    n_schedules = 4 if quick else 16

    def run(engine: SweepEngine) -> str:
        result = run_soak(
            n_schedules=n_schedules,
            seed=0,
            out_dir=out_dir,
            shrink=False,
            engine=engine,
        )
        return result.report()

    return run


# ----------------------------------------------------------------------
# Timing
# ----------------------------------------------------------------------
def _timed(fn: Callable[[SweepEngine], str], engine: SweepEngine) -> tuple[float, str]:
    t0 = time.perf_counter()
    report = fn(engine)
    return time.perf_counter() - t0, report


def bench_sweep(
    report: BenchReport,
    name: str,
    fn: Callable[[SweepEngine], str],
    *,
    jobs: int,
    scratch: str,
) -> dict[str, Any]:
    """Four configurations of one sweep; asserts byte-identical reports."""
    cores = len(os.sched_getaffinity(0))
    base_meta = {"cores": cores, "jobs": jobs}

    serial_s, serial_text = _timed(fn, SweepEngine(jobs=1))
    report.add(
        BenchResult(
            name=f"{name}_serial", best=serial_s, median=serial_s,
            mean=serial_s, repeats=1, meta=dict(base_meta),
        )
    )

    par_s, par_text = _timed(fn, SweepEngine(jobs=jobs))
    report.add(
        BenchResult(
            name=f"{name}_jobs{jobs}", best=par_s, median=par_s,
            mean=par_s, repeats=1,
            meta={**base_meta, "speedup_vs_serial": serial_s / par_s},
        )
    )

    cache_dir = os.path.join(scratch, f"{name}-cache")
    cold_s, cold_text = _timed(fn, SweepEngine(jobs=jobs, cache=RunCache(cache_dir)))
    report.add(
        BenchResult(
            name=f"{name}_cache_cold", best=cold_s, median=cold_s,
            mean=cold_s, repeats=1,
            meta={**base_meta, "speedup_vs_serial": serial_s / cold_s},
        )
    )

    hit_engine = SweepEngine(jobs=1, cache=RunCache(cache_dir))
    hit_s, hit_text = _timed(fn, hit_engine)
    report.add(
        BenchResult(
            name=f"{name}_cache_hit", best=hit_s, median=hit_s,
            mean=hit_s, repeats=1,
            meta={
                **base_meta,
                "speedup_vs_serial": serial_s / hit_s,
                "fraction_of_cold": hit_s / cold_s,
                "cache_hits": hit_engine.stats.hits,
                "cache_misses": hit_engine.stats.misses,
            },
        )
    )

    for label, text in (("jobs", par_text), ("cold", cold_text), ("hit", hit_text)):
        assert text == serial_text, (
            f"{name}: {label} report differs from serial — determinism broken"
        )
    return {
        "serial_s": serial_s,
        "parallel_s": par_s,
        "cold_s": cold_s,
        "hit_s": hit_s,
        "speedup": serial_s / par_s,
        "hit_fraction": hit_s / cold_s,
        "misses_on_hit_run": hit_engine.stats.misses,
    }


def build_report(
    quick: bool, jobs: int, scratch: str
) -> tuple[BenchReport, dict[str, dict[str, Any]]]:
    report = BenchReport("repro sweep-engine benchmarks")
    summaries: dict[str, dict[str, Any]] = {}
    workloads = [
        ("figure5_quick", figure5_workload(quick)),
        ("resilience_quick", resilience_workload(quick)),
        ("soak_16sched" if not quick else "soak_4sched",
         soak_workload(quick, scratch)),
    ]
    for name, fn in workloads:
        summaries[name] = bench_sweep(
            report, name, fn, jobs=jobs, scratch=scratch
        )
        s = summaries[name]
        print(
            f"{name}: serial {s['serial_s']:.2f}s, jobs{jobs} "
            f"{s['parallel_s']:.2f}s ({s['speedup']:.2f}x), cache hit "
            f"{s['hit_s']:.2f}s ({100 * s['hit_fraction']:.1f}% of cold)"
        )
    return report, summaries


def check(summaries: dict[str, dict[str, Any]], jobs: int) -> list[str]:
    """The CI acceptance gate: soak >= 2x at jobs >= 4, hits < 10% of cold."""
    problems = []
    for name, s in summaries.items():
        if name.startswith("soak") and jobs >= 4 and s["speedup"] < 2.0:
            problems.append(
                f"{name}: speedup {s['speedup']:.2f}x at jobs={jobs} "
                f"(expected >= 2x)"
            )
        # The <10% gate applies to the fully cacheable soak; figure5 and
        # resilience keep an uncached in-process tail (the traced
        # headline run) that dominates their small CI instances.
        if name.startswith("soak") and s["hit_fraction"] >= 0.10:
            problems.append(
                f"{name}: cache-hit rerun took {100 * s['hit_fraction']:.1f}% "
                f"of the cold run (expected < 10%)"
            )
        if s["misses_on_hit_run"]:
            problems.append(
                f"{name}: {s['misses_on_hit_run']} cache miss(es) on the "
                f"hit rerun (expected 0)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument(
        "--jobs", type=int, default=4, help="worker pool size (default 4)"
    )
    parser.add_argument(
        "-o", "--out", default=None,
        help="JSON output path (default: BENCH_sweeps.json, repo root)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the acceptance speedup/cache gates hold",
    )
    args = parser.parse_args(argv)

    scratch = tempfile.mkdtemp(prefix="bench-sweeps-")
    try:
        report, summaries = build_report(args.quick, args.jobs, scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    print(report.format_table())

    out = args.out
    if out is None:
        from pathlib import Path

        out = str(Path(__file__).resolve().parent.parent / "BENCH_sweeps.json")
    report.save(out)
    print(f"[report saved to {out}]")

    if args.check:
        problems = check(summaries, args.jobs)
        if problems:
            for p in problems:
                print(f"CHECK FAILED: {p}", file=sys.stderr)
            return 1
        print("[--check passed: speedup and cache gates hold]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
