"""Ablations — the design choices of DESIGN.md §6 / paper §6.

Sweeps the load-balancing frequency (the paper's "neither too high nor
too low"), the trigger threshold, the migration accuracy ("coarse load
balancing with less data migration" on slow networks), the famine
threshold, the load estimator (§5.2's residual argument) and the
convergence-detection protocol (zero-cost oracle vs the practical
decentralized token ring).
"""

from conftest import save_report

from repro.experiments.ablations import (
    compare_adaptive_period,
    compare_detection_protocols,
    compare_skip_optimisation,
    sweep_accuracy,
    sweep_estimator,
    sweep_lb_period,
    sweep_min_components,
    sweep_threshold_ratio,
)


def test_ablation_lb_period(once):
    result = once(sweep_lb_period)
    save_report("ablation_lb_period", result.report())
    times = dict(zip(result.values, result.times))
    # The paper's claim: both extremes lose against a moderate period.
    moderate = min(times[5], times[20])
    assert moderate <= times[320]
    assert moderate <= times[1] * 1.5


def test_ablation_threshold_ratio(once):
    result = once(sweep_threshold_ratio)
    save_report("ablation_threshold_ratio", result.report())
    times = dict(zip(result.values, result.times))
    migrations = dict(zip(result.values, result.migrations))
    # A near-infinite threshold disables balancing and loses.
    assert min(times[2.0], times[3.0]) < times[64.0]
    assert migrations[64.0] <= min(migrations[1.2], migrations[2.0])


def test_ablation_accuracy(once):
    result = once(sweep_accuracy)
    save_report("ablation_accuracy", result.report())
    times = dict(zip(result.values, result.times))
    # Very coarse migration (10% granularity) underperforms accurate.
    assert times[1.0] <= times[0.1]


def test_ablation_min_components(once):
    result = once(sweep_min_components)
    save_report("ablation_min_components", result.report())
    times = dict(zip(result.values, result.times))
    # A huge famine threshold prevents useful balancing.
    assert min(times[2], times[4]) <= times[16]


def test_ablation_estimator(once):
    result = once(sweep_estimator)
    save_report("ablation_estimator", result.report())
    times = dict(zip(result.values, result.times))
    # §5.2: the residual beats the naive component count on an
    # activity-imbalanced workload.
    assert times["residual"] < times["component_count"]


def test_ablation_adaptive_period(once):
    result = once(compare_adaptive_period)
    save_report("ablation_adaptive_period", result.report())
    times = dict(zip(result.values, result.times))
    # The adaptive controller must be competitive with the best fixed
    # period (within 50%) and beat the worst one.
    best_fixed = min(times["fixed-5"], times["fixed-20"], times["fixed-80"])
    worst_fixed = max(times["fixed-5"], times["fixed-20"], times["fixed-80"])
    assert times["adaptive"] <= best_fixed * 1.5
    assert times["adaptive"] <= worst_fixed


def test_ablation_skip_optimisation(once):
    result = once(compare_skip_optimisation)
    save_report("ablation_skip", result.report())
    work = dict(zip(result.values, result.extra["total work"]))
    errors = dict(zip(result.values, result.extra["max error"]))
    # Same answer with a real work saving: the fast ranks' converged
    # components skip their verification sweeps.
    assert errors[True] < 1e-4 and errors[False] < 1e-4
    assert work[True] < work[False] * 0.9


def test_ablation_detection(once):
    result = once(compare_detection_protocols)
    save_report("ablation_detection", result.report())
    times = dict(zip(result.values, result.times))
    overhead = dict(zip(result.values, result.extra["overhead (s)"]))
    assert times["token_ring"] >= times["oracle"] * 0.999
    assert 0.0 <= overhead["token_ring"] < times["oracle"] * 0.5
