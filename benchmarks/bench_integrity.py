#!/usr/bin/env python
"""Integrity benchmark + gate (``bench_integrity``).

Times the (detection arm × corruption schedule × model) sweep of
:func:`repro.experiments.run_integrity` and records its
:func:`~repro.analysis.perf.stable_digest` in the result ``meta``.
Unlike the other bench scripts this one is first a *gate*: the sweep is
the end-to-end proof that the data-integrity layer works, and
``--check`` turns its invariants into exit codes for CI.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_integrity.py            # full grid
    PYTHONPATH=src python benchmarks/bench_integrity.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_integrity.py --check    # CI gate

``--check`` exits non-zero unless

* two back-to-back runs of the sweep produce the **same digest**
  (byte-reproducibility: corruption draws come from named RNG streams,
  so the whole fault timeline replays),
* **no detect-arm run silently converged to a wrong answer** — the
  headline claim of the integrity layer,
* the zero-corruption rows are **bit-identical across both arms**
  (detection machinery is inert when no corruption is scheduled), and
* with detection armed, **every injected payload corruption was
  detected** (recall 1.0 on the wire-corruption schedules — a checksum
  mismatch can hide only by colliding, which the gate would catch).

The ``clean_digest`` in the sweep meta fingerprints just the
zero-corruption rows; CI pins it so a behaviour drift on the clean path
(the one every ordinary run takes) fails loudly even if the full digest
is regenerated.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any

from repro.analysis.perf import BenchReport, BenchResult, stable_digest
from repro.exec import SweepEngine
from repro.experiments import IntegrityResult, run_integrity
from repro.workloads.scenarios import IntegrityScenario

#: Wire-corruption schedules gated on full detection recall.  The
#: in-memory/state schedules are *not* recall-gated: a single poisoned
#: block that the contractive iteration absorbs before any plausibility
#: screen fires is a legitimate ``masked`` outcome, not a regression.
PAYLOAD_SCHEDULES = ("flip_lo", "flip_hi", "perturb", "truncate")


def clean_digest(result: IntegrityResult) -> str:
    """Fingerprint of just the zero-corruption rows (both arms)."""
    rows = [r for r in result.rows if r["schedule"] == "none"]
    return stable_digest({"rows": rows})


def bench_sweep(
    report: BenchReport, scenario: IntegrityScenario, label: str, repeats: int
) -> dict[str, Any]:
    """Time ``repeats`` cold runs of the sweep; returns the summary."""
    walls: list[float] = []
    digests: list[str] = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_integrity(scenario, engine=SweepEngine())
        walls.append(time.perf_counter() - t0)
        digests.append(result.digest())
    report.add(
        BenchResult(
            name=f"integrity_sweep_{label}",
            best=min(walls),
            median=sorted(walls)[len(walls) // 2],
            mean=sum(walls) / len(walls),
            repeats=repeats,
            meta={
                "cells": len(result.rows),
                "n_points": scenario.n_points,
                "digest": digests[0],
                "clean_digest": clean_digest(result),
            },
        )
    )
    print(
        f"integrity_sweep_{label}: {len(result.rows)} cells, "
        f"best {min(walls):.3f}s, digest {digests[0][:12]}, "
        f"clean_digest {clean_digest(result)[:12]}"
    )
    return {"label": label, "digests": digests, "result": result}


def check(summary: dict[str, Any]) -> list[str]:
    """The CI gates (see module docstring)."""
    problems: list[str] = []
    if len(set(summary["digests"])) != 1:
        problems.append(
            f"sweep is not reproducible: digests {summary['digests']}"
        )
    result: IntegrityResult = summary["result"]
    for row in result.wrong_detected_rows():
        problems.append(
            f"undetected wrong answer with detection armed: "
            f"{row['schedule']}/{row['model']} "
            f"(max_error {row['max_error']:.2e})"
        )
    for model in result.clean_arm_mismatches():
        problems.append(
            f"zero-corruption rows differ between arms for {model} — "
            "the detection layer is not inert on the clean path"
        )
    for row in result.rows:
        if row["arm"] != "detect" or row["schedule"] not in PAYLOAD_SCHEDULES:
            continue
        injected = row["corruptions_injected"]
        detected = row["corruptions_detected"]
        if injected == 0:
            problems.append(
                f"detect/{row['schedule']}/{row['model']}: schedule "
                "injected nothing — the corruption window never fired"
            )
        elif detected < injected:
            problems.append(
                f"detect/{row['schedule']}/{row['model']}: recall "
                f"{detected}/{injected} < 1.0 — corruption slipped past "
                "the checksums"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke grid")
    parser.add_argument(
        "-o", "--out", default=None,
        help="JSON output path (default: BENCH_integrity_timing.json; the "
        "committed BENCH_integrity.json is IntegrityResult.save_json)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the sweep reproduces byte-identically, "
        "no detect-arm run is silently wrong, the clean path is inert, "
        "and payload-corruption recall is 1.0",
    )
    args = parser.parse_args(argv)

    scenario = IntegrityScenario.quick() if args.quick else IntegrityScenario()
    label = "quick" if args.quick else "full"
    report = BenchReport("repro integrity benchmarks")
    summary = bench_sweep(report, scenario, label, repeats=2)
    print(report.format_table())
    print(summary["result"].report())

    if args.out:
        report.save(args.out)
        print(f"[report saved to {args.out}]")

    if args.check:
        problems = check(summary)
        if problems:
            for p in problems:
                print(f"CHECK FAILED: {p}", file=sys.stderr)
            return 1
        print(
            "[--check passed: reproducible digest, zero undetected wrong "
            "answers, inert clean path, payload recall 1.0]"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
