#!/usr/bin/env python
"""Topology-zoo benchmark (``BENCH_topology.json``).

Times the (topology × LB algorithm × fault schedule) sweep of
:func:`repro.experiments.run_topology_zoo` plus the per-cell hot path
(:func:`repro.balancing.zoo.run_zoo` on representative cells), and
records each sweep's :func:`~repro.analysis.perf.stable_digest` in the
result ``meta`` — so ``repro bench-compare`` flags wall-clock
regressions and a digest change is visible in review.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_topology.py            # full grid
    PYTHONPATH=src python benchmarks/bench_topology.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_topology.py --check    # CI gate

``--check`` exits non-zero unless

* two back-to-back runs of the sweep produce the **same digest** (the
  byte-reproducibility acceptance criterion of ISSUE 8),
* every diffusion-family algorithm actually balances the fault-free
  spike (final imbalance ≤ 1.15 on every topology), and
* the decentralized winners table is fully populated.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any

from repro.analysis.perf import BenchReport, BenchResult
from repro.balancing.zoo import ZooParams, make_zoo_schedule, run_zoo
from repro.exec import SweepEngine
from repro.experiments import TopologyZooScenario, run_topology_zoo
from repro.topology.graphs import build_topology, spec_for_family

#: Per-cell microbenchmark points: (family, algorithm, schedule).
CELLS: tuple[tuple[str, str, str], ...] = (
    ("torus", "diffusion", "none"),
    ("torus", "accelerated", "load_shock"),
    ("hypercube", "dimension_exchange", "none"),
    ("hierarchy", "reactive_residual", "node_outage"),
    ("expander", "bertsekas", "link_flap"),
)

#: Algorithms gated on actually balancing the fault-free spike.  The
#: single-partner asynchronous schemes (bertsekas, reactive_residual)
#: level the spike much more slowly by design, so they are reported but
#: not gated.
GATED_ALGORITHMS = ("diffusion", "accelerated", "dimension_exchange", "centralized")

#: Families the balancing gate runs on: the fast-mixing graphs.  On a
#: chain/ring (mixing time ~ n²) or an irregular-degree random geometric
#: graph, first-order diffusion legitimately cannot level a spike within
#: these round budgets — that slowness is a *result* the report shows,
#: not a regression to gate on.
GATED_FAMILIES = ("mesh2d", "mesh3d", "torus", "hypercube", "expander", "hierarchy")


def bench_sweep(
    report: BenchReport, scenario: TopologyZooScenario, label: str, repeats: int
) -> dict[str, Any]:
    """Time ``repeats`` cold runs of the sweep; returns the summary.

    Every repeat runs with the cache off (a warm rerun would time the
    cache, not the zoo) and must produce the same digest.
    """
    walls: list[float] = []
    digests: list[str] = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_topology_zoo(scenario, engine=SweepEngine())
        walls.append(time.perf_counter() - t0)
        digests.append(result.digest())
    n_cells = len(result.rows)
    report.add(
        BenchResult(
            name=f"zoo_sweep_{label}",
            best=min(walls),
            median=sorted(walls)[len(walls) // 2],
            mean=sum(walls) / len(walls),
            repeats=repeats,
            meta={
                "cells": n_cells,
                "n_nodes": scenario.n_nodes,
                "rounds": scenario.rounds,
                "digest": digests[0],
            },
        )
    )
    print(
        f"zoo_sweep_{label}: {n_cells} cells, best {min(walls):.3f}s, "
        f"digest {digests[0][:12]}"
    )
    return {
        "label": label,
        "digests": digests,
        "result": result,
    }


def bench_cells(report: BenchReport, scenario: TopologyZooScenario) -> None:
    """Per-cell hot-path timings at the scenario's size."""
    params = ZooParams(rounds=scenario.rounds)
    for family, algorithm, schedule_name in CELLS:
        topology = build_topology(
            spec_for_family(family, scenario.n_nodes, seed=scenario.seed)
        )
        schedule = make_zoo_schedule(
            schedule_name, topology, params.rounds, seed=scenario.seed
        )
        walls = []
        for _ in range(3):
            t0 = time.perf_counter()
            run_zoo(
                topology,
                algorithm,
                params=params,
                schedule=schedule,
                seed=scenario.seed,
            )
            walls.append(time.perf_counter() - t0)
        report.add(
            BenchResult(
                name=f"zoo_cell_{family}_{algorithm}_{schedule_name}",
                best=min(walls),
                median=sorted(walls)[1],
                mean=sum(walls) / len(walls),
                repeats=3,
                meta={
                    "n_nodes": scenario.n_nodes,
                    "rounds": params.rounds,
                },
            )
        )


def check(summary: dict[str, Any], scenario: TopologyZooScenario) -> list[str]:
    """The CI gates (see module docstring)."""
    problems: list[str] = []
    if len(set(summary["digests"])) != 1:
        problems.append(
            f"sweep is not reproducible: digests {summary['digests']}"
        )
    result = summary["result"]
    for family in scenario.families:
        if family not in GATED_FAMILIES:
            continue
        for algorithm in GATED_ALGORITHMS:
            if algorithm not in scenario.algorithms:
                continue
            row = result.row(family, algorithm, "none")
            if row is None:
                problems.append(f"missing row {family}/{algorithm}/none")
            elif row["final_imbalance"] > 1.15:
                problems.append(
                    f"{family}/{algorithm}/none: final imbalance "
                    f"{row['final_imbalance']:.3f} > 1.15 — did not balance"
                )
    winners = result.winners()
    expected = len(scenario.families) * len(scenario.schedules)
    if len(winners) != expected:
        problems.append(
            f"winners table has {len(winners)} cells, expected {expected}"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke grid")
    parser.add_argument(
        "-o", "--out", default=None,
        help="JSON output path (default: BENCH_topology.json, repo root)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless digests match across reruns and the "
        "diffusion-family algorithms balance the fault-free spike",
    )
    args = parser.parse_args(argv)

    scenario = (
        TopologyZooScenario.quick() if args.quick else TopologyZooScenario()
    )
    label = "quick" if args.quick else "full"
    report = BenchReport("repro topology-zoo benchmarks")
    summary = bench_sweep(report, scenario, label, repeats=2)
    bench_cells(report, scenario)
    print(report.format_table())
    print(summary["result"].report())

    out = args.out
    if out is None:
        from pathlib import Path

        out = str(Path(__file__).resolve().parent.parent / "BENCH_topology.json")
    report.save(out)
    print(f"[report saved to {out}]")

    if args.check:
        problems = check(summary, scenario)
        if problems:
            for p in problems:
                print(f"CHECK FAILED: {p}", file=sys.stderr)
            return 1
        print(
            "[--check passed: reproducible digest, diffusion-family "
            "algorithms balanced, winners table full]"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
