"""Figure 5 — homogeneous cluster: time vs processors, with/without LB.

Regenerates the paper's Figure 5 series (both curves and the ratio).
Quick mode sweeps p in (4, 8, 16) on a reduced problem; set
``REPRO_BENCH_FULL=1`` for the full sweep to 64 processors.

Shape assertions (paper): both series decrease with p; the balanced
curve sits below the unbalanced one at every point with a clearly
greater-than-one ratio (the paper reports 6.2-7.4 on its testbed; see
EXPERIMENTS.md for the measured band and the gap analysis).
"""

from conftest import full_mode, save_report

from repro.experiments import run_figure5
from repro.workloads import Figure5Scenario


def test_figure5(once):
    scenario = Figure5Scenario() if full_mode() else Figure5Scenario.quick()
    result = once(run_figure5, scenario)
    save_report("figure5", result.report())

    ratios = result.ratios
    assert all(r > 1.3 for r in ratios), f"LB must win at every p: {ratios}"
    assert result.time_unbalanced == sorted(result.time_unbalanced, reverse=True)
    assert result.time_balanced == sorted(result.time_balanced, reverse=True)
    assert result.mean_ratio > 1.5
