"""Deterministic parallel sweep engine.

The paper's results are all *sweeps of independent runs* (Figure 5 is a
strong-scaling sweep, Table 1 a platform sweep, the resilience and soak
harnesses a fault-schedule grid).  Each run already owns its randomness
through :class:`~repro.util.rng.RngTree`, so runs are independent pure
functions of their configuration — exactly the shape that farms out over
a worker pool, the same move the paper itself made at the processor
level (Bahi et al. 2003).

The engine guarantees **byte-identical output regardless of execution
strategy**:

* results are merged in *submission order*, never completion order;
* every task's return value is normalised through canonical JSON
  (:func:`~repro.analysis.perf.canonical_json` + ``json.loads``), so the
  in-process, worker-pool and cache-hit paths all yield structurally
  identical payloads (sorted dict keys, tuples as lists, round-tripped
  floats — Python float repr round-trips exactly, so no value changes);
* workers run the *same* task function the serial path runs; parallelism
  never reorders, splits or perturbs a run's RNG streams because each
  run builds its own from the scenario seed.

Consequently a sweep report's ``stable_digest`` is independent of
``jobs`` and of whether any run came from the
:class:`~repro.exec.cache.RunCache` — the contract the ``sweep-smoke``
CI job and ``tests/test_exec_sweeps.py`` pin.

Task functions must be **top-level callables** (picklable by reference)
taking picklable arguments; they return a JSON-serialisable payload.  A
task that raises aborts the sweep (the exception propagates), unless the
task function itself catches and encodes failures in its payload, as
:mod:`repro.guard.soak` does.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.perf import canonical_json
from repro.exec.cache import RunCache

__all__ = ["EngineStats", "SweepEngine", "Task", "default_jobs", "normalise_payload"]


def default_jobs() -> int:
    """Worker count matching the CPUs this process may actually use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def normalise_payload(payload: Any) -> Any:
    """Canonical-JSON round trip: the engine's single result format.

    Raises ``TypeError`` for non-JSON-serialisable payloads — the
    engine's task contract is enforced here, on every path, so a task
    cannot work serially but fail under the pool or the cache.
    """
    import json

    return json.loads(canonical_json(payload))


@dataclass(frozen=True)
class Task:
    """One unit of sweep work.

    ``fn`` must be a top-level function; ``args``/``kwargs`` must be
    picklable.  ``key`` is the cache-key material (any JSON structure
    fully determining the result) — ``None`` marks the task uncacheable.
    ``label`` is used for error messages and metrics only.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    key: Any = None
    label: str = ""


@dataclass
class EngineStats:
    """What one engine did: task counts, cache traffic, utilization.

    ``wall_s`` and ``busy_s`` are real wall-clock quantities — useful
    for ``BENCH_sweeps.json`` and operator output, but **never** part of
    any digested report (that would break byte-reproducibility by
    construction).
    """

    jobs: int = 1
    tasks: int = 0
    hits: int = 0
    misses: int = 0
    wall_s: float = 0.0
    #: Per-worker busy seconds, keyed by worker name ("serial" for the
    #: in-process path, "worker-{pid}" for pool workers).
    busy_s: dict[str, float] = field(default_factory=dict)

    def record_busy(self, worker: str, seconds: float) -> None:
        self.busy_s[worker] = self.busy_s.get(worker, 0.0) + seconds

    def utilization(self) -> dict[str, float]:
        """Busy fraction of the sweep wall-clock, per worker."""
        if self.wall_s <= 0.0:
            return {worker: 0.0 for worker in self.busy_s}
        return {w: busy / self.wall_s for w, busy in sorted(self.busy_s.items())}

    def to_dict(self, *, timing: bool = True) -> dict[str, Any]:
        """JSON form; ``timing=False`` drops every wall-clock field,
        leaving only digest-safe counts."""
        data: dict[str, Any] = {
            "jobs": self.jobs,
            "tasks": self.tasks,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
        }
        if timing:
            data["wall_s"] = self.wall_s
            data["busy_s"] = dict(sorted(self.busy_s.items()))
            data["utilization"] = self.utilization()
        return data

    def export_metrics(self, registry: Any, *, run: str = "") -> None:
        """Scrape into a :class:`~repro.obs.registry.MetricsRegistry`.

        Counter/gauge names follow the repo's ``subsystem.metric``
        convention.  The wall-clock gauges make the registry's digest
        machine-dependent; keep engine metrics out of sidecars whose
        digest CI pins (the experiment harnesses already do).
        """
        registry.counter("exec.tasks", run=run).inc(self.tasks)
        registry.counter("exec.cache_hits", run=run).inc(self.hits)
        registry.counter("exec.cache_misses", run=run).inc(self.misses)
        registry.gauge("exec.jobs", run=run).set(self.jobs)
        registry.gauge("exec.wall_s", run=run).set(self.wall_s)
        for worker, busy in sorted(self.busy_s.items()):
            registry.gauge("exec.worker_busy_s", run=run, worker=worker).set(busy)

    def summary(self) -> str:
        """One operator-facing line (wall-clock; not digest material)."""
        util = self.utilization()
        mean_util = sum(util.values()) / len(util) if util else 0.0
        cache = (
            f"{self.hits} hit(s) / {self.misses} miss(es)"
            if self.hits or self.misses
            else "off"
        )
        return (
            f"sweep engine: {self.tasks} task(s), jobs={self.jobs}, "
            f"cache {cache}, {self.wall_s:.1f}s wall, "
            f"{len(self.busy_s)} worker(s) at {100.0 * mean_util:.0f}% mean busy"
        )


def _invoke(item: tuple[Callable[..., Any], tuple, dict]) -> tuple[str, float, Any]:
    """Pool worker body: run one task, stamp worker identity + busy time."""
    fn, args, kwargs = item
    t0 = time.perf_counter()
    payload = normalise_payload(fn(*args, **kwargs))
    return f"worker-{os.getpid()}", time.perf_counter() - t0, payload


class SweepEngine:
    """Fans independent tasks over a process pool; merges deterministically.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs every task in
        process — the serial fallback path, also taken whenever fewer
        than two tasks actually need computing or the platform cannot
        provide a pool.
    cache:
        Optional :class:`~repro.exec.cache.RunCache`.  Tasks with a
        ``key`` are looked up before any work is scheduled and stored
        after computing.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        (instant workers sharing the parent's imports) and falls back
        to the platform default elsewhere.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: RunCache | None = None,
        start_method: str | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self.stats = EngineStats(jobs=jobs)

    # ------------------------------------------------------------------
    def map(self, tasks: Sequence[Task]) -> list[Any]:
        """Run ``tasks``; return payloads in submission order."""
        t0 = time.perf_counter()
        results: list[Any] = [None] * len(tasks)
        pending: list[tuple[int, Task, str | None]] = []
        for index, task in enumerate(tasks):
            self.stats.tasks += 1
            digest: str | None = None
            if self.cache is not None and task.key is not None:
                digest = self.cache.digest_for(task.key)
                hit, payload = self.cache.get(digest)
                if hit:
                    self.stats.hits += 1
                    results[index] = payload
                    continue
                self.stats.misses += 1
            pending.append((index, task, digest))

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                computed = self._map_pool(pending)
            else:
                computed = self._map_serial(pending)
            for (index, task, digest), payload in zip(pending, computed):
                if self.cache is not None and digest is not None:
                    self.cache.put(digest, task.key, payload)
                results[index] = payload

        self.stats.wall_s += time.perf_counter() - t0
        return results

    def export_metrics(self, registry: Any, *, run: str = "") -> None:
        self.stats.export_metrics(registry, run=run)

    # ------------------------------------------------------------------
    def _map_serial(self, pending: list[tuple[int, Task, str | None]]) -> list[Any]:
        payloads = []
        for _, task, _ in pending:
            t0 = time.perf_counter()
            payloads.append(
                normalise_payload(task.fn(*task.args, **dict(task.kwargs)))
            )
            self.stats.record_busy("serial", time.perf_counter() - t0)
        return payloads

    def _map_pool(self, pending: list[tuple[int, Task, str | None]]) -> list[Any]:
        items = [(task.fn, task.args, dict(task.kwargs)) for _, task, _ in pending]
        try:
            context = multiprocessing.get_context(self.start_method)
            pool = context.Pool(processes=min(self.jobs, len(items)))
        except (OSError, ValueError):  # pragma: no cover - pool unavailable
            return self._map_serial(pending)
        with pool:
            # chunksize=1: sweep tasks are seconds-long simulations, so
            # scheduling overhead is negligible and per-task dispatch
            # keeps the slowest-run tail from serialising behind a chunk.
            stamped = pool.map(_invoke, items, chunksize=1)
        payloads = []
        for worker, busy, payload in stamped:
            self.stats.record_busy(worker, busy)
            payloads.append(payload)
        return payloads
