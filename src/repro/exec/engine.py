"""Deterministic parallel sweep engine.

The paper's results are all *sweeps of independent runs* (Figure 5 is a
strong-scaling sweep, Table 1 a platform sweep, the resilience and soak
harnesses a fault-schedule grid).  Each run already owns its randomness
through :class:`~repro.util.rng.RngTree`, so runs are independent pure
functions of their configuration — exactly the shape that farms out over
a worker pool, the same move the paper itself made at the processor
level (Bahi et al. 2003).

The engine guarantees **byte-identical output regardless of execution
strategy**:

* results are merged in *submission order*, never completion order;
* every task's return value is normalised through canonical JSON
  (:func:`~repro.analysis.perf.canonical_json` + ``json.loads``), so the
  in-process, worker-pool and cache-hit paths all yield structurally
  identical payloads (sorted dict keys, tuples as lists, round-tripped
  floats — Python float repr round-trips exactly, so no value changes);
* workers run the *same* task function the serial path runs; parallelism
  never reorders, splits or perturbs a run's RNG streams because each
  run builds its own from the scenario seed.

Consequently a sweep report's ``stable_digest`` is independent of
``jobs`` and of whether any run came from the
:class:`~repro.exec.cache.RunCache` — the contract the ``sweep-smoke``
CI job and ``tests/test_exec_sweeps.py`` pin.

Task functions must be **top-level callables** (picklable by reference)
taking picklable arguments; they return a JSON-serialisable payload.  A
task that raises aborts the sweep (the exception propagates), unless the
task function itself catches and encodes failures in its payload, as
:mod:`repro.guard.soak` does.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.perf import canonical_json
from repro.exec.cache import RunCache

__all__ = [
    "EngineStats",
    "SweepCancelled",
    "SweepEngine",
    "Task",
    "default_jobs",
    "normalise_payload",
]


class SweepCancelled(RuntimeError):
    """An in-flight :meth:`SweepEngine.map` was cancelled.

    Raised on the mapping thread after :meth:`SweepEngine.cancel` (the
    serve daemon's stall watchdog and kill verb).  The pooled path
    terminates its workers mid-task; the serial path can only observe
    the flag *between* tasks (an in-process simulation is
    uninterruptible).  Either way the engine is reusable afterwards —
    the next :meth:`~SweepEngine.map` starts a fresh pool.
    """


def default_jobs() -> int:
    """Worker count matching the CPUs this process may actually use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def normalise_payload(payload: Any) -> Any:
    """Canonical-JSON round trip: the engine's single result format.

    Raises ``TypeError`` for non-JSON-serialisable payloads — the
    engine's task contract is enforced here, on every path, so a task
    cannot work serially but fail under the pool or the cache.
    """
    import json

    return json.loads(canonical_json(payload))


@dataclass(frozen=True)
class Task:
    """One unit of sweep work.

    ``fn`` must be a top-level function; ``args``/``kwargs`` must be
    picklable.  ``key`` is the cache-key material (any JSON structure
    fully determining the result) — ``None`` marks the task uncacheable.
    ``label`` is used for error messages and metrics only.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    key: Any = None
    label: str = ""


@dataclass
class EngineStats:
    """What one engine did: task counts, cache traffic, utilization.

    ``wall_s`` and ``busy_s`` are real wall-clock quantities — useful
    for ``BENCH_sweeps.json`` and operator output, but **never** part of
    any digested report (that would break byte-reproducibility by
    construction).
    """

    jobs: int = 1
    tasks: int = 0
    hits: int = 0
    misses: int = 0
    #: Pool lifecycle: how many times :meth:`SweepEngine.map` found a
    #: live pool to reuse vs had to start one — the serve daemon's hot
    #: path wants reuse ≫ starts.
    pool_starts: int = 0
    pool_reuse: int = 0
    #: Cache eviction counters (scraped from the engine's ``RunCache``).
    evictions: int = 0
    evicted_bytes: int = 0
    wall_s: float = 0.0
    #: Per-worker busy seconds, keyed by worker name ("serial" for the
    #: in-process path, "worker-{pid}" for pool workers).
    busy_s: dict[str, float] = field(default_factory=dict)

    def record_busy(self, worker: str, seconds: float) -> None:
        self.busy_s[worker] = self.busy_s.get(worker, 0.0) + seconds

    def utilization(self) -> dict[str, float]:
        """Busy fraction of the sweep wall-clock, per worker."""
        if self.wall_s <= 0.0:
            return {worker: 0.0 for worker in self.busy_s}
        return {w: busy / self.wall_s for w, busy in sorted(self.busy_s.items())}

    def to_dict(self, *, timing: bool = True) -> dict[str, Any]:
        """JSON form; ``timing=False`` drops every wall-clock field,
        leaving only digest-safe counts."""
        data: dict[str, Any] = {
            "jobs": self.jobs,
            "tasks": self.tasks,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
            "pool_starts": self.pool_starts,
            "pool_reuse": self.pool_reuse,
        }
        if timing:
            data["wall_s"] = self.wall_s
            data["busy_s"] = dict(sorted(self.busy_s.items()))
            data["utilization"] = self.utilization()
        return data

    def export_metrics(self, registry: Any, *, run: str = "") -> None:
        """Scrape into a :class:`~repro.obs.registry.MetricsRegistry`.

        Counter/gauge names follow the repo's ``subsystem.metric``
        convention.  The wall-clock gauges make the registry's digest
        machine-dependent; keep engine metrics out of sidecars whose
        digest CI pins (the experiment harnesses already do).
        """
        registry.counter("exec.tasks", run=run).inc(self.tasks)
        registry.counter("exec.cache_hits", run=run).inc(self.hits)
        registry.counter("exec.cache_misses", run=run).inc(self.misses)
        registry.counter("exec.cache_evictions", run=run).inc(self.evictions)
        registry.counter("exec.cache_evicted_bytes", run=run).inc(
            self.evicted_bytes
        )
        registry.counter("exec.pool_starts", run=run).inc(self.pool_starts)
        registry.counter("exec.pool_reuse", run=run).inc(self.pool_reuse)
        registry.gauge("exec.jobs", run=run).set(self.jobs)
        registry.gauge("exec.wall_s", run=run).set(self.wall_s)
        for worker, busy in sorted(self.busy_s.items()):
            registry.gauge("exec.worker_busy_s", run=run, worker=worker).set(busy)

    def summary(self) -> str:
        """One operator-facing line (wall-clock; not digest material)."""
        util = self.utilization()
        mean_util = sum(util.values()) / len(util) if util else 0.0
        cache = (
            f"{self.hits} hit(s) / {self.misses} miss(es)"
            if self.hits or self.misses
            else "off"
        )
        return (
            f"sweep engine: {self.tasks} task(s), jobs={self.jobs}, "
            f"cache {cache}, {self.wall_s:.1f}s wall, "
            f"{len(self.busy_s)} worker(s) at {100.0 * mean_util:.0f}% mean busy"
        )


def _invoke(item: tuple[Callable[..., Any], tuple, dict]) -> tuple[str, float, Any]:
    """Pool worker body: run one task, stamp worker identity + busy time."""
    fn, args, kwargs = item
    t0 = time.perf_counter()
    payload = normalise_payload(fn(*args, **kwargs))
    return f"worker-{os.getpid()}", time.perf_counter() - t0, payload


class SweepEngine:
    """Fans independent tasks over a process pool; merges deterministically.

    The pool is **persistent**: the first pooled :meth:`map` starts it
    and successive calls reuse it (``EngineStats.pool_reuse``), so a
    long-running daemon submitting many small sweeps does not pay pool
    setup per sweep.  :meth:`close` (or the context-manager exit) tears
    it down; :meth:`maybe_reap` implements idle teardown for a janitor
    thread; :meth:`cancel` aborts an in-flight map (terminating the
    pool, which the next map transparently restarts).

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs every task in
        process — the serial fallback path, also taken whenever fewer
        than ``min_pool_tasks`` tasks actually need computing or the
        platform cannot provide a pool.
    cache:
        Optional :class:`~repro.exec.cache.RunCache`.  Tasks with a
        ``key`` are looked up before any work is scheduled and stored
        after computing.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        (instant workers sharing the parent's imports) and falls back
        to the platform default elsewhere.
    min_pool_tasks:
        Smallest pending-task count routed through the pool.  The
        default (2) keeps single-task sweeps in process; the serve
        daemon passes 1 so even a one-task job runs in a worker and is
        therefore killable by the stall watchdog.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: RunCache | None = None,
        start_method: str | None = None,
        min_pool_tasks: int = 2,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if min_pool_tasks < 1:
            raise ValueError(
                f"min_pool_tasks must be >= 1, got {min_pool_tasks}"
            )
        self.jobs = jobs
        self.cache = cache
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self.min_pool_tasks = min_pool_tasks
        self.stats = EngineStats(jobs=jobs)
        self._pool: multiprocessing.pool.Pool | None = None
        #: Serialises pool create/teardown against the busy flag, so a
        #: janitor thread reaping an idle pool can never race a map()
        #: that is just acquiring it.
        self._pool_lock = threading.Lock()
        self._cancel = threading.Event()
        self._busy = False
        self.last_used = time.monotonic()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        with self._pool_lock:
            if self._pool is not None:
                self.stats.pool_reuse += 1
                return self._pool
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(processes=self.jobs)
            self.stats.pool_starts += 1
            return self._pool

    def _teardown_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def close(self) -> None:
        """Tear the persistent pool down (idempotent)."""
        self._teardown_pool()

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def cancel(self) -> None:
        """Ask the in-flight (or next) :meth:`map` to abort with
        :class:`SweepCancelled`.

        Safe to call from another thread.  The flag is **sticky**: it
        stays set until :meth:`reset_cancel`, so a cancel landing
        between two maps of a multi-sweep workload still aborts the
        workload at its next map.  Owners that recycle an engine across
        independent workloads (the serve daemon) call
        :meth:`reset_cancel` before starting the next one.
        """
        self._cancel.set()

    def reset_cancel(self) -> None:
        """Re-arm after a handled :class:`SweepCancelled`."""
        self._cancel.clear()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def maybe_reap(self, idle_s: float) -> bool:
        """Tear the pool down if it has sat idle for ``idle_s`` seconds.

        Returns whether a pool was reaped.  Never touches a pool with a
        map in flight — callers poll this from a janitor thread.
        """
        with self._pool_lock:
            if (
                self._pool is None
                or self._busy
                or time.monotonic() - self.last_used < idle_s
            ):
                return False
            pool, self._pool = self._pool, None
        pool.terminate()
        pool.join()
        return True

    # ------------------------------------------------------------------
    def map(self, tasks: Sequence[Task]) -> list[Any]:
        """Run ``tasks``; return payloads in submission order."""
        t0 = time.perf_counter()
        with self._pool_lock:
            self._busy = True
        try:
            if self._cancel.is_set():
                raise SweepCancelled("sweep cancelled before any task ran")
            results = self._map_inner(tasks)
        finally:
            with self._pool_lock:
                self._busy = False
            self.last_used = time.monotonic()
            if self.cache is not None:
                self.stats.evictions = self.cache.evictions
                self.stats.evicted_bytes = self.cache.evicted_bytes
            self.stats.wall_s += time.perf_counter() - t0
        return results

    def _map_inner(self, tasks: Sequence[Task]) -> list[Any]:
        results: list[Any] = [None] * len(tasks)
        pending: list[tuple[int, Task, str | None]] = []
        for index, task in enumerate(tasks):
            self.stats.tasks += 1
            digest: str | None = None
            if self.cache is not None and task.key is not None:
                digest = self.cache.digest_for(task.key)
                hit, payload = self.cache.get(digest)
                if hit:
                    self.stats.hits += 1
                    results[index] = payload
                    continue
                self.stats.misses += 1
            pending.append((index, task, digest))

        if pending:
            if self.jobs > 1 and len(pending) >= self.min_pool_tasks:
                computed = self._map_pool(pending)
            else:
                computed = self._map_serial(pending)
            for (index, task, digest), payload in zip(pending, computed):
                if self.cache is not None and digest is not None:
                    self.cache.put(digest, task.key, payload)
                results[index] = payload
        return results

    def export_metrics(self, registry: Any, *, run: str = "") -> None:
        self.stats.export_metrics(registry, run=run)

    # ------------------------------------------------------------------
    def _map_serial(self, pending: list[tuple[int, Task, str | None]]) -> list[Any]:
        payloads = []
        for _, task, _ in pending:
            if self._cancel.is_set():
                raise SweepCancelled(
                    f"sweep cancelled after {len(payloads)} of "
                    f"{len(pending)} pending task(s)"
                )
            t0 = time.perf_counter()
            payloads.append(
                normalise_payload(task.fn(*task.args, **dict(task.kwargs)))
            )
            self.stats.record_busy("serial", time.perf_counter() - t0)
        return payloads

    def _map_pool(self, pending: list[tuple[int, Task, str | None]]) -> list[Any]:
        items = [(task.fn, task.args, dict(task.kwargs)) for _, task, _ in pending]
        try:
            pool = self._ensure_pool()
        except (OSError, ValueError):  # pragma: no cover - pool unavailable
            return self._map_serial(pending)
        # map_async + polling get() keeps the mapping thread responsive
        # to cancel(): a plain pool.map would block unkillably, and a
        # terminated pool can leave its MapResult unfinished forever.
        async_result = pool.map_async(_invoke, items, chunksize=1)
        while True:
            try:
                stamped = async_result.get(timeout=0.05)
                break
            except multiprocessing.TimeoutError:
                if self._cancel.is_set():
                    self._teardown_pool()
                    raise SweepCancelled(
                        f"sweep cancelled with {len(items)} task(s) in "
                        f"flight; pool terminated"
                    ) from None
        payloads = []
        for worker, busy, payload in stamped:
            self.stats.record_busy(worker, busy)
            payloads.append(payload)
        return payloads
