"""Content-addressed run cache for deterministic sweep tasks.

Every task the sweep engine (:mod:`repro.exec.engine`) runs is a pure
function of its *configuration* — scenario dataclass, fault schedule,
solver/LB knobs, all seeded through :class:`~repro.util.rng.RngTree` —
so its result can be addressed by content: the
:func:`~repro.analysis.perf.stable_digest` of the configuration plus a
code-version salt.  A second invocation of the same sweep then does zero
simulation work (``repro figure5 && repro figure5`` hits the cache for
every run of the second sweep).

Layout
------
``{root}/{digest[:2]}/{digest}.json`` — one small JSON envelope per run::

    {"schema": "repro-exec-cache/1", "digest": ..., "key": ..., "payload": ...}

``key`` is the full cache-key material (kept for debuggability: a cache
entry is self-describing), ``payload`` the task's JSON result.

Invalidation
------------
The digest covers ``{"key": key, "salt": salt}``.  The default salt
(:func:`code_salt`) combines the envelope schema version, the package
version, :data:`CACHE_EPOCH` and :data:`STATE_LAYOUT_REV`; **bump**
:data:`CACHE_EPOCH` whenever a change alters what any cached run would
compute (solver numerics, fault semantics, payload fields) without
changing the scenario dataclasses, and :data:`STATE_LAYOUT_REV` when
the in-memory state layout changes (rank-batched arrays, checkpoint
snapshot format) in a way that could shift float associativity.
Any config change invalidates automatically because the key embeds the
full scenario ``asdict``.

Corruption tolerance
--------------------
A cache read that fails for *any* reason — missing file, truncated or
garbage JSON, wrong schema, foreign digest — is a miss: the engine
recomputes and overwrites the entry.  Writes go through a temp file +
:func:`os.replace`, so a crashed writer never leaves a half-written
entry under the final name; write errors (read-only filesystem, full
disk) are swallowed because the cache is strictly an accelerator.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.analysis.perf import stable_digest

__all__ = [
    "CACHE_EPOCH",
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "STATE_LAYOUT_REV",
    "RunCache",
    "code_salt",
]

CACHE_SCHEMA = "repro-exec-cache/1"

#: Bump when a code change alters cached results without changing any
#: scenario/config field (e.g. a solver numerics fix).
CACHE_EPOCH = 1

#: Revision of the in-memory solver state layout (rank-batched arrays,
#: block tiling, checkpoint snapshot format).  Cached payloads are pure
#: virtual-time results, but a layout change is exactly the kind of
#: refactor that can shift float associativity without touching any
#: scenario field — bump this to invalidate instead of CACHE_EPOCH so
#: the two invalidation axes stay independently auditable.
STATE_LAYOUT_REV = 1

DEFAULT_CACHE_DIR = ".repro-cache"

#: Sentinel distinguishing "miss" from a cached ``None`` payload.
_MISS = object()


def code_salt() -> str:
    """The default code-version salt mixed into every cache digest."""
    from repro import __version__

    return (
        f"{CACHE_SCHEMA}:{__version__}:epoch{CACHE_EPOCH}"
        f":layout{STATE_LAYOUT_REV}"
    )


class RunCache:
    """Content-addressed store of task payloads under ``root``.

    The cache never decides *what* to key a run by — callers pass the
    key material (any JSON-serialisable structure) and the cache hashes
    it together with its salt.  See the module docstring for layout,
    invalidation and corruption semantics.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR, *, salt: str | None = None) -> None:
        self.root = root
        self.salt = salt if salt is not None else code_salt()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunCache(root={self.root!r}, salt={self.salt!r})"

    # ------------------------------------------------------------------
    def digest_for(self, key: Any) -> str:
        """Content address of ``key`` under this cache's salt."""
        return stable_digest({"key": key, "salt": self.salt})

    def path_for(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], f"{digest}.json")

    # ------------------------------------------------------------------
    def get(self, digest: str) -> tuple[bool, Any]:
        """Look ``digest`` up; returns ``(hit, payload)``.

        Every failure mode (missing, truncated, garbage, wrong schema,
        digest mismatch) returns ``(False, None)`` — the caller
        recomputes and the next :meth:`put` overwrites the bad entry.
        """
        try:
            with open(self.path_for(digest), "r", encoding="utf-8") as fh:
                envelope = json.load(fh)
            if envelope["schema"] != CACHE_SCHEMA:
                return False, None
            if envelope["digest"] != digest:
                return False, None
            payload = envelope["payload"]
        except (OSError, ValueError, KeyError, TypeError):
            return False, None
        return True, payload

    def put(self, digest: str, key: Any, payload: Any) -> None:
        """Store ``payload`` under ``digest`` (atomic, best-effort)."""
        path = self.path_for(digest)
        tmp = f"{path}.tmp.{os.getpid()}"
        envelope = {
            "schema": CACHE_SCHEMA,
            "digest": digest,
            "key": key,
            "payload": payload,
        }
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(envelope, fh, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except OSError:  # pragma: no cover - cache is an accelerator only
            try:
                os.unlink(tmp)
            except OSError:
                pass
