"""Content-addressed run cache for deterministic sweep tasks.

Every task the sweep engine (:mod:`repro.exec.engine`) runs is a pure
function of its *configuration* — scenario dataclass, fault schedule,
solver/LB knobs, all seeded through :class:`~repro.util.rng.RngTree` —
so its result can be addressed by content: the
:func:`~repro.analysis.perf.stable_digest` of the configuration plus a
code-version salt.  A second invocation of the same sweep then does zero
simulation work (``repro figure5 && repro figure5`` hits the cache for
every run of the second sweep).

Layout
------
``{root}/{digest[:2]}/{digest}.json`` — one small JSON envelope per run::

    {"schema": "repro-exec-cache/2", "digest": ..., "key": ...,
     "payload": ..., "crc": ...}

``key`` is the full cache-key material (kept for debuggability: a cache
entry is self-describing), ``payload`` the task's JSON result, ``crc``
a CRC32 over the payload's canonical JSON — the at-rest integrity
stamp: a bit-rotted payload reads back as a *miss*, never as a wrong
cached answer.

Invalidation
------------
The digest covers ``{"key": key, "salt": salt}``.  The default salt
(:func:`code_salt`) combines the envelope schema version, the package
version, :data:`CACHE_EPOCH` and :data:`STATE_LAYOUT_REV`; **bump**
:data:`CACHE_EPOCH` whenever a change alters what any cached run would
compute (solver numerics, fault semantics, payload fields) without
changing the scenario dataclasses, and :data:`STATE_LAYOUT_REV` when
the in-memory state layout changes (rank-batched arrays, checkpoint
snapshot format) in a way that could shift float associativity.
Any config change invalidates automatically because the key embeds the
full scenario ``asdict``.

Corruption tolerance
--------------------
A cache read that fails for *any* reason — missing file, truncated or
garbage JSON, wrong schema, foreign digest, payload CRC mismatch — is
a miss: the engine recomputes and overwrites the entry.  Writes go through a temp file +
:func:`os.replace`, so a crashed writer never leaves a half-written
entry under the final name; write errors (read-only filesystem, full
disk) are swallowed because the cache is strictly an accelerator.
Several processes may share one cache root: concurrent writers of the
same digest race benignly (both write valid, identical-payload
envelopes; ``os.replace`` is atomic, so readers see one or the other,
never a mix) — the interleaving contract
``tests/test_exec_cache_concurrent.py`` pins.

Eviction
--------
A long-running daemon (``repro serve``) puts entries forever, so the
cache can optionally cap its on-disk footprint: construct with
``max_bytes`` (CLI: ``--cache-max-mb``) and every :meth:`put` that
pushes the estimated total over the cap evicts least-recently-*used*
entries (file mtime order; :meth:`get` hits refresh an entry's mtime)
until the total fits again.  Eviction is best-effort and tolerant of
concurrent writers/evictors: a file that disappears mid-scan is simply
skipped.  ``evictions`` / ``evicted_bytes`` counters are scraped into
:class:`~repro.exec.engine.EngineStats` and exported through
``EngineStats.export_metrics``.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any

from repro.analysis.perf import stable_digest

__all__ = [
    "CACHE_EPOCH",
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "STATE_LAYOUT_REV",
    "RunCache",
    "code_salt",
]

#: v2 adds the per-entry payload ``crc``.  The schema string is part of
#: :func:`code_salt`, so every v1 entry self-invalidates on upgrade —
#: no migration or mixed-schema reads to handle.
CACHE_SCHEMA = "repro-exec-cache/2"

#: Bump when a code change alters cached results without changing any
#: scenario/config field (e.g. a solver numerics fix).
#: 2: repro.balancing determinism/stability fixes (canonical edge
#:    orientation in edge_colouring, degree-aware diffusion alpha
#:    validation) change any cached result computed through them.
CACHE_EPOCH = 2

#: Revision of the in-memory solver state layout (rank-batched arrays,
#: block tiling, checkpoint snapshot format).  Cached payloads are pure
#: virtual-time results, but a layout change is exactly the kind of
#: refactor that can shift float associativity without touching any
#: scenario field — bump this to invalidate instead of CACHE_EPOCH so
#: the two invalidation axes stay independently auditable.
STATE_LAYOUT_REV = 1

DEFAULT_CACHE_DIR = ".repro-cache"

#: Sentinel distinguishing "miss" from a cached ``None`` payload.
_MISS = object()


def _payload_crc(payload: Any) -> int:
    """CRC32 of a payload's canonical (sorted, compact) JSON bytes."""
    return zlib.crc32(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
    )


def code_salt() -> str:
    """The default code-version salt mixed into every cache digest."""
    from repro import __version__

    return (
        f"{CACHE_SCHEMA}:{__version__}:epoch{CACHE_EPOCH}"
        f":layout{STATE_LAYOUT_REV}"
    )


class RunCache:
    """Content-addressed store of task payloads under ``root``.

    The cache never decides *what* to key a run by — callers pass the
    key material (any JSON-serialisable structure) and the cache hashes
    it together with its salt.  See the module docstring for layout,
    invalidation and corruption semantics.
    """

    def __init__(
        self,
        root: str = DEFAULT_CACHE_DIR,
        *,
        salt: str | None = None,
        max_bytes: int | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.root = root
        self.salt = salt if salt is not None else code_salt()
        self.max_bytes = max_bytes
        #: Lifetime eviction counters (scraped into ``EngineStats``).
        self.evictions = 0
        self.evicted_bytes = 0
        #: Running estimate of the cache footprint, refreshed by a full
        #: scan whenever it crosses ``max_bytes`` (concurrent writers
        #: make any cheap estimate stale; the scan is the truth).
        self._approx_bytes: int | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunCache(root={self.root!r}, salt={self.salt!r}, "
            f"max_bytes={self.max_bytes!r})"
        )

    # ------------------------------------------------------------------
    def digest_for(self, key: Any) -> str:
        """Content address of ``key`` under this cache's salt."""
        return stable_digest({"key": key, "salt": self.salt})

    def path_for(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], f"{digest}.json")

    # ------------------------------------------------------------------
    def get(self, digest: str) -> tuple[bool, Any]:
        """Look ``digest`` up; returns ``(hit, payload)``.

        Every failure mode (missing, truncated, garbage, wrong schema,
        digest mismatch) returns ``(False, None)`` — the caller
        recomputes and the next :meth:`put` overwrites the bad entry.
        """
        path = self.path_for(digest)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                envelope = json.load(fh)
            if envelope["schema"] != CACHE_SCHEMA:
                return False, None
            if envelope["digest"] != digest:
                return False, None
            payload = envelope["payload"]
            if envelope["crc"] != _payload_crc(payload):
                return False, None
        except (OSError, ValueError, KeyError, TypeError):
            return False, None
        if self.max_bytes is not None:
            # Refresh recency so LRU eviction spares hot entries.  Best
            # effort: a concurrent evictor may have removed the file.
            try:
                os.utime(path)
            except OSError:
                pass
        return True, payload

    def put(self, digest: str, key: Any, payload: Any) -> None:
        """Store ``payload`` under ``digest`` (atomic, best-effort)."""
        path = self.path_for(digest)
        tmp = f"{path}.tmp.{os.getpid()}"
        envelope = {
            "schema": CACHE_SCHEMA,
            "digest": digest,
            "key": key,
            "payload": payload,
            "crc": _payload_crc(payload),
        }
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(envelope, fh, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except OSError:  # pragma: no cover - cache is an accelerator only
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        if self.max_bytes is not None:
            self._account_put(path)

    # ------------------------------------------------------------------
    # Size-capped LRU eviction
    # ------------------------------------------------------------------
    def _scan(self) -> list[tuple[float, int, str]]:
        """All entry files as ``(mtime, size, path)``; tolerant of races."""
        entries: list[tuple[float, int, str]] = []
        try:
            shards = os.listdir(self.root)
        except OSError:
            return entries
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            try:
                names = os.listdir(shard_dir)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".json"):
                    continue  # leave foreign files and .tmp writers alone
                path = os.path.join(shard_dir, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue  # concurrently evicted/replaced
                entries.append((st.st_mtime, st.st_size, path))
        return entries

    def _account_put(self, path: str) -> None:
        """Fold one written entry into the footprint estimate; evict if over."""
        try:
            size = os.stat(path).st_size
        except OSError:
            size = 0
        if self._approx_bytes is None:
            self._approx_bytes = sum(s for _, s, _ in self._scan())
        else:
            self._approx_bytes += size
        if self._approx_bytes > (self.max_bytes or 0):
            self._evict(keep=path)

    def _evict(self, *, keep: str | None = None) -> None:
        """Remove least-recently-used entries until under ``max_bytes``.

        ``keep`` (the entry just written) is never evicted — a cap
        smaller than one entry must still serve that entry.  Missing
        files are skipped: concurrent writers and evictors race
        benignly.
        """
        assert self.max_bytes is not None
        entries = sorted(self._scan())  # oldest mtime first
        total = sum(size for _, size, _ in entries)
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and os.path.abspath(path) == os.path.abspath(keep):
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.evictions += 1
            self.evicted_bytes += size
        self._approx_bytes = total
