"""repro.exec — deterministic parallel sweep engine + content-addressed cache.

Turns the repo's sweeps (``repro figure5``, ``table1``, ``resilience``,
``ablations``, ``soak``) from one-simulation-at-a-time loops into a
throughput-oriented harness: independent runs fan out over a
``multiprocessing`` pool and previously computed runs are served from an
on-disk content-addressed cache, with the sweep output byte-identical to
the serial path in every case.  See ``docs/performance.md`` for the
determinism contract and the cache layout.
"""

from repro.exec.cache import (
    CACHE_EPOCH,
    CACHE_SCHEMA,
    DEFAULT_CACHE_DIR,
    RunCache,
    code_salt,
)
from repro.exec.engine import (
    EngineStats,
    SweepCancelled,
    SweepEngine,
    Task,
    default_jobs,
    normalise_payload,
)

__all__ = [
    "CACHE_EPOCH",
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "EngineStats",
    "RunCache",
    "SweepCancelled",
    "SweepEngine",
    "Task",
    "code_salt",
    "default_jobs",
    "normalise_payload",
]
