"""Shared fault-recovery glue for the synchronous execution models.

The synchronous models (SISC/SIAC) *cannot make progress* without every
halo of the current iteration being delivered — unlike AIAC, where any
sufficiently fresh state will do and the next sweep supersedes a lost
message anyway.  Two failure modes need explicit recovery:

* a halo transfer exhausts its retransmission budget (the receiver was
  crashed for longer than the retry window) — the sender must start a
  fresh transfer or the chain deadlocks (:func:`install_halo_resend`);
* a crash rolls the receiver's halo state back to its checkpoint
  *after* the neighbours' halos were delivered and acknowledged — the
  transport owes nothing, the neighbours are parked in their wait
  loops, and nobody will ever send the lost data again.  The recovered
  rank therefore *pulls*: :func:`request_fresh_halos` asks each
  neighbour to re-send its current boundary (receive handlers run
  atomically even while the neighbour's main loop is blocked, exactly
  like a PM2 handler thread).

Both models roll back through
:meth:`repro.core.solver.ChainRun.restore_checkpoint`, which under an
armed detection layer verifies the snapshot's CRC first and falls back
to the last *verified* snapshot (see
:func:`repro.integrity.checkpoint_crc`) — a checkpoint poisoned at rest
is never silently restored, here or in the asynchronous models.  The
halo re-requests below double as the refetch half of reject-and-refetch
when a corrupted halo delivery was discarded by the receive-side
checksum.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.solver import ChainRun, RankContext
    from repro.runtime.message import Message

__all__ = ["install_sync_recovery", "request_fresh_halos"]

_HALO_KINDS = ("halo_from_left", "halo_from_right")

#: Pull-style recovery message: "re-send me your boundary facing me".
HALO_REQUEST_KIND = "halo_request"


def install_sync_recovery(run: "ChainRun") -> None:
    """Wire the synchronous models' recovery hooks on every rank.

    Only meaningful under a fault injector (failure handlers never fire
    and requests are never sent on the lossless fast path).
    """
    for ctx in run.ranks:
        for kind in _HALO_KINDS:
            ctx.node.register_failure_handler(
                kind, _make_resend(run, ctx, kind)
            )
        ctx.node.register_handler(
            HALO_REQUEST_KIND,
            lambda msg, c=ctx: _on_halo_request(run, c, msg),
        )


def request_fresh_halos(run: "ChainRun", ctx: "RankContext") -> None:
    """Ask both neighbours to re-send their current boundary data.

    Called right after a crash-restore: the restored halos may predate
    deliveries the transport already acknowledged, and blocked
    neighbours will not send again on their own.
    """
    for side in ("left", "right"):
        neighbor = run.neighbor(ctx.rank, side)
        if neighbor is not None:
            ctx.node.send(
                neighbor.node,
                HALO_REQUEST_KIND,
                None,
                run.config.header_bytes,
            )


def _on_halo_request(run: "ChainRun", ctx: "RankContext", msg: "Message") -> None:
    side = "right" if msg.src_rank > ctx.rank else "left"
    run.send_halo(
        ctx, side, estimate=ctx.estimator.value(), exclusive=False
    )


def _make_resend(run: "ChainRun", ctx: "RankContext", kind: str):
    """Halo failure handler: re-send until delivered.

    A payload superseded by a newer send on the same channel is *not*
    re-sent: delivering old state with a fresh sequence number would
    defeat the newest-wins stale rejection.
    """

    def resend(message: "Message", delivered: bool) -> None:
        node = ctx.node
        if delivered or node.stop_requested or not node.alive:
            return
        if not node.is_latest_send(message):
            return  # a fresher halo superseded this payload
        dst = run.ranks[message.dst_rank].node
        node.send(dst, message.kind, message.payload, message.size_bytes)

    return resend
