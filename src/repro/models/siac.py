"""SIAC: Synchronous Iterations — Asynchronous Communications (Figure 2).

Boundary data is sent asynchronously as soon as it is updated (the left
boundary mid-sweep, the right at the end), overlapping transfers with
the remaining computation.  A rank still begins iteration ``k+1`` only
once it holds both neighbours' iteration-``k`` data — iterations remain
synchronous *algorithmically* ("at any time it is not possible to have
two processors performing different iterations") but there is no global
barrier, so idle time shrinks compared to SISC without vanishing.
"""

from __future__ import annotations

from typing import Any

from repro.core.config import SolverConfig
from repro.core.records import RunResult
from repro.core.solver import ChainRun, RankContext, build_chain
from repro.des import Wait
from repro.grid.platform import Platform
from repro.models._recovery import install_sync_recovery, request_fresh_halos
from repro.problems.base import Problem
from repro.runtime.tracer import IdleSpan

__all__ = ["run_siac"]


def _siac_process(run: ChainRun, ctx: RankContext):
    sim = run.sim
    node = ctx.node
    while not node.stop_requested:
        # -- crash recovery (no-op on the lossless fast path) --
        if not node.alive:
            yield Wait(node.restart_signal)
            continue
        if node.crash_count != ctx.restored_epoch:
            run.restore_checkpoint(ctx)
            request_fresh_halos(run, ctx)
            continue
        yield from run.sweep(ctx, send_left_mid_sweep=True, exclusive=False)
        if node.stop_requested:
            break
        if not node.alive or node.crash_count != ctx.restored_epoch:
            continue  # the sweep was lost to a crash
        run.send_halo(
            ctx, "right", estimate=ctx.estimator.value(), exclusive=False
        )
        wait_start = sim.now
        k = ctx.iteration
        interrupted = False
        while not node.stop_requested:
            if not node.alive or node.crash_count != ctx.restored_epoch:
                interrupted = True
                break
            need_left = ctx.rank > 0 and ctx.halo_iter_left < k
            need_right = ctx.rank < run.n_ranks - 1 and ctx.halo_iter_right < k
            if not (need_left or need_right):
                break
            yield Wait(ctx.halo_signal)
        if not interrupted and sim.now > wait_start:
            run.tracer.idle(
                IdleSpan(
                    rank=ctx.rank, t0=wait_start, t1=sim.now, reason="siac-wait"
                )
            )


def run_siac(
    problem: Problem,
    platform: Platform,
    config: SolverConfig | None = None,
    *,
    host_order: list[int] | None = None,
    injector: Any = None,
    guard: Any = None,
) -> RunResult:
    """Solve ``problem`` with the SIAC execution model.

    ``injector`` optionally arms a fault injector; halos then re-send on
    permanent transfer failure (synchronous iterations cannot substitute
    fresher data for a lost message the way AIAC can).  ``guard``
    optionally attaches a :class:`~repro.guard.InvariantMonitor`.
    """
    run = build_chain(
        problem, platform, config, model="siac", host_order=host_order
    )
    if injector is not None:
        install_sync_recovery(run)
        injector.install(run)
    if guard is not None:
        guard.attach(run)
    for ctx in run.ranks:
        run.sim.spawn(f"siac-rank-{ctx.rank}", _siac_process(run, ctx))
    run.run()
    return run.result()
