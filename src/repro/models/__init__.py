"""The parallel-iterative execution-model taxonomy (paper Section 1.2).

Three ways to run the same block-relaxation over the same platform:

* :func:`~repro.models.sisc.run_sisc` — Synchronous Iterations,
  Synchronous Communications: everyone exchanges at the end of each
  iteration through a global synchronisation (Figure 1);
* :func:`~repro.models.siac.run_siac` — Synchronous Iterations,
  Asynchronous Communications: boundary data is sent as soon as
  updated, overlapping communication with the rest of the sweep, but a
  rank still waits for its neighbours' previous-iteration data
  (Figure 2);
* :func:`~repro.models.aiac.run_aiac_model` — Asynchronous Iterations,
  Asynchronous Communications: no waiting at all (Figures 3/4); thin
  wrapper over :func:`repro.core.solver.run_aiac` selecting the eager
  (Figure 3) or mutual-exclusion (Figure 4) variant.

All three share the chain machinery of :mod:`repro.core.solver`, so
timing differences come only from the synchronisation semantics.

:func:`~repro.models.lockstep.run_sisc_batched` is a rank-batched
replay of the SISC model — bit-identical results, orders of magnitude
fewer dispatched events — used by the scale benchmarks and the
``--scale`` experiment presets.
"""

from repro.models.sisc import run_sisc
from repro.models.siac import run_siac
from repro.models.aiac import run_aiac_model
from repro.models.lockstep import run_sisc_batched

__all__ = ["run_sisc", "run_siac", "run_aiac_model", "run_sisc_batched"]
