"""AIAC model wrappers (Figures 3 and 4).

The AIAC solver itself lives in :mod:`repro.core.solver`; this module
exposes it under the taxonomy's naming with the two communication
variants the paper depicts:

* ``variant="eager"`` — the general AIAC of Figure 3: every sweep sends
  both boundary messages unconditionally;
* ``variant="exclusive"`` — the paper's implementation (Figure 4):
  a boundary send is suppressed while the previous one on that channel
  is still in flight, "which generates less communications".
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.core.config import SolverConfig
from repro.core.records import RunResult
from repro.core.solver import run_aiac
from repro.grid.platform import Platform
from repro.problems.base import Problem

__all__ = ["run_aiac_model"]


def run_aiac_model(
    problem: Problem,
    platform: Platform,
    config: SolverConfig | None = None,
    *,
    variant: str = "exclusive",
    host_order: list[int] | None = None,
    injector: Any = None,
    guard: Any = None,
) -> RunResult:
    """Solve ``problem`` with the AIAC model in the requested variant.

    ``injector`` / ``guard`` are forwarded to
    :func:`repro.core.solver.run_aiac` (fault injection and runtime
    safety invariants respectively).
    """
    if variant not in ("eager", "exclusive"):
        raise ValueError(f"variant must be 'eager' or 'exclusive', got {variant!r}")
    config = config if config is not None else SolverConfig()
    config = replace(config, exclusive_sends=(variant == "exclusive"))
    result = run_aiac(
        problem,
        platform,
        config,
        host_order=host_order,
        injector=injector,
        guard=guard,
    )
    result.meta["variant"] = variant
    return result
