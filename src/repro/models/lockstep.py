"""Rank-batched lockstep replay of the SISC execution model.

:func:`run_sisc_batched` produces results *bit-identical* to
:func:`repro.models.sisc.run_sisc` on the fault-free oracle-detection
path, but replaces the per-rank DES processes with one vectorised
"round" per global iteration: SISC is globally synchronous, so every
rank starts iteration ``k`` at the same barrier-open time ``T_k`` and
the whole round — sweep timings, halo arrivals, barrier release, idle
spans, convergence votes — is a closed-form function of the per-rank
sweep durations.  One ``numpy`` pass per round replaces thousands of
event dispatches, which is what lets the simulator reach 10k ranks
(see ``benchmarks/bench_scale.py``).

Equivalence is enforced, not assumed:

* the problem must supply a :meth:`~repro.problems.base.Problem.
  batched_chain_sweeper` whose per-block numerics are bit-identical to
  per-rank ``iterate`` calls (the synthetic problem's global Jacobi
  update is proven so; differential tests pin fingerprints);
* event ordering — including ``(time, seq)`` ties — is replayed through
  collapsed dispatch keys that are order-isomorphic to the reference
  scheduler's sequence numbers, so record lists, trigger ranks and the
  dispatched-event count match the reference exactly;
* anything the replay cannot express (token-ring detection, fault
  injection via ``run_sisc``'s ``injector``, problems without a batched
  sweeper, empty blocks) falls back to the reference implementation —
  *observably*: the reason is logged and exported as the
  ``lockstep.fallback_reason`` metric (see :func:`run_sisc_batched`).

All four bundled PDE-style problems batch: the synthetic contraction,
the Brusselator (including its adaptive-skip and optimistic-
verification machinery) and the linear heat / advection–diffusion
relaxations each provide a ``batched_chain_sweeper`` built on
:class:`repro.problems.chain_sweeper.TrajectoryChainSweeper` /
:class:`repro.numerics.ragged.ChainSegments`.

The engine is memory-lean by construction: no per-rank GridNode /
Process / generator objects — per-rank state is a handful of numpy
arrays plus the sweeper's single global state vector.
"""

from __future__ import annotations

import copy
import logging
import math
from typing import Any

import numpy as np

from repro.core.config import SolverConfig
from repro.core.partition import PartitionRegistry
from repro.core.records import RunResult
from repro.grid.platform import Platform
from repro.grid.traces import ConstantTrace
from repro.problems.base import Problem
from repro.runtime.tracer import (
    IdleSpan,
    IterationSpan,
    MessageRecord,
    ResidualRecord,
    Tracer,
)

__all__ = ["run_sisc_batched"]

logger = logging.getLogger(__name__)

#: FIFO spacing used by :meth:`repro.grid.network.Network.arrival_time`.
_FIFO_EPSILON = 1e-9

#: Root ancestor for collapsed dispatch keys: compares below every real
#: event key (virtual times are >= 0), standing in for "pushed before
#: anything else this round".
_D_ROOT = (-1.0, ())


def _repeat_add(acc: float, x: float, count: int) -> float:
    """``count`` sequential ``acc += x`` steps, matching IEEE order.

    When ``x`` and ``acc`` are integer-valued and the result stays below
    2**53 every intermediate sum is exact, so multiplication gives the
    same float; otherwise fall back to the literal loop (repeated
    addition and multiplication differ in general).
    """
    if count <= 0:
        return acc
    total = acc + x * count
    if float(x).is_integer() and float(acc).is_integer() and abs(total) <= 2**53:
        return total
    for _ in range(count):
        acc += x
    return acc


def _constant_rate(host: Any) -> float | None:
    """Effective work rate if the host's availability is constant."""
    if isinstance(host.trace, ConstantTrace):
        return host.speed * host.trace.value(0.0)
    return None


def _constant_transfer(link: Any, nbytes: float) -> float | None:
    """Per-message transfer time if the link's traces are constant."""
    if isinstance(link.latency_trace, ConstantTrace) and isinstance(
        link.bandwidth_trace, ConstantTrace
    ):
        return link.transfer_time(nbytes, 0.0)
    return None


def _fall_back(
    reason: str,
    metrics: Any,
    problem: Problem,
    platform: Platform,
    config: SolverConfig,
    host_order: list[int],
    guard: Any,
) -> RunResult:
    """Run the reference engine, making the degradation observable.

    The fallback is 10-50x slower than the replay at scale, so it must
    never be silent: the reason is logged and, when the caller passes a
    :class:`repro.obs.MetricsRegistry`, counted under
    ``lockstep.fallback_reason``.  Only side channels are touched — the
    returned :class:`~repro.core.records.RunResult` (meta included) is
    exactly what ``run_sisc`` produces, so fingerprints are unaffected.
    """
    logger.info(
        "lockstep replay unavailable for problem %r (%s); "
        "falling back to the event-driven engine",
        problem.name,
        reason,
    )
    if metrics is not None:
        metrics.counter(
            "lockstep.fallback_reason", reason=reason, problem=problem.name
        ).inc()
    from repro.models.sisc import run_sisc

    return run_sisc(
        problem, platform, config, host_order=host_order, guard=guard
    )


def run_sisc_batched(
    problem: Problem,
    platform: Platform,
    config: SolverConfig | None = None,
    *,
    host_order: list[int] | None = None,
    guard: Any = None,
    metrics: Any = None,
) -> RunResult:
    """SISC via lockstep round replay; bit-identical to ``run_sisc``.

    Falls back to the reference event-driven implementation whenever
    the replay's preconditions do not hold (non-oracle detection, no
    batched sweeper, empty blocks) or the guard's divergence watchdog
    would have rolled a rank back (the replay has no rollback).  Every
    fallback is observable: the reason is logged on the
    ``repro.models.lockstep`` logger and counted on ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`, optional) as
    ``lockstep.fallback_reason{reason=..., problem=...}``.
    ``guard`` accepts a :class:`repro.guard.InvariantMonitor`; its
    conservation checks and halt verification run natively against the
    batched state at the reference cadence.
    """
    config = config if config is not None else SolverConfig()
    n_ranks = len(platform.hosts)
    if host_order is None:
        host_order = list(range(n_ranks))
    if sorted(host_order) != list(range(n_ranks)):
        raise ValueError(
            f"host_order must be a permutation of 0..{n_ranks - 1}, "
            f"got {host_order!r}"
        )
    partition = PartitionRegistry(problem.n_components, n_ranks)
    blocks = [partition.block(rank) for rank in range(n_ranks)]
    reason = None
    if config.detection != "oracle":
        reason = f"detection:{config.detection}"
    elif not all(hi > lo for lo, hi in blocks):
        reason = "empty_block"
    elif guard is not None and guard.config.stall_horizon is not None:
        # The stall watchdog schedules its own periodic DES events;
        # the replay cannot express them.
        reason = "guard:stall_horizon"
    elif (sweeper := problem.batched_chain_sweeper(blocks)) is None:
        reason = "no_batched_sweeper"
    if reason is not None:
        return _fall_back(
            reason, metrics, problem, platform, config, host_order, guard
        )
    engine = _LockstepEngine(
        problem, platform, config, host_order, partition, blocks, sweeper, guard
    )
    result = engine.run()
    if result is None:
        # Divergence rollback would have fired: replay cannot express it.
        return _fall_back(
            "divergence_watchdog",
            metrics,
            problem,
            platform,
            config,
            host_order,
            guard,
        )
    return result


class _LockstepEngine:
    """One SISC run as a sequence of vectorised rounds."""

    def __init__(
        self,
        problem: Problem,
        platform: Platform,
        config: SolverConfig,
        host_order: list[int],
        partition: PartitionRegistry,
        blocks: list[tuple[int, int]],
        sweeper: Any,
        guard: Any,
    ) -> None:
        self.problem = problem
        # Same isolation contract as ChainRun: private platform copy,
        # clean network state.
        self.platform = copy.deepcopy(platform)
        self.platform.network.reset()
        self.config = config
        self.host_order = host_order
        self.partition = partition
        self.blocks = blocks
        self.sweeper = sweeper
        self.guard = guard
        self.n = len(blocks)
        self.hosts = [self.platform.hosts[host_order[r]] for r in range(self.n)]
        self.tracer = Tracer(enabled=config.trace)
        self.nbytes = problem.halo_nbytes() + config.header_bytes
        network = self.platform.network
        # Per-directed-channel links and (when constant) transfer times.
        self._links_left = [None] + [
            network.link_for(self.hosts[r], self.hosts[r - 1])
            for r in range(1, self.n)
        ]
        self._links_right = [
            network.link_for(self.hosts[r], self.hosts[r + 1])
            for r in range(self.n - 1)
        ] + [None]
        tl = [
            _constant_transfer(link, self.nbytes) if link else 0.0
            for link in self._links_left
        ]
        tr = [
            _constant_transfer(link, self.nbytes) if link else 0.0
            for link in self._links_right
        ]
        self._const_links = all(t is not None for t in tl + tr)
        self._tl = np.array([t if t is not None else 0.0 for t in tl])
        self._tr = np.array([t if t is not None else 0.0 for t in tr])
        rates = [_constant_rate(h) for h in self.hosts]
        self._const_hosts = all(r is not None for r in rates)
        self._rates = np.array([r if r is not None else 1.0 for r in rates])
        # Mutable run state ------------------------------------------------
        self.T = 0.0
        self.pos0 = np.arange(self.n)  # round-start scheduling order
        self.streak = np.zeros(self.n, dtype=np.int64)
        self.busy = np.zeros(self.n)
        self.idle_acc = np.zeros(self.n)
        self.iter_counts = np.zeros(self.n, dtype=np.int64)
        self.residual_at = np.full(self.n, float("inf"))
        self.last_left = np.full(self.n, -float("inf"))  # FIFO r -> r-1
        self.last_right = np.full(self.n, -float("inf"))  # FIFO r -> r+1
        self.n_dispatched = self.n  # the n spawn steps at t = 0
        self.now = 0.0
        self.converged = False
        self.convergence_time: float | None = None
        self.aborted_reason: str | None = None
        self._msg_counts = {"halo_from_right": 0, "halo_from_left": 0}
        self._msg_bytes = {"halo_from_right": 0.0, "halo_from_left": 0.0}
        # Guard mirror state (divergence watchdog).
        self._g_best = np.full(self.n, float("inf"))
        self._g_streak = np.zeros(self.n, dtype=np.int64)
        self._g_diverged = False

    # ------------------------------------------------------------------
    # Per-round timings
    # ------------------------------------------------------------------
    def _durations(self, work: np.ndarray) -> np.ndarray:
        if self._const_hosts:
            d = work / self._rates
        else:
            d = np.array(
                [
                    self.hosts[r].duration_for_work(float(work[r]), self.T)
                    for r in range(self.n)
                ]
            )
        return np.maximum(d, self.config.min_sweep_duration)

    def _transfers(self, t_se: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Raw (unclamped) transfer times for left/right sends this round."""
        if self._const_links:
            return self._tl, self._tr
        tl = np.zeros(self.n)
        tr = np.zeros(self.n)
        for r in range(1, self.n):
            tl[r] = self._links_left[r].transfer_time(self.nbytes, float(t_se[r]))
        for r in range(self.n - 1):
            tr[r] = self._links_right[r].transfer_time(
                self.nbytes, float(t_se[r])
            )
        return tl, tr

    # ------------------------------------------------------------------
    # Guard hooks (InvariantMonitor compatibility, lockstep-native)
    # ------------------------------------------------------------------
    def _guard_conservation(self) -> None:
        from repro.guard.invariants import InvariantViolation

        counts = self.sweeper.component_counts()
        cursor = 0
        for rank, (lo, hi) in enumerate(self.blocks):
            reg = self.partition.block(rank)
            if reg != (lo, hi):
                raise InvariantViolation(
                    f"invariant violated at t={self.now:.6g}: rank {rank} "
                    f"block {(lo, hi)} disagrees with registry {reg}"
                )
            if int(counts[rank]) != hi - lo:
                raise InvariantViolation(
                    f"invariant violated at t={self.now:.6g}: rank {rank} "
                    f"holds {int(counts[rank])} components but owns "
                    f"[{lo}, {hi})"
                )
            if lo != cursor:
                raise InvariantViolation(
                    f"invariant violated at t={self.now:.6g}: component(s) "
                    f"lost or duplicated at index {min(lo, cursor)}"
                )
            cursor = hi
        if cursor != self.problem.n_components:
            raise InvariantViolation(
                f"invariant violated at t={self.now:.6g}: coverage ends at "
                f"{cursor}, expected {self.problem.n_components} components"
            )

    def _guard_events(self, events: int) -> None:
        """Advance the guard's event counter at the reference cadence."""
        guard = self.guard
        if guard is None:
            return
        before = guard.events_seen
        guard.events_seen = before + events
        every = guard.config.check_every
        checks = guard.events_seen // every - before // every
        if checks:
            guard.checks_run += checks
            self._guard_conservation()

    def _guard_divergence(self, residual: np.ndarray, idx: np.ndarray) -> bool:
        """Mirror the divergence watchdog for ranks ``idx`` this round.

        Detection only — the replay has no rollback; on detection the
        caller abandons the replay and reruns the reference engine,
        whose own :class:`~repro.guard.watchdogs.DivergenceGuard`
        performs the actual rollback.
        """
        guard = self.guard
        if guard is None:
            return False
        cfg = guard.config
        res = residual[idx]
        best = self._g_best[idx]
        finite = np.isfinite(res)
        improved = finite & (res < best)
        floor = np.maximum(best, self.config.tolerance)
        blowup = ~finite | (
            np.isfinite(best) & (res > floor * cfg.divergence_factor)
        )
        blowup &= ~improved
        self._g_best[idx] = np.where(improved, res, best)
        self._g_streak[idx[improved]] = 0
        self._g_streak[idx[blowup]] += 1
        if np.any(~finite) or np.any(
            self._g_streak[idx] >= cfg.divergence_patience
        ):
            self._g_diverged = True
        return self._g_diverged

    def _guard_verify_halt(self) -> dict[str, Any]:
        """Native halt verification; installed as ``guard.verify_halt``.

        Same contract as :meth:`repro.guard.InvariantMonitor.
        verify_halt`: re-check conservation on the final batched state,
        recompute the true global residual, raise on a premature halt.
        """
        guard = self.guard
        assert guard is not None
        from repro.guard.invariants import InvariantViolation

        self._guard_conservation()
        guard.checks_run += 1
        residual = self.sweeper.probe_residual()
        tolerance = self.config.tolerance
        slack = guard.config.halt_slack
        verdict = {
            "declared_converged": bool(self.converged),
            "true_residual": residual,
            "tolerance": tolerance,
            "halt_slack": slack,
        }
        guard.halt_verdict = verdict
        if self.converged and not residual <= tolerance * slack:
            raise InvariantViolation(
                f"invariant violated at t={self.now:.6g}: premature "
                f"termination: convergence was declared but the true global "
                f"residual is {residual:.6e} (tolerance {tolerance:.1e}, "
                f"slack x{slack:g})"
            )
        return verdict

    def _guard_reset(self) -> None:
        """Undo mirror bookkeeping before falling back to the reference."""
        guard = self.guard
        if guard is not None:
            guard.events_seen = 0
            guard.checks_run = 0
            guard.halt_verdict = None
            guard._lockstep_verify = None

    # ------------------------------------------------------------------
    # Collapsed dispatch keys
    #
    # The reference scheduler orders events by ``(time, push_seq)``.
    # Within one round the push tree is known: mids are pushed at round
    # start in ``pos0`` order, each end by its mid, each delivery by its
    # sender's end (left send first, then right), each wait-resume by
    # the delivery that triggered it.  Nested tuples of the form
    # ``(time, (parent_key, push_index))`` compare exactly like the
    # reference ``(time, seq)`` pairs for any two same-round events, so
    # they resolve exact float ties without simulating.
    # ------------------------------------------------------------------
    @staticmethod
    def _key_mid(r: int, t_mid: np.ndarray, pos0: np.ndarray) -> tuple:
        return (float(t_mid[r]), (_D_ROOT, int(pos0[r])))

    @classmethod
    def _key_end(
        cls, r: int, t_mid: np.ndarray, t_se: np.ndarray, pos0: np.ndarray
    ) -> tuple:
        return (float(t_se[r]), (cls._key_mid(r, t_mid, pos0), 0))

    @classmethod
    def _key_send(
        cls,
        r: int,
        side: str,
        arr: float,
        t_mid: np.ndarray,
        t_se: np.ndarray,
        pos0: np.ndarray,
    ) -> tuple:
        # Push index inside r's end event: the left send is scheduled
        # first, then the right send (rank 0 only sends right).
        idx = 0 if side == "left" or r == 0 else 1
        return (float(arr), (cls._key_end(r, t_mid, t_se, pos0), idx))

    # ------------------------------------------------------------------
    # Convergence / abort scan
    # ------------------------------------------------------------------
    def _stop_scan(
        self, k: int, residual: np.ndarray, order_end: np.ndarray
    ) -> tuple[int | None, int | None, int | None, np.ndarray]:
        """First end-dispatch position at which the run stops, if any.

        The supervisor trips at the first report where every rank is
        satisfied — ranks reporting earlier this round by their *new*
        streak, ranks reporting later by their previous one.  The
        ``max_iterations`` abort fires inside the first end event of
        the round (every rank's check would, but the first one stops
        the simulator).
        """
        cfg = self.config
        n = self.n
        streak_new = np.where(
            residual < cfg.tolerance, self.streak + 1, 0
        ).astype(np.int64)
        new_sat = (streak_new >= cfg.persistence)[order_end]
        old_sat = (self.streak >= cfg.persistence)[order_end]
        pref = np.logical_and.accumulate(new_sat)
        suffix_after = np.empty(n, dtype=bool)
        suffix_after[-1] = True
        if n > 1:
            suffix_after[:-1] = np.logical_and.accumulate(old_sat[::-1])[::-1][1:]
        cand = pref & suffix_after
        trigger_pos = int(np.argmax(cand)) if bool(cand.any()) else None
        abort_pos = 0 if (k + 1) >= cfg.max_iterations else None
        positions = [p for p in (trigger_pos, abort_pos) if p is not None]
        stop_pos = min(positions) if positions else None
        return stop_pos, trigger_pos, abort_pos, streak_new

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> RunResult | None:
        """Replay the run round by round; ``None`` => fall back."""
        n = self.n
        cfg = self.config
        horizon = cfg.max_time
        neg_inf = -float("inf")
        all_ranks = np.arange(n)
        # The monitor sits in the profiler slot and sees every event,
        # including the n spawn steps at t = 0.
        self._guard_events(n)
        k = 0
        while True:
            T = self.T
            pos0 = self.pos0
            residual, work = self.sweeper.sweep()
            residual = np.asarray(residual, dtype=float)
            work = np.asarray(work, dtype=float)
            d = self._durations(work)
            first = d * cfg.overlap_split
            t_mid = T + first
            t_se = t_mid + (d - first)
            # Dispatch order of mid / end events.  Both lexsorts are
            # exact: mids are pushed at T in pos0 order (equal t_mid
            # resolves by push sequence = pos0), and each end is pushed
            # by its own mid (equal t_se resolves by mid dispatch
            # order).
            order_mid = np.lexsort((pos0, t_mid))
            mid_pos = np.empty(n, dtype=np.int64)
            mid_pos[order_mid] = np.arange(n)
            order_end = np.lexsort((mid_pos, t_se))

            stop_pos, trigger_pos, abort_pos, streak_new = self._stop_scan(
                k, residual, order_end
            )
            if stop_pos is not None:
                t_stop = float(t_se[order_end[stop_pos]])
                if horizon is None or t_stop <= horizon:
                    return self._finish_stop(
                        k,
                        residual,
                        work,
                        t_mid,
                        t_se,
                        pos0,
                        order_end,
                        trigger_pos,
                        abort_pos,
                        stop_pos,
                    )

            # Raw arrival times of this round's 2(n-1) halo sends
            # (FIFO-clamped against the previous round's arrivals).
            tl, tr = self._transfers(t_se)
            arr_l = np.full(n, neg_inf)  # r's send to r-1
            arr_r = np.full(n, neg_inf)  # r's send to r+1
            if n > 1:
                arr_l[1:] = np.maximum(
                    t_se[1:] + tl[1:], self.last_left[1:] + _FIFO_EPSILON
                )
                arr_r[:-1] = np.maximum(
                    t_se[:-1] + tr[:-1], self.last_right[:-1] + _FIFO_EPSILON
                )
            # Inbound arrivals per receiver, and "late" = the delivery
            # dispatches after the receiver's end event (the receiver
            # must block for it).
            in_l = np.full(n, neg_inf)
            in_r = np.full(n, neg_inf)
            if n > 1:
                in_l[1:] = arr_r[:-1]
                in_r[:-1] = arr_l[1:]
            late_l = in_l > t_se
            late_r = in_r > t_se
            # An exact arrival/end tie resolves by dispatch key.  With
            # the times equal, ``_key_send(s, ...) > _key_end(r, ...)``
            # collapses to comparing the sender's end key against the
            # receiver's mid key, which is decided by their times —
            # and on *that* tie the sender's end wins, because its key
            # nests one level deeper than the receiver's mid
            # (``_key_mid``'s parent is ``_D_ROOT``, which loses to any
            # real event key).  Hence: late iff t_se[s] >= t_mid[r].
            if n > 1:
                late_l[1:] |= (in_l[1:] == t_se[1:]) & (
                    t_se[:-1] >= t_mid[1:]
                )
                late_r[:-1] |= (in_r[:-1] == t_se[:-1]) & (
                    t_se[1:] >= t_mid[:-1]
                )
            A = np.maximum(
                t_se,
                np.maximum(
                    np.where(late_l, in_l, neg_inf),
                    np.where(late_r, in_r, neg_inf),
                ),
            )
            T_next = float(A.max())
            if horizon is not None and T_next > horizon:
                return self._finish_horizon(
                    k, residual, work, t_mid, t_se, pos0, order_end,
                    arr_l, arr_r, late_l, late_r,
                )

            # ---- commit this complete round --------------------------
            if self._guard_divergence(residual, all_ranks):
                self._guard_reset()
                return None
            net = self.platform.network
            if n > 1:
                self.last_left[1:] = arr_l[1:]
                self.last_right[:-1] = arr_r[:-1]
                net.bytes_sent = _repeat_add(
                    net.bytes_sent, self.nbytes, 2 * (n - 1)
                )
                net.messages_sent += 2 * (n - 1)
                for kind in ("halo_from_right", "halo_from_left"):
                    self._msg_counts[kind] += n - 1
                    self._msg_bytes[kind] = _repeat_add(
                        self._msg_bytes[kind], self.nbytes, n - 1
                    )
            # NB: the tracer accumulates ``busy + t1 - t0`` left to
            # right; replicate that association bitwise.
            self.busy = (self.busy + t_se) - T
            self.iter_counts += 1
            self.residual_at[:] = residual
            self.streak = streak_new

            # Barrier arrival order (= dispatch order of each rank's
            # arrival event: its own end, or its final wait-resume).
            # The nested dispatch keys flatten to fixed-width rows of
            # scalars that one ``np.lexsort`` orders exactly like the
            # tuple comparison would — hot at scale, where a
            # homogeneous cluster ties every rank every round:
            #
            #   no late halo:  (t_se, t_mid,  -1.0,    -1.0,    pos0,    0)
            #     = key_end(r) flattened; note A == t_se here.
            #   late halo:     (A,    arr*, t_se[s*], t_mid[s*], pos0[s*], idx*)
            #     = (A[r], (d_star, 0)) flattened, s*/arr*/idx* the
            #       governing delivery's sender, arrival and push index.
            #
            # Cross-shape comparisons always resolve by column 2
            # (-1.0 < any real t_se), exactly as ``_D_ROOT`` loses to
            # any real event key inside the nested form; trailing pads
            # are reached only against another no-late row, where they
            # are equal and pos0 (a permutation) decides.
            sL = np.maximum(all_ranks - 1, 0)  # sender of r's left-in halo
            sR = np.minimum(all_ranks + 1, n - 1)  # sender of right-in halo
            Lf2, Lf3, Li0 = t_se[sL], t_mid[sL], pos0[sL]
            Rf2, Rf3, Ri0 = t_se[sR], t_mid[sR], pos0[sR]
            Li1 = (sL != 0).astype(np.int64)  # right send: idx 1 unless rank 0
            Ri1 = np.zeros(n, dtype=np.int64)  # left send is pushed first
            # Both halos late: the governing delivery is the later one
            # — or, at the same arrival instant, the *earlier-keyed*
            # one (its resume dispatches after both halos are in).
            # Senders r-1 and r+1 are distinct ranks, so pos0 breaks
            # any remaining tie before the push index could matter.
            L_lt_R = (
                (Lf2 < Rf2)
                | ((Lf2 == Rf2) & (Lf3 < Rf3))
                | ((Lf2 == Rf2) & (Lf3 == Rf3) & (Li0 < Ri0))
            )
            use_L = np.where(in_l == in_r, L_lt_R, in_l > in_r)
            use_L = np.where(late_l & late_r, use_L, late_l)
            has_late = late_l | late_r
            f1 = np.where(has_late, np.where(use_L, in_l, in_r), t_mid)
            f2 = np.where(has_late, np.where(use_L, Lf2, Rf2), -1.0)
            f3 = np.where(has_late, np.where(use_L, Lf3, Rf3), -1.0)
            i0 = np.where(has_late, np.where(use_L, Li0, Ri0), pos0)
            i1 = np.where(has_late, np.where(use_L, Li1, Ri1), 0)
            order_arr = np.lexsort((i1, i0, f3, f2, f1, A))
            releaser = int(order_arr[-1])

            # Dispatched-event count for the round: n mids + n ends +
            # 2(n-1) deliveries + wait-resumes + (n-1) barrier resumes.
            n_late = late_l.astype(np.int64) + late_r.astype(np.int64)
            both_same = late_l & late_r & (in_l == in_r)
            wait_resumes = int(
                np.where(
                    n_late == 0, 0, np.where((n_late == 1) | both_same, 1, 2)
                ).sum()
            )
            events = 2 * n + 2 * (n - 1) + wait_resumes + (n - 1)
            self.n_dispatched += events
            self._guard_events(events)

            strict = T_next > t_se
            self.idle_acc[strict] = (self.idle_acc[strict] + T_next) - t_se[
                strict
            ]

            if self.tracer.enabled:
                tr_ = self.tracer
                for r in order_end:
                    r = int(r)
                    tr_.iterations.append(
                        IterationSpan(
                            rank=r,
                            iteration=k + 1,
                            t0=T,
                            t1=float(t_se[r]),
                            work=float(work[r]),
                        )
                    )
                    tr_.residuals.append(
                        ResidualRecord(
                            rank=r,
                            iteration=k + 1,
                            time=float(t_se[r]),
                            residual=float(residual[r]),
                            n_local=self.blocks[r][1] - self.blocks[r][0],
                        )
                    )
                    if r > 0:
                        tr_.messages.append(
                            MessageRecord(
                                kind="halo_from_right",
                                src_rank=r,
                                dst_rank=r - 1,
                                size_bytes=self.nbytes,
                                send_time=float(t_se[r]),
                                arrival_time=float(arr_l[r]),
                            )
                        )
                    if r < n - 1:
                        tr_.messages.append(
                            MessageRecord(
                                kind="halo_from_left",
                                src_rank=r,
                                dst_rank=r + 1,
                                size_bytes=self.nbytes,
                                send_time=float(t_se[r]),
                                arrival_time=float(arr_r[r]),
                            )
                        )
                if T_next > t_se[releaser]:
                    tr_.idles.append(
                        IdleSpan(
                            rank=releaser,
                            t0=float(t_se[releaser]),
                            t1=T_next,
                            reason="sisc-sync",
                        )
                    )
                for x in order_arr[:-1]:
                    x = int(x)
                    if T_next > t_se[x]:
                        tr_.idles.append(
                            IdleSpan(
                                rank=x,
                                t0=float(t_se[x]),
                                t1=T_next,
                                reason="sisc-sync",
                            )
                        )

            # Next round: the releaser restarts inline, the waiters
            # resume in arrival order — that is the push order of the
            # next round's mid events.
            new_pos0 = np.empty(n, dtype=np.int64)
            new_pos0[releaser] = 0
            if n > 1:
                new_pos0[order_arr[:-1]] = np.arange(1, n)
            self.pos0 = new_pos0
            self.T = T_next
            self.now = T_next
            k += 1

    # ------------------------------------------------------------------
    # Truncated final rounds
    # ------------------------------------------------------------------
    def _finish_stop(
        self,
        k: int,
        residual: np.ndarray,
        work: np.ndarray,
        t_mid: np.ndarray,
        t_se: np.ndarray,
        pos0: np.ndarray,
        order_end: np.ndarray,
        trigger_pos: int | None,
        abort_pos: int | None,
        stop_pos: int,
    ) -> RunResult | None:
        """The round in which the supervisor (or the abort) stops the sim.

        The stopping rank's end event is the last dispatched event:
        ends at positions ``<= stop_pos`` complete their accounting,
        positions ``< stop_pos`` also send their halos (the stop rank
        breaks before sending), and everything else in the queue —
        later ends, undelivered halos, pending mids — is abandoned.
        """
        n = self.n
        cfg = self.config
        T = self.T
        acc = order_end[: stop_pos + 1].astype(np.int64)
        if self._guard_divergence(residual, acc):
            self._guard_reset()
            return None
        stop_rank = int(order_end[stop_pos])
        t_stop = float(t_se[stop_rank])
        senders = [int(r) for r in order_end[:stop_pos]]

        self.busy[acc] = (self.busy[acc] + t_se[acc]) - T
        self.iter_counts[acc] += 1
        self.residual_at[acc] = residual[acc]
        if trigger_pos is not None and stop_pos == trigger_pos:
            self.converged = True
            self.convergence_time = t_stop
        if abort_pos is not None and stop_pos == abort_pos:
            self.aborted_reason = (
                f"rank {stop_rank} exceeded "
                f"max_iterations={cfg.max_iterations}"
            )
        self.now = t_stop

        # Sends from completed, non-stopping ends (in dispatch order).
        tl, tr = self._transfers(t_se)
        net = self.platform.network
        arr_l: dict[int, float] = {}
        arr_r: dict[int, float] = {}
        for r in senders:
            if r > 0:
                a = max(
                    float(t_se[r] + tl[r]), self.last_left[r] + _FIFO_EPSILON
                )
                self.last_left[r] = a
                arr_l[r] = a
                net.bytes_sent = _repeat_add(net.bytes_sent, self.nbytes, 1)
                net.messages_sent += 1
                self._msg_counts["halo_from_right"] += 1
                self._msg_bytes["halo_from_right"] = _repeat_add(
                    self._msg_bytes["halo_from_right"], self.nbytes, 1
                )
            if r < n - 1:
                a = max(
                    float(t_se[r] + tr[r]), self.last_right[r] + _FIFO_EPSILON
                )
                self.last_right[r] = a
                arr_r[r] = a
                net.bytes_sent = _repeat_add(net.bytes_sent, self.nbytes, 1)
                net.messages_sent += 1
                self._msg_counts["halo_from_left"] += 1
                self._msg_bytes["halo_from_left"] = _repeat_add(
                    self._msg_bytes["halo_from_left"], self.nbytes, 1
                )

        # Events dispatched this round, bounded by the stop end's key.
        # Mids at t <= t_stop all dispatch (a mid's key always sorts
        # below an end key at the same instant: its parent is the
        # round-start root).
        d_stop = self._key_end(stop_rank, t_mid, t_se, pos0)
        events = int((t_mid <= t_stop).sum()) + (stop_pos + 1)
        deliv_keys: dict[tuple[int, str], tuple] = {}
        for r in senders:
            if r > 0:
                key = self._key_send(r, "left", arr_l[r], t_mid, t_se, pos0)
                if key < d_stop:
                    events += 1
                deliv_keys[(r - 1, "right_in")] = key
            if r < n - 1:
                key = self._key_send(r, "right", arr_r[r], t_mid, t_se, pos0)
                if key < d_stop:
                    events += 1
                deliv_keys[(r + 1, "left_in")] = key
        # Wait-resume chains of ranks that entered the halo wait (only
        # completed, non-stopping ends do).
        for w in senders:
            end_key = self._key_end(w, t_mid, t_se, pos0)
            lates = sorted(
                key
                for side in ("left_in", "right_in")
                for key in (deliv_keys.get((w, side)),)
                if key is not None and key > end_key
            )
            if not lates:
                continue
            if len(lates) == 2 and lates[0][0] == lates[1][0]:
                chain = [(lates[0], (lates[0][0], (lates[0], 0)))]
            else:
                chain = [(kk, (kk[0], (kk, 0))) for kk in lates]
            for deliv_key, resume_key in chain:
                if deliv_key < d_stop and resume_key < d_stop:
                    events += 1
                else:
                    break
        self.n_dispatched += events
        self._guard_events(events)

        if self.tracer.enabled:
            tr_ = self.tracer
            for pos in range(stop_pos + 1):
                r = int(order_end[pos])
                tr_.iterations.append(
                    IterationSpan(
                        rank=r,
                        iteration=k + 1,
                        t0=T,
                        t1=float(t_se[r]),
                        work=float(work[r]),
                    )
                )
                tr_.residuals.append(
                    ResidualRecord(
                        rank=r,
                        iteration=k + 1,
                        time=float(t_se[r]),
                        residual=float(residual[r]),
                        n_local=self.blocks[r][1] - self.blocks[r][0],
                    )
                )
                if pos < stop_pos:
                    if r > 0:
                        tr_.messages.append(
                            MessageRecord(
                                kind="halo_from_right",
                                src_rank=r,
                                dst_rank=r - 1,
                                size_bytes=self.nbytes,
                                send_time=float(t_se[r]),
                                arrival_time=arr_l[r],
                            )
                        )
                    if r < n - 1:
                        tr_.messages.append(
                            MessageRecord(
                                kind="halo_from_left",
                                src_rank=r,
                                dst_rank=r + 1,
                                size_bytes=self.nbytes,
                                send_time=float(t_se[r]),
                                arrival_time=arr_r[r],
                            )
                        )
        return self._assemble()

    def _finish_horizon(
        self,
        k: int,
        residual: np.ndarray,
        work: np.ndarray,
        t_mid: np.ndarray,
        t_se: np.ndarray,
        pos0: np.ndarray,
        order_end: np.ndarray,
        arr_l: np.ndarray,
        arr_r: np.ndarray,
        late_l: np.ndarray,
        late_r: np.ndarray,
    ) -> RunResult | None:
        """The round cut by ``max_time``: a pure time cutoff.

        Events at ``t <= max_time`` dispatch, the rest stay queued and
        the clock is advanced to exactly the horizon.  The barrier
        never opens (its release time is past the horizon), so no idle
        spans are recorded.
        """
        n = self.n
        h = float(self.config.max_time)
        T = self.T
        m = t_se <= h
        idx = np.nonzero(m)[0].astype(np.int64)
        if self._guard_divergence(residual, idx):
            self._guard_reset()
            return None
        self.busy[idx] = (self.busy[idx] + t_se[idx]) - T
        self.iter_counts[idx] += 1
        self.residual_at[idx] = residual[idx]
        self.now = h

        net = self.platform.network
        accounted_in_order = [int(r) for r in order_end if m[r]]
        for r in accounted_in_order:
            if r > 0:
                self.last_left[r] = arr_l[r]
                net.bytes_sent = _repeat_add(net.bytes_sent, self.nbytes, 1)
                net.messages_sent += 1
                self._msg_counts["halo_from_right"] += 1
                self._msg_bytes["halo_from_right"] = _repeat_add(
                    self._msg_bytes["halo_from_right"], self.nbytes, 1
                )
            if r < n - 1:
                self.last_right[r] = arr_r[r]
                net.bytes_sent = _repeat_add(net.bytes_sent, self.nbytes, 1)
                net.messages_sent += 1
                self._msg_counts["halo_from_left"] += 1
                self._msg_bytes["halo_from_left"] = _repeat_add(
                    self._msg_bytes["halo_from_left"], self.nbytes, 1
                )

        events = int((t_mid <= h).sum()) + len(accounted_in_order)
        for r in accounted_in_order:
            if r > 0 and arr_l[r] <= h:
                events += 1
            if r < n - 1 and arr_r[r] <= h:
                events += 1
        # Wait-resumes: an accounted rank blocks on its late halos; a
        # resume fires per late delivery that exists (sender accounted)
        # and dispatches within the horizon — except that two late
        # halos arriving at the same instant trigger a single resume.
        for w in idx:
            w = int(w)
            times = []
            if w > 0 and late_l[w] and m[w - 1]:
                times.append(float(arr_r[w - 1]))
            if w < n - 1 and late_r[w] and m[w + 1]:
                times.append(float(arr_l[w + 1]))
            if not times:
                continue
            times.sort()
            if len(times) == 2 and times[0] == times[1]:
                times = times[:1]
            events += sum(1 for t in times if t <= h)
        self.n_dispatched += events
        self._guard_events(events)

        if self.tracer.enabled:
            tr_ = self.tracer
            for r in accounted_in_order:
                tr_.iterations.append(
                    IterationSpan(
                        rank=r,
                        iteration=k + 1,
                        t0=T,
                        t1=float(t_se[r]),
                        work=float(work[r]),
                    )
                )
                tr_.residuals.append(
                    ResidualRecord(
                        rank=r,
                        iteration=k + 1,
                        time=float(t_se[r]),
                        residual=float(residual[r]),
                        n_local=self.blocks[r][1] - self.blocks[r][0],
                    )
                )
                if r > 0:
                    tr_.messages.append(
                        MessageRecord(
                            kind="halo_from_right",
                            src_rank=r,
                            dst_rank=r - 1,
                            size_bytes=self.nbytes,
                            send_time=float(t_se[r]),
                            arrival_time=float(arr_l[r]),
                        )
                    )
                if r < n - 1:
                    tr_.messages.append(
                        MessageRecord(
                            kind="halo_from_left",
                            src_rank=r,
                            dst_rank=r + 1,
                            size_bytes=self.nbytes,
                            send_time=float(t_se[r]),
                            arrival_time=float(arr_r[r]),
                        )
                    )
        return self._assemble()

    # ------------------------------------------------------------------
    # Result assembly (mirrors ChainRun.result())
    # ------------------------------------------------------------------
    def _assemble(self) -> RunResult:
        n = self.n
        tr_ = self.tracer
        for r in range(n):
            if self.iter_counts[r] > 0:
                tr_._busy[r] = float(self.busy[r])
                tr_._iter_counts[r] = int(self.iter_counts[r])
            if self.idle_acc[r] > 0.0:
                tr_._idle[r] = float(self.idle_acc[r])
        for kind in ("halo_from_right", "halo_from_left"):
            if self._msg_counts[kind]:
                tr_._msg_counts[kind] = self._msg_counts[kind]
                tr_._msg_bytes[kind] = self._msg_bytes[kind]
        if self.guard is not None:
            self.guard._lockstep_verify = self._guard_verify_halt
        time = (
            self.convergence_time
            if self.convergence_time is not None
            else self.now
        )
        net = self.platform.network
        return RunResult(
            model="sisc",
            converged=self.converged,
            time=time,
            iterations=[int(c) for c in self.iter_counts],
            work=[float(b) for b in self.busy],
            solution_blocks=[
                self.sweeper.solution_block(r) for r in range(n)
            ],
            final_partition=list(self.blocks),
            residuals_at_stop=[float(x) for x in self.residual_at],
            tracer=tr_,
            n_migrations=tr_.n_migrations(),
            components_migrated=tr_.components_migrated(),
            meta={
                "aborted_reason": self.aborted_reason,
                "stale_halos_dropped": 0,
                "oracle_detection_time": self.convergence_time,
                "detection_messages": 0,
                "network_bytes": net.bytes_sent,
                "network_messages": net.messages_sent,
                "transport_per_rank": [
                    {
                        "rank": r,
                        "retries": 0,
                        "sends_failed": 0,
                        "duplicates_suppressed": 0,
                        "stale_rejected": 0,
                        "crashes": 0,
                    }
                    for r in range(n)
                ],
                "engine": "lockstep",
                "events_dispatched": self.n_dispatched,
            },
        )
