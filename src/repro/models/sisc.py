"""SISC: Synchronous Iterations — Synchronous Communications (Figure 1).

All processors run the same iteration in lockstep: compute, exchange
boundary data, then pass a *global* barrier (the paper's "synchronous
global communications").  The idle time between a rank's compute phases
— waiting for slower ranks and for message transfers — is recorded as
:class:`~repro.runtime.tracer.IdleSpan` records, which is exactly the
white space of the paper's Figure 1.
"""

from __future__ import annotations

from typing import Any

from repro.core.config import SolverConfig
from repro.core.records import RunResult
from repro.core.solver import ChainRun, RankContext, build_chain
from repro.des import Barrier, Signal, Wait
from repro.grid.platform import Platform
from repro.models._recovery import install_sync_recovery, request_fresh_halos
from repro.problems.base import Problem
from repro.runtime.tracer import IdleSpan

__all__ = ["run_sisc"]


class _IterationBarrier:
    """Rollback-tolerant global barrier for fault-injected SISC runs.

    A classic counting :class:`~repro.des.Barrier` breaks under
    crash-restart: a recovered rank re-executes rolled-back iterations
    and re-arrives, desynchronising the arrival counts for good.  This
    variant tracks the *highest iteration completed* per rank (monotonic
    under re-execution): the barrier for iteration ``k`` opens once
    every rank has completed iteration ``k`` at least once.  Fault-free
    runs keep the original counting barrier, event-for-event.
    """

    def __init__(self, n_ranks: int) -> None:
        self.done = [0] * n_ranks
        self.signal = Signal("sisc-iteration-barrier")

    def arrive(self, rank: int, iteration: int, sim) -> None:
        if iteration > self.done[rank]:
            self.done[rank] = iteration
        self.signal.trigger(sim)

    def passed(self, iteration: int) -> bool:
        return all(d >= iteration for d in self.done)


def _sisc_process(run: ChainRun, ctx: RankContext, barrier: Barrier):
    sim = run.sim
    while not ctx.node.stop_requested:
        yield from run.sweep(ctx, send_left_mid_sweep=False, exclusive=False)
        if ctx.node.stop_requested:
            break
        estimate = ctx.estimator.value()
        run.send_halo(ctx, "left", estimate=estimate, exclusive=False)
        run.send_halo(ctx, "right", estimate=estimate, exclusive=False)
        # Wait for both neighbours' data of *this* iteration.
        wait_start = sim.now
        k = ctx.iteration
        while not ctx.node.stop_requested:
            need_left = ctx.rank > 0 and ctx.halo_iter_left < k
            need_right = ctx.rank < run.n_ranks - 1 and ctx.halo_iter_right < k
            if not (need_left or need_right):
                break
            yield Wait(ctx.halo_signal)
        if ctx.node.stop_requested:
            break
        # Global synchronisation: nobody starts iteration k+1 before
        # everyone finished exchanging iteration k.
        signal = barrier.arrive(sim)
        if signal is not None:
            yield Wait(signal)
        if sim.now > wait_start:
            run.tracer.idle(
                IdleSpan(
                    rank=ctx.rank, t0=wait_start, t1=sim.now, reason="sisc-sync"
                )
            )


def _sisc_resilient_process(
    run: ChainRun, ctx: RankContext, barrier: _IterationBarrier
):
    """SISC main loop under fault injection.

    Same structure as :func:`_sisc_process`, plus crash recovery and the
    rollback-tolerant barrier.  During catch-up after a restore both the
    halo wait and the barrier are already satisfied (the other ranks are
    ahead), so the recovered rank re-iterates at full compute speed
    while everyone else stalls waiting for its current-iteration data —
    the global synchronisation penalty the resilience experiment
    measures.
    """
    sim = run.sim
    node = ctx.node
    while not node.stop_requested:
        if not node.alive:
            yield Wait(node.restart_signal)
            continue
        if node.crash_count != ctx.restored_epoch:
            run.restore_checkpoint(ctx)
            # The restored state attests that every iteration up to the
            # checkpoint completed.  Re-arrive at the barrier for it:
            # if the crash hit between the checkpointed sweep and its
            # barrier arrival, re-execution resumes *past* that
            # iteration and would never arrive, deadlocking the other
            # ranks at ``passed(checkpoint_iteration)`` forever.
            barrier.arrive(ctx.rank, ctx.iteration, sim)
            request_fresh_halos(run, ctx)
            continue
        yield from run.sweep(ctx, send_left_mid_sweep=False, exclusive=False)
        if node.stop_requested:
            break
        if not node.alive or node.crash_count != ctx.restored_epoch:
            continue  # the sweep was lost to a crash
        estimate = ctx.estimator.value()
        run.send_halo(ctx, "left", estimate=estimate, exclusive=False)
        run.send_halo(ctx, "right", estimate=estimate, exclusive=False)
        wait_start = sim.now
        k = ctx.iteration
        interrupted = False
        while not node.stop_requested:
            if not node.alive or node.crash_count != ctx.restored_epoch:
                interrupted = True
                break
            need_left = ctx.rank > 0 and ctx.halo_iter_left < k
            need_right = ctx.rank < run.n_ranks - 1 and ctx.halo_iter_right < k
            if not (need_left or need_right):
                break
            yield Wait(ctx.halo_signal)
        if interrupted or node.stop_requested:
            continue
        barrier.arrive(ctx.rank, k, sim)
        while not node.stop_requested and not barrier.passed(k):
            if not node.alive or node.crash_count != ctx.restored_epoch:
                interrupted = True
                break
            yield Wait(barrier.signal)
        if not interrupted and sim.now > wait_start:
            run.tracer.idle(
                IdleSpan(
                    rank=ctx.rank, t0=wait_start, t1=sim.now, reason="sisc-sync"
                )
            )


def run_sisc(
    problem: Problem,
    platform: Platform,
    config: SolverConfig | None = None,
    *,
    host_order: list[int] | None = None,
    injector: Any = None,
    guard: Any = None,
) -> RunResult:
    """Solve ``problem`` with the SISC execution model.

    ``injector`` optionally arms a fault injector; the run then uses the
    rollback-tolerant :class:`_IterationBarrier` and re-sends halos on
    permanent transfer failure.  Fault-free runs are untouched.
    ``guard`` optionally attaches a
    :class:`~repro.guard.InvariantMonitor` (runtime safety invariants;
    see ``docs/robustness.md``).
    """
    run = build_chain(
        problem, platform, config, model="sisc", host_order=host_order
    )
    if guard is not None:
        guard.attach(run)
    if injector is not None:
        install_sync_recovery(run)
        injector.install(run)
        it_barrier = _IterationBarrier(run.n_ranks)
        for ctx in run.ranks:
            run.sim.spawn(
                f"sisc-rank-{ctx.rank}",
                _sisc_resilient_process(run, ctx, it_barrier),
            )
    else:
        barrier = Barrier(run.n_ranks, name="sisc")
        for ctx in run.ranks:
            run.sim.spawn(
                f"sisc-rank-{ctx.rank}", _sisc_process(run, ctx, barrier)
            )
    run.run()
    return run.result()
