"""SISC: Synchronous Iterations — Synchronous Communications (Figure 1).

All processors run the same iteration in lockstep: compute, exchange
boundary data, then pass a *global* barrier (the paper's "synchronous
global communications").  The idle time between a rank's compute phases
— waiting for slower ranks and for message transfers — is recorded as
:class:`~repro.runtime.tracer.IdleSpan` records, which is exactly the
white space of the paper's Figure 1.
"""

from __future__ import annotations

from repro.core.config import SolverConfig
from repro.core.records import RunResult
from repro.core.solver import ChainRun, RankContext, build_chain
from repro.des import Barrier, Wait
from repro.grid.platform import Platform
from repro.problems.base import Problem
from repro.runtime.tracer import IdleSpan

__all__ = ["run_sisc"]


def _sisc_process(run: ChainRun, ctx: RankContext, barrier: Barrier):
    sim = run.sim
    while not ctx.node.stop_requested:
        yield from run.sweep(ctx, send_left_mid_sweep=False, exclusive=False)
        if ctx.node.stop_requested:
            break
        estimate = ctx.estimator.value()
        run.send_halo(ctx, "left", estimate=estimate, exclusive=False)
        run.send_halo(ctx, "right", estimate=estimate, exclusive=False)
        # Wait for both neighbours' data of *this* iteration.
        wait_start = sim.now
        k = ctx.iteration
        while not ctx.node.stop_requested:
            need_left = ctx.rank > 0 and ctx.halo_iter_left < k
            need_right = ctx.rank < run.n_ranks - 1 and ctx.halo_iter_right < k
            if not (need_left or need_right):
                break
            yield Wait(ctx.halo_signal)
        if ctx.node.stop_requested:
            break
        # Global synchronisation: nobody starts iteration k+1 before
        # everyone finished exchanging iteration k.
        signal = barrier.arrive(sim)
        if signal is not None:
            yield Wait(signal)
        if sim.now > wait_start:
            run.tracer.idle(
                IdleSpan(
                    rank=ctx.rank, t0=wait_start, t1=sim.now, reason="sisc-sync"
                )
            )


def run_sisc(
    problem: Problem,
    platform: Platform,
    config: SolverConfig | None = None,
    *,
    host_order: list[int] | None = None,
) -> RunResult:
    """Solve ``problem`` with the SISC execution model."""
    run = build_chain(
        problem, platform, config, model="sisc", host_order=host_order
    )
    barrier = Barrier(run.n_ranks, name="sisc")
    for ctx in run.ranks:
        run.sim.spawn(f"sisc-rank-{ctx.rank}", _sisc_process(run, ctx, barrier))
    run.run()
    return run.result()
