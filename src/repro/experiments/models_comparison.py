"""§6 discussion: the three execution models on cluster vs grid platforms.

The paper argues (based on [3] and its own results) that in the local
homogeneous context synchronous and asynchronous algorithms "have almost
the same behavior and performances whereas in the global context of grid
computing, the asynchronous version reveals all its interest".  This
experiment runs SISC / SIAC / AIAC on both platform types and reports
the times; the shape criterion is that AIAC's advantage over SISC is
much larger on the grid platform than on the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.core.records import RunResult
from repro.core.solver import run_aiac
from repro.models.siac import run_siac
from repro.models.sisc import run_sisc
from repro.workloads.scenarios import ModelsComparisonScenario

__all__ = ["ModelsComparisonResult", "run_models_comparison"]


@dataclass(slots=True)
class ModelsComparisonResult:
    cluster: dict[str, RunResult]
    grid: dict[str, RunResult]

    def advantage(self, platform: str) -> float:
        """SISC time / AIAC time on the given platform ('cluster'/'grid')."""
        runs = self.cluster if platform == "cluster" else self.grid
        return runs["sisc"].time / runs["aiac"].time

    def report(self) -> str:
        rows = []
        for model in ("sisc", "siac", "aiac"):
            rows.append(
                (model, self.cluster[model].time, self.grid[model].time)
            )
        table = format_table(
            ["model", "cluster time (s)", "grid time (s)"], rows
        )
        return (
            "Models comparison (paper §6 discussion)\n"
            f"{table}\n"
            f"SISC/AIAC advantage: cluster={self.advantage('cluster'):.2f}, "
            f"grid={self.advantage('grid'):.2f} "
            "(expected: ~1 on cluster, >> 1 on grid)"
        )


def run_models_comparison(
    scenario: ModelsComparisonScenario | None = None,
) -> ModelsComparisonResult:
    scenario = (
        scenario if scenario is not None else ModelsComparisonScenario()
    )
    config = scenario.solver_config()
    result = ModelsComparisonResult(cluster={}, grid={})
    for platform_name in ("cluster", "grid"):
        if platform_name == "cluster":
            platform = scenario.cluster_platform()
            order = None
        else:
            platform = scenario.grid_platform()
            order = scenario.host_order(platform)
        runs = {
            "sisc": run_sisc(
                scenario.problem(), platform, config, host_order=order
            ),
            "siac": run_siac(
                scenario.problem(), platform, config, host_order=order
            ),
            "aiac": run_aiac(
                scenario.problem(), platform, config, host_order=order
            ),
        }
        for name, run in runs.items():
            if not run.converged:
                raise RuntimeError(
                    f"models comparison: {name} on {platform_name} "
                    "did not converge"
                )
        setattr(result, platform_name, runs)
    return result
