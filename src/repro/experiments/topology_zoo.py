"""Topology zoo experiment: which LB wins on which graph under which faults.

The paper's experiments are confined to a linear chain of 15 machines;
this sweep is the results table it could never produce (ROADMAP item 2).
Every (topology family × LB algorithm × fault schedule) cell runs the
deterministic round-based driver of :mod:`repro.balancing.zoo` —
including the paper's own reactive residual-driven rule next to the
classical families — through the :mod:`repro.exec` engine, so the grid
fans out over worker pools and warm reruns come from the content-
addressed cache byte-identically.

Rows contain only virtual quantities (imbalance trajectories, transfer
volume, link-class-weighted cost), so the sweep's
:func:`~repro.analysis.perf.stable_digest` is identical across
processes, pool sizes and reruns — the property CI checks by running the
quick grid twice.

The headline artifact is the **winners table**: per (topology, schedule)
cell, the algorithm with the lowest mean imbalance over the run
(ties broken by communication cost, then name).  Mean — not final —
imbalance is the score: under faults a scheme that rebalances *quickly
after every shock* beats one that limps to the same endpoint.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from repro.analysis.perf import save_report, stable_digest
from repro.analysis.reporting import format_table
from repro.balancing.zoo import (
    ZOO_ALGORITHMS,
    ZOO_SCHEDULES,
    TriggerPolicy,
    ZooParams,
    make_zoo_schedule,
    run_zoo,
)
from repro.topology.graphs import TOPOLOGY_FAMILIES, build_topology, spec_for_family

__all__ = ["TopologyZooScenario", "TopologyZooResult", "run_topology_zoo"]


@dataclass(frozen=True)
class TopologyZooScenario:
    """The sweep grid plus every knob the zoo driver takes.

    The default is the full grid: all families × all algorithms × all
    fault schedules.  :meth:`quick` is the CI cut — still ≥ 5 families,
    the paper's scheme plus the full classical zoo, and multiple fault
    schedules, but small enough to run twice in a smoke job.
    """

    families: tuple[str, ...] = TOPOLOGY_FAMILIES
    algorithms: tuple[str, ...] = ZOO_ALGORITHMS
    schedules: tuple[str, ...] = ZOO_SCHEDULES
    n_nodes: int = 24
    rounds: int = 240
    check_every: int = 2
    threshold: float = 1.02
    initial: str = "spike"
    seed: int = 0

    def __post_init__(self) -> None:
        for family in self.families:
            if family not in TOPOLOGY_FAMILIES:
                raise ValueError(f"unknown topology family {family!r}")
        for algorithm in self.algorithms:
            if algorithm not in ZOO_ALGORITHMS:
                raise ValueError(f"unknown zoo algorithm {algorithm!r}")
        for schedule in self.schedules:
            if schedule not in ZOO_SCHEDULES:
                raise ValueError(f"unknown zoo schedule {schedule!r}")

    @classmethod
    def quick(cls) -> "TopologyZooScenario":
        return cls(
            families=(
                "chain",
                "torus",
                "hypercube",
                "random_geometric",
                "hierarchy",
            ),
            schedules=("none", "load_shock", "link_flap"),
            n_nodes=12,
            rounds=96,
        )

    def params(self) -> ZooParams:
        return ZooParams(
            rounds=self.rounds,
            trigger=TriggerPolicy(
                check_every=self.check_every, threshold=self.threshold
            ),
        )


@dataclass(slots=True)
class TopologyZooResult:
    """All rows of one zoo sweep, in grid order."""

    scenario: TopologyZooScenario
    rows: list[dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def row(
        self, family: str, algorithm: str, schedule: str
    ) -> dict[str, Any] | None:
        for row in self.rows:
            if (
                row["family"] == family
                and row["algorithm"] == algorithm
                and row["schedule"] == schedule
            ):
                return row
        return None

    def winners(
        self, *, include_centralized: bool = False
    ) -> dict[tuple[str, str], dict[str, Any]]:
        """Best row per (family, schedule): lowest mean imbalance, ties
        broken by communication cost, then algorithm name.

        By default the ``centralized`` coordinator is excluded: in this
        abstract model its global synchronisation is free, so it
        trivially tops every cell — it is the oracle *baseline* the
        paper argues against, not a contender.  The interesting
        question is which decentralized scheme wins where.
        """
        best: dict[tuple[str, str], dict[str, Any]] = {}
        for row in self.rows:
            if row["algorithm"] == "centralized" and not include_centralized:
                continue
            key = (row["family"], row["schedule"])
            score = (row["mean_imbalance"], row["comm_cost"], row["algorithm"])
            incumbent = best.get(key)
            if incumbent is None or score < (
                incumbent["mean_imbalance"],
                incumbent["comm_cost"],
                incumbent["algorithm"],
            ):
                best[key] = row
        return best

    def digest(self) -> str:
        """Reproducibility fingerprint (virtual quantities only)."""
        return stable_digest({"rows": self.rows})

    def to_dict(self) -> dict[str, Any]:
        winners = self.winners()
        return {
            "title": "topology zoo: LB algorithms x topologies x faults",
            "scenario": asdict(self.scenario),
            "rows": self.rows,
            "winners": {
                f"{family}/{schedule}": row["algorithm"]
                for (family, schedule), row in sorted(winners.items())
            },
            "digest": self.digest(),
        }

    def save_json(self, path: str) -> None:
        save_report(path, self.to_dict())

    # ------------------------------------------------------------------
    def report(self) -> str:
        scenario = self.scenario
        winners = self.winners()
        winner_rows = [
            tuple(
                [family]
                + [
                    winners[(family, schedule)]["algorithm"]
                    if (family, schedule) in winners
                    else "-"
                    for schedule in scenario.schedules
                ]
            )
            for family in scenario.families
        ]
        per_algo: dict[str, list[dict[str, Any]]] = {}
        for row in self.rows:
            per_algo.setdefault(row["algorithm"], []).append(row)
        algo_rows = []
        for algorithm in scenario.algorithms:
            rows = per_algo.get(algorithm, [])
            if not rows:
                continue
            n = len(rows)
            algo_rows.append(
                (
                    algorithm,
                    f"{sum(r['mean_imbalance'] for r in rows) / n:.3f}",
                    f"{sum(r['final_imbalance'] for r in rows) / n:.3f}",
                    f"{sum(r['volume'] for r in rows) / n:.1f}",
                    f"{sum(r['comm_cost'] for r in rows) / n:.1f}",
                    f"{sum(r['triggers'] for r in rows) / n:.1f}",
                    sum(1 for r in rows if winners.get((r["family"], r["schedule"])) is r),
                )
            )
        lines = [
            f"Topology zoo — {len(scenario.families)} topologies x "
            f"{len(scenario.algorithms)} algorithms x "
            f"{len(scenario.schedules)} fault schedules "
            f"(n={scenario.n_nodes}, rounds={scenario.rounds}, "
            f"initial={scenario.initial})",
            "",
            "Which decentralized LB wins where (lowest mean imbalance; "
            "the centralized oracle is the baseline, not a contender):",
            format_table(
                ["topology"] + list(scenario.schedules), winner_rows
            ),
            "",
            "Per-algorithm averages over the whole grid:",
            format_table(
                [
                    "algorithm",
                    "mean imb",
                    "final imb",
                    "volume",
                    "comm cost",
                    "triggers",
                    "wins",
                ],
                algo_rows,
            ),
            f"digest: {self.digest()}",
        ]
        return "\n".join(lines)


def _zoo_task(
    scenario: TopologyZooScenario, family: str, algorithm: str, schedule_name: str
) -> dict[str, Any]:
    """Engine task: one grid cell reduced to its report row.

    Top-level (picklable by reference) for the sweep engine's worker
    pool.  Topology, schedule and params are all rebuilt from the
    scenario, so the row is a pure function of the task arguments.
    """
    spec = spec_for_family(family, scenario.n_nodes, seed=scenario.seed)
    topology = build_topology(spec)
    params = scenario.params()
    schedule = make_zoo_schedule(
        schedule_name, topology, params.rounds, seed=scenario.seed
    )
    result = run_zoo(
        topology,
        algorithm,
        params=params,
        schedule=schedule,
        initial=scenario.initial,
        seed=scenario.seed,
    )
    row = result.to_row()
    row["family"] = family
    row["n_edges"] = len(topology.edges())
    row["topology_digest"] = topology.digest()
    return row


def run_topology_zoo(
    scenario: TopologyZooScenario | None = None, *, engine=None
) -> TopologyZooResult:
    """Run the zoo sweep; :meth:`TopologyZooScenario.quick` for CI.

    ``engine`` optionally supplies a :class:`~repro.exec.SweepEngine`:
    the grid fans out over its worker pool and/or is served from its run
    cache, with rows merged in grid order so the report and its digest
    are byte-identical to the serial path.
    """
    from repro.exec import SweepEngine, Task

    scenario = scenario if scenario is not None else TopologyZooScenario()
    engine = engine if engine is not None else SweepEngine()
    scenario_key = asdict(scenario)
    tasks = [
        Task(
            fn=_zoo_task,
            args=(scenario, family, algorithm, schedule_name),
            key={
                "experiment": "topology_zoo",
                "scenario": scenario_key,
                "family": family,
                "algorithm": algorithm,
                "schedule": schedule_name,
            },
            label=f"zoo/{family}/{algorithm}/{schedule_name}",
        )
        for family in scenario.families
        for algorithm in scenario.algorithms
        for schedule_name in scenario.schedules
    ]
    out = TopologyZooResult(scenario=scenario)
    out.rows.extend(engine.map(tasks))
    return out
