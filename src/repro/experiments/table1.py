"""Table 1: heterogeneous 3-site grid, non-balanced vs balanced AIAC.

Paper result::

    version          non-balanced   balanced   ratio
    execution time          515.3      105.5    4.88

on fifteen machines over Belfort, Montbéliard and Grenoble, machine
types from a PII-400 to an Athlon-1.4G, multi-user load, irregular
logical organization.  The paper notes the ratio is *smaller* than on
the local cluster because data migrations cost more over slow links —
our acceptance band is a ratio in [2, 9] with the balanced version
winning, and we additionally check the qualitative claim by reporting
the network bytes spent on migrations.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.analysis.reporting import format_table
from repro.core.lb import run_balanced_aiac
from repro.core.records import RunResult
from repro.core.solver import run_aiac
from repro.workloads.scenarios import Table1Scenario

__all__ = ["Table1Result", "run_table1"]


@dataclass(slots=True)
class Table1Result:
    time_unbalanced: float
    time_balanced: float
    migrations: int
    components_migrated: int
    final_sizes: list[int]
    #: Full run records; populated only on the in-process (sidecar)
    #: path — engine runs reduce to payloads before crossing processes.
    unbalanced: RunResult | None = None
    balanced: RunResult | None = None

    @property
    def ratio(self) -> float:
        return self.time_unbalanced / self.time_balanced

    def report(self) -> str:
        table = format_table(
            ["version", "non-balanced", "balanced", "ratio"],
            [
                (
                    "execution time (s)",
                    self.time_unbalanced,
                    self.time_balanced,
                    self.ratio,
                )
            ],
        )
        return (
            "Table 1 — heterogeneous 3-site grid (15 machines)\n"
            f"{table}\n"
            f"paper: 515.3 / 105.5 / 4.88; "
            f"migrations={self.migrations} "
            f"({self.components_migrated} components), "
            f"final block sizes={self.final_sizes}"
        )


def _solve_one(scenario: Table1Scenario, version: str) -> RunResult:
    """One Table 1 run: ``version`` in {"unbalanced", "balanced"}."""
    platform = scenario.platform()
    order = scenario.host_order(platform)
    config = scenario.solver_config()
    if version == "balanced":
        return run_balanced_aiac(
            scenario.problem(),
            platform,
            config,
            scenario.lb_config(),
            host_order=order,
        )
    return run_aiac(scenario.problem(), platform, config, host_order=order)


def _sweep_task(scenario: Table1Scenario, version: str) -> dict:
    """Engine task: one run reduced to its sweep payload."""
    result = _solve_one(scenario, version)
    if not result.converged:
        raise RuntimeError(f"table1 {version} run did not converge")
    return {
        "time": result.time,
        "migrations": result.n_migrations,
        "components_migrated": result.components_migrated,
        "final_sizes": list(result.meta.get("final_sizes", ())),
    }


def run_table1(
    scenario: Table1Scenario | None = None, *, sidecar=None, engine=None
) -> Table1Result:
    """Run the Table 1 experiment (use ``Table1Scenario.quick()`` for CI).

    ``engine`` optionally supplies a :class:`~repro.exec.SweepEngine`
    (worker pool + run cache) for the two independent runs; the result
    values are byte-identical to the serial path.  ``sidecar``
    optionally attaches a :class:`~repro.obs.harness.MetricsSidecar`
    scraping both runs; an observed sweep always executes serially in
    process (the sidecar needs the live run records), bypassing pool
    and cache.
    """
    from repro.exec import SweepEngine, Task

    scenario = scenario if scenario is not None else Table1Scenario()
    if sidecar is not None:
        unbalanced = _solve_one(scenario, "unbalanced")
        balanced = _solve_one(scenario, "balanced")
        if not (unbalanced.converged and balanced.converged):
            raise RuntimeError(
                f"table1 run did not converge: "
                f"unbalanced={unbalanced.converged}, "
                f"balanced={balanced.converged}"
            )
        sidecar.collect(unbalanced, run="unbalanced")
        sidecar.collect(balanced, run="balanced")
        return Table1Result(
            time_unbalanced=unbalanced.time,
            time_balanced=balanced.time,
            migrations=balanced.n_migrations,
            components_migrated=balanced.components_migrated,
            final_sizes=balanced.meta["final_sizes"],
            unbalanced=unbalanced,
            balanced=balanced,
        )

    engine = engine if engine is not None else SweepEngine()
    tasks = [
        Task(
            fn=_sweep_task,
            args=(scenario, version),
            key={
                "experiment": "table1",
                "scenario": asdict(scenario),
                "version": version,
            },
            label=f"table1/{version}",
        )
        for version in ("unbalanced", "balanced")
    ]
    unbalanced_row, balanced_row = engine.map(tasks)
    return Table1Result(
        time_unbalanced=unbalanced_row["time"],
        time_balanced=balanced_row["time"],
        migrations=balanced_row["migrations"],
        components_migrated=balanced_row["components_migrated"],
        final_sizes=balanced_row["final_sizes"],
    )
