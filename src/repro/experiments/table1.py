"""Table 1: heterogeneous 3-site grid, non-balanced vs balanced AIAC.

Paper result::

    version          non-balanced   balanced   ratio
    execution time          515.3      105.5    4.88

on fifteen machines over Belfort, Montbéliard and Grenoble, machine
types from a PII-400 to an Athlon-1.4G, multi-user load, irregular
logical organization.  The paper notes the ratio is *smaller* than on
the local cluster because data migrations cost more over slow links —
our acceptance band is a ratio in [2, 9] with the balanced version
winning, and we additionally check the qualitative claim by reporting
the network bytes spent on migrations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.core.lb import run_balanced_aiac
from repro.core.records import RunResult
from repro.core.solver import run_aiac
from repro.workloads.scenarios import Table1Scenario

__all__ = ["Table1Result", "run_table1"]


@dataclass(slots=True)
class Table1Result:
    time_unbalanced: float
    time_balanced: float
    migrations: int
    components_migrated: int
    final_sizes: list[int]
    unbalanced: RunResult
    balanced: RunResult

    @property
    def ratio(self) -> float:
        return self.time_unbalanced / self.time_balanced

    def report(self) -> str:
        table = format_table(
            ["version", "non-balanced", "balanced", "ratio"],
            [
                (
                    "execution time (s)",
                    self.time_unbalanced,
                    self.time_balanced,
                    self.ratio,
                )
            ],
        )
        return (
            "Table 1 — heterogeneous 3-site grid (15 machines)\n"
            f"{table}\n"
            f"paper: 515.3 / 105.5 / 4.88; "
            f"migrations={self.migrations} "
            f"({self.components_migrated} components), "
            f"final block sizes={self.final_sizes}"
        )


def run_table1(
    scenario: Table1Scenario | None = None, *, sidecar=None
) -> Table1Result:
    """Run the Table 1 experiment (use ``Table1Scenario.quick()`` for CI).

    ``sidecar`` optionally attaches a
    :class:`~repro.obs.harness.MetricsSidecar` scraping both runs.
    """
    scenario = scenario if scenario is not None else Table1Scenario()
    platform = scenario.platform()
    order = scenario.host_order(platform)
    config = scenario.solver_config()
    unbalanced = run_aiac(
        scenario.problem(), platform, config, host_order=order
    )
    balanced = run_balanced_aiac(
        scenario.problem(),
        platform,
        config,
        scenario.lb_config(),
        host_order=order,
    )
    if not (unbalanced.converged and balanced.converged):
        raise RuntimeError(
            f"table1 run did not converge: unbalanced={unbalanced.converged}, "
            f"balanced={balanced.converged}"
        )
    if sidecar is not None:
        sidecar.collect(unbalanced, run="unbalanced")
        sidecar.collect(balanced, run="balanced")
    return Table1Result(
        time_unbalanced=unbalanced.time,
        time_balanced=balanced.time,
        migrations=balanced.n_migrations,
        components_migrated=balanced.components_migrated,
        final_sizes=balanced.meta["final_sizes"],
        unbalanced=unbalanced,
        balanced=balanced,
    )
