"""Figures 1-4: execution flows of the four execution-model variants.

The paper's figures show two processors' compute blocks and idle gaps
under SISC (Figure 1), SIAC (Figure 2), general/eager AIAC (Figure 3)
and the mutual-exclusion AIAC variant (Figure 4).  We run all four on
the same two-processor platform (one faster than the other, visible
network latency), render ASCII Gantt charts of the first seconds, and
measure the quantity the figures communicate: the **idle fraction**,
which must satisfy ``SISC >= SIAC > AIAC == 0``.  The Figure 4 variant
additionally suppresses boundary sends while one is in flight, so it
sends *fewer* halo messages than the eager Figure 3 variant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.gantt import render_gantt
from repro.analysis.metrics import idle_fraction
from repro.analysis.reporting import format_table
from repro.core.records import RunResult
from repro.models.aiac import run_aiac_model
from repro.models.siac import run_siac
from repro.models.sisc import run_sisc
from repro.workloads.scenarios import TraceFigureScenario

__all__ = ["TraceFiguresResult", "run_trace_figures"]

_FIGURES = (
    ("figure1_sisc", "Figure 1 (SISC)"),
    ("figure2_siac", "Figure 2 (SIAC)"),
    ("figure3_aiac_eager", "Figure 3 (AIAC, eager sends)"),
    ("figure4_aiac_exclusive", "Figure 4 (AIAC, mutual exclusion)"),
)


@dataclass(slots=True)
class TraceFiguresResult:
    runs: dict[str, RunResult]

    def idle_fractions(self) -> dict[str, float]:
        return {key: idle_fraction(run) for key, run in self.runs.items()}

    def halo_messages(self) -> dict[str, int]:
        return {
            key: sum(
                1 for m in run.tracer.messages if m.kind.startswith("halo")
            )
            for key, run in self.runs.items()
        }

    def report(self, *, gantt_window: float = 5.0, width: int = 100) -> str:
        idles = self.idle_fractions()
        messages = self.halo_messages()
        parts = []
        for key, title in _FIGURES:
            run = self.runs[key]
            horizon = min(gantt_window, run.time)
            parts.append(f"{title}")
            parts.append(render_gantt(run, width=width, t_max=horizon))
            parts.append("")
        summary = format_table(
            ["figure", "idle fraction", "halo messages", "time (s)"],
            [
                (title, idles[key], messages[key], self.runs[key].time)
                for key, title in _FIGURES
            ],
        )
        parts.append(summary)
        parts.append(
            "expected ordering: idle SISC >= SIAC > AIAC == 0; "
            "Figure 4 sends fewer messages than Figure 3"
        )
        return "\n".join(parts)


def run_trace_figures(
    scenario: TraceFigureScenario | None = None,
) -> TraceFiguresResult:
    """Run all four model variants on the two-processor trace platform."""
    scenario = scenario if scenario is not None else TraceFigureScenario()
    platform = scenario.platform()
    config = scenario.solver_config()
    runs = {
        "figure1_sisc": run_sisc(scenario.problem(), platform, config),
        "figure2_siac": run_siac(scenario.problem(), platform, config),
        "figure3_aiac_eager": run_aiac_model(
            scenario.problem(), platform, config, variant="eager"
        ),
        "figure4_aiac_exclusive": run_aiac_model(
            scenario.problem(), platform, config, variant="exclusive"
        ),
    }
    for key, run in runs.items():
        if not run.converged:
            raise RuntimeError(f"trace figure run {key} did not converge")
    return TraceFiguresResult(runs=runs)
