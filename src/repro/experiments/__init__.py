"""Experiment harness: one module per table/figure (DESIGN.md §4).

Each ``run_*`` function executes the experiment and returns a result
object with a ``report()`` method printing the same rows/series the
paper shows; the benchmark files under ``benchmarks/`` are thin wrappers
around these.
"""

from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.figures_1_to_4 import TraceFiguresResult, run_trace_figures
from repro.experiments.models_comparison import (
    ModelsComparisonResult,
    run_models_comparison,
)
from repro.experiments.integrity import IntegrityResult, run_integrity
from repro.experiments.resilience import ResilienceResult, run_resilience
from repro.experiments.topology_zoo import (
    TopologyZooResult,
    TopologyZooScenario,
    run_topology_zoo,
)

__all__ = [
    "run_figure5",
    "Figure5Result",
    "run_table1",
    "Table1Result",
    "run_trace_figures",
    "TraceFiguresResult",
    "run_models_comparison",
    "ModelsComparisonResult",
    "run_integrity",
    "IntegrityResult",
    "run_resilience",
    "ResilienceResult",
    "run_topology_zoo",
    "TopologyZooResult",
    "TopologyZooScenario",
]
