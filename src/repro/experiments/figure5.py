"""Figure 5: execution time vs processors, with and without load balancing.

Paper result: on a local homogeneous cluster both versions scale very
well, with the balanced version a large constant factor below the
unbalanced one (time ratio 6.2–7.4, average 6.8).

Our reproduction: same platform regime and strong-scaling protocol on
the activity-concentration workload (see
:class:`repro.workloads.scenarios.Figure5Scenario` for why the synthetic
problem stands in for the Brusselator here).  The shape criteria checked
by the integration tests: both series decrease with p, and the balanced
series sits below the unbalanced one at every p ≥ 4 with a
substantially-greater-than-1 ratio.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from repro.analysis.perf import save_report, stable_digest
from repro.analysis.plots import ascii_plot
from repro.analysis.reporting import format_table
from repro.core.lb import run_balanced_aiac
from repro.core.records import RunResult
from repro.core.solver import run_aiac
from repro.workloads.scenarios import Figure5Scenario

__all__ = ["Figure5Result", "run_figure5"]


@dataclass(slots=True)
class Figure5Result:
    """One row per processor count: times of both versions and the ratio."""

    proc_counts: list[int]
    time_unbalanced: list[float]
    time_balanced: list[float]
    migrations: list[int] = field(default_factory=list)

    @property
    def ratios(self) -> list[float]:
        return [
            u / b for u, b in zip(self.time_unbalanced, self.time_balanced)
        ]

    @property
    def mean_ratio(self) -> float:
        ratios = self.ratios
        return sum(ratios) / len(ratios)

    def _column_lengths_ok(self) -> None:
        n = len(self.proc_counts)
        if not (len(self.time_unbalanced) == len(self.time_balanced) == n):
            raise ValueError(
                f"figure5 result columns disagree: {n} proc counts, "
                f"{len(self.time_unbalanced)} unbalanced times, "
                f"{len(self.time_balanced)} balanced times"
            )
        if self.migrations and len(self.migrations) != n:
            raise ValueError(
                f"figure5 result has {len(self.migrations)} migration "
                f"counts for {n} proc counts"
            )

    def to_dict(self) -> dict[str, Any]:
        self._column_lengths_ok()
        return {
            "title": "figure5: execution time vs processors",
            "proc_counts": list(self.proc_counts),
            "time_unbalanced": list(self.time_unbalanced),
            "time_balanced": list(self.time_balanced),
            "migrations": list(self.migrations),
            "ratios": self.ratios,
            "mean_ratio": self.mean_ratio,
            "digest": self.digest(),
        }

    def digest(self) -> str:
        """Reproducibility fingerprint (virtual-time quantities only)."""
        return stable_digest(
            {
                "proc_counts": list(self.proc_counts),
                "time_unbalanced": list(self.time_unbalanced),
                "time_balanced": list(self.time_balanced),
                "migrations": list(self.migrations),
            }
        )

    def save_json(self, path: str) -> None:
        """Write the result rows + digest as sorted-key JSON."""
        save_report(path, self.to_dict())

    def report(self) -> str:
        # An empty migrations column (a result built before the sweep
        # recorded any) must not silently truncate the five-way zip to
        # zero rows; pad it, and reject genuinely inconsistent lengths.
        self._column_lengths_ok()
        migrations = self.migrations or [0] * len(self.proc_counts)
        rows = [
            (p, tu, tb, r, m)
            for p, tu, tb, r, m in zip(
                self.proc_counts,
                self.time_unbalanced,
                self.time_balanced,
                self.ratios,
                migrations,
            )
        ]
        table = format_table(
            ["procs", "without LB (s)", "with LB (s)", "ratio", "migrations"],
            rows,
        )
        plot = ascii_plot(
            {
                "without LB": (self.proc_counts, self.time_unbalanced),
                "with LB": (self.proc_counts, self.time_balanced),
            },
            log_x=True,
            log_y=True,
            title="execution time (s) vs processors",
            width=56,
            height=14,
        )
        return (
            "Figure 5 — homogeneous cluster, time vs processors\n"
            f"{table}\n"
            f"mean ratio: {self.mean_ratio:.2f}   "
            "(paper: 6.2-7.4, average 6.8)\n"
            f"{plot}"
        )


def _solve_one(scenario: Figure5Scenario, p: int, version: str) -> RunResult:
    """One Figure 5 run: ``version`` in {"unbalanced", "balanced"} at ``p``."""
    platform = scenario.platform(p)
    config = scenario.solver_config()
    if version == "balanced":
        return run_balanced_aiac(
            scenario.problem(), platform, config, scenario.lb_config()
        )
    return run_aiac(scenario.problem(), platform, config)


def _sweep_task(scenario: Figure5Scenario, p: int, version: str) -> dict:
    """Engine task: one run reduced to its sweep payload (top-level so the
    worker pool can pickle it by reference)."""
    result = _solve_one(scenario, p, version)
    if not result.converged:
        raise RuntimeError(
            f"figure5 run did not converge at p={p} ({version})"
        )
    return {"time": result.time, "migrations": result.n_migrations}


def run_figure5(
    scenario: Figure5Scenario | None = None, *, sidecar=None, engine=None
) -> Figure5Result:
    """Run the full Figure 5 sweep; use ``Figure5Scenario.quick()`` for CI.

    ``engine`` optionally supplies a
    :class:`~repro.exec.SweepEngine` to fan the independent
    ``(p, version)`` runs over a worker pool and/or serve them from the
    run cache; the default is the serial in-process engine.  The result
    is byte-identical either way (each run owns its seeds).

    ``sidecar`` optionally attaches a
    :class:`~repro.obs.harness.MetricsSidecar`: every run's metrics are
    scraped into it under ``run="p{p}/{version}"`` labels.  The sidecar
    scrapes live :class:`RunResult` objects, so an observed sweep always
    executes serially in process, bypassing pool and cache.
    """
    from repro.exec import SweepEngine, Task

    scenario = scenario if scenario is not None else Figure5Scenario()
    result = Figure5Result(
        proc_counts=list(scenario.proc_counts),
        time_unbalanced=[],
        time_balanced=[],
        migrations=[],
    )
    if sidecar is not None:
        for p in scenario.proc_counts:
            unbalanced = _solve_one(scenario, p, "unbalanced")
            balanced = _solve_one(scenario, p, "balanced")
            if not (unbalanced.converged and balanced.converged):
                raise RuntimeError(
                    f"figure5 run did not converge at p={p}: "
                    f"unbalanced={unbalanced.converged}, "
                    f"balanced={balanced.converged}"
                )
            sidecar.collect(unbalanced, run=f"p{p}/unbalanced")
            sidecar.collect(balanced, run=f"p{p}/balanced")
            result.time_unbalanced.append(unbalanced.time)
            result.time_balanced.append(balanced.time)
            result.migrations.append(balanced.n_migrations)
        return result

    engine = engine if engine is not None else SweepEngine()
    tasks = [
        Task(
            fn=_sweep_task,
            args=(scenario, p, version),
            key={
                "experiment": "figure5",
                "scenario": asdict(scenario),
                "p": p,
                "version": version,
            },
            label=f"figure5/p{p}/{version}",
        )
        for p in scenario.proc_counts
        for version in ("unbalanced", "balanced")
    ]
    payloads = engine.map(tasks)
    for i, p in enumerate(scenario.proc_counts):
        unbalanced, balanced = payloads[2 * i], payloads[2 * i + 1]
        result.time_unbalanced.append(unbalanced["time"])
        result.time_balanced.append(balanced["time"])
        result.migrations.append(balanced["migrations"])
    return result
