"""Figure 5: execution time vs processors, with and without load balancing.

Paper result: on a local homogeneous cluster both versions scale very
well, with the balanced version a large constant factor below the
unbalanced one (time ratio 6.2–7.4, average 6.8).

Our reproduction: same platform regime and strong-scaling protocol on
the activity-concentration workload (see
:class:`repro.workloads.scenarios.Figure5Scenario` for why the synthetic
problem stands in for the Brusselator here).  The shape criteria checked
by the integration tests: both series decrease with p, and the balanced
series sits below the unbalanced one at every p ≥ 4 with a
substantially-greater-than-1 ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.plots import ascii_plot
from repro.analysis.reporting import format_table
from repro.core.lb import run_balanced_aiac
from repro.core.solver import run_aiac
from repro.workloads.scenarios import Figure5Scenario

__all__ = ["Figure5Result", "run_figure5"]


@dataclass(slots=True)
class Figure5Result:
    """One row per processor count: times of both versions and the ratio."""

    proc_counts: list[int]
    time_unbalanced: list[float]
    time_balanced: list[float]
    migrations: list[int] = field(default_factory=list)

    @property
    def ratios(self) -> list[float]:
        return [
            u / b for u, b in zip(self.time_unbalanced, self.time_balanced)
        ]

    @property
    def mean_ratio(self) -> float:
        ratios = self.ratios
        return sum(ratios) / len(ratios)

    def report(self) -> str:
        rows = [
            (p, tu, tb, r, m)
            for p, tu, tb, r, m in zip(
                self.proc_counts,
                self.time_unbalanced,
                self.time_balanced,
                self.ratios,
                self.migrations,
            )
        ]
        table = format_table(
            ["procs", "without LB (s)", "with LB (s)", "ratio", "migrations"],
            rows,
        )
        plot = ascii_plot(
            {
                "without LB": (self.proc_counts, self.time_unbalanced),
                "with LB": (self.proc_counts, self.time_balanced),
            },
            log_x=True,
            log_y=True,
            title="execution time (s) vs processors",
            width=56,
            height=14,
        )
        return (
            "Figure 5 — homogeneous cluster, time vs processors\n"
            f"{table}\n"
            f"mean ratio: {self.mean_ratio:.2f}   "
            "(paper: 6.2-7.4, average 6.8)\n"
            f"{plot}"
        )


def run_figure5(
    scenario: Figure5Scenario | None = None, *, sidecar=None
) -> Figure5Result:
    """Run the full Figure 5 sweep; use ``Figure5Scenario.quick()`` for CI.

    ``sidecar`` optionally attaches a
    :class:`~repro.obs.harness.MetricsSidecar`: every run's metrics are
    scraped into it under ``run="p{p}/{version}"`` labels.
    """
    scenario = scenario if scenario is not None else Figure5Scenario()
    result = Figure5Result(
        proc_counts=list(scenario.proc_counts),
        time_unbalanced=[],
        time_balanced=[],
        migrations=[],
    )
    for p in scenario.proc_counts:
        platform = scenario.platform(p)
        config = scenario.solver_config()
        unbalanced = run_aiac(scenario.problem(), platform, config)
        balanced = run_balanced_aiac(
            scenario.problem(), platform, config, scenario.lb_config()
        )
        if not (unbalanced.converged and balanced.converged):
            raise RuntimeError(
                f"figure5 run did not converge at p={p}: "
                f"unbalanced={unbalanced.converged}, balanced={balanced.converged}"
            )
        if sidecar is not None:
            sidecar.collect(unbalanced, run=f"p{p}/unbalanced")
            sidecar.collect(balanced, run=f"p{p}/balanced")
        result.time_unbalanced.append(unbalanced.time)
        result.time_balanced.append(balanced.time)
        result.migrations.append(balanced.n_migrations)
    return result
