"""Integrity experiment: silent corruption vs detection and recovery.

The resilience sweep (:mod:`repro.experiments.resilience`) injects
*visible* faults — lost messages, dead hosts — that the paper's
machinery was designed around.  This experiment injects the faults
nobody designed for: values that rot silently, in a halo message on
the wire (:class:`~repro.faults.models.PayloadCorruption`), in a live
solver block or a saved checkpoint
(:class:`~repro.faults.models.StateCorruption`).  Each corruption
schedule of :class:`~repro.workloads.scenarios.IntegrityScenario` runs
under every execution model **twice**: the ``detect`` arm with the
data-integrity layer armed (per-message checksums + RTO refetch,
checkpoint CRC verification, numerical-plausibility rollback) and the
``blind`` arm with it off, measuring what the asynchronous iteration
absorbs unaided.

Each run is reduced to an *outcome*:

* ``clean``     — no corruption was injected (the baseline row);
* ``recovered`` — corruption detected, answer correct;
* ``masked``    — corruption escaped detection, yet the answer is
  still correct (the contractive fixed-point iterated the poison
  away, or a later checkpoint overwrote it before any restore);
* ``stalled``   — the run hit its time budget without converging
  (loud degradation, not silent failure);
* ``crashed``   — blind arm only: the corrupted values violated a
  handler contract (e.g. bit-flipped migration bounds) and the run
  died with an exception.  Loud, and exactly what the detect arm's
  verify-on-receive prevents — a mismatched checksum never reaches
  the handler;
* ``WRONG``     — the run *converged* to an answer farther than
  ``error_tol`` from the sequential reference.  This is the silent
  failure the layer exists to rule out: ``bench_integrity --check``
  asserts it never occurs while detection is armed.

All quantities in the rows are virtual-time/deterministic, so the
report digest is byte-stable across runs, hosts, worker pools and
caches — the same contract as every other sweep in the repo.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.analysis.perf import save_report, stable_digest
from repro.analysis.reporting import format_table
from repro.core.lb import run_balanced_aiac
from repro.core.records import RunResult
from repro.core.solver import run_aiac
from repro.faults import FaultInjector
from repro.guard import GuardConfig, InvariantMonitor
from repro.models.siac import run_siac
from repro.models.sisc import run_sisc
from repro.workloads.scenarios import IntegrityScenario

__all__ = ["IntegrityResult", "run_integrity"]

#: Injector counters copied into each row, in report order.
_STAT_COLUMNS = (
    "corruptions_injected",
    "corruptions_detected",
    "corruption_rollbacks",
    "retries",
)


@dataclass(slots=True)
class IntegrityResult:
    """All rows of one integrity sweep."""

    scenario: IntegrityScenario
    rows: list[dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def row(self, arm: str, schedule: str, model: str) -> dict[str, Any] | None:
        for row in self.rows:
            if (
                row["arm"] == arm
                and row["schedule"] == schedule
                and row["model"] == model
            ):
                return row
        return None

    def wrong_detected_rows(self) -> list[dict[str, Any]]:
        """Detect-arm rows that silently converged to a wrong answer.

        The benchmark gate: this list must be empty."""
        return [
            row
            for row in self.rows
            if row["arm"] == "detect" and row["outcome"] == "WRONG"
        ]

    def clean_arm_mismatches(self) -> list[str]:
        """Zero-corruption rows that differ between the two arms.

        With no corruption fault scheduled, ``integrity_checks`` is
        inert by design — no checksum is stamped, no extra RNG stream
        is drawn — so the ``none`` schedule must produce bit-identical
        rows whether detection is armed or not."""
        mismatches = []
        for model in self.scenario.models:
            detect = self.row("detect", "none", model)
            blind = self.row("blind", "none", model)
            if detect is None or blind is None:
                continue
            a = {k: v for k, v in detect.items() if k != "arm"}
            b = {k: v for k, v in blind.items() if k != "arm"}
            if a != b:
                mismatches.append(model)
        return mismatches

    def digest(self) -> str:
        """Reproducibility fingerprint of the sweep (virtual time only)."""
        return stable_digest({"rows": self.rows})

    def to_dict(self) -> dict[str, Any]:
        return {
            "title": "integrity: silent corruption vs detection/recovery",
            "scenario": asdict(self.scenario),
            "rows": self.rows,
            "digest": self.digest(),
        }

    def save_json(self, path: str) -> None:
        """Write ``BENCH_integrity.json`` (sorted keys, no wall-clock)."""
        save_report(path, self.to_dict())

    # ------------------------------------------------------------------
    def report(self) -> str:
        headers = [
            "arm", "schedule", "model", "conv", "time (s)", "max err",
            "inj", "det", "rollb", "outcome",
        ]
        table_rows = [
            (
                row["arm"],
                row["schedule"],
                row["model"],
                "yes" if row["converged"] else "NO",
                row["time"] if row["time"] is not None else "-",
                f"{row['max_error']:.2e}"
                if row["max_error"] is not None
                else "-",
                row["corruptions_injected"],
                row["corruptions_detected"],
                row["corruption_rollbacks"],
                row["outcome"],
            )
            for row in self.rows
        ]
        lines = [
            "Integrity — corruption schedules x models x detection arms",
            format_table(headers, table_rows),
            self._recall_summary(),
            f"digest: {self.digest()}",
        ]
        wrong = self.wrong_detected_rows()
        if wrong:
            lines.append(
                f"GATE VIOLATION: {len(wrong)} undetected wrong answer(s) "
                "with detection armed: "
                + ", ".join(f"{r['schedule']}/{r['model']}" for r in wrong)
            )
        else:
            lines.append(
                "gate: zero wrong answers with detection armed"
            )
        return "\n".join(lines)

    def _recall_summary(self) -> str:
        """Per (arm, schedule) aggregate: recall and outcome counts."""
        keys: list[tuple[str, str]] = []
        for row in self.rows:
            key = (row["arm"], row["schedule"])
            if row["schedule"] != "none" and key not in keys:
                keys.append(key)
        table = []
        for arm, schedule in keys:
            rows = [
                r
                for r in self.rows
                if r["arm"] == arm and r["schedule"] == schedule
            ]
            injected = sum(r["corruptions_injected"] for r in rows)
            detected = sum(r["corruptions_detected"] for r in rows)
            recall = f"{detected / injected:.2f}" if injected else "-"
            wrong = sum(r["outcome"] == "WRONG" for r in rows)
            table.append(
                (
                    arm,
                    schedule,
                    injected,
                    detected,
                    recall,
                    sum(r["outcome"] == "recovered" for r in rows),
                    sum(r["outcome"] == "masked" for r in rows),
                    sum(r["outcome"] == "stalled" for r in rows),
                    sum(r["outcome"] == "crashed" for r in rows),
                    wrong,
                )
            )
        return format_table(
            ["arm", "schedule", "inj", "det", "recall",
             "recov", "masked", "stalled", "crash", "WRONG"],
            table,
        )


def _run_model(
    model: str, scenario: IntegrityScenario, injector: FaultInjector
) -> RunResult:
    """One solve of ``model`` with the prepared (single-use) injector.

    The invariant monitor (which hosts the plausibility guard) is
    attached to *every* run, both arms: its divergence watchdog is part
    of the baseline solver behaviour, while the plausibility screens
    engage only when the injector's detection layer is armed — so the
    arm contrast isolates exactly the integrity machinery.
    """
    problem = scenario.problem()
    platform = scenario.platform()
    config = scenario.solver_config()
    guard = InvariantMonitor(scenario.guard_config())
    if model == "aiac+lb":
        result = run_balanced_aiac(
            problem, platform, config, scenario.lb_config(),
            injector=injector, guard=guard,
        )
    elif model == "aiac":
        result = run_aiac(
            problem, platform, config, injector=injector, guard=guard
        )
    elif model == "siac":
        result = run_siac(
            problem, platform, config, injector=injector, guard=guard
        )
    elif model == "sisc":
        result = run_sisc(
            problem, platform, config, injector=injector, guard=guard
        )
    else:
        raise ValueError(f"unknown model {model!r}")
    return result


def _classify(
    converged: bool, max_error: float, injected: int, detected: int,
    error_tol: float,
) -> str:
    if injected == 0:
        return "clean"
    if converged and max_error > error_tol:
        return "WRONG"
    if not converged:
        return "stalled"
    return "recovered" if detected else "masked"


def _make_row(
    arm: str,
    schedule_name: str,
    model: str,
    result: RunResult,
    reference,
    stats: dict[str, int],
    error_tol: float,
) -> dict[str, Any]:
    max_error = float(result.max_error_vs(reference))
    row: dict[str, Any] = {
        "arm": arm,
        "schedule": schedule_name,
        "model": model,
        "converged": bool(result.converged),
        "time": float(result.time),
        "iterations": int(result.total_iterations),
        # None, not inf: the report JSON stays strict-parseable (a
        # non-finite error only happens on non-converged blind runs).
        "max_error": max_error if math.isfinite(max_error) else None,
    }
    for key in _STAT_COLUMNS:
        row[key] = int(stats.get(key, 0))
    row["outcome"] = _classify(
        row["converged"],
        max_error,
        row["corruptions_injected"],
        row["corruptions_detected"],
        error_tol,
    )
    return row


def _sweep_task(
    scenario: IntegrityScenario, arm: str, schedule_name: str, model: str
) -> dict[str, Any]:
    """Engine task: one (arm, schedule, model) run reduced to its row.

    Top-level (picklable by reference) so the sweep engine's worker
    pool can run it; the sequential reference is recomputed per task —
    a deterministic function of the scenario, identical on every path.

    A blind-arm run may *crash*: unchecked corrupted values can violate
    a handler contract (bit-flipped migration bounds, for instance).
    That is a loud failure worth a row of its own — with detection
    armed the same corruption is rejected at receive time, so a
    detect-arm crash is a genuine bug and propagates.
    """
    from repro.des.simulator import SimulationError

    injector = FaultInjector(
        scenario.schedule(schedule_name, detect=(arm == "detect"))
    )
    try:
        result = _run_model(model, scenario, injector)
    except SimulationError as exc:
        if arm != "blind":
            raise
        row: dict[str, Any] = {
            "arm": arm,
            "schedule": schedule_name,
            "model": model,
            "converged": False,
            "time": None,
            "iterations": 0,
            "max_error": None,
        }
        for key in _STAT_COLUMNS:
            row[key] = int(injector.stats.get(key, 0))
        row["outcome"] = "crashed"
        row["crash"] = type(exc.__cause__ or exc).__name__
        return row
    reference = scenario.problem().reference_solution()
    return _make_row(
        arm, schedule_name, model, result, reference, injector.stats,
        scenario.error_tol,
    )


def run_integrity(
    scenario: IntegrityScenario | None = None, *, engine=None
) -> IntegrityResult:
    """Run the integrity sweep; ``IntegrityScenario.quick()`` for CI.

    ``engine`` optionally supplies a :class:`~repro.exec.SweepEngine`:
    the (arm, schedule, model) grid fans out over its worker pool
    and/or is served from its run cache, with rows merged in grid order
    so the report and its digest are byte-identical to the serial path.
    """
    from repro.exec import SweepEngine, Task

    scenario = scenario if scenario is not None else IntegrityScenario()
    out = IntegrityResult(scenario=scenario)
    engine = engine if engine is not None else SweepEngine()
    scenario_key = asdict(scenario)
    tasks = [
        Task(
            fn=_sweep_task,
            args=(scenario, arm, schedule_name, model),
            key={
                "experiment": "integrity",
                "scenario": scenario_key,
                "arm": arm,
                "schedule": schedule_name,
                "model": model,
            },
            label=f"integrity/{arm}/{schedule_name}/{model}",
        )
        for arm, schedule_name, model in scenario.grid()
    ]
    out.rows.extend(engine.map(tasks))
    return out
