"""Resilience experiment: execution models under injected faults.

The paper argues (§2, §6) that the coupling of asynchronism with
decentralized load balancing is what makes iterative algorithms viable
on an unreliable computational grid.  This experiment makes the
unreliability explicit: every named fault schedule of
:class:`~repro.workloads.scenarios.ResilienceScenario` (message loss,
duplication/reordering, a crash with restart, a network partition, a
host slowdown) is run under each execution model, and three things are
recorded per run:

* **time-to-convergence** in virtual seconds, plus its ratio to the same
  model's fault-free (``none`` schedule) time — the degradation caused
  by the faults;
* **solution correctness** — the infinity-norm error against the heat
  problem's sequential reference, so a run that "converges" to a wrong
  answer is caught;
* **fault/recovery accounting** — drops, retries, crashes/restarts,
  failed sends, migrations and re-absorbed orphan blocks.

The rows contain only virtual-time quantities, so the report's
:func:`~repro.analysis.perf.stable_digest` is identical across repeated
runs of the same scenario — the determinism guarantee CI checks by
running the tiny sweep twice.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from repro.analysis.perf import save_report, stable_digest
from repro.analysis.reporting import format_table
from repro.core.lb import run_balanced_aiac
from repro.core.records import RunResult
from repro.core.solver import run_aiac
from repro.faults import FaultInjector
from repro.models.siac import run_siac
from repro.models.sisc import run_sisc
from repro.workloads.scenarios import ResilienceScenario

__all__ = ["ResilienceResult", "run_resilience"]

#: Stat counters copied from the injector into each row, in report order.
_STAT_COLUMNS = (
    "messages_dropped",
    "acks_dropped",
    "duplicates_injected",
    "reorders_injected",
    "retries",
    "sends_failed",
    "crashes",
    "restarts",
)


@dataclass(slots=True)
class ResilienceResult:
    """All rows of one resilience sweep plus the headline Gantt."""

    scenario: ResilienceScenario
    rows: list[dict[str, Any]] = field(default_factory=list)
    headline_gantt: str = ""

    # ------------------------------------------------------------------
    def baseline_time(self, model: str) -> float | None:
        for row in self.rows:
            if row["schedule"] == "none" and row["model"] == model:
                return float(row["time"])
        return None

    def row(self, schedule: str, model: str) -> dict[str, Any] | None:
        for row in self.rows:
            if row["schedule"] == schedule and row["model"] == model:
                return row
        return None

    def digest(self) -> str:
        """Reproducibility fingerprint of the sweep (virtual time only)."""
        return stable_digest({"rows": self.rows})

    def to_dict(self) -> dict[str, Any]:
        return {
            "title": "resilience: execution models under injected faults",
            "scenario": asdict(self.scenario),
            "rows": self.rows,
            "digest": self.digest(),
        }

    def save_json(self, path: str) -> None:
        """Write ``BENCH_resilience.json`` (sorted keys, no wall-clock)."""
        save_report(path, self.to_dict())

    # ------------------------------------------------------------------
    def report(self) -> str:
        headers = [
            "schedule", "model", "conv", "time (s)", "x clean",
            "max err", "drops", "retries", "crash/rst", "migr", "reabs",
        ]
        table_rows = []
        for row in self.rows:
            base = self.baseline_time(row["model"])
            ratio = (
                f"{row['time'] / base:.2f}"
                if base and row["schedule"] != "none"
                else "-"
            )
            table_rows.append(
                (
                    row["schedule"],
                    row["model"],
                    "yes" if row["converged"] else "NO",
                    row["time"],
                    ratio,
                    f"{row['max_error']:.2e}",
                    row["messages_dropped"] + row["acks_dropped"],
                    row["retries"],
                    f"{row['crashes']}/{row['restarts']}",
                    row["n_migrations"],
                    row["reabsorbed"],
                )
            )
        lines = [
            "Resilience — fault schedules x execution models",
            format_table(headers, table_rows),
            f"digest: {self.digest()}",
        ]
        headline = self.row(self.scenario.headline, "aiac+lb")
        if headline is not None:
            status = "converged" if headline["converged"] else "DID NOT CONVERGE"
            lines.append(
                f"headline ({self.scenario.headline}, aiac+lb): {status} "
                f"at t={headline['time']:.2f}s, "
                f"max error {headline['max_error']:.2e}"
            )
        if self.headline_gantt:
            lines.append(self.headline_gantt)
        return "\n".join(lines)


def _run_model(
    model: str,
    scenario: ResilienceScenario,
    schedule_name: str,
    *,
    trace: bool = False,
    profiler=None,
) -> tuple[RunResult, FaultInjector]:
    """One solve of ``model`` under the named fault schedule.

    Problem, platform and injector are built fresh per run: injectors
    are single-use (they hold per-run RNG streams and counters) and the
    platform's host/link state is mutated by timed faults.  ``profiler``
    optionally attaches a :class:`~repro.obs.profile.SimProfiler`
    (AIAC models only — the synchronous drivers take no profiler).
    """
    problem = scenario.problem()
    platform = scenario.platform()
    config = scenario.solver_config(trace=trace)
    injector = FaultInjector(scenario.schedule(schedule_name))
    if model == "aiac+lb":
        result = run_balanced_aiac(
            problem, platform, config, scenario.lb_config(),
            injector=injector, profiler=profiler,
        )
    elif model == "aiac":
        result = run_aiac(
            problem, platform, config, injector=injector, profiler=profiler
        )
    elif model == "siac":
        result = run_siac(problem, platform, config, injector=injector)
    elif model == "sisc":
        result = run_sisc(problem, platform, config, injector=injector)
    else:
        raise ValueError(f"unknown model {model!r}")
    return result, injector


def _make_row(
    schedule_name: str,
    model: str,
    result: RunResult,
    reference,
    stats: dict[str, int],
) -> dict[str, Any]:
    row: dict[str, Any] = {
        "schedule": schedule_name,
        "model": model,
        "converged": bool(result.converged),
        "time": float(result.time),
        "iterations": int(result.total_iterations),
        "max_error": float(result.max_error_vs(reference)),
        "n_migrations": int(result.n_migrations),
        "reabsorbed": int(result.meta.get("reabsorbed", 0)),
        "offers_timed_out": int(result.meta.get("offers_timed_out", 0)),
    }
    for key in _STAT_COLUMNS:
        row[key] = int(stats.get(key, 0))
    return row


def _sweep_task(
    scenario: ResilienceScenario, schedule_name: str, model: str
) -> dict[str, Any]:
    """Engine task: one (schedule, model) run reduced to its report row.

    Top-level (picklable by reference) so the sweep engine's worker
    pool can run it; the sequential reference is recomputed per task —
    it is a deterministic function of the scenario, so every path sees
    the same values.
    """
    result, injector = _run_model(model, scenario, schedule_name)
    reference = scenario.problem().reference_solution()
    return _make_row(schedule_name, model, result, reference, injector.stats)


def run_resilience(
    scenario: ResilienceScenario | None = None, *, sidecar=None, engine=None
) -> ResilienceResult:
    """Run the resilience sweep; ``ResilienceScenario.tiny()`` for CI.

    ``engine`` optionally supplies a :class:`~repro.exec.SweepEngine`:
    the (schedule, model) grid fans out over its worker pool and/or is
    served from its run cache, with rows merged in grid order so the
    report and its digest are byte-identical to the serial path.  The
    traced headline run always executes in process (it feeds the Gantt
    renderer a live tracer) and is never cached.

    ``sidecar`` optionally attaches a
    :class:`~repro.obs.harness.MetricsSidecar`: every sweep run's
    metrics (including the injector's counters) are scraped into it
    under ``run="{schedule}/{model}"`` labels.  An observed sweep
    always executes serially in process, bypassing pool and cache.
    """
    from repro.exec import SweepEngine, Task

    scenario = scenario if scenario is not None else ResilienceScenario()
    out = ResilienceResult(scenario=scenario)
    if sidecar is not None:
        reference = scenario.problem().reference_solution()
        for schedule_name in scenario.schedule_names:
            for model in scenario.models:
                # The headline run is re-traced below; sweep runs stay lean.
                result, injector = _run_model(model, scenario, schedule_name)
                sidecar.collect(
                    result,
                    run=f"{schedule_name}/{model}",
                    injector=injector,
                )
                out.rows.append(
                    _make_row(
                        schedule_name, model, result, reference, injector.stats
                    )
                )
    else:
        engine = engine if engine is not None else SweepEngine()
        scenario_key = asdict(scenario)
        tasks = [
            Task(
                fn=_sweep_task,
                args=(scenario, schedule_name, model),
                key={
                    "experiment": "resilience",
                    "scenario": scenario_key,
                    "schedule": schedule_name,
                    "model": model,
                },
                label=f"resilience/{schedule_name}/{model}",
            )
            for schedule_name in scenario.schedule_names
            for model in scenario.models
        ]
        out.rows.extend(engine.map(tasks))
    if scenario.headline in scenario.schedule_names:
        from repro.analysis.gantt import render_gantt

        traced, _ = _run_model(
            "aiac+lb", scenario, scenario.headline, trace=True
        )
        out.headline_gantt = render_gantt(traced, width=80)
    return out
