"""Ablations of the design choices DESIGN.md §6 calls out.

The paper's §6 lists the conditions for effective load balancing —
frequency "neither too high nor too low", the estimator design, and the
accuracy/network-load trade-off — without quantifying them.  Each
function here sweeps one knob on a fixed scenario and returns
``(value, time, migrations)`` rows, so `bench_ablations` can print the
actual trade-off curves.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Sequence

from repro.analysis.reporting import format_table
from repro.core.config import LBConfig, SolverConfig
from repro.core.lb import run_balanced_aiac
from repro.core.solver import run_aiac
from repro.workloads.scenarios import Figure5Scenario


def _engine_or_serial(engine):
    """The caller's engine, or the default serial in-process one."""
    from repro.exec import SweepEngine

    return engine if engine is not None else SweepEngine()

__all__ = [
    "AblationResult",
    "sweep_lb_period",
    "sweep_threshold_ratio",
    "sweep_accuracy",
    "sweep_estimator",
    "sweep_min_components",
    "compare_adaptive_period",
    "compare_detection_protocols",
    "compare_skip_optimisation",
]


@dataclass(slots=True)
class AblationResult:
    """Rows of one ablation sweep."""

    name: str
    parameter: str
    values: list[Any]
    times: list[float]
    migrations: list[int]
    extra: dict[str, list[Any]]

    def best(self) -> Any:
        """Parameter value with the lowest time."""
        return self.values[self.times.index(min(self.times))]

    def report(self) -> str:
        headers = [self.parameter, "time (s)", "migrations"]
        columns = [self.values, self.times, self.migrations]
        for key, col in self.extra.items():
            headers.append(key)
            columns.append(col)
        rows = list(zip(*columns))
        return f"{self.name}\n" + format_table(headers, rows) + (
            f"\nbest: {self.parameter} = {self.best()}"
        )


def _default_setup(n_procs: int = 8):
    scenario = Figure5Scenario.quick()
    problem_factory = scenario.problem
    platform = scenario.platform(n_procs)
    config = scenario.solver_config()
    base_lb = scenario.lb_config()
    return problem_factory, platform, config, base_lb


def _sweep_task(
    n_procs: int, parameter: str, value: Any, fixed: dict[str, Any]
) -> dict[str, Any]:
    """Engine task: one balanced run at one knob setting.

    The whole setup is rebuilt from the (deterministic, RNG-free)
    default scenario inside the task, so the worker-pool path computes
    exactly what the serial loop computed.
    """
    problem_factory, platform, config, base_lb = _default_setup(n_procs)
    lb = replace(base_lb, **{parameter: value}, **fixed)
    run = run_balanced_aiac(problem_factory(), platform, config, lb)
    if not run.converged:
        raise RuntimeError(f"ablation run with {parameter}={value} diverged")
    return {"time": run.time, "migrations": run.n_migrations}


def _sweep(
    name: str,
    parameter: str,
    values: Sequence[Any],
    *,
    n_procs: int = 8,
    engine=None,
    **fixed,
) -> AblationResult:
    from repro.exec import Task

    engine = _engine_or_serial(engine)
    result = AblationResult(
        name=name,
        parameter=parameter,
        values=list(values),
        times=[],
        migrations=[],
        extra={},
    )
    tasks = [
        Task(
            fn=_sweep_task,
            args=(n_procs, parameter, value, dict(fixed)),
            key={
                "experiment": "ablation-sweep",
                "scenario": asdict(Figure5Scenario.quick()),
                "n_procs": n_procs,
                "parameter": parameter,
                "value": value,
                "fixed": dict(fixed),
            },
            label=f"ablation/{parameter}={value}",
        )
        for value in values
    ]
    for payload in engine.map(tasks):
        result.times.append(payload["time"])
        result.migrations.append(payload["migrations"])
    return result


def sweep_lb_period(
    values: Sequence[int] = (1, 5, 20, 80, 320),
    *,
    n_procs: int = 8,
    engine=None,
) -> AblationResult:
    """§6: frequency "neither too high ... nor too low"."""
    return _sweep(
        "LB frequency (OkToTryLB period)", "period", values,
        n_procs=n_procs, engine=engine,
    )


def sweep_threshold_ratio(
    values: Sequence[float] = (1.2, 2.0, 3.0, 8.0, 64.0),
    *,
    n_procs: int = 8,
    engine=None,
) -> AblationResult:
    """Trigger sensitivity (Algorithm 5's ThresholdRatio)."""
    return _sweep(
        "trigger threshold (ThresholdRatio)",
        "threshold_ratio",
        values,
        n_procs=n_procs,
        engine=engine,
    )


def sweep_accuracy(
    values: Sequence[float] = (0.1, 0.25, 0.5, 1.0),
    *,
    n_procs: int = 8,
    engine=None,
) -> AblationResult:
    """§6: coarse vs accurate balancing (amount of data migrated)."""
    return _sweep(
        "migration accuracy", "accuracy", values,
        n_procs=n_procs, engine=engine,
    )


def sweep_min_components(
    values: Sequence[int] = (2, 4, 8, 16), *, n_procs: int = 8, engine=None
) -> AblationResult:
    """Famine guard (Algorithm 5's ThresholdData)."""
    return _sweep(
        "famine threshold (ThresholdData)",
        "min_components",
        values,
        n_procs=n_procs,
        engine=engine,
    )


def sweep_estimator(
    values: Sequence[str] = (
        "residual",
        "residual_max",
        "iteration_time",
        "component_count",
    ),
    *,
    n_procs: int = 8,
    engine=None,
) -> AblationResult:
    """§5.2: the residual against the estimators the paper dismisses."""
    return _sweep(
        "load estimator", "estimator", values, n_procs=n_procs, engine=engine
    )


def _candidate_task(n_procs: int, name: str, lb: LBConfig) -> dict[str, Any]:
    """Engine task: one named LB-config candidate run."""
    problem_factory, platform, config, _ = _default_setup(n_procs)
    run = run_balanced_aiac(problem_factory(), platform, config, lb)
    if not run.converged:
        raise RuntimeError(f"adaptive ablation: {name} diverged")
    return {
        "time": run.time,
        "migrations": run.n_migrations,
        "offers": run.meta["offers_sent"],
    }


def compare_adaptive_period(*, n_procs: int = 8, engine=None) -> AblationResult:
    """Fixed trial periods vs the adaptive controller (paper future work).

    The adaptive variant should be competitive with the best fixed
    period while sending fewer offers once the system is balanced.
    """
    from repro.exec import Task

    engine = _engine_or_serial(engine)
    _, _, _, base_lb = _default_setup(n_procs)
    result = AblationResult(
        name="adaptive LB frequency (paper's future work)",
        parameter="mode",
        values=[],
        times=[],
        migrations=[],
        extra={"offers": []},
    )
    candidates: list[tuple[str, LBConfig]] = [
        ("fixed-5", replace(base_lb, period=5)),
        ("fixed-20", replace(base_lb, period=20)),
        ("fixed-80", replace(base_lb, period=80)),
        (
            "adaptive",
            # A bounded ceiling keeps the controller's worst-case
            # reaction lag at 20 sweeps; with an unbounded ceiling the
            # quiet early phase parks the period at its maximum and the
            # onset of imbalance is caught late (measured: ~35% slower).
            replace(base_lb, period=5, adaptive=True, period_min=2, period_max=20),
        ),
    ]
    tasks = [
        Task(
            fn=_candidate_task,
            args=(n_procs, name, lb),
            key={
                "experiment": "ablation-adaptive",
                "scenario": asdict(Figure5Scenario.quick()),
                "n_procs": n_procs,
                "candidate": name,
                "lb": asdict(lb),
            },
            label=f"ablation/adaptive/{name}",
        )
        for name, lb in candidates
    ]
    for (name, _), payload in zip(candidates, engine.map(tasks)):
        result.values.append(name)
        result.times.append(payload["time"])
        result.migrations.append(payload["migrations"])
        result.extra["offers"].append(payload["offers"])
    return result


def _skip_task(skip: bool) -> dict[str, Any]:
    """Engine task: one Brusselator run with/without the converged skip."""
    from repro.grid.host import Host
    from repro.grid.link import Link
    from repro.grid.network import Network
    from repro.grid.platform import Platform
    from repro.problems.brusselator import BrusselatorProblem

    def problem(skip_converged: bool) -> BrusselatorProblem:
        # skip_threshold sits *above* the solver tolerance (1e-7): a
        # skipped component's inputs change by < 1e-5, a staleness the
        # refresh period bounds; with the threshold below the tolerance
        # the skip could never engage before the run ends (measured).
        return BrusselatorProblem(
            48,
            t_end=4.0,
            n_steps=30,
            skip_converged=skip_converged,
            skip_threshold=1e-5,
            refresh_period=20,
        )

    network = Network(Link(latency=1e-4, bandwidth=1e8))
    platform = Platform(
        hosts=[
            Host("fast-0", 40_000.0),
            Host("fast-1", 40_000.0),
            Host("fast-2", 40_000.0),
            Host("slow", 5_000.0),
        ],
        network=network,
    )
    # The throttle keeps fully-skipped ranks from spinning thousands of
    # near-free sweeps per virtual second (see SolverConfig docs).
    config = SolverConfig(
        tolerance=1e-7,
        max_iterations=40_000,
        trace=True,
        min_sweep_duration=0.01,
    )
    run = run_aiac(problem(skip), platform, config)
    if not run.converged:
        raise RuntimeError(f"skip={skip} run diverged")
    reference = problem(False).reference_solution()
    return {
        "time": run.time,
        "migrations": run.n_migrations,
        "work": sum(span.work for span in run.tracer.iterations),
        "max_error": run.max_error_vs(reference),
    }


def compare_skip_optimisation(*, engine=None) -> AblationResult:
    """Brusselator with/without the converged-component skip.

    On a *homogeneous* platform the Brusselator's components quiesce
    together and the skip never engages (measured: identical work — the
    honest finding of EXPERIMENTS.md).  The regime where it bites is
    asynchrony-induced non-uniformity: on a two-speed platform the fast
    ranks' components sit fully converged while the slow rank grinds,
    and skipping makes those verification sweeps nearly free.  The skip
    variant must produce the same trajectories with less total numerical
    work.
    """
    from repro.exec import Task

    engine = _engine_or_serial(engine)
    result = AblationResult(
        name="Brusselator converged-component skip",
        parameter="skip_converged",
        values=[],
        times=[],
        migrations=[],
        extra={"total work": [], "max error": []},
    )
    tasks = [
        Task(
            fn=_skip_task,
            args=(skip,),
            key={"experiment": "ablation-skip", "skip": skip},
            label=f"ablation/skip={skip}",
        )
        for skip in (False, True)
    ]
    for skip, payload in zip((False, True), engine.map(tasks)):
        result.values.append(skip)
        result.times.append(payload["time"])
        result.migrations.append(payload["migrations"])
        result.extra["total work"].append(payload["work"])
        result.extra["max error"].append(payload["max_error"])
    return result


def _detection_task(n_procs: int, detection: str) -> dict[str, Any]:
    """Engine task: one run under one convergence-detection protocol."""
    problem_factory, platform, config, _ = _default_setup(n_procs)
    cfg = replace(config, detection=detection)
    run = run_aiac(problem_factory(), platform, cfg)
    if not run.converged:
        raise RuntimeError(f"detection={detection} run diverged")
    oracle_time = run.meta["oracle_detection_time"]
    overhead = (
        run.time - oracle_time if oracle_time is not None else float("nan")
    )
    return {
        "time": run.time,
        "migrations": run.n_migrations,
        "messages": run.meta["detection_messages"],
        "overhead": overhead,
    }


def compare_detection_protocols(
    *, n_procs: int = 8, engine=None
) -> AblationResult:
    """Oracle vs decentralized token-ring convergence detection."""
    from repro.exec import Task

    engine = _engine_or_serial(engine)
    result = AblationResult(
        name="convergence detection protocol",
        parameter="detection",
        values=[],
        times=[],
        migrations=[],
        extra={"detection messages": [], "overhead (s)": []},
    )
    protocols = ("oracle", "token_ring")
    tasks = [
        Task(
            fn=_detection_task,
            args=(n_procs, detection),
            key={
                "experiment": "ablation-detection",
                "scenario": asdict(Figure5Scenario.quick()),
                "n_procs": n_procs,
                "detection": detection,
            },
            label=f"ablation/detection={detection}",
        )
        for detection in protocols
    ]
    for detection, payload in zip(protocols, engine.map(tasks)):
        result.values.append(detection)
        result.times.append(payload["time"])
        result.migrations.append(payload["migrations"])
        result.extra["detection messages"].append(payload["messages"])
        result.extra["overhead (s)"].append(payload["overhead"])
    return result
