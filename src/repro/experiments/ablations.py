"""Ablations of the design choices DESIGN.md §6 calls out.

The paper's §6 lists the conditions for effective load balancing —
frequency "neither too high nor too low", the estimator design, and the
accuracy/network-load trade-off — without quantifying them.  Each
function here sweeps one knob on a fixed scenario and returns
``(value, time, migrations)`` rows, so `bench_ablations` can print the
actual trade-off curves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Sequence

from repro.analysis.reporting import format_table
from repro.core.config import LBConfig, SolverConfig
from repro.core.lb import run_balanced_aiac
from repro.core.solver import run_aiac
from repro.workloads.scenarios import Figure5Scenario

__all__ = [
    "AblationResult",
    "sweep_lb_period",
    "sweep_threshold_ratio",
    "sweep_accuracy",
    "sweep_estimator",
    "sweep_min_components",
    "compare_adaptive_period",
    "compare_detection_protocols",
    "compare_skip_optimisation",
]


@dataclass(slots=True)
class AblationResult:
    """Rows of one ablation sweep."""

    name: str
    parameter: str
    values: list[Any]
    times: list[float]
    migrations: list[int]
    extra: dict[str, list[Any]]

    def best(self) -> Any:
        """Parameter value with the lowest time."""
        return self.values[self.times.index(min(self.times))]

    def report(self) -> str:
        headers = [self.parameter, "time (s)", "migrations"]
        columns = [self.values, self.times, self.migrations]
        for key, col in self.extra.items():
            headers.append(key)
            columns.append(col)
        rows = list(zip(*columns))
        return f"{self.name}\n" + format_table(headers, rows) + (
            f"\nbest: {self.parameter} = {self.best()}"
        )


def _default_setup(n_procs: int = 8):
    scenario = Figure5Scenario.quick()
    problem_factory = scenario.problem
    platform = scenario.platform(n_procs)
    config = scenario.solver_config()
    base_lb = scenario.lb_config()
    return problem_factory, platform, config, base_lb


def _sweep(
    name: str,
    parameter: str,
    values: Sequence[Any],
    *,
    n_procs: int = 8,
    **fixed,
) -> AblationResult:
    problem_factory, platform, config, base_lb = _default_setup(n_procs)
    result = AblationResult(
        name=name,
        parameter=parameter,
        values=list(values),
        times=[],
        migrations=[],
        extra={},
    )
    for value in values:
        lb = replace(base_lb, **{parameter: value}, **fixed)
        run = run_balanced_aiac(problem_factory(), platform, config, lb)
        if not run.converged:
            raise RuntimeError(f"{name}: run with {parameter}={value} diverged")
        result.times.append(run.time)
        result.migrations.append(run.n_migrations)
    return result


def sweep_lb_period(
    values: Sequence[int] = (1, 5, 20, 80, 320), *, n_procs: int = 8
) -> AblationResult:
    """§6: frequency "neither too high ... nor too low"."""
    return _sweep(
        "LB frequency (OkToTryLB period)", "period", values, n_procs=n_procs
    )


def sweep_threshold_ratio(
    values: Sequence[float] = (1.2, 2.0, 3.0, 8.0, 64.0), *, n_procs: int = 8
) -> AblationResult:
    """Trigger sensitivity (Algorithm 5's ThresholdRatio)."""
    return _sweep(
        "trigger threshold (ThresholdRatio)",
        "threshold_ratio",
        values,
        n_procs=n_procs,
    )


def sweep_accuracy(
    values: Sequence[float] = (0.1, 0.25, 0.5, 1.0), *, n_procs: int = 8
) -> AblationResult:
    """§6: coarse vs accurate balancing (amount of data migrated)."""
    return _sweep("migration accuracy", "accuracy", values, n_procs=n_procs)


def sweep_min_components(
    values: Sequence[int] = (2, 4, 8, 16), *, n_procs: int = 8
) -> AblationResult:
    """Famine guard (Algorithm 5's ThresholdData)."""
    return _sweep(
        "famine threshold (ThresholdData)",
        "min_components",
        values,
        n_procs=n_procs,
    )


def sweep_estimator(
    values: Sequence[str] = (
        "residual",
        "residual_max",
        "iteration_time",
        "component_count",
    ),
    *,
    n_procs: int = 8,
) -> AblationResult:
    """§5.2: the residual against the estimators the paper dismisses."""
    return _sweep("load estimator", "estimator", values, n_procs=n_procs)


def compare_adaptive_period(*, n_procs: int = 8) -> AblationResult:
    """Fixed trial periods vs the adaptive controller (paper future work).

    The adaptive variant should be competitive with the best fixed
    period while sending fewer offers once the system is balanced.
    """
    problem_factory, platform, config, base_lb = _default_setup(n_procs)
    result = AblationResult(
        name="adaptive LB frequency (paper's future work)",
        parameter="mode",
        values=[],
        times=[],
        migrations=[],
        extra={"offers": []},
    )
    candidates: list[tuple[str, LBConfig]] = [
        ("fixed-5", replace(base_lb, period=5)),
        ("fixed-20", replace(base_lb, period=20)),
        ("fixed-80", replace(base_lb, period=80)),
        (
            "adaptive",
            # A bounded ceiling keeps the controller's worst-case
            # reaction lag at 20 sweeps; with an unbounded ceiling the
            # quiet early phase parks the period at its maximum and the
            # onset of imbalance is caught late (measured: ~35% slower).
            replace(base_lb, period=5, adaptive=True, period_min=2, period_max=20),
        ),
    ]
    for name, lb in candidates:
        run = run_balanced_aiac(problem_factory(), platform, config, lb)
        if not run.converged:
            raise RuntimeError(f"adaptive ablation: {name} diverged")
        result.values.append(name)
        result.times.append(run.time)
        result.migrations.append(run.n_migrations)
        result.extra["offers"].append(run.meta["offers_sent"])
    return result


def compare_skip_optimisation() -> AblationResult:
    """Brusselator with/without the converged-component skip.

    On a *homogeneous* platform the Brusselator's components quiesce
    together and the skip never engages (measured: identical work — the
    honest finding of EXPERIMENTS.md).  The regime where it bites is
    asynchrony-induced non-uniformity: on a two-speed platform the fast
    ranks' components sit fully converged while the slow rank grinds,
    and skipping makes those verification sweeps nearly free.  The skip
    variant must produce the same trajectories with less total numerical
    work.
    """
    from repro.grid.host import Host
    from repro.grid.link import Link
    from repro.grid.network import Network
    from repro.grid.platform import Platform
    from repro.problems.brusselator import BrusselatorProblem

    def problem(skip: bool) -> BrusselatorProblem:
        # skip_threshold sits *above* the solver tolerance (1e-7): a
        # skipped component's inputs change by < 1e-5, a staleness the
        # refresh period bounds; with the threshold below the tolerance
        # the skip could never engage before the run ends (measured).
        return BrusselatorProblem(
            48,
            t_end=4.0,
            n_steps=30,
            skip_converged=skip,
            skip_threshold=1e-5,
            refresh_period=20,
        )

    network = Network(Link(latency=1e-4, bandwidth=1e8))
    platform = Platform(
        hosts=[
            Host("fast-0", 40_000.0),
            Host("fast-1", 40_000.0),
            Host("fast-2", 40_000.0),
            Host("slow", 5_000.0),
        ],
        network=network,
    )
    # The throttle keeps fully-skipped ranks from spinning thousands of
    # near-free sweeps per virtual second (see SolverConfig docs).
    config = SolverConfig(
        tolerance=1e-7,
        max_iterations=40_000,
        trace=True,
        min_sweep_duration=0.01,
    )
    reference = problem(False).reference_solution()

    result = AblationResult(
        name="Brusselator converged-component skip",
        parameter="skip_converged",
        values=[],
        times=[],
        migrations=[],
        extra={"total work": [], "max error": []},
    )
    for skip in (False, True):
        run = run_aiac(problem(skip), platform, config)
        if not run.converged:
            raise RuntimeError(f"skip={skip} run diverged")
        result.values.append(skip)
        result.times.append(run.time)
        result.migrations.append(run.n_migrations)
        total_work = sum(
            span.work for span in run.tracer.iterations
        )
        result.extra["total work"].append(total_work)
        result.extra["max error"].append(run.max_error_vs(reference))
    return result


def compare_detection_protocols(
    *, n_procs: int = 8
) -> AblationResult:
    """Oracle vs decentralized token-ring convergence detection."""
    problem_factory, platform, config, _ = _default_setup(n_procs)
    result = AblationResult(
        name="convergence detection protocol",
        parameter="detection",
        values=[],
        times=[],
        migrations=[],
        extra={"detection messages": [], "overhead (s)": []},
    )
    for detection in ("oracle", "token_ring"):
        cfg = replace(config, detection=detection)
        run = run_aiac(problem_factory(), platform, cfg)
        if not run.converged:
            raise RuntimeError(f"detection={detection} run diverged")
        result.values.append(detection)
        result.times.append(run.time)
        result.migrations.append(run.n_migrations)
        result.extra["detection messages"].append(
            run.meta["detection_messages"]
        )
        oracle_time = run.meta["oracle_detection_time"]
        overhead = (
            run.time - oracle_time if oracle_time is not None else float("nan")
        )
        result.extra["overhead (s)"].append(overhead)
    return result
