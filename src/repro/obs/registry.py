"""Metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` holds every metric of one observed run.
Metrics are keyed by ``(name, labels)`` — the Prometheus data model,
restricted to what a deterministic simulation needs:

* a **counter** accumulates a monotone total (sends, retries, bytes);
* a **gauge** holds the last written value (final residual, block size);
* a **histogram** counts observations into *fixed* buckets chosen at
  creation time, so two runs of the same scenario always produce
  structurally identical snapshots.

Snapshots are sorted by ``(name, canonical labels)``, never by insertion
order, so the serialised form is independent of event arrival order —
that is what makes the ``stable_digest`` of a metrics sidecar a sound
reproducibility check.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterable, Mapping

from repro.analysis.perf import canonical_json, stable_digest

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram buckets: geometric decades covering the virtual-time
#: scales this simulation produces (sub-millisecond holds to 1e5-second
#: grid runs).  The last bucket is an implicit +inf overflow.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5,
)

_LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (amount={amount!r})"
            )
        self.value += amount

    # ``add`` reads better when scraping an already-accumulated total.
    add = inc

    def to_record(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "labels": self.labels,
            "type": "counter",
            "value": self.value,
        }


class Gauge:
    """A value that can move both ways; the snapshot keeps the last set."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_record(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "labels": self.labels,
            "type": "gauge",
            "value": self.value,
        }


class Histogram:
    """Fixed-bucket histogram; ``buckets`` are inclusive upper bounds.

    Observations greater than the last bound land in an implicit +inf
    overflow bucket, so ``sum(counts) == count`` always holds.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "total", "count")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, Any],
        buckets: Iterable[float],
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} buckets must be strictly increasing, "
                f"got {bounds}"
            )
        self.name = name
        self.labels = dict(labels)
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 = overflow
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError(
                f"histogram {self.name!r} observed non-finite value {value!r}"
            )
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    def merge_counts(
        self, counts: Iterable[int], total: float, count: int
    ) -> None:
        """Fold pre-aggregated per-bucket counts in (profiler export)."""
        counts = list(counts)
        if len(counts) != len(self.counts):
            raise ValueError(
                f"histogram {self.name!r} expects {len(self.counts)} bucket "
                f"counts, got {len(counts)}"
            )
        for i, c in enumerate(counts):
            self.counts[i] += int(c)
        self.total += float(total)
        self.count += int(count)

    def to_record(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "labels": self.labels,
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """All metrics of one observed run, keyed by name + labels.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: repeated
    calls with the same name and labels return the same object, and a
    name cannot change its metric type (or, for histograms, its bucket
    bounds) once created.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, _LabelKey], Any] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get_or_create(self, cls: type, name: str, labels: Mapping[str, Any], *args: Any):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels, *args)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r}{dict(labels)!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        *,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        hist = self._get_or_create(Histogram, name, labels, buckets)
        if hist.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r}{dict(labels)!r} already registered "
                f"with buckets {hist.buckets}"
            )
        return hist

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict[str, Any]]:
        """All metric records, sorted by (name, canonical labels).

        The sort ignores insertion order on purpose: metric creation
        order depends on event arrival order, which is deterministic but
        brittle to refactors; the sorted form is stable under both.
        """
        return sorted(
            (m.to_record() for m in self._metrics.values()),
            key=lambda r: (r["name"], canonical_json(r["labels"])),
        )

    def digest(self) -> str:
        """``stable_digest`` of the snapshot (virtual-time quantities only)."""
        return stable_digest(self.snapshot())
