"""Observed experiment runs: metrics sidecars and the CLI verbs' engine.

Glue between the experiment harnesses (:mod:`repro.experiments`) and the
observability primitives:

* :func:`collect_result_metrics` scrapes one finished
  :class:`~repro.core.records.RunResult` — tracer aggregates, per-rank
  transport counters, LB protocol counters, network totals, injector
  stats — into a :class:`~repro.obs.registry.MetricsRegistry`;
* :class:`MetricsSidecar` accumulates those scrapes across a whole sweep
  and writes the ``*.metrics.jsonl`` sidecar whose ``stable_digest`` CI
  regression-checks like the ``BENCH_*.json`` reports;
* :func:`run_observed` runs one named experiment (``figure5`` /
  ``table1`` / ``resilience``) with a sidecar attached plus one traced
  headline run, and returns an :class:`ObsRun` that can write the
  JSONL + Chrome-trace pair.

Everything recorded is a function of virtual time and seeded randomness:
running the same experiment twice produces byte-identical files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.records import RunResult
from repro.obs.export import write_chrome_trace, write_metrics_jsonl
from repro.obs.profile import SimProfiler
from repro.obs.registry import MetricsRegistry

__all__ = [
    "MetricsSidecar",
    "ObsRun",
    "collect_result_metrics",
    "run_observed",
]

#: Experiments `run_observed` knows how to drive.
EXPERIMENTS = ("figure5", "table1", "resilience")

#: Per-rank transport counters copied from ``meta["transport_per_rank"]``.
_TRANSPORT_KEYS = (
    "retries",
    "sends_failed",
    "duplicates_suppressed",
    "stale_rejected",
    "crashes",
)

#: Per-rank LB protocol counters copied from ``meta["lb_rank_stats"]``.
_LB_KEYS = (
    "offers_sent",
    "offers_rejected",
    "offers_timed_out",
    "migrations_out",
    "reabsorbed",
)


def collect_result_metrics(
    registry: MetricsRegistry,
    result: RunResult,
    *,
    run: str = "",
    injector: Any = None,
) -> None:
    """Scrape everything one finished run measured into ``registry``.

    ``run`` labels every metric (e.g. ``"p8/balanced"`` or
    ``"loss10/aiac"``) so a sweep's runs coexist in one registry.
    ``injector`` optionally adds the fault injector's counters.
    """
    result.tracer.export_metrics(registry, run=run)
    registry.gauge("run.time", run=run).set(result.time)
    registry.gauge("run.converged", run=run).set(1.0 if result.converged else 0.0)
    meta = result.meta
    if "network_bytes" in meta:
        registry.counter("net.bytes_sent", run=run).add(meta["network_bytes"])
        registry.counter("net.messages_sent", run=run).add(
            meta["network_messages"]
        )
    for entry in meta.get("transport_per_rank", ()):
        rank = entry["rank"]
        for key in _TRANSPORT_KEYS:
            registry.counter(f"transport.{key}", rank=rank, run=run).add(
                entry[key]
            )
    for entry in meta.get("lb_rank_stats", ()):
        rank = entry["rank"]
        for key in _LB_KEYS:
            registry.counter(f"lb.{key}", rank=rank, run=run).add(entry[key])
        registry.gauge("lb.final_estimate", rank=rank, run=run).set(
            entry["final_estimate"]
        )
    if injector is not None:
        injector.export_metrics(registry, run=run)


class MetricsSidecar:
    """Accumulates per-run metric scrapes across one experiment sweep.

    Experiment harnesses accept an optional sidecar and call
    :meth:`collect` after each solve; :meth:`write` then emits the
    ``*.metrics.jsonl`` file with the registry's ``stable_digest`` in
    its header line.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.n_runs = 0

    def collect(
        self, result: RunResult, *, run: str = "", injector: Any = None
    ) -> None:
        collect_result_metrics(
            self.registry, result, run=run, injector=injector
        )
        self.n_runs += 1

    def collect_scheduler(self, sim: Any, *, run: str = "") -> None:
        """Scrape a DES scheduler's telemetry (``des.*``) into the registry.

        Separate from :meth:`collect` because a finished
        :class:`RunResult` no longer references its simulator; harnesses
        that keep the sim around (the scale benchmark, the guard soak)
        call this right after the run.
        """
        sim.export_metrics(self.registry, run=run)

    def digest(self) -> str:
        return self.registry.digest()

    def scale_telemetry(self) -> dict[str, Any]:
        """Memory/scheduler headline numbers for the JSONL header.

        Empty unless a scheduler scrape (:meth:`collect_scheduler`)
        reached the registry: ordinary experiment sidecars stay
        byte-identical across reruns, which CI checks.  When ``des.*``
        series are present, the header additionally documents the
        run's footprint: ``peak_rss_bytes`` measured *now* (a
        process-wide high-water mark — wall-side, machine-dependent,
        hence header-only and outside the digest) plus the registry's
        scheduler aggregates (heap-size gauges take the max across
        runs, dispatch counters sum).
        """
        heap_peak = None
        batches = 0.0
        events = 0.0
        for record in self.registry.snapshot():
            name = record["name"]
            if name == "des.heap_size":
                value = record["value"]
                heap_peak = value if heap_peak is None else max(heap_peak, value)
            elif name == "des.batch_dispatch":
                batches += record["value"]
            elif name == "des.events_dispatched":
                events += record["value"]
        if heap_peak is None:
            return {}
        from repro.runtime.memory import peak_rss_bytes

        return {
            "peak_rss_bytes": peak_rss_bytes(),
            "des.heap_size_peak": heap_peak,
            "des.batch_dispatch": batches,
            "des.events_dispatched": events,
        }

    def write(self, path: str, header: Mapping[str, Any] | None = None) -> str:
        """Write the sidecar JSONL to ``path``; returns the digest."""
        head = {
            "n_runs": self.n_runs,
            **self.scale_telemetry(),
            **dict(header or {}),
        }
        return write_metrics_jsonl(path, self.registry.snapshot(), head)


@dataclass(slots=True)
class ObsRun:
    """One observed experiment: metrics sidecar + traced headline run."""

    experiment: str
    mode: str
    sidecar: MetricsSidecar
    report_text: str
    traced: RunResult | None = None
    traced_label: str = ""
    profiler: SimProfiler | None = None

    def write(self, prefix: str) -> dict[str, str]:
        """Write ``{prefix}.metrics.jsonl`` (+ ``.trace.json`` if traced).

        Returns ``{path: digest-or-event-count}`` for everything written.
        """
        written: dict[str, str] = {}
        metrics_path = f"{prefix}.metrics.jsonl"
        written[metrics_path] = self.sidecar.write(
            metrics_path,
            {
                "experiment": self.experiment,
                "mode": self.mode,
                "profiled": self.profiler is not None,
            },
        )
        if self.traced is not None:
            trace_path = f"{prefix}.trace.json"
            n_events = write_chrome_trace(
                trace_path,
                self.traced.tracer,
                metadata={
                    "experiment": self.experiment,
                    "mode": self.mode,
                    "run": self.traced_label,
                },
            )
            written[trace_path] = f"{n_events} events"
        return written

    def report(self) -> str:
        lines = [
            self.report_text,
            f"metrics: {self.sidecar.n_runs} runs, "
            f"{len(self.sidecar.registry)} series, "
            f"digest {self.sidecar.digest()}",
        ]
        if self.traced is not None:
            lines.append(f"traced headline run: {self.traced_label}")
        if self.profiler is not None:
            lines.append(self.profiler.summary())
        return "\n".join(lines)


def _scenario_for(experiment: str, mode: str):
    from repro.workloads.scenarios import (
        Figure5Scenario,
        ResilienceScenario,
        Table1Scenario,
    )

    if mode not in ("tiny", "quick", "full"):
        raise ValueError(f"unknown mode {mode!r}; use tiny, quick or full")
    if experiment == "figure5":
        return {
            "tiny": Figure5Scenario.tiny,
            "quick": Figure5Scenario.quick,
            "full": Figure5Scenario,
        }[mode]()
    if experiment == "table1":
        # Table 1 has no tiny variant; quick is already CI-sized.
        return Table1Scenario() if mode == "full" else Table1Scenario.quick()
    if experiment == "resilience":
        return {
            "tiny": ResilienceScenario.tiny,
            "quick": ResilienceScenario.quick,
            "full": ResilienceScenario,
        }[mode]()
    raise ValueError(
        f"unknown experiment {experiment!r}; choose from {EXPERIMENTS}"
    )


def run_observed(
    experiment: str,
    *,
    mode: str = "quick",
    profile: bool = False,
    with_trace: bool = True,
) -> ObsRun:
    """Run one experiment with full observability attached.

    The sweep itself runs exactly as the plain harness would (obs is
    scrape-only), with every run's metrics collected into one sidecar.
    One extra *headline* run is then repeated with tracing enabled (and,
    with ``profile=True``, a :class:`SimProfiler` on the DES kernel) to
    produce the Chrome trace.
    """
    scenario = _scenario_for(experiment, mode)
    sidecar = MetricsSidecar()
    profiler = SimProfiler() if profile else None
    traced: RunResult | None = None
    traced_label = ""

    if experiment == "figure5":
        from repro.core.lb import run_balanced_aiac
        from repro.experiments.figure5 import run_figure5

        report = run_figure5(scenario, sidecar=sidecar).report()
        if with_trace:
            p = scenario.proc_counts[-1]
            traced = run_balanced_aiac(
                scenario.problem(),
                scenario.platform(p),
                scenario.solver_config(trace=True),
                scenario.lb_config(),
                profiler=profiler,
            )
            traced_label = f"p{p}/balanced"
    elif experiment == "table1":
        from repro.core.lb import run_balanced_aiac
        from repro.experiments.table1 import run_table1

        report = run_table1(scenario, sidecar=sidecar).report()
        if with_trace:
            platform = scenario.platform()
            traced = run_balanced_aiac(
                scenario.problem(),
                platform,
                scenario.solver_config(trace=True),
                scenario.lb_config(),
                host_order=scenario.host_order(platform),
                profiler=profiler,
            )
            traced_label = "balanced"
    else:  # resilience
        from repro.experiments.resilience import _run_model, run_resilience

        report = run_resilience(scenario, sidecar=sidecar).report()
        if with_trace:
            traced, injector = _run_model(
                "aiac+lb",
                scenario,
                scenario.headline,
                trace=True,
                profiler=profiler,
            )
            traced_label = f"{scenario.headline}/aiac+lb"
            sidecar.collect(
                traced, run=f"headline/{traced_label}", injector=injector
            )

    if profiler is not None:
        profiler.export_metrics(sidecar.registry)
    return ObsRun(
        experiment=experiment,
        mode=mode,
        sidecar=sidecar,
        report_text=report,
        traced=traced,
        traced_label=traced_label,
        profiler=profiler,
    )
