"""Observability: metrics registry, trace export, simulator profiling.

The paper's headline numbers (Figures 1-4 idle structure, Figure 5's
~6.8x load-balancing ratio, Table 1's grid ratio) are *observability*
claims: they hang on accurate per-rank busy/idle/migration accounting.
This package gives that accounting a first-class home:

* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges and
  fixed-bucket histograms keyed by name + labels, scraped from the
  tracer, the transport layer, the network, the load balancer and the
  fault injector;
* :mod:`repro.obs.export` — streaming export of
  :class:`~repro.runtime.tracer.Tracer` records and metric snapshots to
  JSONL and Chrome trace-event JSON (viewable in Perfetto), with a
  bounded ring option for million-event sweeps;
* :class:`~repro.obs.profile.SimProfiler` — per-event-kind dispatch
  counts and sim-time histograms for the DES kernel, attached via
  :meth:`repro.des.simulator.Simulator.attach_profiler` (zero overhead
  when not attached);
* :mod:`repro.obs.harness` — `repro trace` / `repro metrics` CLI verbs
  and the metrics sidecars the experiment harnesses emit.

Everything exported is a pure function of virtual time and seeded
randomness, so two runs of the same scenario produce byte-identical
sidecars — CI regression-checks the ``stable_digest`` exactly like the
``BENCH_*.json`` reports.  See ``docs/observability.md``.
"""

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.export import (
    TraceRing,
    iter_trace_events,
    metrics_jsonl_lines,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.obs.profile import SimProfiler
from repro.obs.harness import (
    MetricsSidecar,
    ObsRun,
    collect_result_metrics,
    run_observed,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TraceRing",
    "iter_trace_events",
    "metrics_jsonl_lines",
    "write_chrome_trace",
    "write_metrics_jsonl",
    "SimProfiler",
    "MetricsSidecar",
    "ObsRun",
    "collect_result_metrics",
    "run_observed",
]
