"""Streaming trace export: Tracer records -> JSONL / Chrome trace events.

Two output formats:

* **metrics JSONL** — one canonical-JSON line per metric record, with a
  header line carrying the schema version, run identity and the
  ``stable_digest`` of the records.  Line-oriented so million-metric
  sidecars stream without building one giant document.
* **Chrome trace-event JSON** — the ``traceEvents`` format consumed by
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.  Ranks
  map to threads, iteration/idle spans to complete (``X``) events,
  messages to async begin/end pairs, migrations and faults to instant
  events.  Timestamps are virtual microseconds.

Both outputs contain only virtual-time quantities, so byte-identical
files across repeated runs are the expected (and CI-checked) behaviour.

For sweeps whose full event list would not fit in memory,
:class:`TraceRing` bounds the in-memory window to the last *n* events
while still counting everything that passed through.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable, Iterator, Mapping

from repro.analysis.perf import canonical_json, stable_digest
from repro.runtime.tracer import Tracer

__all__ = [
    "TraceRing",
    "iter_trace_events",
    "metrics_jsonl_lines",
    "write_metrics_jsonl",
    "write_chrome_trace",
]

#: Schema tag stamped on every metrics sidecar header line.
METRICS_SCHEMA = "repro-obs-metrics/1"

#: Virtual seconds -> Chrome trace microseconds.
_US = 1e6


class TraceRing:
    """Bounded ring buffer over trace events.

    Keeps the *last* ``maxlen`` appended items in order and counts how
    many were displaced, so a million-event sweep can export a bounded
    tail without OOMing while still reporting true totals.
    """

    __slots__ = ("maxlen", "_items", "_start", "n_seen")

    def __init__(self, maxlen: int) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._items: list[Any] = []
        self._start = 0  # index of the oldest live item
        self.n_seen = 0

    def append(self, item: Any) -> None:
        if len(self._items) < self.maxlen:
            self._items.append(item)
        else:
            self._items[self._start] = item
            self._start = (self._start + 1) % self.maxlen
        self.n_seen += 1

    @property
    def n_dropped(self) -> int:
        return self.n_seen - len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        items, start = self._items, self._start
        for i in range(len(items)):
            yield items[(start + i) % len(items)]


# ----------------------------------------------------------------------
# Chrome trace events
# ----------------------------------------------------------------------
def iter_trace_events(
    tracer: Tracer, *, pid: int = 0
) -> Iterator[dict[str, Any]]:
    """Yield Chrome trace events for every record held by ``tracer``.

    Events are yielded in deterministic record order (the tracer's lists
    are append-ordered by the deterministic DES); callers that need
    global time order sort on ``ts`` afterwards —
    :func:`write_chrome_trace` does.
    """
    for span in tracer.iterations:
        yield {
            "name": f"iter {span.iteration}",
            "cat": "compute",
            "ph": "X",
            "pid": pid,
            "tid": span.rank,
            "ts": span.t0 * _US,
            "dur": (span.t1 - span.t0) * _US,
            "args": {"iteration": span.iteration, "work": span.work},
        }
    for idle in tracer.idles:
        yield {
            "name": f"idle ({idle.reason})",
            "cat": "idle",
            "ph": "X",
            "pid": pid,
            "tid": idle.rank,
            "ts": idle.t0 * _US,
            "dur": (idle.t1 - idle.t0) * _US,
            "args": {"reason": idle.reason},
        }
    for i, msg in enumerate(tracer.messages):
        base = {
            "name": msg.kind,
            "cat": "message",
            "id": i,
            "pid": pid,
            "args": {
                "src": msg.src_rank,
                "dst": msg.dst_rank,
                "bytes": msg.size_bytes,
            },
        }
        yield {**base, "ph": "b", "tid": msg.src_rank, "ts": msg.send_time * _US}
        yield {**base, "ph": "e", "tid": msg.dst_rank, "ts": msg.arrival_time * _US}
    for mig in tracer.migrations:
        yield {
            "name": f"migrate {mig.n_components}",
            "cat": "lb",
            "ph": "i",
            "s": "p",
            "pid": pid,
            "tid": mig.src_rank,
            "ts": mig.time * _US,
            "args": {
                "dst": mig.dst_rank,
                "n_components": mig.n_components,
                "src_residual": mig.src_residual,
                "dst_residual": mig.dst_residual,
            },
        }
    for fault in tracer.faults:
        tid = fault.rank if fault.rank is not None else -1
        event = {
            "name": f"fault:{fault.kind}",
            "cat": "fault",
            "pid": pid,
            "tid": tid,
            "ts": fault.time * _US,
            "args": {"detail": fault.detail},
        }
        if fault.t_end > fault.time and fault.t_end != float("inf"):
            yield {**event, "ph": "X", "dur": (fault.t_end - fault.time) * _US}
        else:
            yield {**event, "ph": "i", "s": "t"}


def write_chrome_trace(
    fh_or_path: IO[str] | str,
    tracer_or_events: Tracer | Iterable[Mapping[str, Any]],
    *,
    metadata: Mapping[str, Any] | None = None,
) -> int:
    """Write a Chrome trace JSON file; returns the number of events.

    Accepts either a :class:`~repro.runtime.tracer.Tracer` (converted
    via :func:`iter_trace_events`) or an iterable of prepared events
    (e.g. a :class:`TraceRing`).  Events are sorted by ``(ts, name,
    ph)`` so the byte output is independent of record-list interleaving.
    """
    if isinstance(tracer_or_events, Tracer):
        events: Iterable[Mapping[str, Any]] = iter_trace_events(tracer_or_events)
    else:
        events = tracer_or_events
    ordered = sorted(
        events, key=lambda e: (e["ts"], e["name"], e.get("ph", ""))
    )
    doc = {
        "traceEvents": ordered,
        "displayTimeUnit": "ms",
        "metadata": dict(metadata or {}),
    }
    if isinstance(fh_or_path, str):
        with open(fh_or_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
            fh.write("\n")
    else:
        json.dump(doc, fh_or_path, sort_keys=True, separators=(",", ":"))
        fh_or_path.write("\n")
    return len(ordered)


# ----------------------------------------------------------------------
# Metrics JSONL
# ----------------------------------------------------------------------
def metrics_jsonl_lines(
    records: list[dict[str, Any]], header: Mapping[str, Any] | None = None
) -> list[str]:
    """The lines of a metrics sidecar: header + one line per record.

    The header embeds ``stable_digest(records)`` so a consumer (or CI)
    can verify integrity / reproducibility without re-parsing the body.
    """
    head = {
        "schema": METRICS_SCHEMA,
        **dict(header or {}),
        "n_records": len(records),
        "digest": stable_digest(records),
    }
    return [canonical_json(head)] + [canonical_json(r) for r in records]


def write_metrics_jsonl(
    fh_or_path: IO[str] | str,
    records: list[dict[str, Any]],
    header: Mapping[str, Any] | None = None,
) -> str:
    """Write a metrics JSONL sidecar; returns the records' digest."""
    lines = metrics_jsonl_lines(records, header)
    text = "\n".join(lines) + "\n"
    if isinstance(fh_or_path, str):
        with open(fh_or_path, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        fh_or_path.write(text)
    return json.loads(lines[0])["digest"]
