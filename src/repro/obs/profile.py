"""DES kernel profiling: per-event-kind dispatch counts and histograms.

A :class:`SimProfiler` attached via
:meth:`repro.des.simulator.Simulator.attach_profiler` observes every
dispatched event: it counts dispatches per *kind* (the qualified name of
the event's callback — ``Process._step``, ``GridNode._deliver``,
``FaultInjector._crash``, …) and histograms the virtual time at which
each kind fires.  That answers the two questions a slow sweep raises
first: *what is the event loop actually doing* and *when*.

The profiler never mutates simulation state and draws no randomness, so
an attached profiler is observationally invisible: the DES event trace
with and without it is bit-identical (regression-tested).  When no
profiler is attached the simulator takes its original dispatch loop —
the off state costs zero per-event work.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Any

from repro.obs.registry import DEFAULT_BUCKETS, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.des.event import ScheduledEvent

__all__ = ["SimProfiler"]


def _kind_of(callback: Any) -> str:
    """Stable name for an event callback (bound methods unwrapped)."""
    func = getattr(callback, "__func__", callback)
    name = getattr(func, "__qualname__", None)
    if name is None:  # pragma: no cover - exotic callables
        name = type(callback).__name__
    return name


class SimProfiler:
    """Accumulates dispatch statistics for one simulation run."""

    __slots__ = ("time_buckets", "counts", "_hist_counts", "_hist_sums")

    def __init__(
        self, *, time_buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        self.time_buckets = tuple(float(b) for b in time_buckets)
        #: Dispatches per event kind.
        self.counts: dict[str, int] = {}
        # Per-kind histogram of event *timestamps* (virtual seconds).
        self._hist_counts: dict[str, list[int]] = {}
        self._hist_sums: dict[str, float] = {}

    @property
    def n_dispatched(self) -> int:
        return sum(self.counts.values())

    def record(self, event: "ScheduledEvent") -> None:
        """Account one dispatched event (called by the simulator loop)."""
        kind = _kind_of(event.callback)
        counts = self.counts
        counts[kind] = counts.get(kind, 0) + 1
        hist = self._hist_counts.get(kind)
        if hist is None:
            hist = self._hist_counts[kind] = [0] * (len(self.time_buckets) + 1)
            self._hist_sums[kind] = 0.0
        hist[bisect.bisect_left(self.time_buckets, event.time)] += 1
        self._hist_sums[kind] += event.time

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_metrics(self, registry: MetricsRegistry) -> None:
        """Publish the accumulated statistics into ``registry``."""
        for kind in sorted(self.counts):
            registry.counter("sim.dispatches", kind=kind).add(
                self.counts[kind]
            )
            registry.histogram(
                "sim.event_time", buckets=self.time_buckets, kind=kind
            ).merge_counts(
                self._hist_counts[kind],
                self._hist_sums[kind],
                self.counts[kind],
            )
        registry.counter("sim.dispatches_total").add(self.n_dispatched)

    def summary(self) -> str:
        """Terminal-friendly table of dispatch counts, busiest first."""
        if not self.counts:
            return "sim profile: no events dispatched"
        width = max(len(k) for k in self.counts)
        lines = [f"sim profile — {self.n_dispatched} events dispatched"]
        ranked = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        for kind, n in ranked:
            lines.append(f"  {kind:<{width}}  {n:>10}")
        return "\n".join(lines)
