"""Network links: latency + bandwidth with optional fluctuation.

A link's transfer time for a message of ``nbytes`` at time ``t`` is::

    latency / lat_avail(t)  +  nbytes / (bandwidth * bw_avail(t))

where the two availability traces model the paper's networks "between
which the speed may sharply vary".  Conditions are sampled at send time
(messages are small relative to fluctuation time-scales; documented
simplification).
"""

from __future__ import annotations

from repro.grid.traces import AvailabilityTrace, ConstantTrace
from repro.util.validation import check_non_negative, check_positive

__all__ = ["Link"]


class Link:
    """A point-to-point (or shared per-class) network link.

    Parameters
    ----------
    latency:
        One-way base latency in virtual seconds.
    bandwidth:
        Base bandwidth in bytes per virtual second.
    latency_trace, bandwidth_trace:
        Optional availability multipliers in ``(0, 1]``; lower
        availability means *slower* (latency is divided by, bandwidth is
        multiplied by the availability).
    """

    __slots__ = ("name", "latency", "bandwidth", "latency_trace", "bandwidth_trace")

    def __init__(
        self,
        latency: float,
        bandwidth: float,
        latency_trace: AvailabilityTrace | None = None,
        bandwidth_trace: AvailabilityTrace | None = None,
        name: str = "",
    ) -> None:
        self.name = name
        self.latency = check_non_negative("latency", latency)
        self.bandwidth = check_positive("bandwidth", bandwidth)
        self.latency_trace = latency_trace or ConstantTrace(1.0)
        self.bandwidth_trace = bandwidth_trace or ConstantTrace(1.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Link({self.name!r}, latency={self.latency}, "
            f"bandwidth={self.bandwidth:g})"
        )

    def transfer_time(self, nbytes: float, t: float) -> float:
        """Seconds to move ``nbytes`` across this link starting at ``t``."""
        check_non_negative("nbytes", nbytes)
        lat = self.latency / self.latency_trace.value(t)
        rate = self.bandwidth * self.bandwidth_trace.value(t)
        return lat + nbytes / rate
