"""Hosts: machines that turn work units into virtual time.

A host has a nominal ``speed`` (work units per virtual second, where a
work unit is one counted Newton component-step of the numerics — see
:mod:`repro.numerics.newton`) and an availability trace modelling
external multi-user load.  The effective speed at time ``t`` is
``speed * trace.value(t)``.
"""

from __future__ import annotations

from repro.grid.traces import AvailabilityTrace, ConstantTrace
from repro.util.validation import check_non_negative, check_positive

__all__ = ["Host"]


class Host:
    """A simulated machine.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"belfort-03"``.
    speed:
        Nominal work units per virtual second.  For the heterogeneous
        experiments we map CPU frequency to speed directly (a PII-400 →
        400, an Athlon-1.4G → 1400), which preserves the paper's 3.5×
        hardware spread.
    trace:
        Availability trace; defaults to a dedicated machine.
    site:
        Site label used by the network to pick intra/inter-site links.
    """

    __slots__ = ("name", "speed", "trace", "site")

    def __init__(
        self,
        name: str,
        speed: float,
        trace: AvailabilityTrace | None = None,
        site: str = "local",
    ) -> None:
        self.name = name
        self.speed = check_positive("speed", speed)
        self.trace = trace if trace is not None else ConstantTrace(1.0)
        self.site = site

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Host({self.name!r}, speed={self.speed}, site={self.site!r})"

    def effective_speed(self, t: float) -> float:
        """Work units per second actually available at time ``t``."""
        return self.speed * self.trace.value(t)

    def duration_for_work(self, work: float, t0: float) -> float:
        """Virtual seconds to complete ``work`` units starting at ``t0``.

        Integrates the effective speed over the availability trace's
        piecewise-constant segments, so the inversion is exact.
        """
        check_non_negative("work", work)
        if work == 0:
            return 0.0
        remaining = work
        t = t0
        while True:
            rate = self.effective_speed(t)
            seg_end = self.trace.next_change(t)
            if seg_end == float("inf"):
                return (t - t0) + remaining / rate
            capacity = rate * (seg_end - t)
            if capacity >= remaining:
                return (t - t0) + remaining / rate
            remaining -= capacity
            t = seg_end

    def work_capacity(self, t0: float, t1: float) -> float:
        """Work units this host can complete in ``[t0, t1]``."""
        if t1 <= t0:
            return 0.0
        total = 0.0
        t = t0
        while t < t1:
            nxt = min(self.trace.next_change(t), t1)
            total += self.effective_speed(t) * (nxt - t)
            t = nxt
        return total
