"""Platform builders for the paper's two experimental contexts.

* :func:`homogeneous_cluster` — the Figure 5 platform: ``n`` identical,
  dedicated machines on a fast LAN.
* :func:`multi_site_grid` — the Table 1 platform: heterogeneous machines
  spread over sites (the paper used 15 machines in Belfort, Montbéliard
  and Grenoble), with multi-user load traces and slow fluctuating
  inter-site links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grid.host import Host
from repro.grid.link import Link
from repro.grid.network import Network
from repro.grid.traces import ConstantTrace, MarkovTrace
from repro.util.rng import RngTree
from repro.util.validation import check_positive

__all__ = ["Platform", "SiteSpec", "homogeneous_cluster", "multi_site_grid"]


@dataclass
class Platform:
    """A set of hosts plus the network that connects them."""

    hosts: list[Host]
    network: Network
    description: str = ""
    sites: dict[str, list[Host]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [h.name for h in self.hosts]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate host names in platform: {names}")
        if not self.sites:
            self.sites = {}
            for host in self.hosts:
                self.sites.setdefault(host.site, []).append(host)

    def __len__(self) -> int:
        return len(self.hosts)

    def host(self, name: str) -> Host:
        for h in self.hosts:
            if h.name == name:
                return h
        raise KeyError(f"no host named {name!r}")


@dataclass(frozen=True)
class SiteSpec:
    """Specification of one site of a heterogeneous grid.

    Attributes
    ----------
    name:
        Site label (e.g. ``"belfort"``).
    n_hosts:
        Number of machines at the site.
    speed_range:
        ``(low, high)`` nominal speeds; each machine draws uniformly.
        The paper's spread was a PII-400 to an Athlon-1.4G, i.e. 400–1400.
    load_mean_dwell:
        Mean duration of one external-load level (multi-user churn).
    load_range:
        ``(low, high)`` availability left to the computation.
    """

    name: str
    n_hosts: int
    speed_range: tuple[float, float] = (400.0, 1400.0)
    load_mean_dwell: float = 30.0
    load_range: tuple[float, float] = (0.3, 1.0)


def homogeneous_cluster(
    n_hosts: int,
    *,
    speed: float = 1000.0,
    latency: float = 1e-4,
    bandwidth: float = 100e6,
) -> Platform:
    """Build the Figure 5 platform: ``n`` identical dedicated machines.

    Defaults model a 100 Mb/s-class switched LAN (0.1 ms latency).
    """
    check_positive("n_hosts", n_hosts)
    hosts = [
        Host(f"node-{i:02d}", speed=speed, trace=ConstantTrace(1.0), site="cluster")
        for i in range(n_hosts)
    ]
    network = Network(Link(latency=latency, bandwidth=bandwidth, name="lan"))
    return Platform(
        hosts=hosts,
        network=network,
        description=f"homogeneous cluster of {n_hosts} hosts @ {speed:g} wu/s",
    )


def multi_site_grid(
    sites: list[SiteSpec],
    rng_tree: RngTree,
    *,
    intra_latency: float = 1e-4,
    intra_bandwidth: float = 100e6,
    inter_latency: float = 15e-3,
    inter_bandwidth: float = 1e6,
    inter_fluctuation: tuple[float, float] = (0.2, 1.0),
    inter_fluctuation_dwell: float = 20.0,
) -> Platform:
    """Build a Table 1-style heterogeneous multi-site grid.

    Each host's speed is drawn from its site's ``speed_range`` and its
    availability follows a :class:`~repro.grid.traces.MarkovTrace`
    (multi-user utilization).  Inter-site links are slow (default 15 ms /
    1 MB/s) and their bandwidth fluctuates, reproducing networks "between
    which the speed may sharply vary".
    """
    if not sites:
        raise ValueError("need at least one site")
    hosts: list[Host] = []
    for spec in sites:
        site_rng = rng_tree.generator(f"site/{spec.name}/speeds")
        lo, hi = spec.speed_range
        for i in range(spec.n_hosts):
            speed = float(site_rng.uniform(lo, hi))
            load_rng = rng_tree.generator(f"host/{spec.name}-{i:02d}/load")
            trace = MarkovTrace(
                load_rng,
                mean_dwell=spec.load_mean_dwell,
                low=spec.load_range[0],
                high=spec.load_range[1],
            )
            hosts.append(
                Host(f"{spec.name}-{i:02d}", speed=speed, trace=trace, site=spec.name)
            )

    network = Network(Link(latency=intra_latency, bandwidth=intra_bandwidth, name="lan"))
    site_names = [s.name for s in sites]
    for a_idx, a in enumerate(site_names):
        for b in site_names[a_idx + 1 :]:
            fluct_rng = rng_tree.generator(f"wan/{a}-{b}/bandwidth")
            bw_trace = MarkovTrace(
                fluct_rng,
                mean_dwell=inter_fluctuation_dwell,
                low=inter_fluctuation[0],
                high=inter_fluctuation[1],
            )
            link = Link(
                latency=inter_latency,
                bandwidth=inter_bandwidth,
                bandwidth_trace=bw_trace,
                name=f"wan:{a}-{b}",
            )
            network.set_site_link(a, b, link)

    total = sum(s.n_hosts for s in sites)
    return Platform(
        hosts=hosts,
        network=network,
        description=f"heterogeneous grid: {total} hosts over {len(sites)} sites",
    )


def paper_heterogeneous_grid(rng_tree: RngTree) -> Platform:
    """The Table 1 platform: 15 machines over 3 French sites.

    Five machines per site, speeds spanning the paper's PII-400 →
    Athlon-1.4G range, multi-user load on every machine.
    """
    sites = [
        SiteSpec("belfort", 5, speed_range=(400.0, 1400.0)),
        SiteSpec("montbeliard", 5, speed_range=(400.0, 1200.0)),
        SiteSpec("grenoble", 5, speed_range=(600.0, 1400.0)),
    ]
    return multi_site_grid(sites, rng_tree)


__all__.append("paper_heterogeneous_grid")
