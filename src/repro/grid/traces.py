"""Availability traces: piecewise-constant multipliers over virtual time.

A trace models the fraction of a resource available to the computation —
the paper's "machines subject to a multi-user utilization directly
influencing their load".  The same abstraction scales link capacity on
the fluctuating inter-site network.

All traces are piecewise constant, which lets hosts invert
work→duration exactly by walking segments (no numerical quadrature).
Stochastic traces draw from a seeded generator and extend themselves
lazily, so a trace is a deterministic function of its seed regardless of
query order (queries at time ``t`` force generation up to ``t``).
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.util.validation import check_in_range, check_positive

__all__ = ["AvailabilityTrace", "ConstantTrace", "PiecewiseTrace", "MarkovTrace"]

#: Traces never report availability below this floor, guaranteeing that
#: any finite amount of work completes in finite virtual time.
MIN_AVAILABILITY = 0.01


class AvailabilityTrace(ABC):
    """A piecewise-constant function ``t -> availability in (0, 1]``."""

    @abstractmethod
    def value(self, t: float) -> float:
        """Availability at time ``t``."""

    @abstractmethod
    def next_change(self, t: float) -> float:
        """First time strictly after ``t`` at which the value may change.

        Returns ``inf`` if the trace is constant from ``t`` on.
        """

    def mean_over(self, t0: float, t1: float) -> float:
        """Time-average availability over ``[t0, t1]`` (for diagnostics).

        Raises ``RuntimeError`` if ``next_change`` fails its contract by
        not advancing past ``t`` — without the guard a buggy subclass
        (e.g. one whose breakpoints contain duplicates) spins this loop
        forever instead of surfacing the defect.
        """
        if t1 <= t0:
            return self.value(t0)
        total = 0.0
        t = t0
        while t < t1:
            nxt = min(self.next_change(t), t1)
            if nxt <= t:
                raise RuntimeError(
                    f"{type(self).__name__}.next_change({t!r}) returned "
                    f"{nxt!r}, which does not advance time; "
                    f"next_change must return a value strictly after t"
                )
            total += self.value(t) * (nxt - t)
            t = nxt
        return total / (t1 - t0)


class ConstantTrace(AvailabilityTrace):
    """Full-time constant availability (dedicated machine)."""

    def __init__(self, level: float = 1.0) -> None:
        self.level = check_in_range("level", level, MIN_AVAILABILITY, 1.0)

    def value(self, t: float) -> float:
        return self.level

    def next_change(self, t: float) -> float:
        return float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ConstantTrace({self.level})"


class PiecewiseTrace(AvailabilityTrace):
    """Explicit breakpoints: ``levels[i]`` holds on ``[times[i], times[i+1])``.

    The first segment is assumed to start at ``-inf`` conceptually
    (``times[0]`` must be 0), and the last level holds forever.
    """

    def __init__(self, times: Sequence[float], levels: Sequence[float]) -> None:
        if len(times) != len(levels):
            raise ValueError(
                f"times and levels must have equal length, "
                f"got {len(times)} and {len(levels)}"
            )
        if len(times) == 0:
            raise ValueError("need at least one segment")
        if times[0] != 0:
            raise ValueError(f"times[0] must be 0, got {times[0]!r}")
        times_arr = np.asarray(times, dtype=float)
        if np.any(np.diff(times_arr) <= 0):
            raise ValueError("times must be strictly increasing")
        for lv in levels:
            check_in_range("level", lv, MIN_AVAILABILITY, 1.0)
        self._times = times_arr
        self._levels = np.asarray(levels, dtype=float)

    def value(self, t: float) -> float:
        idx = bisect.bisect_right(self._times, t) - 1
        idx = max(idx, 0)
        return float(self._levels[idx])

    def next_change(self, t: float) -> float:
        idx = bisect.bisect_right(self._times, t)
        if idx >= len(self._times):
            return float("inf")
        return float(self._times[idx])


class MarkovTrace(AvailabilityTrace):
    """Stochastic multi-user load: exponential dwell times, random levels.

    Each segment's length is drawn from ``Exponential(mean_dwell)`` and
    its level uniformly from ``[low, high]`` (clipped to the global
    floor).  Segments are generated lazily and cached, so the trace is a
    pure function of its generator's seed.

    Parameters
    ----------
    rng:
        Seeded generator (use :class:`repro.util.RngTree` naming).
    mean_dwell:
        Average segment duration in virtual seconds.
    low, high:
        Bounds of the availability level per segment.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        mean_dwell: float,
        low: float = 0.2,
        high: float = 1.0,
    ) -> None:
        self._rng = rng
        self.mean_dwell = check_positive("mean_dwell", mean_dwell)
        self.low = check_in_range("low", low, MIN_AVAILABILITY, 1.0)
        self.high = check_in_range("high", high, low, 1.0)
        self._times: list[float] = [0.0]
        self._levels: list[float] = [self._draw_level()]

    def _draw_level(self) -> float:
        return float(self._rng.uniform(self.low, self.high))

    def _extend_to(self, t: float) -> None:
        while self._times[-1] <= t:
            dwell = float(self._rng.exponential(self.mean_dwell))
            # Guard against pathological zero-length segments.
            dwell = max(dwell, 1e-9)
            self._times.append(self._times[-1] + dwell)
            self._levels.append(self._draw_level())

    def value(self, t: float) -> float:
        self._extend_to(t)
        idx = bisect.bisect_right(self._times, t) - 1
        return self._levels[max(idx, 0)]

    def next_change(self, t: float) -> float:
        self._extend_to(t)
        idx = bisect.bisect_right(self._times, t)
        # _extend_to guarantees self._times[-1] > t, so idx is in range.
        return self._times[idx]
