"""The network: host-pair link selection and FIFO delivery times.

The network owns one :class:`~repro.grid.link.Link` per (ordered) host
pair — in practice builders register one *intra-site* link shared by all
same-site pairs and one *inter-site* link per site pair, mirroring the
paper's fast-LAN / slow-WAN structure.

Delivery is FIFO per directed channel ``(src, dst)``: a message never
overtakes an earlier message on the same channel (TCP-like), which the
asynchronous convergence theory of AIAC algorithms permits and which the
paper's runtime (PM2 over TCP) provided.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.grid.host import Host
from repro.grid.link import Link

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

__all__ = ["Network"]

#: Minimal spacing between two deliveries on one channel, to keep event
#: ordering strict when FIFO clamping collapses arrival times.
_FIFO_EPSILON = 1e-9


class Network:
    """Maps host pairs to links and computes arrival times."""

    def __init__(self, default_link: Link) -> None:
        self.default_link = default_link
        self._pair_links: dict[tuple[str, str], Link] = {}
        self._site_links: dict[tuple[str, str], Link] = {}
        self._last_arrival: dict[tuple[str, str], float] = {}
        #: Cumulative bytes injected, for diagnostics/ablations.
        self.bytes_sent = 0.0
        self.messages_sent = 0

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def set_pair_link(self, src: Host, dst: Host, link: Link) -> None:
        """Register a link for the directed pair ``src -> dst``."""
        self._pair_links[(src.name, dst.name)] = link

    @staticmethod
    def _site_key(site_a: str, site_b: str) -> tuple[str, str]:
        """Canonical (order-independent) key for a site pair.

        ``set_site_link`` / ``link_for`` must agree on the key whichever
        way the caller names the two sites; storing the lexicographically
        sorted pair makes registration and lookup symmetric by
        construction (one entry per unordered pair).
        """
        return (site_a, site_b) if site_a <= site_b else (site_b, site_a)

    def set_site_link(self, site_a: str, site_b: str, link: Link) -> None:
        """Register a link for all pairs between two sites (both ways)."""
        self._site_links[self._site_key(site_a, site_b)] = link

    def site_link(self, site_a: str, site_b: str) -> Link | None:
        """The registered link between two sites, if any (symmetric)."""
        return self._site_links.get(self._site_key(site_a, site_b))

    def iter_site_links(self) -> list[tuple[tuple[str, str], Link]]:
        """All registered site-pair links, in deterministic key order."""
        return sorted(self._site_links.items())

    def link_for(self, src: Host, dst: Host) -> Link:
        """Resolve the link used by ``src -> dst``.

        Priority: explicit pair link, then site-pair link, then default.
        """
        pair = self._pair_links.get((src.name, dst.name))
        if pair is not None:
            return pair
        site = self._site_links.get(self._site_key(src.site, dst.site))
        if site is not None:
            return site
        return self.default_link

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def arrival_time(self, src: Host, dst: Host, nbytes: float, now: float) -> float:
        """Absolute arrival time of a message sent now, with FIFO clamping."""
        link = self.link_for(src, dst)
        arrival = now + link.transfer_time(nbytes, now)
        channel = (src.name, dst.name)
        previous = self._last_arrival.get(channel, -float("inf"))
        arrival = max(arrival, previous + _FIFO_EPSILON)
        self._last_arrival[channel] = arrival
        self.bytes_sent += nbytes
        self.messages_sent += 1
        return arrival

    # ------------------------------------------------------------------
    # Lifecycle / export
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear per-run delivery state and traffic counters.

        The FIFO clamp state (``_last_arrival``) and the traffic
        counters otherwise leak from one run into the next when a
        platform object is reused: the second run's first message on a
        channel would be clamped behind the *previous run's* last
        arrival.  Experiment harnesses call this between runs; builders
        that hand each run a fresh platform are unaffected.
        """
        self._last_arrival.clear()
        self.bytes_sent = 0.0
        self.messages_sent = 0

    def export_metrics(self, registry: "MetricsRegistry", **labels) -> None:
        """Publish cumulative traffic totals into a metrics registry."""
        registry.counter("net.bytes_sent", **labels).add(self.bytes_sent)
        registry.counter("net.messages_sent", **labels).add(self.messages_sent)
        registry.gauge("net.active_channels", **labels).set(
            len(self._last_arrival)
        )
