"""Platform model: hosts, external-load traces, links and networks.

This package models the *hardware* side of the paper's two experimental
contexts (DESIGN.md §2):

* a local homogeneous cluster — equal-speed hosts, fast uniform network;
* a heterogeneous multi-site grid — host speeds spanning the paper's
  PII-400 → Athlon-1.4G range, multi-user external load, slow and
  fluctuating inter-site links.

Time is virtual (driven by :mod:`repro.des`); hosts convert *work units*
(counted operations reported by the numerics) into virtual durations by
integrating their effective speed over their availability trace.
"""

from repro.grid.traces import (
    AvailabilityTrace,
    ConstantTrace,
    MarkovTrace,
    PiecewiseTrace,
)
from repro.grid.host import Host
from repro.grid.link import Link
from repro.grid.network import Network
from repro.grid.platform import (
    Platform,
    homogeneous_cluster,
    multi_site_grid,
    paper_heterogeneous_grid,
    SiteSpec,
)

__all__ = [
    "AvailabilityTrace",
    "ConstantTrace",
    "PiecewiseTrace",
    "MarkovTrace",
    "Host",
    "Link",
    "Network",
    "Platform",
    "SiteSpec",
    "homogeneous_cluster",
    "multi_site_grid",
    "paper_heterogeneous_grid",
]
