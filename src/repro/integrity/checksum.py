"""Structural CRC fingerprints for message payloads and checkpoints.

A payload here is whatever the runtime puts on the wire: ``None``,
scalars, strings, numpy arrays, and dicts/lists/tuples of those.  The
checksum walks that structure deterministically (dict keys sorted,
every node tagged with a type byte so ``[1]`` and ``(1,)`` and ``1``
cannot collide structurally) and folds everything through ``zlib.crc32``
— cheap, stdlib-only, and strong enough to catch the single-bit flips
and field truncations :class:`~repro.faults.models.PayloadCorruption`
injects.  This is corruption *detection*, not authentication: CRC32 is
the right tool against hardware upsets and the wrong one against an
adversary.

Floats are folded by their IEEE-754 bit pattern (``struct.pack('<d')``)
so the checksum distinguishes ``0.0``/``-0.0`` and every NaN payload a
bit flip can produce — ``repr`` would alias them.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any

import numpy as np

__all__ = ["payload_checksum", "checkpoint_crc"]


def _mix(crc: int, tag: bytes, data: bytes = b"") -> int:
    return zlib.crc32(data, zlib.crc32(tag, crc))


def _update(crc: int, obj: Any) -> int:
    if obj is None:
        return _mix(crc, b"N")
    if isinstance(obj, bool):  # before int: bool is an int subclass
        return _mix(crc, b"b", b"\x01" if obj else b"\x00")
    if isinstance(obj, (int, np.integer)):
        return _mix(crc, b"i", str(int(obj)).encode())
    if isinstance(obj, (float, np.floating)):
        return _mix(crc, b"f", struct.pack("<d", float(obj)))
    if isinstance(obj, str):
        return _mix(crc, b"s", obj.encode())
    if isinstance(obj, bytes):
        return _mix(crc, b"y", obj)
    if isinstance(obj, np.ndarray):
        crc = _mix(crc, b"a", str(obj.dtype).encode())
        crc = _mix(crc, b"#", repr(obj.shape).encode())
        return _mix(crc, b"@", np.ascontiguousarray(obj).tobytes())
    if isinstance(obj, dict):
        crc = _mix(crc, b"d", str(len(obj)).encode())
        for key in sorted(obj):
            crc = _update(crc, key)
            crc = _update(crc, obj[key])
        return crc
    if isinstance(obj, (list, tuple)):
        crc = _mix(crc, b"l", str(len(obj)).encode())
        for item in obj:
            crc = _update(crc, item)
        return crc
    raise TypeError(
        f"payload_checksum cannot fingerprint {type(obj).__name__!r}"
    )


def payload_checksum(payload: Any) -> int:
    """CRC32 fingerprint of an arbitrary message payload."""
    return _update(0, payload)


def checkpoint_crc(
    snapshot: dict[str, Any], state_array: np.ndarray | None = None
) -> int:
    """CRC over the *numerical* content of a solver checkpoint.

    Checkpoints carry a few non-numeric helpers (a deep-copied
    estimator object) that cannot be fingerprinted structurally and
    cannot be corrupted by :class:`~repro.faults.models.StateCorruption`
    either — only the keys that hold plain values and arrays enter the
    CRC.  The key list itself is part of the fingerprint, so a
    truncated snapshot (a missing field) is detected too.

    The ``"state"`` entry is usually an opaque problem-state object, so
    it never enters the generic walk; the caller passes its backing
    array via ``state_array`` (:meth:`repro.problems.base.Problem.
    state_array`) — exactly the values in-memory corruption can poison.
    Stamp and verify must pass the same view or neither.
    """
    content = {
        key: value
        for key, value in snapshot.items()
        if key not in ("crc", "state") and _fingerprintable(value)
    }
    crc = _update(0, content)
    if state_array is not None:
        crc = _update(_mix(crc, b"S"), state_array)
    return crc


def _fingerprintable(value: Any) -> bool:
    if value is None or isinstance(
        value, (bool, int, float, str, bytes, np.integer, np.floating, np.ndarray)
    ):
        return True
    if isinstance(value, dict):
        return all(_fingerprintable(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return all(_fingerprintable(v) for v in value)
    return False
