"""Seeded value- and byte-level damage: what corruption faults *do*.

Every function takes the RNG it draws from (a named stream owned by the
caller — the fault injector's ``corruption`` stream, an experiment's
storage stream, a fuzz test's seeded generator), so identical seeds
produce identical damage byte-for-byte.

Damage modes (``repro.faults.models.CORRUPTION_MODES``):

* ``bitflip`` — XOR one random bit of one float's IEEE-754 pattern (or
  one bit of an int).  Low mantissa bits give the *silent* corruptions
  this layer exists to catch; sign/exponent bits give the blowups the
  plausibility guard sees.
* ``perturb`` — multiply one value by ``1 + amplitude * u`` with
  ``u ~ U[-1, 1)`` (additive for zeros), the analog-glitch model.
* ``truncate`` — drop one field from a dict payload (or cut an array
  short): the torn half-write / short read.
"""

from __future__ import annotations

import copy
import struct
from typing import Any

import numpy as np

__all__ = ["corrupt_payload", "corrupt_array_inplace", "corrupt_file"]


def _flip_float_bit(value: float, bit: int) -> float:
    (pattern,) = struct.unpack("<Q", struct.pack("<d", float(value)))
    (flipped,) = struct.unpack("<d", struct.pack("<Q", pattern ^ (1 << bit)))
    return flipped


def corrupt_array_inplace(
    arr: np.ndarray, mode: str, amplitude: float, rng: np.random.Generator
) -> str:
    """Damage one element of ``arr`` in place; returns a description.

    ``truncate`` has no in-place meaning for resident state, so it (and
    any unknown mode) degrades to ``perturb``; non-float dtypes are
    perturbed rather than bit-flipped.
    """
    flat = arr.reshape(-1)
    i = int(rng.integers(flat.size))
    if mode == "bitflip" and flat.dtype == np.float64:
        bit = int(rng.integers(64))
        flat[i] = _flip_float_bit(float(flat[i]), bit)
        return f"bitflip bit {bit} at [{i}]"
    u = 2.0 * float(rng.random()) - 1.0
    old = float(flat[i])
    flat[i] = old * (1.0 + amplitude * u) if old != 0.0 else amplitude * u
    return f"perturb x(1{amplitude * u:+.3g}) at [{i}]"


def _numeric_sites(obj: Any, path: tuple = ()) -> list[tuple[tuple, str]]:
    """Paths to corruptible values, in deterministic traversal order."""
    sites: list[tuple[tuple, str]] = []
    if isinstance(obj, np.ndarray):
        if obj.size:
            sites.append((path, "array"))
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, np.integer)):
        sites.append((path, "int"))
    elif isinstance(obj, (float, np.floating)):
        sites.append((path, "float"))
    elif isinstance(obj, dict):
        for key in sorted(obj, key=repr):
            sites.extend(_numeric_sites(obj[key], path + (key,)))
    elif isinstance(obj, (list, tuple)):
        for idx, item in enumerate(obj):
            sites.extend(_numeric_sites(item, path + (idx,)))
    return sites


def _get(obj: Any, path: tuple) -> Any:
    for step in path:
        obj = obj[step]
    return obj


def _set(obj: Any, path: tuple, value: Any) -> None:
    for step in path[:-1]:
        obj = obj[step]
    obj[path[-1]] = value


def corrupt_payload(
    payload: Any, mode: str, amplitude: float, rng: np.random.Generator
) -> tuple[Any, str | None]:
    """Return ``(damaged deep copy, description)``.

    The description is ``None`` — and the payload returned untouched —
    when there is nothing corruptible (e.g. a ``None`` heartbeat body).
    The original is never mutated: the sender's buffered copy must stay
    pristine so a retransmission delivers clean data.
    """
    damaged = copy.deepcopy(payload)
    if mode == "truncate":
        if isinstance(damaged, dict) and damaged:
            key = sorted(damaged, key=repr)[int(rng.integers(len(damaged)))]
            del damaged[key]
            return damaged, f"dropped field {key!r}"
        if isinstance(damaged, np.ndarray) and damaged.size > 1:
            cut = int(rng.integers(1, damaged.size))
            return damaged.reshape(-1)[:cut].copy(), f"truncated to {cut}"
        # Nothing with fields to drop: degrade to a value perturbation.
    sites = _numeric_sites(damaged)
    if not sites:
        return payload, None
    path, kind = sites[int(rng.integers(len(sites)))]
    where = "/".join(str(p) for p in path) or "<root>"
    if kind == "array":
        target = _get(damaged, path) if path else damaged
        detail = corrupt_array_inplace(target, mode, amplitude, rng)
        return damaged, f"{where}: {detail}"
    value = _get(damaged, path) if path else damaged
    if kind == "int":
        if mode == "bitflip":
            new: Any = int(value) ^ (1 << int(rng.integers(31)))
            detail = "bitflip"
        else:
            step = max(1, int(amplitude * max(abs(int(value)), 1)))
            new = int(value) + (step if rng.random() < 0.5 else -step)
            detail = f"perturb {new - int(value):+d}"
    else:
        if mode == "bitflip":
            bit = int(rng.integers(64))
            new = _flip_float_bit(float(value), bit)
            detail = f"bitflip bit {bit}"
        else:
            u = 2.0 * float(rng.random()) - 1.0
            old = float(value)
            new = old * (1.0 + amplitude * u) if old != 0.0 else amplitude * u
            detail = f"perturb x(1{amplitude * u:+.3g})"
    if not path:
        return new, f"{where}: {detail}"
    _set(damaged, path, new)
    return damaged, f"{where}: {detail}"


def corrupt_file(
    path: str,
    rng: np.random.Generator,
    *,
    n_bytes: int = 1,
    offset: int | None = None,
) -> list[int]:
    """Flip ``n_bytes`` bytes of the file at ``path``; returns offsets.

    Each damaged byte is XORed with a non-zero seeded mask, so the file
    is guaranteed to differ.  ``offset`` pins the damage to a contiguous
    run starting there (clipped to the file); ``None`` draws distinct
    random offsets.  An empty or missing file is left alone (``[]``).
    """
    try:
        with open(path, "rb") as fh:
            data = bytearray(fh.read())
    except FileNotFoundError:
        return []
    if not data:
        return []
    if offset is not None:
        offsets = [o for o in range(offset, offset + n_bytes) if o < len(data)]
    else:
        k = min(n_bytes, len(data))
        offsets = sorted(
            int(o) for o in rng.choice(len(data), size=k, replace=False)
        )
    for o in offsets:
        data[o] ^= 1 + int(rng.integers(255))
    with open(path, "wb") as fh:
        fh.write(bytes(data))
    return offsets
