"""End-to-end data integrity: checksums, seeded damage, detection.

The paper's fault model is *timing*: late, lost and reordered messages
cost iterations, never correctness.  Real grid hardware also delivers
*value* faults — bit flips in flight, poisoned resident memory, torn
writes on disk — and an asynchronous iteration is exactly the kind of
algorithm that can silently absorb one into a wrong converged answer.
``repro.integrity`` holds the shared primitives of both halves of that
story:

* **fingerprints** — :func:`payload_checksum` (order-independent CRC
  over arbitrary message payloads, numpy arrays included) stamped onto
  :class:`~repro.runtime.message.Message` and verified on receive, and
  :func:`checkpoint_crc` stamped onto solver checkpoints and verified
  before any restore;
* **seeded damage** — :func:`corrupt_payload` /
  :func:`corrupt_array_inplace` (the value-level faults
  :class:`~repro.faults.models.PayloadCorruption` and
  :class:`~repro.faults.models.StateCorruption` compile to) and
  :func:`corrupt_file` (the byte-level at-rest damage of
  :class:`~repro.faults.models.StorageCorruption`), all driven by named
  RNG streams so corrupted runs stay byte-reproducible.

Detection and recovery semantics live with their layers: the transport
in :mod:`repro.runtime.node`, checkpoints in
:mod:`repro.core.solver` / :mod:`repro.models._recovery`, the
numerical-plausibility guard in :mod:`repro.guard.plausibility`, and
the WAL/audit/cache quarantine paths in :mod:`repro.serve` and
:mod:`repro.exec.cache`.  See ``docs/robustness.md`` ("Data
integrity").
"""

from repro.integrity.checksum import checkpoint_crc, payload_checksum
from repro.integrity.damage import (
    corrupt_array_inplace,
    corrupt_file,
    corrupt_payload,
)

__all__ = [
    "payload_checksum",
    "checkpoint_crc",
    "corrupt_payload",
    "corrupt_array_inplace",
    "corrupt_file",
]
