"""Topology-generic LB zoo: one driver, many algorithms, faults, triggers.

:mod:`repro.balancing` implements each classical family against a bare
networkx graph and a *fault-free, always-on* schedule.  This module is
the harness that makes them comparable on **arbitrary topologies under
faults** — the "which LB wins where" table of ROADMAP item 2:

* every algorithm is wrapped as an adapter with one interface: given the
  current :class:`ActiveView` (the topology minus whatever nodes/links a
  fault window has taken down) and the load vector, propose *edge
  transfers*;
* a round-based driver advances a deterministic fault timeline
  (:func:`make_zoo_schedule`: outages, link flaps, load shocks, lying
  load sensors), applies
  the SPARTA-style **trigger policy** (rebalance every ``check_every``
  rounds *only if* the imbalance ratio exceeds ``threshold`` —
  SNIPPETS.md, ``fix balance Nevery thresh``), applies the proposed
  transfers, and accounts volume and link-class-weighted communication
  cost (``wan`` edges cost ``wan_cost`` times a ``lan`` edge);
* everything is a pure function of ``(topology, algorithm, params,
  schedule, seed)`` — byte-reproducible, cacheable by the sweep engine.

Loads here are *divisible real values* (the Demirel & Sbalzarini
setting), not solver components: the solver-integrated residual balancer
stays :mod:`repro.core.lb`; its decision rule appears here as the
``reactive_residual`` adapter so the paper's scheme can be benchmarked
on graphs the solver's 1-D decomposition could never host.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Iterable

import networkx as nx
import numpy as np

from repro.balancing.centralized import centralized_balance
from repro.balancing.dimension_exchange import edge_colouring
from repro.topology.graphs import Topology
from repro.util.rng import spawn_generator
from repro.util.validation import check_positive

__all__ = [
    "ZOO_ALGORITHMS",
    "ZOO_SCHEDULES",
    "ActiveView",
    "LinkOutage",
    "LoadShock",
    "NodeOutage",
    "TriggerPolicy",
    "ValueCorruption",
    "ZooFaultSchedule",
    "ZooParams",
    "ZooRunResult",
    "initial_load",
    "make_zoo_schedule",
    "run_zoo",
]

#: Adapter registry order == report order.
ZOO_ALGORITHMS = (
    "reactive_residual",
    "diffusion",
    "accelerated",
    "dimension_exchange",
    "bertsekas",
    "centralized",
)

#: Named fault timelines ``make_zoo_schedule`` builds.
ZOO_SCHEDULES = (
    "none", "load_shock", "node_outage", "link_flap", "value_corruption",
)


# ---------------------------------------------------------------------------
# Policy + parameters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TriggerPolicy:
    """SPARTA's ``fix balance Nevery thresh`` (SNIPPETS.md snippet 2).

    Every ``check_every`` rounds the driver evaluates the imbalance
    ratio (max/mean over up nodes) and performs one balancing step only
    if it exceeds ``threshold`` — "rebalance ... but only if the current
    imbalance factor exceeds the specified threshold".
    """

    check_every: int = 2
    threshold: float = 1.02

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {self.check_every}")
        if self.threshold < 1.0:
            raise ValueError(f"threshold must be >= 1, got {self.threshold}")


@dataclass(frozen=True)
class ZooParams:
    """Zoo driver knobs shared by every algorithm adapter.

    ``staleness`` is measured in balancing steps: the asynchronous
    adapters (``bertsekas``, ``reactive_residual``) act on neighbour
    loads as they were that many steps ago — the stale-view regime the
    Bertsekas–Tsitsiklis model is proved in.
    """

    rounds: int = 240
    trigger: TriggerPolicy = field(default_factory=TriggerPolicy)
    threshold_ratio: float = 1.2
    accuracy: float = 0.5
    max_fraction: float = 0.5
    transfer_fraction: float = 0.5
    staleness: int = 2
    wan_cost: float = 8.0
    sample_every: int = 8

    def __post_init__(self) -> None:
        check_positive("rounds", self.rounds)
        if not self.threshold_ratio > 1.0:
            raise ValueError(
                f"threshold_ratio must be > 1, got {self.threshold_ratio}"
            )
        for name in ("accuracy", "max_fraction", "transfer_fraction"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if self.staleness < 1:
            raise ValueError(f"staleness must be >= 1, got {self.staleness}")
        if self.wan_cost < 1.0:
            raise ValueError(f"wan_cost must be >= 1, got {self.wan_cost}")
        check_positive("sample_every", self.sample_every)

    def to_dict(self) -> dict:
        return asdict(self)


# ---------------------------------------------------------------------------
# Fault timeline
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeOutage:
    """Node ``node`` is down for rounds ``[start, end)``: it takes no
    part in balancing and its load is frozen (crash-with-state, the
    grid's transient host loss)."""

    node: int
    start: int
    end: int


@dataclass(frozen=True)
class LinkOutage:
    """Edge ``(u, v)`` is unusable for rounds ``[start, end)``."""

    u: int
    v: int
    start: int
    end: int


@dataclass(frozen=True)
class LoadShock:
    """``amount`` of extra load lands on ``node`` at ``round`` — the
    external-load bursts the paper's grid traces model."""

    node: int
    round: int
    amount: float


@dataclass(frozen=True)
class ValueCorruption:
    """Node ``node``'s *reported* load reads ``factor`` times its true
    load for rounds ``[start, end)`` — a lying load sensor.

    Only the measurement channel is corrupted: every observer (the
    trigger policy and all adapters, including the node itself) sees the
    lie, while the true load — what transfers actually move — is
    untouched and stays conserved.  ``factor > 1`` makes the node look
    crushed (spurious triggers, neighbours refuse it load while it
    drains itself); ``factor < 1`` makes it look idle (everyone dumps
    load on it, and real imbalance can hide below the trigger
    threshold)."""

    node: int
    start: int
    end: int
    factor: float


@dataclass(frozen=True)
class ZooFaultSchedule:
    """A named, immutable fault timeline for one zoo run."""

    name: str
    node_outages: tuple[NodeOutage, ...] = ()
    link_outages: tuple[LinkOutage, ...] = ()
    shocks: tuple[LoadShock, ...] = ()
    corruptions: tuple[ValueCorruption, ...] = ()


def make_zoo_schedule(
    name: str, topology: Topology, rounds: int, *, seed: int = 0
) -> ZooFaultSchedule:
    """Build the named fault timeline, seeded against ``topology``.

    All choices (which node crashes, which links flap, where shocks
    land) come from named RNG streams keyed by ``seed`` and the
    topology's digest, so the same (topology, schedule, seed) triple is
    identical in every process.
    """
    n = topology.n_nodes
    if name == "none":
        return ZooFaultSchedule(name)
    rng = spawn_generator(seed, f"zoo/schedule/{name}/{topology.digest()}")
    if name == "load_shock":
        # Two bursts, each half the system's initial load, on distinct
        # seeded nodes at 1/3 and 2/3 of the horizon.
        nodes = rng.choice(n, size=min(2, n), replace=False)
        amount = 4.0 * n
        shocks = tuple(
            LoadShock(int(node), round_, float(amount))
            for node, round_ in zip(nodes, (rounds // 3, (2 * rounds) // 3))
        )
        return ZooFaultSchedule(name, shocks=shocks)
    if name == "node_outage":
        node = int(rng.integers(n))
        return ZooFaultSchedule(
            name,
            node_outages=(NodeOutage(node, rounds // 4, rounds // 2),),
            shocks=(LoadShock(node, (5 * rounds) // 8, float(2.0 * n)),),
        )
    if name == "value_corruption":
        # Two lying windows on distinct seeded nodes: first an
        # over-reporter (8x — looks crushed), then an under-reporter
        # (0.1x — looks idle), each spanning a fifth of the horizon.
        nodes = rng.choice(n, size=min(2, n), replace=False)
        return ZooFaultSchedule(
            name,
            corruptions=(
                ValueCorruption(
                    int(nodes[0]), rounds // 5, (2 * rounds) // 5, 8.0
                ),
                ValueCorruption(
                    int(nodes[-1]), (3 * rounds) // 5, (4 * rounds) // 5, 0.1
                ),
            ),
        )
    if name == "link_flap":
        edges = topology.edges()
        k = max(1, len(edges) // 6)
        picks = rng.choice(len(edges), size=min(k, len(edges)), replace=False)
        windows = ((rounds // 5, (2 * rounds) // 5), ((3 * rounds) // 5, (4 * rounds) // 5))
        outages = tuple(
            LinkOutage(*edges[int(pick)], start, end)
            for pick in sorted(int(p) for p in picks)
            for start, end in windows
        )
        return ZooFaultSchedule(name, link_outages=outages)
    raise ValueError(
        f"unknown zoo schedule {name!r}; choose from {ZOO_SCHEDULES}"
    )


def initial_load(topology: Topology, kind: str, *, seed: int = 0) -> np.ndarray:
    """Seeded initial load vector (total always ``8 * n_nodes``).

    ``"spike"`` piles everything on node 0 (the classic worst case);
    ``"uniform"`` draws i.i.d. uniform loads; ``"bimodal"`` splits the
    nodes into heavy and light halves by a seeded shuffle.
    """
    n = topology.n_nodes
    total = 8.0 * n
    if kind == "spike":
        load = np.zeros(n)
        load[0] = total
        return load
    rng = spawn_generator(seed, f"zoo/initial/{kind}/{n}")
    if kind == "uniform":
        load = rng.uniform(0.0, 1.0, n)
        return load * (total / load.sum())
    if kind == "bimodal":
        load = np.full(n, 2.0)
        heavy = rng.permutation(n)[: max(1, n // 4)]
        load[heavy] = (total - load.sum() + 2.0 * len(heavy)) / len(heavy)
        return load
    raise ValueError(f"unknown initial load kind {kind!r}")


# ---------------------------------------------------------------------------
# The active view (topology minus fault windows)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ActiveView:
    """What an adapter may touch this round: up nodes + live edges.

    ``key`` identifies the active edge set, so stateful adapters
    (colourings, spectral coefficients) can cache against it and rebuild
    only when a fault window opens or closes.
    """

    up: tuple[bool, ...]
    edges: tuple[tuple[int, int], ...]
    neighbors: tuple[tuple[int, ...], ...]
    key: int

    @property
    def n_nodes(self) -> int:
        return len(self.up)

    def max_degree(self) -> int:
        return max((len(nb) for nb in self.neighbors), default=0)

    def graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(i for i in range(self.n_nodes) if self.up[i])
        g.add_edges_from(self.edges)
        return g


def _active_view(
    topology: Topology, schedule: ZooFaultSchedule, round_: int
) -> ActiveView:
    down_nodes = {
        o.node for o in schedule.node_outages if o.start <= round_ < o.end
    }
    down_edges = {
        (min(o.u, o.v), max(o.u, o.v))
        for o in schedule.link_outages
        if o.start <= round_ < o.end
    }
    up = tuple(i not in down_nodes for i in range(topology.n_nodes))
    edges = tuple(
        (u, v)
        for u, v in topology.edges()
        if up[u] and up[v] and (u, v) not in down_edges
    )
    neighbors: list[list[int]] = [[] for _ in range(topology.n_nodes)]
    for u, v in edges:
        neighbors[u].append(v)
        neighbors[v].append(u)
    return ActiveView(
        up=up,
        edges=edges,
        neighbors=tuple(tuple(sorted(nb)) for nb in neighbors),
        key=hash(edges),
    )


# ---------------------------------------------------------------------------
# Algorithm adapters
# ---------------------------------------------------------------------------
# An adapter's ``step(view, load)`` returns edge transfers
# ``(u, v, amount)`` with ``amount > 0`` meaning ``u`` ships ``amount``
# to ``v`` over the (active) edge ``(u, v)``.  The driver applies them
# simultaneously and accounts their cost.

Transfer = tuple[int, int, float]


def _safe_alpha(view: ActiveView) -> float:
    return 1.0 / (view.max_degree() + 1.0)


class _Diffusion:
    """Cybenko first-order diffusion on the active subgraph."""

    needs_limiter = False

    def step(self, view: ActiveView, load: np.ndarray) -> list[Transfer]:
        alpha = _safe_alpha(view)
        out: list[Transfer] = []
        for u, v in view.edges:
            flow = alpha * (load[u] - load[v])
            if flow > 0.0:
                out.append((u, v, flow))
            elif flow < 0.0:
                out.append((v, u, -flow))
        return out


class _Accelerated:
    """Second-order (heavy-ball) diffusion in edge-flow form.

    ``x_{k+1} = β M x_k + (1-β) x_{k-1}`` rewrites per edge as
    ``f_e(k+1) = β α (x_u - x_v) + (β - 1) f_e(k)`` — the momentum term
    keeps flowing along the edge it flowed last step.  β comes from the
    active subgraph's second eigenvalue (cached per active-edge set) and
    the flow memory of an edge resets when a fault window removes it.
    Momentum can overdraw a node, so this adapter runs under the
    driver's outflow limiter (the classic accelerated-scheme caveat).
    """

    needs_limiter = True

    def __init__(self) -> None:
        self._flows: dict[tuple[int, int], float] = {}
        self._beta_cache: dict[int, float] = {}

    def _beta(self, view: ActiveView) -> float:
        if view.key not in self._beta_cache:
            graph = view.graph()
            alpha = _safe_alpha(view)
            lap = (
                nx.laplacian_matrix(graph).toarray().astype(float)
                if graph.number_of_edges()
                else np.zeros((1, 1))
            )
            eig = np.linalg.eigvalsh(np.eye(lap.shape[0]) - alpha * lap)
            moduli = np.sort(np.abs(eig))[::-1]
            lam2 = float(moduli[1]) if len(moduli) > 1 else 0.0
            self._beta_cache[view.key] = 2.0 / (
                1.0 + float(np.sqrt(max(1.0 - lam2 * lam2, 0.0)))
            )
        return self._beta_cache[view.key]

    def step(self, view: ActiveView, load: np.ndarray) -> list[Transfer]:
        alpha = _safe_alpha(view)
        beta = self._beta(view)
        active = set(view.edges)
        for edge in list(self._flows):
            if edge not in active:
                del self._flows[edge]
        out: list[Transfer] = []
        for u, v in view.edges:
            flow = beta * alpha * (load[u] - load[v]) + (beta - 1.0) * (
                self._flows.get((u, v), 0.0)
            )
            self._flows[(u, v)] = flow
            if flow > 0.0:
                out.append((u, v, flow))
            elif flow < 0.0:
                out.append((v, u, -flow))
        return out


class _DimensionExchange:
    """Pairwise averaging along one colour class per step."""

    needs_limiter = False

    def __init__(self) -> None:
        self._colours: list[list[tuple[int, int]]] = []
        self._key: int | None = None
        self._cursor = 0

    def step(self, view: ActiveView, load: np.ndarray) -> list[Transfer]:
        if view.key != self._key:
            graph = view.graph()
            self._colours = edge_colouring(graph)
            self._key = view.key
            self._cursor = 0
        if not self._colours:
            return []
        matching = self._colours[self._cursor % len(self._colours)]
        self._cursor += 1
        out: list[Transfer] = []
        for u, v in matching:
            flow = 0.5 * (load[u] - load[v])
            if flow > 0.0:
                out.append((u, v, flow))
            elif flow < 0.0:
                out.append((v, u, -flow))
        return out


class _StaleViewMixin:
    """Shared stale-neighbour-view machinery of the async adapters."""

    def __init__(self, params: ZooParams) -> None:
        self.params = params
        self._history: deque[np.ndarray] = deque(maxlen=params.staleness)

    def _stale(self, load: np.ndarray) -> np.ndarray:
        stale = self._history[0] if self._history else load
        self._history.append(load.copy())
        return stale


class _Bertsekas(_StaleViewMixin):
    """Bertsekas–Tsitsiklis lightest-neighbour pushing on stale views."""

    needs_limiter = False

    def step(self, view: ActiveView, load: np.ndarray) -> list[Transfer]:
        params = self.params
        stale = self._stale(load)
        out: list[Transfer] = []
        for u in range(view.n_nodes):
            if not view.up[u] or not view.neighbors[u] or load[u] <= 0.0:
                continue
            lighter = [
                v
                for v in view.neighbors[u]
                if stale[v] < load[u] / params.threshold_ratio
            ]
            if not lighter:
                continue
            v = min(lighter, key=lambda j: (stale[j], j))
            amount = params.transfer_fraction * (load[u] - stale[v]) / 2.0
            amount = min(amount, load[u])
            if amount > 0.0:
                out.append((u, int(v), float(amount)))
        return out


class _ReactiveResidual(_StaleViewMixin):
    """The paper's reactive residual-driven rule, topology-generic.

    Each node compares its own *fresh* load estimate against the stale
    view of its lightest active neighbour and ships
    ``accuracy * load * (1 - 1/ratio)`` when ``ratio > threshold_ratio``
    — exactly the decision of :mod:`repro.core.lb` (Algorithm 5) with
    divisible load standing in for residual-weighted components, plus
    the same ``max_fraction`` famine guard.
    """

    needs_limiter = False

    def step(self, view: ActiveView, load: np.ndarray) -> list[Transfer]:
        params = self.params
        stale = self._stale(load)
        out: list[Transfer] = []
        for u in range(view.n_nodes):
            if not view.up[u] or not view.neighbors[u] or load[u] <= 0.0:
                continue
            v = min(view.neighbors[u], key=lambda j: (stale[j], j))
            theirs = stale[v]
            ratio = load[u] / theirs if theirs > 0.0 else float("inf")
            if ratio <= params.threshold_ratio:
                continue
            surplus_fraction = 1.0 - 1.0 / ratio if np.isfinite(ratio) else 1.0
            amount = min(
                params.accuracy * load[u] * surplus_fraction,
                params.max_fraction * load[u],
            )
            if amount > 0.0:
                out.append((u, int(v), float(amount)))
        return out


class _Centralized:
    """Global coordinator: plan with :func:`centralized_balance`, then
    route every planned transfer hop-by-hop along active shortest paths
    (so its volume and WAN cost are honestly comparable with the
    neighbour-local schemes).  Unreachable pairs are skipped — a
    partitioned coordinator cannot move load across the cut."""

    needs_limiter = False

    def __init__(self) -> None:
        self._paths: dict[int, dict] = {}
        self._key: int | None = None

    def step(self, view: ActiveView, load: np.ndarray) -> list[Transfer]:
        up = [i for i in range(view.n_nodes) if view.up[i]]
        if len(up) < 2:
            return []
        if view.key != self._key:
            self._paths = dict(nx.all_pairs_shortest_path(view.graph()))
            self._key = view.key
        _, plan = centralized_balance(load[up])
        out: list[Transfer] = []
        for src_idx, dst_idx, amount in plan:
            src, dst = up[src_idx], up[dst_idx]
            path = self._paths.get(src, {}).get(dst)
            if path is None:
                continue
            for a, b in zip(path, path[1:]):
                out.append((int(a), int(b), float(amount)))
        return out


def _make_adapter(algorithm: str, params: ZooParams):
    if algorithm == "diffusion":
        return _Diffusion()
    if algorithm == "accelerated":
        return _Accelerated()
    if algorithm == "dimension_exchange":
        return _DimensionExchange()
    if algorithm == "bertsekas":
        return _Bertsekas(params)
    if algorithm == "reactive_residual":
        return _ReactiveResidual(params)
    if algorithm == "centralized":
        return _Centralized()
    raise ValueError(
        f"unknown zoo algorithm {algorithm!r}; choose from {ZOO_ALGORITHMS}"
    )


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class ZooRunResult:
    """One (topology, algorithm, schedule) zoo run, reduced to numbers."""

    topology: str
    algorithm: str
    schedule: str
    rounds: int
    checks: int = 0
    triggers: int = 0
    volume: float = 0.0
    wan_volume: float = 0.0
    comm_cost: float = 0.0
    final_imbalance: float = 1.0
    mean_imbalance: float = 1.0
    peak_imbalance: float = 1.0
    history: list[float] = field(default_factory=list)

    def to_row(self) -> dict:
        """JSON row (digest material — virtual quantities only)."""
        return {
            "topology": self.topology,
            "algorithm": self.algorithm,
            "schedule": self.schedule,
            "rounds": self.rounds,
            "checks": self.checks,
            "triggers": self.triggers,
            "volume": float(self.volume),
            "wan_volume": float(self.wan_volume),
            "comm_cost": float(self.comm_cost),
            "final_imbalance": float(self.final_imbalance),
            "mean_imbalance": float(self.mean_imbalance),
            "peak_imbalance": float(self.peak_imbalance),
            "history": [float(h) for h in self.history],
        }


def _imbalance(load: np.ndarray, up: Iterable[bool]) -> float:
    """max/mean over up nodes; 1.0 when degenerate (the metric of
    :func:`repro.balancing.analysis.imbalance_ratio`, tolerant of the
    transient negatives accelerated schemes may produce)."""
    active = load[np.fromiter(up, dtype=bool)]
    if active.size == 0:
        return 1.0
    mean = float(active.mean())
    if mean <= 0.0:
        return 1.0
    return float(active.max() / mean)


def _limit_outflow(load: np.ndarray, transfers: list[Transfer]) -> list[Transfer]:
    """Scale each node's proposed outflow down to its current load.

    Keeps every load non-negative under momentum overdraw while
    conserving the total exactly (only outflows shrink, and each
    transfer's receive shrinks with its send).
    """
    out_total: dict[int, float] = {}
    for u, _, amount in transfers:
        out_total[u] = out_total.get(u, 0.0) + amount
    scale = {
        u: (load[u] / total if total > load[u] and total > 0.0 else 1.0)
        for u, total in out_total.items()
    }
    return [
        (u, v, amount * scale[u])
        for u, v, amount in transfers
        if amount * scale[u] > 0.0
    ]


def run_zoo(
    topology: Topology,
    algorithm: str,
    *,
    params: ZooParams | None = None,
    schedule: ZooFaultSchedule | None = None,
    initial: str = "spike",
    seed: int = 0,
) -> ZooRunResult:
    """Run one algorithm on one topology under one fault timeline.

    Per round: land the round's load shocks, compute the active view,
    apply the trigger policy (every ``check_every`` rounds, act only if
    imbalanced past ``threshold``), let the adapter propose transfers
    over active edges, apply them, and account volume / WAN volume /
    link-class-weighted cost.  Load is conserved to machine precision
    every round (asserted).
    """
    params = params if params is not None else ZooParams()
    schedule = (
        schedule
        if schedule is not None
        else make_zoo_schedule("none", topology, params.rounds, seed=seed)
    )
    load = initial_load(topology, initial, seed=seed)
    adapter = _make_adapter(algorithm, params)
    result = ZooRunResult(
        topology=topology.spec.label(),
        algorithm=algorithm,
        schedule=schedule.name,
        rounds=params.rounds,
    )
    shocks_by_round: dict[int, list[LoadShock]] = {}
    for shock in schedule.shocks:
        shocks_by_round.setdefault(shock.round, []).append(shock)
    edge_class = {e: topology.link_class(*e) for e in topology.edges()}
    expected_total = float(load.sum())
    imbalance_sum = 0.0
    peak = 0.0
    trigger = params.trigger
    for round_ in range(params.rounds):
        for shock in shocks_by_round.get(round_, []):
            load[shock.node] += shock.amount
            expected_total += shock.amount
        view = _active_view(topology, schedule, round_)
        lies = [
            c for c in schedule.corruptions if c.start <= round_ < c.end
        ]
        # Decisions (trigger + adapters) see the reported loads; the
        # transfers they propose move the *true* loads.  Lies can make a
        # node promise more than it holds, so the outflow limiter is
        # forced on whenever a corruption window is open.
        reported = load
        if lies:
            reported = load.copy()
            for lie in lies:
                reported[lie.node] *= lie.factor
        if round_ % trigger.check_every == 0:
            result.checks += 1
            if _imbalance(reported, view.up) > trigger.threshold:
                result.triggers += 1
                transfers = adapter.step(view, reported)
                if adapter.needs_limiter or lies:
                    transfers = _limit_outflow(load, transfers)
                for u, v, amount in transfers:
                    load[u] -= amount
                    load[v] += amount
                    result.volume += amount
                    key = (u, v) if u < v else (v, u)
                    if edge_class.get(key, "lan") == "wan":
                        result.wan_volume += amount
                        result.comm_cost += amount * params.wan_cost
                    else:
                        result.comm_cost += amount
                total = float(load.sum())
                if abs(total - expected_total) > 1e-6 * max(expected_total, 1.0):
                    raise AssertionError(
                        f"{algorithm} on {result.topology}: load not conserved "
                        f"({total} != {expected_total})"
                    )
        imbalance = _imbalance(load, view.up)
        imbalance_sum += imbalance
        peak = max(peak, imbalance)
        if round_ % params.sample_every == 0:
            result.history.append(imbalance)
    result.final_imbalance = _imbalance(load, [True] * topology.n_nodes)
    result.mean_imbalance = imbalance_sum / params.rounds
    result.peak_imbalance = peak
    return result
