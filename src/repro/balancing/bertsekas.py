"""The Bertsekas–Tsitsiklis asynchronous load-balancing model.

This is the model the paper's balancer instantiates (Section 3): "each
processor has an evaluation of its load and those of all its neighbors.
Then, at some given times, this processor looks for its neighbors which
are less loaded than itself.  Finally, it distributes a part of its load
to all these processors.  A variant ... is to send a part of the work
only to the lightest loaded neighbor.  This last variant has been chosen
for implementation in our AIAC algorithms."

Here the model runs standalone on the DES with *abstract divisible
load*: nodes act at their own (jittered) pace on *stale* neighbour
information carried by delayed messages — the genuinely asynchronous
setting in which Bertsekas & Tsitsiklis prove convergence to a bounded
neighbourhood of the balanced state.  Both the "all lighter neighbours"
and the paper's "lightest neighbour" variants are provided.

The solver-integrated version (indivisible components, residual
estimates) is :mod:`repro.core.lb`; this module exists to study the
model itself (convergence, staleness, variant comparison) and backs the
``bench_ablations`` policy comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.des import Hold, Simulator
from repro.util.rng import spawn_generator
from repro.util.validation import check_positive

__all__ = ["BertsekasParams", "BertsekasResult", "simulate_bertsekas_lb"]


@dataclass(slots=True, frozen=True)
class BertsekasParams:
    """Model parameters.

    Attributes
    ----------
    check_period:
        Mean time between a node's balancing attempts.
    period_jitter:
        Relative jitter of the period (nodes drift apart — asynchrony).
    message_delay:
        One-way delay of both load-info and transfer messages (this is
        what makes neighbour views *stale*).
    threshold_ratio:
        A node acts only on neighbours whose (viewed) load is below
        ``mine / threshold_ratio``; > 1 prevents thrashing.
    transfer_fraction:
        Fraction of the viewed surplus actually shipped per action.
    variant:
        ``"lightest"`` (the paper's pick) or ``"all_lighter"``.
    horizon:
        Virtual-time budget of the simulation.
    """

    check_period: float = 1.0
    period_jitter: float = 0.3
    message_delay: float = 0.2
    threshold_ratio: float = 1.2
    transfer_fraction: float = 0.5
    variant: str = "lightest"
    horizon: float = 500.0

    def __post_init__(self) -> None:
        check_positive("check_period", self.check_period)
        if not 0 <= self.period_jitter < 1:
            raise ValueError(f"period_jitter must be in [0, 1), got {self.period_jitter}")
        if self.message_delay < 0:
            raise ValueError(f"message_delay must be >= 0, got {self.message_delay}")
        if not self.threshold_ratio > 1:
            raise ValueError(f"threshold_ratio must be > 1, got {self.threshold_ratio}")
        if not 0 < self.transfer_fraction <= 1:
            raise ValueError(
                f"transfer_fraction must be in (0, 1], got {self.transfer_fraction}"
            )
        if self.variant not in ("lightest", "all_lighter"):
            raise ValueError(f"unknown variant {self.variant!r}")
        check_positive("horizon", self.horizon)


@dataclass(slots=True)
class BertsekasResult:
    """Simulation outcome."""

    final_load: np.ndarray
    history_times: list[float]
    history_imbalance: list[float]
    transfers: int = 0
    info_messages: int = 0

    @property
    def final_imbalance(self) -> float:
        mean = self.final_load.mean()
        return float(self.final_load.max() / mean) if mean > 0 else 1.0


def simulate_bertsekas_lb(
    graph: nx.Graph,
    initial_load: np.ndarray,
    params: BertsekasParams = BertsekasParams(),
    *,
    seed: int = 0,
    sample_period: float = 1.0,
) -> BertsekasResult:
    """Run the asynchronous model; returns loads and imbalance history.

    Load is conserved exactly (in-flight amounts included) — asserted
    at every sample point.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    load = np.asarray(initial_load, dtype=float).copy()
    if load.shape != (n,):
        raise ValueError(f"initial_load must have shape ({n},), got {load.shape}")
    if np.any(load < 0):
        raise ValueError("loads must be non-negative")
    total = load.sum()
    idx = {node: i for i, node in enumerate(nodes)}
    neighbours = [sorted((idx[v] for v in graph.neighbors(u))) for u in nodes]
    # views[i][j]: i's (stale) view of j's load; bootstrapped exact.
    views = [dict((j, load[j]) for j in neighbours[i]) for i in range(n)]
    in_flight = [0.0]  # box so closures can mutate

    sim = Simulator()
    result = BertsekasResult(
        final_load=load,
        history_times=[],
        history_imbalance=[],
    )

    def deliver_info(dst: int, src: int, value: float) -> None:
        views[dst][src] = value

    def deliver_load(dst: int, amount: float) -> None:
        load[dst] += amount
        in_flight[0] -= amount

    def node_process(i: int, rng: np.random.Generator):
        while True:
            jitter = 1.0 + params.period_jitter * (2.0 * rng.random() - 1.0)
            yield Hold(params.check_period * jitter)
            # Advertise our load to every neighbour (stale on arrival).
            for j in neighbours[i]:
                result.info_messages += 1
                sim.schedule_in(
                    params.message_delay,
                    lambda j=j, v=load[i]: deliver_info(j, i, v),
                )
            mine = load[i]
            if mine <= 0:
                continue
            lighter = [
                j
                for j in neighbours[i]
                if views[i][j] < mine / params.threshold_ratio
            ]
            if not lighter:
                continue
            if params.variant == "lightest":
                lightest = min(lighter, key=lambda j: (views[i][j], j))
                targets = [lightest]
            else:
                targets = lighter
            for j in targets:
                surplus = (load[i] - views[i][j]) / (len(targets) + 1)
                amount = params.transfer_fraction * surplus
                if amount <= 0:
                    continue
                load[i] -= amount
                in_flight[0] += amount
                result.transfers += 1
                sim.schedule_in(
                    params.message_delay,
                    lambda j=j, a=amount: deliver_load(j, a),
                )

    def sampler():
        while True:
            yield Hold(sample_period)
            conserved = load.sum() + in_flight[0]
            if abs(conserved - total) > 1e-6 * max(total, 1.0):
                raise AssertionError(
                    f"load not conserved: {conserved} != {total}"
                )
            result.history_times.append(sim.now)
            mean = total / n
            result.history_imbalance.append(
                float(load.max() / mean) if mean > 0 else 1.0
            )

    for i in range(n):
        rng = spawn_generator(seed, f"bertsekas/node/{i}")
        sim.spawn(f"node-{i}", node_process(i, rng))
    sim.spawn("sampler", sampler())
    sim.run(until=params.horizon)
    return result
