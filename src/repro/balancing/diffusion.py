"""Cybenko's diffusion load balancing.

First-order scheme (Cybenko 1989): each round, every node ``i``
simultaneously exchanges with all neighbours::

    x_i  <-  x_i + α Σ_{j ~ i} (x_j - x_i)

Load is conserved exactly; for a connected graph and
``0 < α < 1/deg_max`` the iteration converges geometrically to the
uniform vector (it is a lazy random-walk smoothing).  This is the
synchronous technique the paper deems "not convenient for the AIAC
class" — included as the classical reference point.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.balancing.analysis import load_stddev

__all__ = ["diffusion_step", "diffusion_balance", "max_stable_alpha", "optimal_alpha"]


def _node_index(graph: nx.Graph) -> dict:
    return {node: i for i, node in enumerate(graph.nodes())}


def optimal_alpha(graph: nx.Graph) -> float:
    """A safe, well-performing diffusion parameter: ``1 / (deg_max + 1)``.

    An edgeless graph (including the single node) has nothing to
    diffuse; any legal alpha is a no-op there, so return the largest one
    ``diffusion_step`` accepts instead of the out-of-range ``1.0`` that
    ``deg_max = 0`` would produce.
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("graph is empty")
    deg_max = max(dict(graph.degree()).values(), default=0)
    if deg_max == 0:
        return 0.5
    return 1.0 / (deg_max + 1)


def max_stable_alpha(graph: nx.Graph) -> float:
    """The largest alpha ``diffusion_step`` accepts for ``graph``:
    ``min(0.5, 1/deg_max)`` — beyond ``1/deg_max`` the iteration matrix
    has an eigenvalue below ``-1`` on high-degree graphs (e.g. stars)
    and the scheme oscillates instead of converging."""
    deg_max = max(dict(graph.degree()).values(), default=0)
    if deg_max == 0:
        return 0.5
    return min(0.5, 1.0 / deg_max)


def diffusion_step(graph: nx.Graph, load: np.ndarray, alpha: float) -> np.ndarray:
    """One synchronous diffusion round; returns the new load vector."""
    load = np.asarray(load, dtype=float)
    if load.shape != (graph.number_of_nodes(),):
        raise ValueError(
            f"load must have one entry per node "
            f"({graph.number_of_nodes()}), got shape {load.shape}"
        )
    limit = max_stable_alpha(graph)
    if not 0 < alpha <= limit + 1e-12:
        raise ValueError(
            f"alpha must be in (0, {limit:g}] for this graph "
            f"(deg_max={max(dict(graph.degree()).values(), default=0)}), "
            f"got {alpha!r}"
        )
    idx = _node_index(graph)
    new = load.copy()
    for u, v in graph.edges():
        flow = alpha * (load[idx[u]] - load[idx[v]])
        new[idx[u]] -= flow
        new[idx[v]] += flow
    return new


def diffusion_balance(
    graph: nx.Graph,
    load: np.ndarray,
    *,
    alpha: float | None = None,
    tol: float = 1e-9,
    max_rounds: int = 100_000,
) -> tuple[np.ndarray, int]:
    """Iterate diffusion until the load stddev drops below ``tol``.

    Returns ``(final_load, rounds_used)``.  Raises if the graph is not
    connected (diffusion then cannot balance globally).
    """
    if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
        raise ValueError("diffusion requires a connected graph")
    if alpha is None:
        alpha = optimal_alpha(graph)
    current = np.asarray(load, dtype=float)
    for rounds in range(max_rounds):
        if load_stddev(current) <= tol:
            return current, rounds
        current = diffusion_step(graph, current, alpha)
    raise RuntimeError(
        f"diffusion did not balance within {max_rounds} rounds "
        f"(stddev={load_stddev(current):.3e})"
    )
