"""Centralized load balancing — the baseline the paper argues against.

A coordinator gathers every node's load, computes the average and
instructs transfers.  The *load vector* result is perfect in one round;
the *cost* is the global synchronisation: ``2 (n - 1)`` messages through
one coordinator per round plus the transfer messages, and every node
stalls while the round runs.  :func:`centralized_cost_model` exposes the
message/latency accounting used by ``bench_ablations`` to contrast with
the neighbour-local scheme (whose per-migration cost is independent of
``n``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["centralized_balance", "centralized_cost_model"]


def centralized_balance(load: np.ndarray) -> tuple[np.ndarray, list[tuple[int, int, float]]]:
    """One coordinator round: returns (balanced_load, transfer_plan).

    The plan is a list of ``(src, dst, amount)`` transfers computed with
    the classic two-pointer scheme over surpluses and deficits; the
    balanced vector equals the mean everywhere (up to rounding).
    """
    load = np.asarray(load, dtype=float)
    if load.ndim != 1 or load.size == 0:
        raise ValueError(f"load must be non-empty 1-D, got shape {load.shape}")
    mean = load.mean()
    surplus = [(i, load[i] - mean) for i in range(load.size) if load[i] > mean]
    deficit = [(i, mean - load[i]) for i in range(load.size) if load[i] < mean]
    plan: list[tuple[int, int, float]] = []
    si, di = 0, 0
    surplus = [list(x) for x in surplus]
    deficit = [list(x) for x in deficit]
    while si < len(surplus) and di < len(deficit):
        src, extra = surplus[si]
        dst, need = deficit[di]
        amount = min(extra, need)
        if amount > 0:
            plan.append((int(src), int(dst), float(amount)))
        surplus[si][1] -= amount
        deficit[di][1] -= amount
        if surplus[si][1] <= 1e-15:
            si += 1
        if deficit[di][1] <= 1e-15:
            di += 1
    return np.full_like(load, mean), plan


def centralized_cost_model(
    n_nodes: int,
    *,
    latency: float,
    gather_bytes: float = 16.0,
    bandwidth: float = 1e6,
) -> float:
    """Virtual time one coordinator round costs (gather + scatter).

    Every node sends its load to the coordinator and receives a
    directive: ``2 (n-1)`` sequentialised messages through the
    coordinator's link — the scaling bottleneck the paper's
    non-centralized choice avoids.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    per_message = latency + gather_bytes / bandwidth
    return 2.0 * (n_nodes - 1) * per_message
