"""Non-centralized iterative load-balancing algorithms (paper Section 3).

Standalone implementations of the algorithm families the paper surveys
before picking its scheme, usable on any (connected) networkx graph:

* :func:`~repro.balancing.diffusion.diffusion_balance` — Cybenko's
  first-order diffusion: every node exchanges load with *all* its
  neighbours simultaneously each round;
* :func:`~repro.balancing.dimension_exchange.dimension_exchange_balance`
  — pairwise averaging along one edge colour (dimension) per round;
* :func:`~repro.balancing.bertsekas.simulate_bertsekas_lb` — the
  *asynchronous* Bertsekas–Tsitsiklis model the paper builds on: nodes
  act on possibly stale neighbour information at their own pace, with
  message delays, shipping load to lighter neighbours (either all of
  them or only the lightest — the variant the paper selects);
* :func:`~repro.balancing.centralized.centralized_balance` — the global
  coordinator baseline the paper argues against (it needs global
  synchronisation), used in ablations;
* :mod:`~repro.balancing.analysis` — imbalance metrics shared by all of
  them.

These operate on abstract load vectors; the *solver-integrated* balancer
(residual-driven, component migration) is :mod:`repro.core.lb`.
"""

from repro.balancing.accelerated import (
    chebyshev_diffusion_balance,
    diffusion_matrix,
    second_eigenvalue,
    second_order_diffusion_balance,
)
from repro.balancing.analysis import imbalance_ratio, load_stddev, mean_load
from repro.balancing.bertsekas import BertsekasParams, simulate_bertsekas_lb
from repro.balancing.centralized import centralized_balance
from repro.balancing.diffusion import (
    diffusion_balance,
    diffusion_step,
    max_stable_alpha,
    optimal_alpha,
)
from repro.balancing.dimension_exchange import (
    dimension_exchange_balance,
    dimension_exchange_round,
    edge_colouring,
)
from repro.balancing.zoo import (
    ZOO_ALGORITHMS,
    ZOO_SCHEDULES,
    TriggerPolicy,
    ValueCorruption,
    ZooFaultSchedule,
    ZooParams,
    ZooRunResult,
    initial_load,
    make_zoo_schedule,
    run_zoo,
)

__all__ = [
    "chebyshev_diffusion_balance",
    "diffusion_matrix",
    "second_eigenvalue",
    "second_order_diffusion_balance",
    "imbalance_ratio",
    "load_stddev",
    "mean_load",
    "BertsekasParams",
    "simulate_bertsekas_lb",
    "centralized_balance",
    "diffusion_balance",
    "diffusion_step",
    "max_stable_alpha",
    "optimal_alpha",
    "dimension_exchange_balance",
    "dimension_exchange_round",
    "edge_colouring",
    "ZOO_ALGORITHMS",
    "ZOO_SCHEDULES",
    "TriggerPolicy",
    "ValueCorruption",
    "ZooFaultSchedule",
    "ZooParams",
    "ZooRunResult",
    "initial_load",
    "make_zoo_schedule",
    "run_zoo",
]
