"""Dimension-exchange load balancing.

The second classical family the paper cites (Hosseini et al.; Cybenko):
instead of exchanging with all neighbours at once, a node pairs up with
*one* neighbour per round — the edges used in a round form a matching,
obtained from a proper edge colouring (on a hypercube the colours are
literally the dimensions, hence the name).  Each matched pair averages
its load::

    x_i, x_j  <-  (x_i + x_j) / 2

Cycling through the colours balances any connected graph, and on a
hypercube one full cycle balances *exactly* — a property the test suite
checks.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.balancing.analysis import load_stddev

__all__ = ["edge_colouring", "dimension_exchange_round", "dimension_exchange_balance"]


def edge_colouring(graph: nx.Graph) -> list[list[tuple]]:
    """Partition the edges into matchings (colour classes).

    Uses a greedy colouring of the line graph — at most ``2·deg_max - 1``
    colours, each class a valid matching.  Deterministic for a given
    node ordering.
    """
    colours: list[list[tuple]] = []
    # networkx yields each edge in insertion orientation, so normalize
    # the endpoint order before the deterministic sort — otherwise the
    # same graph built edge-by-edge in a different order produces
    # different matchings.
    edges = sorted(
        (tuple(sorted(e, key=str)) for e in graph.edges()),
        key=lambda e: (str(e[0]), str(e[1])),
    )
    busy: list[set] = []  # nodes used per colour
    for u, v in edges:
        for c, used in enumerate(busy):
            if u not in used and v not in used:
                colours[c].append((u, v))
                used.add(u)
                used.add(v)
                break
        else:
            colours.append([(u, v)])
            busy.append({u, v})
    return colours


def dimension_exchange_round(
    graph: nx.Graph,
    load: np.ndarray,
    matching: list[tuple],
    *,
    lam: float = 0.5,
) -> np.ndarray:
    """Exchange along one matching; ``lam = 0.5`` is plain averaging."""
    load = np.asarray(load, dtype=float)
    if not 0 < lam <= 0.5 + 1e-12:
        raise ValueError(f"lam must be in (0, 0.5], got {lam!r}")
    idx = {node: i for i, node in enumerate(graph.nodes())}
    new = load.copy()
    seen: set = set()
    for u, v in matching:
        if u in seen or v in seen:
            raise ValueError(f"matching reuses a node: edge ({u}, {v})")
        seen.add(u)
        seen.add(v)
        flow = lam * (load[idx[u]] - load[idx[v]])
        new[idx[u]] -= flow
        new[idx[v]] += flow
    return new


def dimension_exchange_balance(
    graph: nx.Graph,
    load: np.ndarray,
    *,
    lam: float = 0.5,
    tol: float = 1e-9,
    max_cycles: int = 100_000,
) -> tuple[np.ndarray, int]:
    """Cycle through the edge colours until the stddev drops below ``tol``.

    Returns ``(final_load, cycles_used)`` where one cycle visits every
    colour class once.
    """
    if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
        raise ValueError("dimension exchange requires a connected graph")
    colours = edge_colouring(graph)
    current = np.asarray(load, dtype=float)
    for cycles in range(max_cycles):
        if load_stddev(current) <= tol:
            return current, cycles
        for matching in colours:
            current = dimension_exchange_round(graph, current, matching, lam=lam)
    raise RuntimeError(
        f"dimension exchange did not balance within {max_cycles} cycles "
        f"(stddev={load_stddev(current):.3e})"
    )
