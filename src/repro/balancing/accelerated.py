"""Accelerated diffusion schemes: second-order and Chebyshev.

First-order diffusion (:mod:`repro.balancing.diffusion`) contracts the
load error by the diffusion matrix's second eigenvalue per round — slow
on high-diameter graphs (a chain needs O(n²) rounds).  Two classical
accelerations (Ghosh/Muthukrishnan; Diekmann, Frommer & Monien's OPS/
second-order schemes):

* **Second-order diffusion (SOS)** — a momentum term::

      x^{k+1} = β (M x^k) + (1 - β) x^{k-1}

  with the optimal fixed ``β = 2 / (1 + sqrt(1 - λ₂²))``, contracting
  like the heavy-ball method.

* **Chebyshev diffusion** — the same recurrence with the round-dependent
  optimal coefficients (Chebyshev polynomial iteration), the fastest
  stationary scheme for a known spectral interval.

Both need the diffusion matrix's second-largest eigenvalue modulus
``λ₂`` (computed here by dense eigendecomposition — these graphs are the
size of a processor pool, not a mesh).  Load is conserved exactly;
iterates can transiently go negative (loads are *divisible* abstractions
here — the classic caveat of accelerated schemes, asserted in tests as
expected behaviour, and the reason the solver's component balancer does
not use them), so convergence is measured with a plain standard
deviation rather than the non-negative load metrics.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from repro.balancing.diffusion import optimal_alpha

def _spread(x: np.ndarray) -> float:
    """Standard deviation (accelerated iterates may dip negative)."""
    return float(np.std(x))


__all__ = [
    "diffusion_matrix",
    "second_eigenvalue",
    "second_order_diffusion_balance",
    "chebyshev_diffusion_balance",
]


def diffusion_matrix(graph: nx.Graph, alpha: float | None = None) -> np.ndarray:
    """The doubly-stochastic first-order diffusion matrix ``M``.

    ``M = I - α L`` with ``L`` the graph Laplacian; one diffusion round
    is ``x <- M x``.
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("graph is empty")
    if alpha is None:
        alpha = optimal_alpha(graph)
    lap = nx.laplacian_matrix(graph).toarray().astype(float)
    return np.eye(graph.number_of_nodes()) - alpha * lap


def second_eigenvalue(matrix: np.ndarray) -> float:
    """``λ₂``: the second-largest eigenvalue modulus of ``M``.

    For a connected graph's diffusion matrix the largest is exactly 1
    (the conserved uniform mode); ``λ₂ < 1`` governs the balancing rate.
    """
    eigenvalues = np.linalg.eigvalsh(matrix)
    moduli = np.sort(np.abs(eigenvalues))[::-1]
    if not math.isclose(moduli[0], 1.0, abs_tol=1e-9):
        raise ValueError(
            f"not a diffusion matrix: largest eigenvalue modulus {moduli[0]!r}"
        )
    if len(moduli) == 1:
        return 0.0
    return float(moduli[1])


def second_order_diffusion_balance(
    graph: nx.Graph,
    load: np.ndarray,
    *,
    alpha: float | None = None,
    tol: float = 1e-9,
    max_rounds: int = 100_000,
) -> tuple[np.ndarray, int]:
    """Second-order (heavy-ball) diffusion with the optimal fixed β.

    Returns ``(final_load, rounds)``.  Asymptotically needs
    ``O(1 / sqrt(1 - λ₂))`` rounds against first-order's
    ``O(1 / (1 - λ₂))``.
    """
    if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
        raise ValueError("diffusion requires a connected graph")
    matrix = diffusion_matrix(graph, alpha)
    lam2 = second_eigenvalue(matrix)
    beta = 2.0 / (1.0 + math.sqrt(max(1.0 - lam2 * lam2, 0.0)))
    prev = np.asarray(load, dtype=float)
    if _spread(prev) <= tol:
        return prev, 0
    current = matrix @ prev  # first round is plain diffusion
    for rounds in range(1, max_rounds):
        if _spread(current) <= tol:
            return current, rounds
        current, prev = beta * (matrix @ current) + (1.0 - beta) * prev, current
    raise RuntimeError(
        f"second-order diffusion did not balance in {max_rounds} rounds"
    )


def chebyshev_diffusion_balance(
    graph: nx.Graph,
    load: np.ndarray,
    *,
    alpha: float | None = None,
    tol: float = 1e-9,
    max_rounds: int = 100_000,
) -> tuple[np.ndarray, int]:
    """Chebyshev-accelerated diffusion (round-dependent coefficients).

    Uses the standard Chebyshev recurrence on the spectral interval
    ``[-λ₂, λ₂]``: ``β_1 = 1``, ``β_2 = 2/(2 - λ₂²)``,
    ``β_{k+1} = 4 / (4 - λ₂² β_k)``.
    """
    if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
        raise ValueError("diffusion requires a connected graph")
    matrix = diffusion_matrix(graph, alpha)
    lam2 = second_eigenvalue(matrix)
    prev = np.asarray(load, dtype=float)
    if _spread(prev) <= tol:
        return prev, 0
    current = matrix @ prev
    beta = 2.0 / (2.0 - lam2 * lam2)
    for rounds in range(1, max_rounds):
        if _spread(current) <= tol:
            return current, rounds
        current, prev = (
            beta * (matrix @ current) + (1.0 - beta) * prev,
            current,
        )
        beta = 4.0 / (4.0 - lam2 * lam2 * beta)
    raise RuntimeError(
        f"chebyshev diffusion did not balance in {max_rounds} rounds"
    )
