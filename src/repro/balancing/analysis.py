"""Imbalance metrics for load vectors."""

from __future__ import annotations

import numpy as np

__all__ = ["mean_load", "load_stddev", "imbalance_ratio"]


def _as_loads(load) -> np.ndarray:
    arr = np.asarray(load, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"load must be a non-empty 1-D vector, got shape {arr.shape}")
    if np.any(arr < 0):
        raise ValueError("loads must be non-negative")
    return arr


def mean_load(load) -> float:
    """Average load (invariant under any conserving balancer)."""
    return float(_as_loads(load).mean())


def load_stddev(load) -> float:
    """Standard deviation of the load vector (0 = perfectly balanced)."""
    return float(_as_loads(load).std())


def imbalance_ratio(load) -> float:
    """``max / mean`` — 1.0 means perfectly balanced.

    This is the quantity that bounds parallel completion time: with
    perfectly overlapped communication, makespan is proportional to the
    most loaded node.
    """
    arr = _as_loads(load)
    mean = arr.mean()
    if mean == 0:
        return 1.0
    return float(arr.max() / mean)
