"""Linear fixed-point problems ``x = A x + b`` with tridiagonal ``A``.

The classical setting of asynchronous-iteration theory (Bertsekas &
Tsitsiklis; El Tarazi): if ``|A|`` has max-norm below 1 the parallel
Jacobi relaxation converges for *any* asynchronous schedule.  We use it

* to validate the solver stack against a directly computable fixed
  point ``x* = (I - A)⁻¹ b``,
* as a third example problem with constant per-component cost (load
  imbalance then comes only from machine heterogeneity, isolating the
  hardware axis of the paper's argument from the activity axis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numerics.banded import thomas_solve
from repro.problems.base import IterationResult, Problem
from repro.util.validation import check_in_range, check_positive

__all__ = ["LinearFixedPointProblem", "LinearState", "random_contraction_system"]


def random_contraction_system(
    n: int,
    rng: np.random.Generator,
    *,
    contraction: float = 0.9,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Draw a tridiagonal iteration matrix with max-norm ``contraction``.

    Returns ``(lower, diag, upper, b)`` where row ``j`` of ``A`` is
    ``(lower[j], diag[j], upper[j])`` and ``Σ|row| == contraction`` for
    every row, so ``ρ(|A|) <= contraction < 1``.
    """
    check_positive("n", n)
    check_in_range("contraction", contraction, 0.0, 1.0 - 1e-9)
    weights = rng.dirichlet(np.ones(3), size=n) * contraction
    signs = rng.choice([-1.0, 1.0], size=(n, 3))
    lower = weights[:, 0] * signs[:, 0]
    diag = weights[:, 1] * signs[:, 1]
    upper = weights[:, 2] * signs[:, 2]
    lower[0] = 0.0
    upper[-1] = 0.0
    b = rng.standard_normal(n)
    return lower, diag, upper, b


@dataclass(slots=True)
class LinearState:
    """Current iterate of components ``[lo, lo + len(x))``."""

    lo: int
    x: np.ndarray

    @property
    def n(self) -> int:
        return self.x.shape[0]


class LinearFixedPointProblem(Problem):
    """``x_j ← lower_j x_{j-1} + diag_j x_j + upper_j x_{j+1} + b_j``.

    ``ordering`` selects the in-block update order (paper §1.1):
    ``"jacobi"`` updates all components from the previous iterate
    (fully parallelisable); ``"gauss_seidel"`` sweeps left-to-right
    using already-updated values, which "may converge faster … but may
    be completely non-parallelizable" — here the block-local variant
    keeps the chain parallel while accelerating within each block.
    """

    name = "linear"

    def __init__(
        self,
        lower: np.ndarray,
        diag: np.ndarray,
        upper: np.ndarray,
        b: np.ndarray,
        *,
        cost_per_component: float = 1.0,
        ordering: str = "jacobi",
    ) -> None:
        self.lower = np.asarray(lower, dtype=float)
        self.diag = np.asarray(diag, dtype=float)
        self.upper = np.asarray(upper, dtype=float)
        self.b = np.asarray(b, dtype=float)
        n = self.diag.shape[0]
        if not (self.lower.shape == self.upper.shape == self.b.shape == (n,)):
            raise ValueError("lower, diag, upper, b must be 1-D of equal length")
        row_sums = np.abs(self.lower) + np.abs(self.diag) + np.abs(self.upper)
        self.contraction = float(row_sums.max())
        if self.contraction >= 1.0:
            raise ValueError(
                f"iteration matrix max-norm is {self.contraction:.4f} >= 1; "
                "asynchronous convergence is not guaranteed"
            )
        self.n_components = n
        self.cost_per_component = check_positive(
            "cost_per_component", cost_per_component
        )
        if ordering not in ("jacobi", "gauss_seidel"):
            raise ValueError(
                f"ordering must be 'jacobi' or 'gauss_seidel', got {ordering!r}"
            )
        self.ordering = ordering

    # ------------------------------------------------------------------
    def fixed_point(self) -> np.ndarray:
        """Direct solution of ``(I - A) x = b`` (Thomas algorithm)."""
        return thomas_solve(-self.lower, 1.0 - self.diag, -self.upper, self.b)

    # ------------------------------------------------------------------
    def initial_state(self, lo: int, hi: int) -> LinearState:
        if not 0 <= lo < hi <= self.n_components:
            raise ValueError(
                f"invalid block [{lo}, {hi}) for {self.n_components} components"
            )
        return LinearState(lo=lo, x=np.zeros(hi - lo))

    def n_local(self, state: LinearState) -> int:
        return state.n

    def iterate(
        self,
        state: LinearState,
        left_halo: np.ndarray,
        right_halo: np.ndarray,
    ) -> IterationResult:
        x = state.x
        lo = state.lo
        n = state.n
        x_right = np.concatenate([x[1:], np.atleast_1d(right_halo)])
        sl = slice(lo, lo + n)
        if self.ordering == "jacobi":
            x_left = np.concatenate([np.atleast_1d(left_halo), x[:-1]])
            new = (
                self.lower[sl] * x_left
                + self.diag[sl] * x
                + self.upper[sl] * x_right
                + self.b[sl]
            )
        else:
            # Block-local Gauss-Seidel: left-to-right sweep using the
            # freshly updated left neighbour within the block.
            lower = self.lower[sl]
            diag = self.diag[sl]
            upper = self.upper[sl]
            rhs = self.b[sl]
            new = np.empty(n)
            prev = float(np.atleast_1d(left_halo)[0])
            for j in range(n):
                prev = lower[j] * prev + diag[j] * x[j] + upper[j] * x_right[j] + rhs[j]
                new[j] = prev
        residuals = np.abs(new - x)
        state.x = new
        work = np.full(n, self.cost_per_component)
        return IterationResult(residuals=residuals, work=work)

    # ------------------------------------------------------------------
    def initial_halo(self, global_index: int) -> np.ndarray:
        return np.zeros(1)  # initial iterate is zero; edges contribute nothing

    def halo_out(self, state: LinearState, side: str) -> np.ndarray:
        self.check_side(side)
        idx = 0 if side == "left" else state.n - 1
        return state.x[idx : idx + 1].copy()

    def halo_nbytes(self) -> float:
        return 8.0

    # ------------------------------------------------------------------
    def split(self, state: LinearState, n: int, side: str) -> np.ndarray:
        self.check_side(side)
        if not 0 < n < state.n:
            raise ValueError(f"cannot split {n} of {state.n} components")
        if side == "left":
            payload = state.x[:n].copy()
            state.x = state.x[n:].copy()
            state.lo += n
        else:
            payload = state.x[state.n - n :].copy()
            state.x = state.x[: state.n - n].copy()
        return payload

    def merge(self, state: LinearState, payload: np.ndarray, side: str) -> None:
        self.check_side(side)
        payload = np.atleast_1d(np.asarray(payload, dtype=float))
        if side == "left":
            state.x = np.concatenate([payload, state.x])
            state.lo -= payload.shape[0]
        else:
            state.x = np.concatenate([state.x, payload])

    def component_nbytes(self) -> float:
        return 8.0

    # ------------------------------------------------------------------
    def solution(self, state: LinearState) -> np.ndarray:
        return state.x.copy()
