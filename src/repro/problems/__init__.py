"""Block-decomposable fixed-point problems.

Every solver in :mod:`repro.core` and :mod:`repro.models` operates on a
:class:`~repro.problems.base.Problem`: a global vector of *components*
partitioned in contiguous blocks over a logical chain of processors,
iterated towards a fixed point, with one-component-wide halo
dependencies on each side (the paper's "two spatial components before
``y_p`` and after ``y_q``" — their scalar numbering interleaves u and v,
so two scalars = one of our components).

Problems:

* :class:`~repro.problems.brusselator.BrusselatorProblem` — the paper's
  evaluation problem (Section 4), as nonlinear waveform relaxation.
* :class:`~repro.problems.synthetic.SyntheticProblem` — a controllable
  contraction model used for large parameter sweeps.
* :class:`~repro.problems.linear.LinearFixedPointProblem` — ``x = Ax+b``
  contractions (the classical convergence-theory setting).
* :class:`~repro.problems.heat.HeatProblem` — 1-D implicit heat
  equation, a second physical example.
"""

from repro.problems.base import IterationResult, Problem
from repro.problems.brusselator import BrusselatorProblem
from repro.problems.synthetic import SyntheticProblem
from repro.problems.linear import LinearFixedPointProblem, random_contraction_system
from repro.problems.heat import HeatProblem
from repro.problems.advection import AdvectionDiffusionProblem

__all__ = [
    "IterationResult",
    "Problem",
    "BrusselatorProblem",
    "SyntheticProblem",
    "LinearFixedPointProblem",
    "random_contraction_system",
    "HeatProblem",
    "AdvectionDiffusionProblem",
]
