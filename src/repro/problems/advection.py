"""1-D advection–diffusion by waveform relaxation (fourth problem).

``u_t + a u_x = κ u_xx`` on ``(0, 1)``, homogeneous Dirichlet
boundaries, a Gaussian pulse as initial condition.  Discretised with
first-order upwind advection (``a > 0``: information flows rightward)
and central diffusion, implicit Euler in time, relaxed over the chain
exactly like the heat problem.

Two properties make it a useful member of the problem library:

* the coupling is **asymmetric** — for ``a > 0`` a component leans much
  harder on its *left* neighbour, so the waveform relaxation's error
  contracts faster sweeping information left-to-right than right-to-left
  (visible in convergence tests);
* the pulse **travels**: the spatial region where the solution changes
  moves downstream over the time window, a physical source of the
  non-uniform activity the paper's load balancer exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numerics.banded import thomas_solve
from repro.problems.base import IterationResult, Problem
from repro.problems.chain_sweeper import TrajectoryChainSweeper
from repro.util.validation import check_non_negative, check_positive

__all__ = ["AdvectionDiffusionProblem", "AdvectionState"]


@dataclass(slots=True)
class AdvectionState:
    """Local trajectories ``(n_local, n_steps + 1)``."""

    lo: int
    traj: np.ndarray

    @property
    def n(self) -> int:
        return self.traj.shape[0]


class AdvectionDiffusionProblem(Problem):
    """Waveform relaxation for upwind advection–diffusion."""

    name = "advection_diffusion"

    def __init__(
        self,
        n_points: int,
        *,
        velocity: float = 1.0,
        kappa: float = 0.01,
        t_end: float = 0.4,
        n_steps: int = 40,
        pulse_center: float = 0.2,
        pulse_width: float = 0.05,
    ) -> None:
        check_positive("n_points", n_points)
        check_non_negative("velocity", velocity)
        check_positive("kappa", kappa)
        check_positive("t_end", t_end)
        check_positive("n_steps", n_steps)
        check_positive("pulse_width", pulse_width)
        self.n_components = int(n_points)
        self.velocity = float(velocity)
        self.kappa = float(kappa)
        self.t_end = float(t_end)
        self.n_steps = int(n_steps)
        self.dt = self.t_end / self.n_steps
        self.dx = 1.0 / (self.n_components + 1)
        self.pulse_center = float(pulse_center)
        self.pulse_width = float(pulse_width)
        #: Upwind advection coefficient (multiplies the left neighbour).
        self.adv = self.velocity * self.dt / self.dx
        #: Diffusion coefficient (multiplies both neighbours).
        self.dif = self.kappa * self.dt / self.dx**2

    # ------------------------------------------------------------------
    def x_grid(self) -> np.ndarray:
        return np.arange(1, self.n_components + 1) / (self.n_components + 1)

    def initial_values(self, lo: int, hi: int) -> np.ndarray:
        x = np.arange(lo + 1, hi + 1) / (self.n_components + 1)
        return np.exp(-((x - self.pulse_center) ** 2) / (2 * self.pulse_width**2))

    def initial_state(self, lo: int, hi: int) -> AdvectionState:
        if not 0 <= lo < hi <= self.n_components:
            raise ValueError(
                f"invalid block [{lo}, {hi}) for {self.n_components} components"
            )
        u0 = self.initial_values(lo, hi)
        return AdvectionState(lo=lo, traj=np.repeat(u0[:, None], self.n_steps + 1, axis=1))

    def n_local(self, state: AdvectionState) -> int:
        return state.n

    # ------------------------------------------------------------------
    def iterate(
        self,
        state: AdvectionState,
        left_halo: np.ndarray,
        right_halo: np.ndarray,
    ) -> IterationResult:
        old = state.traj
        n = state.n
        u_left = np.vstack([np.atleast_2d(left_halo), old[:-1]])
        u_right = np.vstack([old[1:], np.atleast_2d(right_halo)])
        new = np.empty_like(old)
        new[:, 0] = old[:, 0]
        denom = 1.0 + self.adv + 2.0 * self.dif
        left_coeff = self.adv + self.dif
        for k in range(1, self.n_steps + 1):
            new[:, k] = (
                new[:, k - 1]
                + left_coeff * u_left[:, k]
                + self.dif * u_right[:, k]
            ) / denom
        residuals = np.max(np.abs(new - old), axis=1)
        state.traj = new
        return IterationResult(
            residuals=residuals, work=np.full(n, float(self.n_steps))
        )

    # ------------------------------------------------------------------
    def initial_halo(self, global_index: int) -> np.ndarray:
        if global_index < 0 or global_index >= self.n_components:
            return np.zeros((1, self.n_steps + 1))  # Dirichlet boundaries
        u0 = self.initial_values(global_index, global_index + 1)[0]
        return np.full((1, self.n_steps + 1), u0)

    def halo_out(self, state: AdvectionState, side: str) -> np.ndarray:
        self.check_side(side)
        idx = 0 if side == "left" else state.n - 1
        return state.traj[idx : idx + 1].copy()

    def halo_nbytes(self) -> float:
        return (self.n_steps + 1) * 8.0

    # ------------------------------------------------------------------
    def split(self, state: AdvectionState, n: int, side: str) -> np.ndarray:
        self.check_side(side)
        if not 0 < n < state.n:
            raise ValueError(f"cannot split {n} of {state.n} components")
        if side == "left":
            payload = state.traj[:n].copy()
            state.traj = state.traj[n:].copy()
            state.lo += n
        else:
            payload = state.traj[state.n - n :].copy()
            state.traj = state.traj[: state.n - n].copy()
        return payload

    def merge(self, state: AdvectionState, payload: np.ndarray, side: str) -> None:
        self.check_side(side)
        payload = np.asarray(payload, dtype=float)
        if payload.ndim != 2 or payload.shape[1] != self.n_steps + 1:
            raise ValueError(f"bad migration payload shape {payload.shape}")
        if side == "left":
            state.traj = np.concatenate([payload, state.traj], axis=0)
            state.lo -= payload.shape[0]
        else:
            state.traj = np.concatenate([state.traj, payload], axis=0)

    def component_nbytes(self) -> float:
        return (self.n_steps + 1) * 8.0

    # ------------------------------------------------------------------
    # Rank-batched sweeps (lockstep SISC engine)
    # ------------------------------------------------------------------
    def batched_chain_sweeper(
        self, blocks: list[tuple[int, int]]
    ) -> "_AdvectionChainSweeper":
        return _AdvectionChainSweeper(self, blocks)

    # ------------------------------------------------------------------
    def solution(self, state: AdvectionState) -> np.ndarray:
        return state.traj.copy()

    def reference_solution(self) -> np.ndarray:
        """Fully-coupled implicit Euler solution, shape ``(n, steps+1)``."""
        n = self.n_components
        u = self.initial_values(0, n)
        out = np.empty((n, self.n_steps + 1))
        out[:, 0] = u
        lower = np.full(n, -(self.adv + self.dif))
        diag = np.full(n, 1.0 + self.adv + 2.0 * self.dif)
        upper = np.full(n, -self.dif)
        lower[0] = 0.0
        upper[-1] = 0.0
        for k in range(1, self.n_steps + 1):
            u = thomas_solve(lower, diag, upper, u)
            out[:, k] = u
        return out

    def activity_profile(self, state: AdvectionState) -> np.ndarray:
        """Per-component total trajectory variation (where the pulse acts)."""
        return np.abs(np.diff(state.traj, axis=1)).sum(axis=1)


class _AdvectionChainSweeper(TrajectoryChainSweeper):
    """All ranks' advection–diffusion sweeps as one global update.

    Same argument as the heat sweeper: linear, Jacobi in space,
    sequential only along each component's own time axis, per-step
    update elementwise per component with the exact expression order
    of :meth:`AdvectionDiffusionProblem.iterate` — so every block's
    slice of the global sweep is bit-identical to the per-rank call.
    The coupling asymmetry (upwind advection) changes the coefficients,
    not the dependency structure.
    """

    def __init__(
        self,
        problem: AdvectionDiffusionProblem,
        blocks: list[tuple[int, int]],
    ):
        super().__init__(problem, blocks)
        self._edge_left = problem.initial_halo(-1)
        self._edge_right = problem.initial_halo(problem.n_components)

    def _advance(self, old: np.ndarray):
        p = self.problem
        u_left = np.vstack([self._edge_left, old[:-1]])
        u_right = np.vstack([old[1:], self._edge_right])
        new = np.empty_like(old)
        new[:, 0] = old[:, 0]
        denom = 1.0 + p.adv + 2.0 * p.dif
        left_coeff = p.adv + p.dif
        for k in range(1, p.n_steps + 1):
            new[:, k] = (
                new[:, k - 1]
                + left_coeff * u_left[:, k]
                + p.dif * u_right[:, k]
            ) / denom
        residuals = np.max(np.abs(new - old), axis=1)
        work = np.full(old.shape[0], float(p.n_steps))
        return new, residuals, work, None
