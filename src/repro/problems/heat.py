"""1-D heat equation by waveform relaxation (second physical example).

``u_t = κ u_xx`` on ``(0, 1)`` with homogeneous Dirichlet boundaries and
initial profile ``u(x, 0) = sin(π x)``.  Discretised like the
Brusselator (implicit Euler in time, central differences in space) but
*linear*: the per-(component, step) solve is a closed-form division, so
every component costs exactly one work unit per step.  Activity-driven
cost imbalance is absent — the heat problem isolates the timing/
communication machinery and serves as a simple teaching example (the
quickstart uses it).

The analytic solution ``u = exp(-κ π² t) sin(π x)`` gives an external
accuracy oracle beyond the discrete reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numerics.banded import thomas_solve
from repro.problems.base import IterationResult, Problem
from repro.problems.chain_sweeper import TrajectoryChainSweeper
from repro.util.validation import check_positive

__all__ = ["HeatProblem", "HeatState"]


@dataclass(slots=True)
class HeatState:
    """Local trajectories ``(n_local, n_steps + 1)``."""

    lo: int
    traj: np.ndarray

    @property
    def n(self) -> int:
        return self.traj.shape[0]


class HeatProblem(Problem):
    """Waveform relaxation for the 1-D heat equation."""

    name = "heat"

    def __init__(
        self,
        n_points: int,
        *,
        kappa: float = 1.0,
        t_end: float = 0.1,
        n_steps: int = 50,
    ) -> None:
        check_positive("n_points", n_points)
        check_positive("kappa", kappa)
        check_positive("t_end", t_end)
        check_positive("n_steps", n_steps)
        self.n_components = int(n_points)
        self.kappa = float(kappa)
        self.t_end = float(t_end)
        self.n_steps = int(n_steps)
        self.dt = self.t_end / self.n_steps
        dx = 1.0 / (self.n_components + 1)
        self.c = self.kappa / dx**2

    # ------------------------------------------------------------------
    def x_grid(self) -> np.ndarray:
        return np.arange(1, self.n_components + 1) / (self.n_components + 1)

    def initial_state(self, lo: int, hi: int) -> HeatState:
        if not 0 <= lo < hi <= self.n_components:
            raise ValueError(
                f"invalid block [{lo}, {hi}) for {self.n_components} components"
            )
        x = np.arange(lo + 1, hi + 1) / (self.n_components + 1)
        u0 = np.sin(np.pi * x)
        traj = np.repeat(u0[:, None], self.n_steps + 1, axis=1)
        return HeatState(lo=lo, traj=traj)

    def n_local(self, state: HeatState) -> int:
        return state.n

    def copy_state(self, state: HeatState) -> HeatState:
        return HeatState(lo=state.lo, traj=state.traj.copy())

    def iterate(
        self,
        state: HeatState,
        left_halo: np.ndarray,
        right_halo: np.ndarray,
    ) -> IterationResult:
        old = state.traj  # (n, steps+1)
        n = state.n
        dt, c = self.dt, self.c
        u_left = np.vstack([np.atleast_2d(left_halo), old[:-1]])
        u_right = np.vstack([old[1:], np.atleast_2d(right_halo)])
        new = np.empty_like(old)
        new[:, 0] = old[:, 0]
        denom = 1.0 + 2.0 * c * dt
        for k in range(1, self.n_steps + 1):
            new[:, k] = (new[:, k - 1] + c * dt * (u_left[:, k] + u_right[:, k])) / denom
        residuals = np.max(np.abs(new - old), axis=1)
        state.traj = new
        # One work unit per (component, step): linear solve, no Newton.
        work = np.full(n, float(self.n_steps))
        return IterationResult(residuals=residuals, work=work)

    # ------------------------------------------------------------------
    def initial_halo(self, global_index: int) -> np.ndarray:
        if global_index < 0 or global_index >= self.n_components:
            return np.zeros((1, self.n_steps + 1))  # Dirichlet boundary
        x = (global_index + 1) / (self.n_components + 1)
        return np.full((1, self.n_steps + 1), np.sin(np.pi * x))

    def halo_out(self, state: HeatState, side: str) -> np.ndarray:
        self.check_side(side)
        idx = 0 if side == "left" else state.n - 1
        return state.traj[idx : idx + 1].copy()

    def halo_nbytes(self) -> float:
        return (self.n_steps + 1) * 8.0

    # ------------------------------------------------------------------
    def split(self, state: HeatState, n: int, side: str) -> np.ndarray:
        self.check_side(side)
        if not 0 < n < state.n:
            raise ValueError(f"cannot split {n} of {state.n} components")
        if side == "left":
            payload = state.traj[:n].copy()
            state.traj = state.traj[n:].copy()
            state.lo += n
        else:
            payload = state.traj[state.n - n :].copy()
            state.traj = state.traj[: state.n - n].copy()
        return payload

    def merge(self, state: HeatState, payload: np.ndarray, side: str) -> None:
        self.check_side(side)
        payload = np.asarray(payload, dtype=float)
        if payload.ndim != 2 or payload.shape[1] != self.n_steps + 1:
            raise ValueError(f"bad migration payload shape {payload.shape}")
        if side == "left":
            state.traj = np.concatenate([payload, state.traj], axis=0)
            state.lo -= payload.shape[0]
        else:
            state.traj = np.concatenate([state.traj, payload], axis=0)

    def component_nbytes(self) -> float:
        return (self.n_steps + 1) * 8.0

    # ------------------------------------------------------------------
    # Rank-batched sweeps (lockstep SISC engine)
    # ------------------------------------------------------------------
    def batched_chain_sweeper(
        self, blocks: list[tuple[int, int]]
    ) -> "_HeatChainSweeper":
        return _HeatChainSweeper(self, blocks)

    # ------------------------------------------------------------------
    def solution(self, state: HeatState) -> np.ndarray:
        return state.traj.copy()

    def reference_solution(self) -> np.ndarray:
        """Fully-coupled implicit Euler solution, shape ``(n, steps+1)``."""
        n = self.n_components
        u = np.sin(np.pi * self.x_grid())
        out = np.empty((n, self.n_steps + 1))
        out[:, 0] = u
        r = self.c * self.dt
        lower = np.full(n, -r)
        upper = np.full(n, -r)
        diag = np.full(n, 1.0 + 2.0 * r)
        lower[0] = 0.0
        upper[-1] = 0.0
        for k in range(1, self.n_steps + 1):
            u = thomas_solve(lower, diag, upper, u)
            out[:, k] = u
        return out

    def analytic_solution(self) -> np.ndarray:
        """``exp(-κ π² t) sin(π x)`` on the discrete grid."""
        t = np.linspace(0.0, self.t_end, self.n_steps + 1)
        x = self.x_grid()
        return np.exp(-self.kappa * np.pi**2 * t)[None, :] * np.sin(np.pi * x)[:, None]


class _HeatChainSweeper(TrajectoryChainSweeper):
    """All ranks' heat sweeps as one vectorised global update.

    The relaxation is linear, Jacobi in space (neighbour rows come from
    the previous sweep) and sequential only in each component's own
    time axis, so one global sweep over the concatenated trajectories
    with the Dirichlet zero edges pinned reproduces every block's
    :meth:`HeatProblem.iterate` bit for bit — the per-step update is
    elementwise per component and written with the exact expression
    order of ``iterate``.
    """

    def __init__(self, problem: HeatProblem, blocks: list[tuple[int, int]]):
        super().__init__(problem, blocks)
        self._edge_left = problem.initial_halo(-1)
        self._edge_right = problem.initial_halo(problem.n_components)

    def _advance(self, old: np.ndarray):
        p = self.problem
        dt, c = p.dt, p.c
        u_left = np.vstack([self._edge_left, old[:-1]])
        u_right = np.vstack([old[1:], self._edge_right])
        new = np.empty_like(old)
        new[:, 0] = old[:, 0]
        denom = 1.0 + 2.0 * c * dt
        for k in range(1, p.n_steps + 1):
            new[:, k] = (new[:, k - 1] + c * dt * (u_left[:, k] + u_right[:, k])) / denom
        residuals = np.max(np.abs(new - old), axis=1)
        work = np.full(old.shape[0], float(p.n_steps))
        return new, residuals, work, None
