"""Shared scaffolding for rank-batched whole-chain sweepers.

A *chain sweeper* (see :meth:`repro.problems.base.Problem.
batched_chain_sweeper`) advances every rank's block in one global
vectorised sweep, for the lockstep SISC replay.  The correctness
argument is the same for every trajectory-carrying problem in the
library (Brusselator, heat, advection–diffusion):

* the relaxation is **Jacobi in space** — neighbour trajectories are
  always read from the *previous* sweep's values, and in a synchronous
  round the halo a block receives is exactly its neighbour's
  previous-sweep boundary trajectory;
* every arithmetic operation of the sweep is **elementwise per
  component** (the only sequential axis is time, which is local to each
  component), so partitioning the component axis cannot change any
  result: one global sweep over the concatenated ``(N, ...)`` state
  with the domain-edge halos pinned reproduces each block's
  :meth:`~repro.problems.base.Problem.iterate` bit for bit.

Subclasses implement :meth:`_advance` (one uncommitted global sweep)
and optionally :meth:`_commit`; this base provides block validation,
the per-rank ragged reductions (:class:`repro.numerics.ragged.
ChainSegments` — bit-identical to each rank's own contiguous
reductions), ``solution_block`` and the guard-equivalent
``probe_residual``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.numerics.ragged import ChainSegments

__all__ = ["TrajectoryChainSweeper"]


class TrajectoryChainSweeper:
    """Base class for sweepers over a concatenated trajectory array.

    ``self.traj`` holds the global state with the component axis first
    (``(N, n_steps + 1)`` for scalar problems, ``(N, 2, n_steps + 1)``
    for the Brusselator); blocks slice axis 0.  Empty blocks are
    tolerated (residual/work ``0.0``), matching the guard's convention
    for ranks that migrated everything away — though the lockstep gate
    itself never builds a sweeper over empty blocks.
    """

    def __init__(self, problem: Any, blocks: list[tuple[int, int]]) -> None:
        self.problem = problem
        self.blocks = [(int(lo), int(hi)) for lo, hi in blocks]
        self.segments = ChainSegments(self.blocks, problem.n_components)
        # One global initial state: the problem's initial data is
        # computed elementwise from global indices, so this is
        # bit-identical to concatenating the per-block initial states.
        self.traj = problem.initial_state(0, problem.n_components).traj

    def component_counts(self) -> np.ndarray:
        return self.segments.counts()

    def solution_block(self, rank: int) -> np.ndarray:
        lo, hi = self.blocks[rank]
        return self.traj[lo:hi].copy()

    # ------------------------------------------------------------------
    def _advance(
        self, old: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, Any]:
        """One global sweep from ``old`` (no state mutation).

        Returns ``(new, per-component residuals, per-component work,
        aux)`` where ``aux`` is subclass data threaded to
        :meth:`_commit` (``None`` when unused).
        """
        raise NotImplementedError

    def _commit(self, new: np.ndarray, residuals: np.ndarray, aux: Any) -> None:
        self.traj = new

    # ------------------------------------------------------------------
    def sweep(self) -> tuple[np.ndarray, np.ndarray]:
        """Advance every rank one iteration; returns per-rank
        ``(residual, work)``."""
        new, residuals, work, aux = self._advance(self.traj)
        self._commit(new, residuals, aux)
        return self.segments.max(residuals), self.segments.sum(work)

    def probe_residual(self) -> float:
        """Max residual one additional sweep would report (state untouched).

        Equivalent to the guard's ``true_global_residual``: every block
        iterated once more against the neighbours' *current* boundary
        trajectories — which is exactly one more uncommitted global
        sweep — taking the worst per-block residual (floored at 0.0,
        the empty-block convention).
        """
        _, residuals, _, _ = self._advance(self.traj)
        if residuals.size == 0:
            return 0.0
        return max(0.0, float(residuals.max()))
