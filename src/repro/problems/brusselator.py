"""The Brusselator problem (Section 4 of the paper).

The Brusselator models an autocatalytic oscillating chemical reaction.
Discretising the 1-D reaction–diffusion form on ``N`` interior points
gives the stiff ODE system (paper Eq. 4, identical to Hairer & Wanner's
formulation)::

    u'_i = 1 + u_i² v_i - 4 u_i + c (u_{i-1} - 2 u_i + u_{i+1})
    v'_i = 3 u_i - u_i² v_i + c (v_{i-1} - 2 v_i + v_{i+1})

with ``c = α (N+1)²``, ``α = 1/50``, time window ``[0, 10]``, initial
conditions ``u_i(0) = 1 + sin(2π x_i)``, ``v_i(0) = 3`` and Dirichlet
boundary values ``u = 1``, ``v = 3`` at both ends.

.. note::
   The paper's scanned text prints the boundary condition as
   ``u_0(t) = u_{N+1}(t) = α(N+1)²`` — an obvious typesetting artifact
   (that expression is the diffusion prefactor from the line above).  We
   use the cited source's (Hairer & Wanner, *Solving ODEs II*) standard
   values ``u = A = 1``, ``v = B = 3``, which also make the chemistry
   well-posed (concentrations stay positive).

Parallel formulation — nonlinear waveform relaxation
----------------------------------------------------
Following the paper's Algorithm 1, each *component* (one spatial pair
``(u_i, v_i)`` — two of the paper's interleaved scalar components) keeps
its **entire time trajectory**.  One outer iteration re-integrates every
local component over the full window with implicit Euler, Newton-solving
a 2×2 system per (component, time step) while the *neighbouring*
components' trajectories are frozen at their previous iterate (Jacobi
relaxation across space, as in Algorithm 1 where ``Ynew[j,t] =
Solve(Yold[j,t])`` reads neighbours from ``Yold``).

The lagged diffusion coupling is a contraction (the implicit treatment
of the ``-2u_i`` term dominates the off-diagonal ``c·dt`` terms), so the
relaxation converges to the solution of the fully-coupled implicit Euler
discretisation — which :func:`reference_solution` computes directly and
the test suite compares against.

Work model: the per-(component, step) Newton iteration counts from
:func:`repro.numerics.newton.newton_batched_2x2` are summed per
component.  Converged components verify in one iteration per step;
active components take several — per-sweep cost tracks *activity*,
which is why the residual is the right load estimator (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numerics.euler import implicit_euler_banded
from repro.numerics.newton import NewtonOptions, newton_batched_2x2
from repro.problems.base import IterationResult, Problem
from repro.problems.chain_sweeper import TrajectoryChainSweeper
from repro.util.validation import check_positive

__all__ = ["BrusselatorProblem", "BrusselatorState"]

#: Dirichlet boundary values (A and B of the reaction scheme).
U_BOUNDARY = 1.0
V_BOUNDARY = 3.0

#: Blocks of at most this many components run the scalar Newton tail in
#: :meth:`BrusselatorProblem._sweep_tail_scalar` (Python floats beat
#: NumPy dispatch on tiny batches; both paths are bit-identical).
_SCALAR_SWEEP_MAX = 24


@dataclass(slots=True)
class BrusselatorState:
    """Local trajectories for components ``[lo, lo + n)``.

    ``traj`` has shape ``(n_local, 2, n_steps + 1)``: axis 1 indexes
    ``(u, v)``, axis 2 the time grid including ``t = 0``.

    ``prev_res`` and ``skip_streak`` support the adaptive-skip
    optimisation (see :class:`BrusselatorProblem`); they are ``None``
    until the first sweep / when skipping is disabled.
    """

    lo: int
    traj: np.ndarray
    prev_res: np.ndarray | None = None
    skip_streak: np.ndarray | None = None
    last_left_halo: np.ndarray | None = None
    last_right_halo: np.ndarray | None = None

    @property
    def n(self) -> int:
        return self.traj.shape[0]


class BrusselatorProblem(Problem):
    """The paper's evaluation problem as a decomposable fixed point.

    Parameters
    ----------
    n_points:
        Number of interior spatial points ``N`` (components).
    t_end:
        End of the integration window (paper: 10).
    n_steps:
        Number of implicit Euler steps over ``[0, t_end]`` (``δt =
        t_end / n_steps``).
    alpha:
        Diffusion parameter (paper: 1/50).
    newton_tol, newton_max_iter:
        Inner Newton controls per (component, step).
    newton_jacobian_refresh:
        Forwarded to :class:`~repro.numerics.newton.NewtonOptions.
        jacobian_refresh` (relevant to modified-Newton consumers; the
        2x2 kernel itself uses the analytic per-pass Jacobian).
    """

    name = "brusselator"

    def __init__(
        self,
        n_points: int,
        *,
        t_end: float = 10.0,
        n_steps: int = 100,
        alpha: float = 1.0 / 50.0,
        newton_tol: float = 1e-8,
        newton_max_iter: int = 25,
        newton_jacobian_refresh: int = 1,
        skip_converged: bool = False,
        skip_threshold: float = 1e-6,
        refresh_period: int = 20,
    ) -> None:
        """See class docstring; for the skip options note that
        ``skip_threshold`` should sit one or two orders of magnitude
        *above* the convergence tolerance you will solve to — the skip
        trades a bounded input staleness (< threshold between
        refreshes) for work, and a threshold below the tolerance can
        never engage before the run ends."""
        check_positive("n_points", n_points)
        check_positive("t_end", t_end)
        check_positive("n_steps", n_steps)
        check_positive("alpha", alpha)
        self.n_components = int(n_points)
        self.t_end = float(t_end)
        self.n_steps = int(n_steps)
        self.dt = self.t_end / self.n_steps
        self.alpha = float(alpha)
        self.c = self.alpha * (self.n_components + 1) ** 2
        # compact_threshold lets the batched Newton drop to the gathered
        # active subset once half the components have converged — the
        # iterate() callback below is compaction-aware (accepts idx).
        self.newton = NewtonOptions(
            tol=newton_tol,
            max_iter=newton_max_iter,
            compact_threshold=0.5,
            jacobian_refresh=newton_jacobian_refresh,
        )
        self.skip_converged = bool(skip_converged)
        self.skip_threshold = float(skip_threshold)
        if self.skip_threshold <= 0:
            raise ValueError(
                f"skip_threshold must be > 0, got {skip_threshold!r}"
            )
        self.refresh_period = int(refresh_period)
        if self.refresh_period < 1:
            raise ValueError(
                f"refresh_period must be >= 1, got {refresh_period!r}"
            )

    # ------------------------------------------------------------------
    # Initial data
    # ------------------------------------------------------------------
    def x_of(self, global_index: int) -> float:
        """Spatial coordinate ``x_i = (i+1) / (N+1)`` of component ``i``.

        (The paper indexes components from 1; we use 0-based indices.)
        """
        return (global_index + 1) / (self.n_components + 1)

    def initial_values(self, lo: int, hi: int) -> np.ndarray:
        """Initial conditions for components ``[lo, hi)``: shape (n, 2)."""
        idx = np.arange(lo, hi)
        x = (idx + 1) / (self.n_components + 1)
        u0 = 1.0 + np.sin(2.0 * np.pi * x)
        v0 = np.full_like(u0, V_BOUNDARY)
        return np.stack([u0, v0], axis=1)

    def initial_state(self, lo: int, hi: int) -> BrusselatorState:
        if not 0 <= lo < hi <= self.n_components:
            raise ValueError(
                f"invalid block [{lo}, {hi}) for {self.n_components} components"
            )
        init = self.initial_values(lo, hi)  # (n, 2)
        traj = np.repeat(init[:, :, None], self.n_steps + 1, axis=2)
        return BrusselatorState(lo=lo, traj=traj)

    # ------------------------------------------------------------------
    # Halos
    # ------------------------------------------------------------------
    def initial_halo(self, global_index: int) -> np.ndarray:
        """Constant-in-time trajectory of the initial guess (or BC)."""
        if global_index < 0 or global_index >= self.n_components:
            # Domain edge: the Dirichlet boundary trajectory.
            halo = np.empty((2, self.n_steps + 1))
            halo[0] = U_BOUNDARY
            halo[1] = V_BOUNDARY
            return halo
        init = self.initial_values(global_index, global_index + 1)[0]
        return np.repeat(init[:, None], self.n_steps + 1, axis=1)

    def halo_out(self, state: BrusselatorState, side: str) -> np.ndarray:
        self.check_side(side)
        idx = 0 if side == "left" else state.n - 1
        return state.traj[idx].copy()

    def halo_nbytes(self) -> float:
        return 2.0 * (self.n_steps + 1) * 8.0

    # ------------------------------------------------------------------
    # One waveform-relaxation sweep
    # ------------------------------------------------------------------
    def _skip_mask(
        self,
        state: BrusselatorState,
        left_halo: np.ndarray,
        right_halo: np.ndarray,
    ) -> np.ndarray:
        """Which components may keep last sweep's trajectory untouched.

        A component is skippable when its own residual *and* both its
        neighbours' residuals were below ``skip_threshold`` last sweep
        (neighbours across the block boundary count as quiet only if the
        incoming halo is unchanged), and it has not been skipped for
        ``refresh_period`` consecutive sweeps (the safety refresh).
        Reactivation travels one component per sweep, exactly like the
        relaxation's own information flow, so skipping never hides a
        genuine change.
        """
        n = state.n
        if (
            not self.skip_converged
            or state.prev_res is None
            or state.skip_streak is None
        ):
            return np.zeros(n, dtype=bool)
        thr = self.skip_threshold
        quiet = state.prev_res < thr
        left_edge_quiet = state.last_left_halo is not None and bool(
            np.max(np.abs(left_halo - state.last_left_halo)) < thr
        )
        right_edge_quiet = state.last_right_halo is not None and bool(
            np.max(np.abs(right_halo - state.last_right_halo)) < thr
        )
        left_neighbour = np.concatenate([[left_edge_quiet], quiet[:-1]])
        right_neighbour = np.concatenate([quiet[1:], [right_edge_quiet]])
        return (
            quiet
            & left_neighbour
            & right_neighbour
            & (state.skip_streak < self.refresh_period)
        )

    def iterate(
        self,
        state: BrusselatorState,
        left_halo: np.ndarray,
        right_halo: np.ndarray,
    ) -> IterationResult:
        old = state.traj
        n = state.n

        skip = self._skip_mask(state, left_halo, right_halo)

        # Lagged neighbour trajectories: u/v of components j-1 and j+1.
        u_left = np.vstack([left_halo[0][None, :], old[:-1, 0, :]])
        v_left = np.vstack([left_halo[1][None, :], old[:-1, 1, :]])
        u_right = np.vstack([old[1:, 0, :], right_halo[0][None, :]])
        v_right = np.vstack([old[1:, 1, :], right_halo[1][None, :]])

        new, work = self._sweep_batched(
            old, u_left, v_left, u_right, v_right, skip, state.lo
        )

        residuals = np.max(np.abs(new - old), axis=(1, 2))
        if skip.any() and state.prev_res is not None:
            # A skipped component's trajectory did not change; keep its
            # previous (below-threshold) residual rather than a fake 0.
            residuals[skip] = state.prev_res[skip]

        state.traj = new
        if self.skip_converged:
            if state.skip_streak is None:
                state.skip_streak = np.zeros(n, dtype=np.int64)
            state.skip_streak[skip] += 1
            state.skip_streak[~skip] = 0
            state.prev_res = residuals.copy()
            state.last_left_halo = np.array(left_halo, copy=True)
            state.last_right_halo = np.array(right_halo, copy=True)
        return IterationResult(residuals=residuals, work=work)

    def _sweep_batched(
        self,
        old: np.ndarray,
        u_left: np.ndarray,
        v_left: np.ndarray,
        u_right: np.ndarray,
        v_right: np.ndarray,
        skip: np.ndarray,
        lo: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One relaxation sweep over an arbitrary batch of components.

        ``old`` is ``(n, 2, n_steps + 1)``; the neighbour arrays are
        ``(n, n_steps + 1)`` lagged trajectories (one row per component,
        regardless of where block boundaries fall — a row may come from
        a halo or from the adjacent row of ``old``, the arithmetic
        cannot tell).  Every operation is elementwise per component, so
        the same code serves one rank's block (``iterate``) and the
        whole concatenated chain (:class:`_BrusselatorChainSweeper`)
        with bit-identical per-component results.  Returns ``(new,
        per-component work)``.
        """
        n = old.shape[0]
        steps = self.n_steps
        dt, c = self.dt, self.c
        tol = self.newton.tol

        active = np.flatnonzero(~skip)
        m = active.size

        new = old.copy()  # skipped components keep their trajectories
        # A skipped component still pays the skip test (one unit/sweep).
        work = np.ones(n)
        if m:
            work[active] = 0.0

            # ---- Stage 1: optimistic batched verification ------------
            # A (component, step) pair whose old trajectory value already
            # satisfies the Newton residual test would converge in the
            # verification pass with its value unchanged — *provided* the
            # component's own previous steps are also unchanged (the
            # neighbour inputs are frozen at `old` for the whole sweep,
            # so only the component's own u_prev can differ).  One
            # vectorized residual evaluation over every (component, step)
            # finds, per component, the leading run of verified steps;
            # those charge one work unit each, exactly like the
            # sequential per-step Newton would, and keep `new == old`.
            # The arithmetic below mirrors `f` term for term, so the
            # verification decision is bit-identical to the sequential
            # pass-0 convergence test.
            sel = slice(None) if m == n else active
            U = old[sel, 0, :]
            V = old[sel, 1, :]
            Uk = U[:, 1:]
            Vk = V[:, 1:]
            u_sq = Uk * Uk
            reaction_u = 1.0 + u_sq * Vk - 4.0 * Uk
            reaction_v = 3.0 * Uk - u_sq * Vk
            diff_u = c * (u_left[sel, 1:] - 2.0 * Uk + u_right[sel, 1:])
            diff_v = c * (v_left[sel, 1:] - 2.0 * Vk + v_right[sel, 1:])
            f1 = Uk - U[:, :-1] - dt * (reaction_u + diff_u)
            f2 = Vk - V[:, :-1] - dt * (reaction_v + diff_v)
            ok = np.maximum(np.abs(f1), np.abs(f2)) <= tol  # (m, steps)
            # verified[j] = number of leading steps of component j whose
            # old values pass the residual test (step k is ok[:, k-1]).
            verified = np.where(ok.all(axis=1), steps, np.argmin(ok, axis=1))
            work[active] += verified

            # ---- Stage 2: per-step Newton for the unverified tail ----
            # Component j needs the sequential treatment from step
            # verified[j] + 1 onward (once its own trajectory changed,
            # u_prev comes from `new`, not `old`).  The participant set
            # grows monotonically with k.  Small blocks (the common case
            # after domain decomposition) take a scalar path where
            # Python-float arithmetic beats NumPy's per-op dispatch on
            # length-few arrays; both paths produce identical bits.
            k_start = int(verified.min()) + 1
            if k_start <= steps and m <= _SCALAR_SWEEP_MAX:
                self._sweep_tail_scalar(
                    new, work, old, u_left, v_left, u_right, v_right,
                    active, verified, lo,
                )
                k_start = steps + 1  # tail fully handled
            for k in range(k_start, steps + 1):
                part = np.flatnonzero(verified < k)
                rows = part if m == n else active[part]
                u_prev = new[rows, 0, k - 1]
                v_prev = new[rows, 1, k - 1]
                ul, ur = u_left[rows, k], u_right[rows, k]
                vl, vr = v_left[rows, k], v_right[rows, k]

                def f(
                    u: np.ndarray,
                    v: np.ndarray,
                    idx: np.ndarray | None = None,
                    up=u_prev,
                    vp=v_prev,
                    ul=ul,
                    ur=ur,
                    vl=vl,
                    vr=vr,
                ):
                    if idx is not None:
                        up, vp = up[idx], vp[idx]
                        ul, ur = ul[idx], ur[idx]
                        vl, vr = vl[idx], vr[idx]
                    u_sq = u * u
                    reaction_u = 1.0 + u_sq * v - 4.0 * u
                    reaction_v = 3.0 * u - u_sq * v
                    diff_u = c * (ul - 2.0 * u + ur)
                    diff_v = c * (vl - 2.0 * v + vr)
                    f1 = u - up - dt * (reaction_u + diff_u)
                    f2 = v - vp - dt * (reaction_v + diff_v)
                    j11 = 1.0 - dt * (2.0 * u * v - 4.0 - 2.0 * c)
                    j12 = -dt * u_sq
                    j21 = -dt * (3.0 - 2.0 * u * v)
                    j22 = 1.0 + dt * (u_sq + 2.0 * c)
                    return f1, f2, j11, j12, j21, j22

                f.newton_compactable = True

                result = newton_batched_2x2(
                    f, old[rows, 0, k], old[rows, 1, k], self.newton
                )
                if not result.all_converged:
                    bad = int(np.count_nonzero(~result.converged))
                    raise RuntimeError(
                        f"brusselator Newton failed on {bad} component(s) at "
                        f"step {k} (block starting at {lo}); "
                        "reduce dt or raise newton_max_iter"
                    )
                new[rows, 0, k] = result.u
                new[rows, 1, k] = result.v
                work[rows] += result.iterations

        return new, work

    def _sweep_tail_scalar(
        self,
        new: np.ndarray,
        work: np.ndarray,
        old: np.ndarray,
        u_left: np.ndarray,
        v_left: np.ndarray,
        u_right: np.ndarray,
        v_right: np.ndarray,
        active: np.ndarray,
        verified: np.ndarray,
        lo: int,
    ) -> None:
        """Scalar Newton over the unverified (component, step) tail.

        Same arithmetic, same expression order and same iteration /
        convergence bookkeeping as the batched
        :func:`~repro.numerics.newton.newton_batched_2x2` path — Python
        floats and NumPy float64 share IEEE-754 double semantics, so the
        results (values *and* work counts) are bit-identical.  The win
        is purely dispatch overhead: a 2x2 Newton step is ~30 flops,
        which NumPy cannot amortise on length-3 arrays.
        """
        steps = self.n_steps
        dt, c = self.dt, self.c
        opts = self.newton
        tol, max_iter, damping = opts.tol, opts.max_iter, opts.damping
        two_c = 2.0 * c

        ver = verified.tolist()
        rows = active.tolist()
        u_traj = old[active, 0, :].tolist()
        v_traj = old[active, 1, :].tolist()
        ul_traj = u_left[active].tolist()
        ur_traj = u_right[active].tolist()
        vl_traj = v_left[active].tolist()
        vr_traj = v_right[active].tolist()

        failures: dict[int, int] = {}  # step -> failed component count
        for pos, start in enumerate(ver):
            if start >= steps:
                continue
            uu = u_traj[pos]
            vv = v_traj[pos]
            ult = ul_traj[pos]
            urt = ur_traj[pos]
            vlt = vl_traj[pos]
            vrt = vr_traj[pos]
            w_add = 0.0
            for k in range(start + 1, steps + 1):
                up = uu[k - 1]
                vp = vv[k - 1]
                ul = ult[k]
                ur = urt[k]
                vl = vlt[k]
                vr = vrt[k]
                u = uu[k]  # initial guess: previous sweep's value
                v = vv[k]
                its = 0
                conv = False
                for p in range(max_iter + 1):
                    u_sq = u * u
                    reaction_u = 1.0 + u_sq * v - 4.0 * u
                    reaction_v = 3.0 * u - u_sq * v
                    diff_u = c * (ul - 2.0 * u + ur)
                    diff_v = c * (vl - 2.0 * v + vr)
                    f1 = u - up - dt * (reaction_u + diff_u)
                    f2 = v - vp - dt * (reaction_v + diff_v)
                    if abs(f1) <= tol and abs(f2) <= tol:
                        conv = True
                        its = p
                        break
                    if p == max_iter:
                        its = max_iter
                        break
                    j11 = 1.0 - dt * (2.0 * u * v - 4.0 - two_c)
                    j12 = -dt * u_sq
                    j21 = -dt * (3.0 - 2.0 * u * v)
                    j22 = 1.0 + dt * (u_sq + two_c)
                    det = j11 * j22 - j12 * j21
                    if -1e-300 < det < 1e-300:
                        its = p  # singular Jacobian: stop, unconverged
                        break
                    u = u - damping * ((j22 * f1 - j12 * f2) / det)
                    v = v - damping * ((j11 * f2 - j21 * f1) / det)
                uu[k] = u
                vv[k] = v
                w_add += its if its > 1 else 1
                if not conv:
                    failures[k] = failures.get(k, 0) + 1
            j = rows[pos]
            new[j, 0, start + 1 :] = uu[start + 1 :]
            new[j, 1, start + 1 :] = vv[start + 1 :]
            work[j] += w_add
        if failures:
            k = min(failures)
            raise RuntimeError(
                f"brusselator Newton failed on {failures[k]} component(s) at "
                f"step {k} (block starting at {lo}); "
                "reduce dt or raise newton_max_iter"
            )

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def n_local(self, state: BrusselatorState) -> int:
        return state.n

    def copy_state(self, state: BrusselatorState) -> BrusselatorState:
        def _arr(a: np.ndarray | None) -> np.ndarray | None:
            return None if a is None else a.copy()

        return BrusselatorState(
            lo=state.lo,
            traj=state.traj.copy(),
            prev_res=_arr(state.prev_res),
            skip_streak=_arr(state.skip_streak),
            last_left_halo=_arr(state.last_left_halo),
            last_right_halo=_arr(state.last_right_halo),
        )

    def _invalidate_skip_state(self, state: BrusselatorState) -> None:
        """After a migration the block changed shape: recompute everything
        next sweep (the skip bookkeeping re-populates from scratch)."""
        state.prev_res = None
        state.skip_streak = None
        state.last_left_halo = None
        state.last_right_halo = None

    def split(self, state: BrusselatorState, n: int, side: str) -> np.ndarray:
        self.check_side(side)
        if not 0 < n < state.n:
            raise ValueError(f"cannot split {n} of {state.n} components")
        if side == "left":
            payload = state.traj[:n].copy()
            state.traj = state.traj[n:].copy()
            state.lo += n
        else:
            payload = state.traj[state.n - n :].copy()
            state.traj = state.traj[: state.n - n].copy()
        self._invalidate_skip_state(state)
        return payload

    def merge(self, state: BrusselatorState, payload: np.ndarray, side: str) -> None:
        self.check_side(side)
        payload = np.asarray(payload, dtype=float)
        if payload.ndim != 3 or payload.shape[1:] != (2, self.n_steps + 1):
            raise ValueError(
                f"bad migration payload shape {payload.shape}; expected "
                f"(n, 2, {self.n_steps + 1})"
            )
        if side == "left":
            state.traj = np.concatenate([payload, state.traj], axis=0)
            state.lo -= payload.shape[0]
        else:
            state.traj = np.concatenate([state.traj, payload], axis=0)
        self._invalidate_skip_state(state)

    def component_nbytes(self) -> float:
        return 2.0 * (self.n_steps + 1) * 8.0

    def payload_edge_halo(self, payload: np.ndarray, edge: str) -> np.ndarray:
        if edge not in ("first", "last"):
            raise ValueError(f"edge must be 'first' or 'last', got {edge!r}")
        # Halos are single-component trajectories of shape (2, n_steps+1).
        return payload[0].copy() if edge == "first" else payload[-1].copy()

    # ------------------------------------------------------------------
    # Rank-batched sweeps (lockstep SISC engine)
    # ------------------------------------------------------------------
    def batched_chain_sweeper(
        self, blocks: list[tuple[int, int]]
    ) -> "_BrusselatorChainSweeper":
        return _BrusselatorChainSweeper(self, blocks)

    # ------------------------------------------------------------------
    # Solutions
    # ------------------------------------------------------------------
    def solution(self, state: BrusselatorState) -> np.ndarray:
        return state.traj.copy()

    def reference_solution(self, *, backend: str = "scipy") -> np.ndarray:
        """Sequential solution of the fully-coupled implicit Euler system.

        Returns an array of shape ``(n_components, 2, n_steps + 1)``
        directly comparable to the assembled parallel trajectories.  This
        is the exact fixed point of the waveform relaxation on the same
        grid (up to Newton tolerance).
        """
        n, c = self.n_components, self.c

        def rhs(t: float, y: np.ndarray) -> np.ndarray:
            u, v = y[0::2], y[1::2]
            u_pad = np.concatenate([[U_BOUNDARY], u, [U_BOUNDARY]])
            v_pad = np.concatenate([[V_BOUNDARY], v, [V_BOUNDARY]])
            lap_u = u_pad[:-2] - 2.0 * u + u_pad[2:]
            lap_v = v_pad[:-2] - 2.0 * v + v_pad[2:]
            du = 1.0 + u * u * v - 4.0 * u + c * lap_u
            dv = 3.0 * u - u * u * v + c * lap_v
            out = np.empty_like(y)
            out[0::2], out[1::2] = du, dv
            return out

        def jac_banded(t: float, y: np.ndarray) -> np.ndarray:
            # Interleaved ordering (u1, v1, u2, v2, ...): kl = ku = 2.
            u, v = y[0::2], y[1::2]
            bands = np.zeros((5, 2 * n))
            # Main diagonal.
            bands[2, 0::2] = 2.0 * u * v - 4.0 - 2.0 * c  # ∂du/∂u
            bands[2, 1::2] = -u * u - 2.0 * c  # ∂dv/∂v
            # +1 super-diagonal: ∂du_i/∂v_i at column of v_i.
            bands[1, 1::2] = u * u
            # -1 sub-diagonal: ∂dv_i/∂u_i at column of u_i.
            bands[3, 0::2] = 3.0 - 2.0 * u * v
            # ±2: diffusion coupling u_i <-> u_{i±1}, v_i <-> v_{i±1}.
            bands[0, 2:] = c  # ∂d(·)_i/∂(·)_{i+1}
            bands[4, :-2] = c  # ∂d(·)_i/∂(·)_{i-1}
            return bands

        y0 = self.initial_values(0, n).ravel()  # already interleaved (u, v)
        t_grid = np.linspace(0.0, self.t_end, self.n_steps + 1)
        traj = implicit_euler_banded(
            rhs, jac_banded, 2, 2, y0, t_grid,
            newton_tol=self.newton.tol, backend=backend,
        )  # (n_steps + 1, 2n)
        out = np.empty((n, 2, self.n_steps + 1))
        out[:, 0, :] = traj[:, 0::2].T
        out[:, 1, :] = traj[:, 1::2].T
        return out


class _BrusselatorChainSweeper(TrajectoryChainSweeper):
    """All ranks' Brusselator sweeps as one vectorised global update.

    In a synchronous round every block sweeps against its neighbours'
    *previous-sweep* boundary trajectories — the same Jacobi-in-space
    dependency structure as one global sweep over the concatenated
    ``(N, 2, n_steps + 1)`` state with the Dirichlet edge trajectories
    pinned.  The sweep arithmetic is
    :meth:`BrusselatorProblem._sweep_batched`, shared verbatim with
    :meth:`BrusselatorProblem.iterate`, and every stage (optimistic
    verification, batched/scalar Newton, work accounting) is
    elementwise per component, so each block's slice of the global
    update is bit-identical to the per-rank call.

    The adaptive-skip machinery reduces globally too: a block-boundary
    component tests ``max|halo - last_halo| < thr`` against its
    neighbour's incoming trajectory, and that difference *is* the
    neighbour's boundary component's recorded residual (unchanged
    trajectory => diff 0 and a retained below-threshold residual;
    changed => diff equals the residual just recorded), so the
    per-block test equals the global ``prev_res < thr`` of the
    neighbouring component.  Domain-edge halos are constant, hence
    quiet from the second sweep on — exactly when ``prev_res`` first
    exists and skipping can first engage.  Work sums are integer-valued
    floats far below 2**53, so the per-rank reductions are exact in any
    order; residual maxes are exact by construction.
    """

    def __init__(
        self, problem: BrusselatorProblem, blocks: list[tuple[int, int]]
    ) -> None:
        super().__init__(problem, blocks)
        self._edge_left = problem.initial_halo(-1)
        self._edge_right = problem.initial_halo(problem.n_components)
        self._prev_res: np.ndarray | None = None
        self._skip_streak: np.ndarray | None = None

    def _global_skip_mask(self) -> np.ndarray:
        """Global reduction of :meth:`BrusselatorProblem._skip_mask`."""
        p = self.problem
        n = p.n_components
        if (
            not p.skip_converged
            or self._prev_res is None
            or self._skip_streak is None
        ):
            return np.zeros(n, dtype=bool)
        thr = p.skip_threshold
        quiet = self._prev_res < thr
        left_neighbour = np.empty(n, dtype=bool)
        left_neighbour[0] = True  # constant Dirichlet halo: always quiet
        left_neighbour[1:] = quiet[:-1]
        right_neighbour = np.empty(n, dtype=bool)
        right_neighbour[-1] = True
        right_neighbour[:-1] = quiet[1:]
        return (
            quiet
            & left_neighbour
            & right_neighbour
            & (self._skip_streak < p.refresh_period)
        )

    def _advance(
        self, old: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        p = self.problem
        skip = self._global_skip_mask()
        # Lagged neighbour trajectories with the Dirichlet boundary
        # trajectories at the domain edges (constant in time).
        u_left = np.vstack([self._edge_left[0][None, :], old[:-1, 0, :]])
        v_left = np.vstack([self._edge_left[1][None, :], old[:-1, 1, :]])
        u_right = np.vstack([old[1:, 0, :], self._edge_right[0][None, :]])
        v_right = np.vstack([old[1:, 1, :], self._edge_right[1][None, :]])
        new, work = p._sweep_batched(
            old, u_left, v_left, u_right, v_right, skip, 0
        )
        residuals = np.max(np.abs(new - old), axis=(1, 2))
        if skip.any() and self._prev_res is not None:
            residuals[skip] = self._prev_res[skip]
        return new, residuals, work, skip

    def _commit(
        self, new: np.ndarray, residuals: np.ndarray, skip: np.ndarray
    ) -> None:
        self.traj = new
        p = self.problem
        if p.skip_converged:
            if self._skip_streak is None:
                self._skip_streak = np.zeros(p.n_components, dtype=np.int64)
            self._skip_streak[skip] += 1
            self._skip_streak[~skip] = 0
            self._prev_res = residuals.copy()
