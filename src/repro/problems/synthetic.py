"""A controllable synthetic contraction problem.

For the large parameter sweeps (Figure 5 goes to ~100 processors) the
full Brusselator numerics are unnecessarily expensive; what the
experiments measure is the *interaction* between per-component activity,
per-component cost and the load balancer.  This problem models exactly
that, in closed form:

* component ``j`` carries an error ``e_j`` (distance to the fixed
  point), contracted each sweep by a per-component rate ``r_j``;
* spatial coupling mixes in the neighbours' errors with factor ``γ < 1``
  (a weighted-max-norm contraction, so asynchronous iterations converge
  by El Tarazi's theorem);
* sweep cost per component is ``base_cost`` plus ``active_cost`` while
  ``e_j`` exceeds ``active_threshold`` — the idealised version of the
  Brusselator's "converged components verify in one Newton iteration".

A *hard region* (components with ``r_j`` close to 1) reproduces the
paper's observation that "the progression towards the solution is not
the same for all the components": without load balancing the ranks
owning the hard region do expensive sweeps long after everyone else has
converged, which is precisely the imbalance the residual-driven
balancer removes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.problems.base import IterationResult, Problem
from repro.util.validation import check_in_range, check_positive

__all__ = ["SyntheticProblem", "SyntheticState"]


@dataclass(slots=True)
class SyntheticState:
    """Errors of components ``[lo, lo + len(e))``."""

    lo: int
    e: np.ndarray

    @property
    def n(self) -> int:
        return self.e.shape[0]


class SyntheticProblem(Problem):
    """Per-component contraction with activity-dependent cost.

    Parameters
    ----------
    rates:
        Per-component contraction rates, each in ``[0, 1)``; length
        defines ``n_components``.
    coupling:
        Neighbour mixing factor ``γ`` in ``[0, 1)``.
    init_error:
        Initial error of every component.
    active_threshold:
        Errors above this make a component "active" (expensive).
    base_cost, active_cost:
        Work units per component per sweep: ``base`` always, plus
        ``active`` while the component is active.
    """

    name = "synthetic"

    def __init__(
        self,
        rates: np.ndarray,
        *,
        coupling: float = 0.3,
        init_error: float = 1.0,
        active_threshold: float = 1e-4,
        base_cost: float = 1.0,
        active_cost: float = 4.0,
    ) -> None:
        self.rates = np.asarray(rates, dtype=float)
        if self.rates.ndim != 1 or self.rates.size == 0:
            raise ValueError("rates must be a non-empty 1-D array")
        if np.any(self.rates < 0) or np.any(self.rates >= 1):
            raise ValueError("all rates must lie in [0, 1)")
        self.n_components = int(self.rates.size)
        self.coupling = check_in_range("coupling", coupling, 0.0, 1.0 - 1e-12)
        self.init_error = check_positive("init_error", init_error)
        self.active_threshold = check_positive("active_threshold", active_threshold)
        self.base_cost = check_positive("base_cost", base_cost)
        self.active_cost = float(active_cost)
        if self.active_cost < 0:
            raise ValueError(f"active_cost must be >= 0, got {active_cost!r}")

    @classmethod
    def with_hard_region(
        cls,
        n_components: int,
        *,
        easy_rate: float = 0.5,
        hard_rate: float = 0.97,
        region: tuple[float, float] = (0.4, 0.6),
        **kwargs,
    ) -> "SyntheticProblem":
        """Uniform rates except a hard (slowly converging) sub-interval.

        ``region`` is in relative coordinates of the component index
        space, e.g. ``(0.4, 0.6)`` makes the middle fifth hard.
        """
        lo, hi = region
        if not 0.0 <= lo < hi <= 1.0:
            raise ValueError(f"invalid region {region!r}")
        rates = np.full(n_components, easy_rate, dtype=float)
        idx = np.arange(n_components) / max(n_components - 1, 1)
        rates[(idx >= lo) & (idx < hi)] = hard_rate
        return cls(rates, **kwargs)

    # ------------------------------------------------------------------
    # State lifecycle
    # ------------------------------------------------------------------
    def initial_state(self, lo: int, hi: int) -> SyntheticState:
        if not 0 <= lo < hi <= self.n_components:
            raise ValueError(
                f"invalid block [{lo}, {hi}) for {self.n_components} components"
            )
        return SyntheticState(lo=lo, e=np.full(hi - lo, self.init_error))

    def n_local(self, state: SyntheticState) -> int:
        return state.n

    def copy_state(self, state: SyntheticState) -> SyntheticState:
        return SyntheticState(lo=state.lo, e=state.e.copy())

    def iterate(
        self,
        state: SyntheticState,
        left_halo: np.ndarray,
        right_halo: np.ndarray,
    ) -> IterationResult:
        e = state.e
        rates = self.rates[state.lo : state.lo + state.n]
        e_left = np.concatenate([np.atleast_1d(left_halo), e[:-1]])
        e_right = np.concatenate([e[1:], np.atleast_1d(right_halo)])
        neighbour = np.maximum(e_left, e_right)
        new = np.maximum(rates * e, self.coupling * neighbour)
        active = e > self.active_threshold
        work = np.full(state.n, self.base_cost)
        work[active] += self.active_cost
        state.e = new
        # The synthetic problem's residual IS the true error (idealised
        # estimator; see module docstring).
        return IterationResult(residuals=new.copy(), work=work)

    # ------------------------------------------------------------------
    # Halos
    # ------------------------------------------------------------------
    def initial_halo(self, global_index: int) -> np.ndarray:
        if global_index < 0 or global_index >= self.n_components:
            return np.zeros(1)  # domain edges are exact (converged)
        return np.full(1, self.init_error)

    def halo_out(self, state: SyntheticState, side: str) -> np.ndarray:
        self.check_side(side)
        idx = 0 if side == "left" else state.n - 1
        return state.e[idx : idx + 1].copy()

    def halo_nbytes(self) -> float:
        return 8.0

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def split(self, state: SyntheticState, n: int, side: str) -> np.ndarray:
        self.check_side(side)
        if not 0 < n < state.n:
            raise ValueError(f"cannot split {n} of {state.n} components")
        if side == "left":
            payload = state.e[:n].copy()
            state.e = state.e[n:].copy()
            state.lo += n
        else:
            payload = state.e[state.n - n :].copy()
            state.e = state.e[: state.n - n].copy()
        return payload

    def merge(self, state: SyntheticState, payload: np.ndarray, side: str) -> None:
        self.check_side(side)
        payload = np.atleast_1d(np.asarray(payload, dtype=float))
        if side == "left":
            state.e = np.concatenate([payload, state.e])
            state.lo -= payload.shape[0]
        else:
            state.e = np.concatenate([state.e, payload])

    def component_nbytes(self) -> float:
        return 8.0

    # ------------------------------------------------------------------
    # Solution
    # ------------------------------------------------------------------
    def solution(self, state: SyntheticState) -> np.ndarray:
        return state.e.copy()

    # ------------------------------------------------------------------
    # Rank-batched sweeps (lockstep SISC engine)
    # ------------------------------------------------------------------
    def batched_chain_sweeper(
        self, blocks: list[tuple[int, int]]
    ) -> "_SyntheticChainSweeper":
        return _SyntheticChainSweeper(self, blocks)


class _SyntheticChainSweeper:
    """All ranks' synthetic sweeps as one vectorised global update.

    In a synchronous round every block iterates against its neighbours'
    *previous-iteration* boundary values — exactly the dependency
    structure of one global Jacobi-style sweep over the concatenated
    error vector with the domain-edge halos pinned.  Each per-block
    slice of the global update therefore reproduces, bit for bit, what
    :meth:`SyntheticProblem.iterate` computes for that block: every
    operation involved (``max``, elementwise multiply) is elementwise,
    so the partitioning of the array cannot change any result.

    Per-rank reductions preserve bit-identity too: they go through
    :class:`repro.numerics.ragged.ChainSegments`, whose ``max`` is
    exact under any association and whose ``sum`` replays each rank's
    own contiguous pairwise summation.
    """

    def __init__(self, problem: SyntheticProblem, blocks: list[tuple[int, int]]):
        from repro.numerics.ragged import ChainSegments

        self.problem = problem
        self.segments = ChainSegments(blocks, problem.n_components)
        self.blocks = self.segments.blocks
        self.n_ranks = self.segments.n_ranks
        self.e = np.full(problem.n_components, problem.init_error)
        self._edge_left = float(problem.initial_halo(-1)[0])
        self._edge_right = float(problem.initial_halo(problem.n_components)[0])

    def component_counts(self) -> np.ndarray:
        return self.segments.counts()

    def _advance(self, e: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One global sweep from ``e``: (new errors, per-component work)."""
        p = self.problem
        n = e.shape[0]
        e_left = np.empty(n)
        e_left[0] = self._edge_left
        e_left[1:] = e[:-1]
        e_right = np.empty(n)
        e_right[-1] = self._edge_right
        e_right[:-1] = e[1:]
        neighbour = np.maximum(e_left, e_right)
        new = np.maximum(p.rates * e, p.coupling * neighbour)
        work = np.full(n, p.base_cost)
        work[e > p.active_threshold] += p.active_cost
        return new, work

    def sweep(self) -> tuple[np.ndarray, np.ndarray]:
        """Advance every rank one iteration.

        Returns ``(residual, work)`` per rank: the max per-component
        residual and the pairwise-summed total work of each block.
        """
        new, work = self._advance(self.e)
        self.e = new
        return self.segments.max(new), self.segments.sum(work)

    def probe_residual(self) -> float:
        """Max residual one additional sweep would report (state untouched).

        Equivalent to the guard's ``true_global_residual``: iterate every
        block once more against the neighbours' *current* boundaries and
        take the worst per-component residual.
        """
        new, _ = self._advance(self.e)
        return float(new.max())

    def solution_block(self, rank: int) -> np.ndarray:
        lo, hi = self.blocks[rank]
        return self.e[lo:hi].copy()
