"""The block-decomposable fixed-point problem interface.

A problem defines a global index space of ``n_components`` *components*
(the paper's migratable spatial unknowns).  Each solver rank owns a
contiguous slice ``[lo, hi)`` and holds an opaque *local state* that the
problem creates, iterates, splits and merges:

* :meth:`Problem.iterate` performs one local relaxation sweep given the
  current halo data from both neighbours, returns per-component
  residuals and per-component **work** (in work units; see
  :mod:`repro.numerics`), and mutates the state in place;
* :meth:`Problem.split` / :meth:`Problem.merge` implement component
  migration for dynamic load balancing;
* :meth:`Problem.halo_out` extracts the boundary data a neighbour needs
  (what the paper's Algorithm 1 sends as "the two first/last local
  components").

The solver never looks inside states or halos — everything
problem-specific stays here, which is what lets one AIAC/LB
implementation drive the Brusselator, linear systems, the heat equation
and the synthetic model alike ("the principle of AIAC algorithms is
generic", Section 5).
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["IterationResult", "Problem"]


@dataclass(slots=True)
class IterationResult:
    """Outcome of one local relaxation sweep.

    Attributes
    ----------
    residuals:
        Per-component residual (infinity norm of the component's change
        during the sweep) — the paper's load estimator.
    work:
        Per-component work in work units (counted Newton component-steps
        or equivalent).
    """

    residuals: np.ndarray
    work: np.ndarray

    def __post_init__(self) -> None:
        self.residuals = np.asarray(self.residuals, dtype=float)
        self.work = np.asarray(self.work, dtype=float)
        if self.residuals.shape != self.work.shape:
            raise ValueError(
                f"residuals and work must align, got {self.residuals.shape} "
                f"vs {self.work.shape}"
            )

    @property
    def local_residual(self) -> float:
        """Max residual over local components (the node's load estimate)."""
        if self.residuals.size == 0:
            return 0.0
        return float(self.residuals.max())

    @property
    def total_work(self) -> float:
        return float(self.work.sum())


class Problem(ABC):
    """A fixed-point problem decomposable over a logical chain.

    Subclasses must set :attr:`n_components` and implement the abstract
    methods.  States and halos are opaque to callers; halos must be
    cheap, self-contained arrays (they travel in messages).
    """

    #: Global number of migratable components.
    n_components: int
    #: Human-readable problem name (used in reports).
    name: str = "problem"

    # ------------------------------------------------------------------
    # State lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def initial_state(self, lo: int, hi: int) -> Any:
        """Create the local state for global components ``[lo, hi)``."""

    @abstractmethod
    def n_local(self, state: Any) -> int:
        """Number of components currently held by ``state``."""

    @abstractmethod
    def iterate(self, state: Any, left_halo: Any, right_halo: Any) -> IterationResult:
        """One relaxation sweep; mutates ``state``, returns residual/work."""

    def copy_state(self, state: Any) -> Any:
        """Deep snapshot of a local state (checkpoints, verification).

        The default is a generic ``copy.deepcopy``; problems whose state
        is a thin wrapper around arrays override this with direct array
        copies, which is both faster and far leaner in memory (deepcopy
        builds a memo dict per call — measurable at thousands of ranks).
        The copy must be numerically identical and fully independent of
        the original.
        """
        return copy.deepcopy(state)

    def state_array(self, state: Any) -> np.ndarray | None:
        """The mutable array backing ``state``, or None.

        Consumed by the data-integrity layer: in-memory corruption
        injection (:class:`~repro.faults.models.StateCorruption`) and
        the plausibility guard's NaN/Inf screens need a raw view of the
        block's values.  The default recognises a bare array and the
        field names every bundled problem uses (``traj``/``e``/``x``);
        a problem with an exotic state layout overrides this.  ``None``
        means the state cannot be poisoned or screened.
        """
        if isinstance(state, np.ndarray):
            return state
        for name in ("traj", "e", "x"):
            arr = getattr(state, name, None)
            if isinstance(arr, np.ndarray):
                return arr
        return None

    def batched_chain_sweeper(self, blocks: list[tuple[int, int]]) -> Any:
        """A vectorised whole-chain sweeper for static ``blocks``, or None.

        When a problem can express "every block sweeps once against its
        neighbours' previous-iteration boundaries" as one global
        vectorised operation, it returns an object with the interface
        expected by :func:`repro.models.lockstep.run_sisc_batched`
        (``sweep()``, ``solution_block()``, ``probe_residual()``,
        ``component_counts()``).  The per-block numerics of the sweeper
        must be *bit-identical* to per-rank :meth:`iterate` calls.  The
        default (None) routes synchronous large-N runs down the ordinary
        per-rank path.
        """
        return None

    # ------------------------------------------------------------------
    # Halos
    # ------------------------------------------------------------------
    @abstractmethod
    def halo_out(self, state: Any, side: str) -> Any:
        """Boundary data for the ``side`` neighbour ('left' or 'right')."""

    @abstractmethod
    def initial_halo(self, global_index: int) -> Any:
        """Halo for component ``global_index`` before any message arrived.

        Ranks bootstrap from the problem's initial guess, exactly like an
        SPMD code that knows the global initial data.  Indices ``-1`` and
        ``n_components`` denote the domain edges (boundary conditions).
        """

    @abstractmethod
    def halo_nbytes(self) -> float:
        """Wire size of one halo payload (drives network timing)."""

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    @abstractmethod
    def split(self, state: Any, n: int, side: str) -> Any:
        """Remove the ``n`` components nearest ``side``; return the payload."""

    @abstractmethod
    def merge(self, state: Any, payload: Any, side: str) -> None:
        """Attach a migrated payload on ``side`` of ``state`` (in place)."""

    @abstractmethod
    def component_nbytes(self) -> float:
        """Wire size per migrated component."""

    def payload_edge_halo(self, payload: Any, edge: str) -> Any:
        """Halo-formatted view of a migration payload's first/last component.

        After shipping its ``n`` leftmost components, the sender's new
        left halo is the *last* component of the payload (its data
        dependency now lives on the neighbour); symmetrically for the
        right.  The default implementation assumes payloads are arrays
        indexed by component on axis 0 and halos are single-component
        slices (``payload[:1]`` / ``payload[-1:]``); problems whose halo
        format differs (e.g. the Brusselator drops the leading axis)
        override this.
        """
        if edge not in ("first", "last"):
            raise ValueError(f"edge must be 'first' or 'last', got {edge!r}")
        return payload[:1].copy() if edge == "first" else payload[-1:].copy()

    # ------------------------------------------------------------------
    # Solution access
    # ------------------------------------------------------------------
    @abstractmethod
    def solution(self, state: Any) -> np.ndarray:
        """Local solution data, concatenable across ranks in global order."""

    def check_side(self, side: str) -> str:
        if side not in ("left", "right"):
            raise ValueError(f"side must be 'left' or 'right', got {side!r}")
        return side
