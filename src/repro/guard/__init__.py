"""Runtime safety invariants, watchdogs, and the chaos-soak harness.

The paper's headline claim — AIAC coupled with decentralized load
balancing converges *faster without ever halting on a wrong answer* —
rests on safety properties that are easy to break silently under
asynchrony: a component lost in a migration, a convergence detector
fooled by a quiescent-but-wrong rank, a retry storm that never
terminates.  ``repro.guard`` checks those properties while a run
executes instead of trusting them:

* :class:`InvariantMonitor` — piggybacks on the DES profiler slot
  (``Simulator.attach_monitor``) and periodically asserts component
  conservation, per-channel sequence monotonicity and
  checkpoint–ownership consistency; at halt time its
  :meth:`~InvariantMonitor.verify_halt` oracle recomputes the *true*
  global residual from assembled state and fails loudly on any
  premature termination.
* Liveness watchdogs — a virtual-time stall detector emitting
  structured :class:`StallReport`\\ s, and a Newton/solver divergence
  guard that rolls a blowing-up rank back to its checkpoint instead of
  propagating NaNs (see also
  :func:`repro.numerics.newton.newton_batched_2x2_guarded`).
* :class:`PlausibilityGuard` — numerical screens (NaN/Inf, out-of-domain
  magnitudes, implausible residual jumps) that engage only while an
  attached fault injector has its corruption-detection layer armed,
  rolling poisoned in-memory state back to the last verified checkpoint
  (the data-integrity layer, ``docs/robustness.md``).
* :mod:`repro.guard.soak` — seeded random :class:`FaultSchedule`
  generation, a SISC/SIAC/AIAC ± LB soak runner asserting every
  invariant plus final-answer agreement with the fault-free run, and a
  greedy shrinker that reduces failing schedules to minimal
  reproducers written to disk (CLI verb ``repro soak``).

With no monitor attached nothing changes: the dispatch loop keeps its
observer-off branch and the transport its exact event trace
(fingerprint-pinned, like the profiler).  See ``docs/robustness.md``.
"""

from repro.guard.invariants import (
    GuardConfig,
    InvariantMonitor,
    InvariantViolation,
)
from repro.guard.plausibility import PlausibilityGuard
from repro.guard.soak import (
    SoakFailure,
    SoakResult,
    SoakScenario,
    random_schedule,
    run_soak,
    shrink_schedule,
)
from repro.guard.watchdogs import StallReport

__all__ = [
    "GuardConfig",
    "InvariantMonitor",
    "InvariantViolation",
    "PlausibilityGuard",
    "StallReport",
    "SoakFailure",
    "SoakResult",
    "SoakScenario",
    "random_schedule",
    "run_soak",
    "shrink_schedule",
]
