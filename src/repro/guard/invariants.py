"""The invariant monitor: continuous safety checks on a live run.

Attach pattern
--------------
:meth:`InvariantMonitor.attach` registers the monitor on a
:class:`~repro.core.solver.ChainRun` *before* the rank processes are
spawned.  Two hooks connect it to the run:

* the DES dispatch loop, via :meth:`Simulator.attach_monitor` — the
  monitor occupies the profiler slot (chaining to any profiler already
  there), sees every dispatched event, and sweeps the invariant
  catalogue every ``check_every`` events;
* the solver sweep, via ``run.guard`` — a single pointer test per
  sweep lets the divergence watchdog inspect each fresh residual and
  roll a blowing-up rank back to its checkpoint.

With no monitor attached both hooks vanish: the dispatch loop keeps its
observer-off branch and the sweep pays one ``is not None`` test, so the
unguarded path is bit-identical (fingerprint-pinned in the test suite).

Invariant catalogue (see ``docs/robustness.md``)
------------------------------------------------
1. **Component conservation** — every component index is owned by
   exactly one live rank, or exactly one in-flight migration record,
   or (for a crashed rank) its checkpointed record; the live block
   bounds, the :class:`~repro.core.partition.PartitionRegistry` and the
   actual state-vector lengths must all tell the same story.
2. **Sequence monotonicity** — per-channel send/receive sequence
   numbers never decrease, and no rank has received a sequence number
   its peer has not yet issued.
3. **Checkpoint–ownership consistency** — a rank's checkpoint always
   snapshots exactly its live block (the crash-recovery invariant:
   restores never roll back partition bookkeeping).
4. **No premature termination** — at halt time,
   :meth:`InvariantMonitor.verify_halt` assembles the global state,
   recomputes every rank's residual against its neighbours' *true*
   boundary values, and fails loudly if convergence was declared while
   the true global residual exceeds ``tolerance * halt_slack``.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.guard.plausibility import PlausibilityGuard
from repro.guard.watchdogs import (
    DivergenceGuard,
    StallReport,
    build_stall_report,
)
from repro.util.validation import check_in_range, check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.solver import ChainRun, RankContext

__all__ = ["GuardConfig", "InvariantMonitor", "InvariantViolation"]


class InvariantViolation(RuntimeError):
    """A runtime safety invariant was broken (see ``docs/robustness.md``)."""


@dataclass(frozen=True, slots=True)
class GuardConfig:
    """Tuning knobs for :class:`InvariantMonitor`.

    Parameters
    ----------
    check_every:
        Sweep the invariant catalogue every N dispatched DES events.
        Checks are read-only and O(ranks); the default keeps guard
        overhead in the noise for the test-scale problems.
    halt_slack:
        The halt oracle tolerates a true global residual up to
        ``tolerance * halt_slack``: one extra sweep against true halos
        legitimately moves the residual of a genuinely converged state
        by a small factor, and the oracle must flag *wrong answers*,
        not detection latency.  Under fault injection the bound widens
        by ``1 + max_halo_staleness`` (see :meth:`InvariantMonitor.
        verify_halt`) to cover the drift the detection freshness gate
        deliberately admits.
    stall_horizon:
        Virtual-time window of the stall watchdog; ``None`` disables
        it.  If no rank completes a sweep for a full horizon while the
        run is live, a :class:`StallReport` is recorded (the watchdog's
        periodic event can overshoot the halt by at most one horizon —
        reported convergence times are unaffected).
    on_stall:
        ``"record"`` appends the report to ``stall_reports`` and the
        tracer's fault channel; ``"raise"`` escalates to
        :class:`InvariantViolation`.
    divergence_factor:
        A rank's residual exceeding ``best_so_far * divergence_factor``
        counts as a blow-up step (NaN/inf always does).
    divergence_patience:
        Consecutive blow-up sweeps tolerated before rolling the rank
        back to its checkpoint; non-finite residuals roll back at once.
    rollback_refresh:
        On unfaulted runs (no injector, so no periodic checkpoints)
        the guard refreshes each rank's rollback point every this many
        improving sweeps.  ``0`` disables refreshing.
    value_bound:
        Plausibility screen (armed-detection runs only, see
        :class:`~repro.guard.plausibility.PlausibilityGuard`): any state
        magnitude above this is treated as corruption.
    residual_jump_factor:
        Plausibility screen: a single sweep moving the residual more
        than this factor above the previous sweep's is treated as
        corruption (no patience — contrast ``divergence_factor``).
    """

    check_every: int = 64
    halt_slack: float = 10.0
    stall_horizon: float | None = None
    on_stall: str = "record"
    divergence_factor: float = 1e4
    divergence_patience: int = 3
    rollback_refresh: int = 25
    value_bound: float = 1e12
    residual_jump_factor: float = 1e6

    def __post_init__(self) -> None:
        check_positive("check_every", self.check_every)
        check_positive("halt_slack", self.halt_slack)
        if self.stall_horizon is not None:
            check_positive("stall_horizon", self.stall_horizon)
        if self.on_stall not in ("record", "raise"):
            raise ValueError(
                f"on_stall must be 'record' or 'raise', got {self.on_stall!r}"
            )
        check_in_range("divergence_factor", self.divergence_factor, 1.0, math.inf)
        check_positive("divergence_patience", self.divergence_patience)
        if self.rollback_refresh < 0:
            raise ValueError(
                f"rollback_refresh must be >= 0, got {self.rollback_refresh}"
            )
        check_positive("value_bound", self.value_bound)
        check_in_range(
            "residual_jump_factor", self.residual_jump_factor, 1.0, math.inf
        )


class InvariantMonitor:
    """Continuously checks the safety invariants of one chain run."""

    def __init__(self, config: GuardConfig | None = None) -> None:
        self.config = config if config is not None else GuardConfig()
        self.run: "ChainRun | None" = None
        #: Next observer in the profiler slot (set by ``attach_monitor``).
        self.chain: Any = None
        self.events_seen = 0
        self.checks_run = 0
        self.stall_reports: list[StallReport] = []
        self.halt_verdict: dict[str, Any] | None = None
        self._divergence = DivergenceGuard(self.config)
        self._plausibility = PlausibilityGuard(self.config)
        self._prev_transport: dict[int, dict[str, dict]] = {}
        #: Installed by the lockstep replay engine (which never calls
        #: :meth:`attach`): a callable performing the native halt
        #: verification against the batched state.
        self._lockstep_verify: Any = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, run: "ChainRun") -> "InvariantMonitor":
        """Hook into ``run``'s dispatch loop and sweep path."""
        if self.run is not None:
            raise RuntimeError("InvariantMonitor is already attached to a run")
        self.run = run
        run.guard = self
        run.sim.attach_monitor(self)
        # Seed rollback points so the divergence watchdog can restore
        # even on the lossless fast path (an injector, attached before
        # or after, re-seeds its own — both snapshot the same bounds).
        for ctx in run.ranks:
            if ctx.checkpoint is None:
                run.checkpoint(ctx)
        if self.config.stall_horizon is not None:
            self._stall_iterations = [ctx.iteration for ctx in run.ranks]
            run.sim.at(
                run.sim.now + self.config.stall_horizon, self._stall_check
            )
        return self

    # ------------------------------------------------------------------
    # Dispatch-loop hook (the profiler-slot contract)
    # ------------------------------------------------------------------
    def record(self, event: Any) -> None:
        chain = self.chain
        if chain is not None:
            chain.record(event)
        self.events_seen += 1
        if self.events_seen % self.config.check_every == 0:
            self.check_invariants()

    # ------------------------------------------------------------------
    # Sweep hook (divergence watchdog; called from ChainRun.sweep)
    # ------------------------------------------------------------------
    def after_sweep(self, run: "ChainRun", ctx: "RankContext") -> bool:
        """Inspect a fresh residual; True if the rank was rolled back.

        The divergence watchdog always runs.  The stricter plausibility
        screen engages only when the run's fault injector has its
        detection layer armed (a corruption fault is scheduled and
        ``integrity_checks`` is on) — every other run, including all
        pre-existing fault scenarios, keeps its exact behaviour.
        """
        if self._divergence.after_sweep(run, ctx):
            return True
        injector = run.injector
        if injector is not None and injector.detection_active:
            return self._plausibility.after_sweep(run, ctx)
        return False

    @property
    def divergence_events(self) -> list[dict[str, Any]]:
        """Rollbacks performed by the divergence watchdog."""
        return self._divergence.events

    @property
    def plausibility_events(self) -> list[dict[str, Any]]:
        """Rollbacks performed by the plausibility screen."""
        return self._plausibility.events

    # ------------------------------------------------------------------
    # The invariant catalogue
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Sweep invariants 1–3; raises :class:`InvariantViolation`."""
        run = self.run
        assert run is not None
        self.checks_run += 1
        self._check_conservation(run)
        self._check_checkpoint_ownership(run)
        self._check_sequence_monotonicity(run)

    def _fail(self, message: str) -> None:
        run = self.run
        at = f" at t={run.sim.now:.6g}" if run is not None else ""
        raise InvariantViolation(f"invariant violated{at}: {message}")

    def _check_conservation(self, run: "ChainRun") -> None:
        """Invariant 1: components tile [0, n) with no loss or overlap."""
        problem = run.problem
        registry = run.partition
        intervals: list[tuple[int, int, str]] = []
        for ctx in run.ranks:
            reg_lo, reg_hi = registry.block(ctx.rank)
            if (ctx.lo, ctx.hi) != (reg_lo, reg_hi):
                self._fail(
                    f"rank {ctx.rank} live block [{ctx.lo}, {ctx.hi}) "
                    f"disagrees with registry [{reg_lo}, {reg_hi})"
                )
            n_state = problem.n_local(ctx.state)
            if n_state != ctx.hi - ctx.lo:
                self._fail(
                    f"rank {ctx.rank} holds {n_state} components in state "
                    f"but owns [{ctx.lo}, {ctx.hi})"
                )
            if ctx.lo < ctx.hi:
                intervals.append((ctx.lo, ctx.hi, f"rank {ctx.rank}"))
        for lo, hi, src, dst in registry.in_flight_runs():
            intervals.append((lo, hi, f"in-flight {src}->{dst}"))
        intervals.sort()
        cursor = 0
        for lo, hi, label in intervals:
            if lo != cursor:
                verb = "lost" if lo > cursor else "duplicated"
                self._fail(
                    f"component(s) {verb} at index {min(lo, cursor)}: "
                    f"{label} covers [{lo}, {hi}) but the cursor is at "
                    f"{cursor}"
                )
            cursor = hi
        if cursor != problem.n_components:
            self._fail(
                f"coverage ends at {cursor}, expected "
                f"{problem.n_components} components"
            )

    def _check_checkpoint_ownership(self, run: "ChainRun") -> None:
        """Invariant 3 (+ the crashed-rank half of invariant 1)."""
        for ctx in run.ranks:
            snap = ctx.checkpoint
            if snap is not None and (snap["lo"], snap["hi"]) != (ctx.lo, ctx.hi):
                self._fail(
                    f"rank {ctx.rank} checkpoint snapshots "
                    f"[{snap['lo']}, {snap['hi']}) but the live block is "
                    f"[{ctx.lo}, {ctx.hi})"
                )
            if not ctx.node.alive and snap is None:
                self._fail(
                    f"rank {ctx.rank} is crashed with no checkpointed "
                    "record backing its components"
                )

    def _check_sequence_monotonicity(self, run: "ChainRun") -> None:
        """Invariant 2: per-channel sequence numbers only move forward."""
        current = {
            ctx.rank: ctx.node.transport_snapshot() for ctx in run.ranks
        }
        for rank, snapshot in current.items():
            previous = self._prev_transport.get(rank)
            if previous is not None:
                for table in ("send_seq", "recv_latest"):
                    for channel, seq in previous[table].items():
                        now_seq = snapshot[table].get(channel)
                        if now_seq is None or now_seq < seq:
                            self._fail(
                                f"rank {rank} {table} for channel "
                                f"{channel} went backwards: {seq} -> "
                                f"{now_seq}"
                            )
            # Nothing can be received before its peer issued it.
            for table in ("recv_latest", "recv_seen_max"):
                for (kind, src), seq in snapshot[table].items():
                    issued = current.get(src, {}).get("send_seq", {}).get(
                        (kind, rank), 0
                    )
                    if seq >= issued:
                        self._fail(
                            f"rank {rank} saw seq {seq} on channel "
                            f"({kind!r}, from {src}) but rank {src} has "
                            f"only issued {issued} sends"
                        )
        self._prev_transport = current

    # ------------------------------------------------------------------
    # Invariant 4: the no-premature-termination oracle
    # ------------------------------------------------------------------
    def true_global_residual(self) -> float:
        """Recompute the global residual from assembled state.

        Deep-copies every rank's block, rebuilds each block's halos
        from its neighbours' *actual current* boundary values (domain
        edges use the problem's boundary conditions, exactly as the
        solver does), runs one extra iteration per block, and returns
        the maximum local residual.  Pure: live state is not touched.
        """
        run = self.run
        assert run is not None
        problem = run.problem
        blocks = sorted(run.ranks, key=lambda c: c.lo)

        def halo_for(index: int, side: str) -> Any:
            step = -1 if side == "left" else 1
            j = index + step
            while 0 <= j < len(blocks):
                if blocks[j].hi > blocks[j].lo:
                    # The nearest non-empty block on that side owns the
                    # adjacent component; take its true boundary value.
                    return problem.halo_out(
                        blocks[j].state, "right" if side == "left" else "left"
                    )
                j += step
            ctx = blocks[index]
            edge = ctx.lo - 1 if side == "left" else ctx.hi
            return problem.initial_halo(edge)

        worst = 0.0
        for i, ctx in enumerate(blocks):
            if ctx.lo == ctx.hi:
                continue
            state = copy.deepcopy(ctx.state)
            result = problem.iterate(
                state, halo_for(i, "left"), halo_for(i, "right")
            )
            worst = max(worst, result.local_residual)
        return worst

    def verify_halt(self) -> dict[str, Any]:
        """The no-premature-termination oracle; call after ``run()``.

        Re-checks invariants 1–3 on the final state, then recomputes
        the true global residual.  If *any* detector (the supervisor
        oracle or the token ring) declared convergence while the true
        residual exceeds the accepted bound, the declared halt was
        wrong — raise :class:`InvariantViolation`.

        The accepted bound is ``tolerance * halt_slack`` on fault-free
        runs.  Under fault injection it widens by the staleness window:
        the detection freshness gate deliberately counts sweeps whose
        halos are up to ``max_halo_staleness`` iterations old, so at
        halt every interface may legally carry that many sweeps of
        drift and the assembled residual can sit an ``O(staleness)``
        factor above the per-rank threshold without any vote having
        been wrong.  Genuinely premature halts (a rank that never
        converged, a detector protocol bug) overshoot the widened bound
        by orders of magnitude, so the oracle still fails loudly.
        """
        if self.run is None and self._lockstep_verify is not None:
            # Guarded lockstep replay: the engine verifies its own
            # batched final state (same invariants, same bound).
            return self._lockstep_verify()
        run = self.run
        assert run is not None
        self.check_invariants()
        declared = run.monitor.converged or (
            run.detector is not None and run.detector.converged
        )
        residual = self.true_global_residual()
        tolerance = run.config.tolerance
        slack = self.config.halt_slack
        if run.injector is not None:
            slack *= 1 + run.injector.resilience.max_halo_staleness
        verdict = {
            "declared_converged": bool(declared),
            "true_residual": residual,
            "tolerance": tolerance,
            "halt_slack": slack,
        }
        self.halt_verdict = verdict
        if declared and not residual <= tolerance * slack:
            self._fail(
                f"premature termination: convergence was declared but the "
                f"true global residual is {residual:.6e} "
                f"(tolerance {tolerance:.1e}, slack x{slack:g})"
            )
        return verdict

    # ------------------------------------------------------------------
    # Stall watchdog (periodic virtual-time event)
    # ------------------------------------------------------------------
    def _run_stopped(self) -> bool:
        run = self.run
        assert run is not None
        if run.aborted_reason is not None:
            return True
        if run.monitor.converged:
            return True
        if run.detector is not None and run.detector.converged:
            return True
        return all(ctx.node.stop_requested for ctx in run.ranks)

    def _stall_check(self) -> None:
        run = self.run
        assert run is not None
        if self._run_stopped():
            return  # do not re-arm: let the queue drain
        horizon = self.config.stall_horizon
        assert horizon is not None
        current = [ctx.iteration for ctx in run.ranks]
        if all(
            cur <= prev
            for prev, cur in zip(self._stall_iterations, current)
        ):
            report = build_stall_report(run, horizon, self._stall_iterations)
            self.stall_reports.append(report)
            run.tracer.fault(report.as_fault_record())
            if self.config.on_stall == "raise":
                raise InvariantViolation(report.format())
        self._stall_iterations = current
        run.sim.at(run.sim.now + horizon, self._stall_check)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Deterministic summary for soak reports and tests."""
        return {
            "events_seen": self.events_seen,
            "checks_run": self.checks_run,
            "stalls": len(self.stall_reports),
            "divergence_rollbacks": len(self.divergence_events),
            "plausibility_rollbacks": len(self.plausibility_events),
            "halt_verdict": self.halt_verdict,
        }
