"""Numerical-plausibility screens for the data-integrity layer.

Checksums catch corruption *in flight* and checkpoint CRCs catch it *at
rest*, but a bit flipped in live solver memory
(:class:`~repro.faults.models.StateCorruption` with ``target="state"``)
is invisible to both: the damaged values simply become the next sweep's
input.  The :class:`PlausibilityGuard` closes that gap by screening each
rank right after its sweep for states no healthy run produces:

* **non-finite values** anywhere in the block
  (via :meth:`~repro.problems.base.Problem.state_array`);
* **out-of-domain magnitudes** — ``|value| > GuardConfig.value_bound``
  (an exponent-bit flip turns an O(1) solution value into 1e300);
* **implausible residual jumps** — a single sweep moving the residual
  more than ``GuardConfig.residual_jump_factor`` above the previous
  sweep's (floored at the tolerance, and suppressed across migrations,
  where the residual legitimately re-scales).

The screen is owned by :class:`repro.guard.InvariantMonitor` and runs
*only* while the attached fault injector has its detection layer armed
(``injector.detection_active``) — which in turn requires a corruption
fault in the schedule — so every other configuration, including all
pre-existing fault scenarios, keeps its exact behaviour.  A hit counts
as a detected corruption, rolls the rank back to its last *verified*
checkpoint (:meth:`~repro.core.solver.ChainRun.restore_checkpoint`) and
counts the rollback as a recovery.

The divergence watchdog (:class:`~repro.guard.watchdogs.DivergenceGuard`)
stays the first line of defence: it also fires on blow-ups from honest
numerics and needs no injector.  The plausibility screen is stricter
(no patience, value-level checks) because under an armed corruption
schedule a wild state is presumed poisoned, not merely diverging.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.runtime.tracer import FaultRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.solver import ChainRun, RankContext
    from repro.guard.invariants import GuardConfig

__all__ = ["PlausibilityGuard"]


@dataclass(slots=True)
class PlausibilityGuard:
    """Post-sweep state screens + rollback, active under armed detection."""

    config: "GuardConfig"
    #: One record per rollback: rank, time, iteration, reason.
    events: list[dict[str, Any]] = field(default_factory=list)
    _block: dict[int, tuple[int, int]] = field(default_factory=dict)

    def _implausible(self, run: "ChainRun", ctx: "RankContext") -> str | None:
        """Why ``ctx``'s post-sweep state is implausible, or None."""
        cfg = self.config
        arr = run.problem.state_array(ctx.state)
        if arr is not None and arr.size:
            if not np.isfinite(arr).all():
                return "non-finite state values"
            peak = float(np.abs(arr).max())
            if peak > cfg.value_bound:
                return f"state magnitude {peak:.3e} exceeds bound {cfg.value_bound:g}"
        # Residual-jump screen: one sweep legitimately moves the residual
        # by O(1) factors; a corruption-scale perturbation moves it by
        # many orders of magnitude at once.  Migrations re-scale the
        # block's residual, so the first sweep on a new block is exempt.
        block = (ctx.lo, ctx.hi)
        migrated = self._block.get(ctx.rank) != block
        self._block[ctx.rank] = block
        if migrated or not math.isfinite(ctx.prev_residual):
            return None
        floor = max(ctx.prev_residual, run.config.tolerance)
        if ctx.residual > floor * cfg.residual_jump_factor:
            return (
                f"residual jumped {ctx.prev_residual:.3e} -> "
                f"{ctx.residual:.3e} in one sweep"
            )
        return None

    def after_sweep(self, run: "ChainRun", ctx: "RankContext") -> bool:
        """Screen ``ctx``; True if it was rolled back to a checkpoint."""
        why = self._implausible(run, ctx)
        if why is None:
            return False
        injector = run.injector
        now = run.sim.now
        self.events.append(
            {
                "rank": ctx.rank,
                "time": now,
                "iteration": ctx.iteration,
                "residual": ctx.residual,
                "why": why,
            }
        )
        injector.stats["corruptions_detected"] += 1
        run.tracer.fault(
            FaultRecord(
                kind="corruption_detected",
                time=now,
                t_end=now,
                rank=ctx.rank,
                detail=f"plausibility screen: {why}",
            )
        )
        run.restore_checkpoint(ctx)
        injector.note_corruption_recovered(
            ctx.rank, f"plausibility rollback ({why})"
        )
        return True
