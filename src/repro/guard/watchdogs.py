"""Liveness watchdogs: stall detection and divergence rollback.

Both watchdogs are owned by :class:`repro.guard.InvariantMonitor`; this
module keeps their mechanics (report assembly, blow-up bookkeeping)
separate from the invariant catalogue.

Stall watchdog
--------------
A periodic virtual-time event (period = ``GuardConfig.stall_horizon``)
compares every rank's sweep counter against the previous tick.  If *no*
rank completed a sweep for a full horizon while the run is still live,
global residual progress has stalled; :func:`build_stall_report`
assembles a :class:`StallReport` naming the suspect rank and channel
from solver, transport and load-balancer state.

Divergence watchdog
-------------------
Newton-type inner solvers can blow up (singular Jacobians, overshoot
into NaN territory); asynchronously, one poisoned halo then propagates
NaNs chain-wide and the run spins until ``max_time``.
:class:`DivergenceGuard` watches each rank's post-sweep residual: a
non-finite value rolls the rank back to its checkpoint immediately, a
residual above ``max(best_so_far, tolerance) * divergence_factor`` does
so after ``divergence_patience`` consecutive offences.  The baseline
resets whenever load balancing changes the rank's block (a different
subproblem has a different residual scale).  The batch-level
counterpart (damped retry inside the Newton loop itself) is
:func:`repro.numerics.newton.newton_batched_2x2_guarded`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.runtime.tracer import FaultRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.solver import ChainRun, RankContext
    from repro.guard.invariants import GuardConfig

__all__ = ["StallReport", "DivergenceGuard", "build_stall_report"]


@dataclass(frozen=True, slots=True)
class StallReport:
    """No rank made sweep progress for a full watchdog horizon."""

    time: float
    horizon: float
    #: The most likely culprit: a dead rank, else a rank stuck in the
    #: migration protocol, else the least-advanced rank.
    suspect_rank: int
    #: The channel most plausibly starving the suspect (the halo side
    #: with the largest iteration lag), or ``None`` when the suspect's
    #: own liveness is the problem.
    suspect_channel: str | None
    why: str
    #: Per-rank snapshot: iteration, residual, alive, stop_requested,
    #: busy (migration protocol), halo lags.
    ranks: tuple[dict[str, Any], ...]

    def format(self) -> str:
        lines = [
            f"stall: no sweep progress in [{self.time - self.horizon:.6g}, "
            f"{self.time:.6g}] (horizon {self.horizon:g})",
            f"  suspect: rank {self.suspect_rank}"
            + (f" channel {self.suspect_channel}" if self.suspect_channel else "")
            + f" — {self.why}",
        ]
        for info in self.ranks:
            lines.append(
                "  rank {rank}: iter={iteration} residual={residual:.3e} "
                "alive={alive} busy={busy} lag(left={lag_left}, "
                "right={lag_right})".format(**info)
            )
        return "\n".join(lines)

    def as_fault_record(self) -> FaultRecord:
        """Surface the stall on the tracer's fault channel (Gantt ✖)."""
        return FaultRecord(
            kind="stall",
            time=self.time,
            t_end=self.time,
            rank=self.suspect_rank,
            detail=self.why,
        )


def _halo_lag(run: "ChainRun", ctx: "RankContext", side: str) -> int | None:
    """How far ``ctx``'s halo on ``side`` trails the owning neighbour."""
    neighbor = run.neighbor(ctx.rank, side)
    if neighbor is None:
        return None
    halo_iter = ctx.halo_iter_left if side == "left" else ctx.halo_iter_right
    return neighbor.iteration - halo_iter


def build_stall_report(
    run: "ChainRun", horizon: float, prev_iterations: list[int]
) -> StallReport:
    """Assemble the structured report for a detected global stall."""
    ranks: list[dict[str, Any]] = []
    for ctx in run.ranks:
        ranks.append(
            {
                "rank": ctx.rank,
                "iteration": ctx.iteration,
                "residual": ctx.residual,
                "alive": ctx.node.alive,
                "stop_requested": ctx.node.stop_requested,
                "busy": bool(run.rank_busy(ctx.rank)),
                "lag_left": _halo_lag(run, ctx, "left"),
                "lag_right": _halo_lag(run, ctx, "right"),
            }
        )
    # Suspect selection, most-specific evidence first: a dead host
    # explains any stall; next an unfinished migration protocol (its
    # hold_while gate blocks detection and its channel blocks sweeps in
    # the sync models); finally the least-advanced rank.
    dead = [info for info in ranks if not info["alive"]]
    busy = [info for info in ranks if info["busy"]]
    if dead:
        suspect = dead[0]
        why = "host is down (crashed, not yet restarted)"
    elif busy:
        suspect = busy[0]
        why = "migration protocol unfinished (offer/data outstanding)"
    else:
        suspect = min(ranks, key=lambda info: (info["iteration"], info["rank"]))
        why = "least-advanced rank (fewest completed sweeps)"
    # The suspect's starving channel: the halo side with the largest
    # iteration lag, if any side lags at all.
    sides = [
        (side, lag)
        for side, lag in (
            ("left", suspect["lag_left"]),
            ("right", suspect["lag_right"]),
        )
        if lag is not None and lag > 0
    ]
    channel = None
    if sides:
        side = max(sides, key=lambda pair: pair[1])[0]
        channel = f"halo_from_{'left' if side == 'left' else 'right'}"
    return StallReport(
        time=run.sim.now,
        horizon=horizon,
        suspect_rank=suspect["rank"],
        suspect_channel=channel,
        why=why,
        ranks=tuple(ranks),
    )


@dataclass(slots=True)
class DivergenceGuard:
    """Per-rank residual blow-up tracking + checkpoint rollback."""

    config: "GuardConfig"
    events: list[dict[str, Any]] = field(default_factory=list)
    _best: dict[int, float] = field(default_factory=dict)
    _streak: dict[int, int] = field(default_factory=dict)
    _improvements: dict[int, int] = field(default_factory=dict)
    _block: dict[int, tuple[int, int]] = field(default_factory=dict)

    def after_sweep(self, run: "ChainRun", ctx: "RankContext") -> bool:
        """Inspect ``ctx``'s fresh residual; True if rolled back."""
        residual = ctx.residual
        rank = ctx.rank
        cfg = self.config
        # A migration changes the rank's block: its residual series now
        # measures a different subproblem, so the old best is not a
        # valid divergence baseline (a near-empty block's residual can
        # sit at machine epsilon — 12 orders below the block's residual
        # after regrowth, which is progress, not a blow-up).
        block = (ctx.lo, ctx.hi)
        if self._block.get(rank) != block:
            self._block[rank] = block
            self._best.pop(rank, None)
            self._streak.pop(rank, None)
        best = self._best.get(rank)
        if math.isfinite(residual) and (best is None or residual < best):
            self._best[rank] = residual
            self._streak[rank] = 0
            # On unfaulted runs nothing else refreshes checkpoints;
            # keep the rollback point near the best known state so a
            # later rollback does not rewind to t=0.
            if cfg.rollback_refresh and run.checkpoint_every == 0:
                count = self._improvements.get(rank, 0) + 1
                self._improvements[rank] = count
                if count % cfg.rollback_refresh == 0:
                    run.checkpoint(ctx)
            return False
        # The blow-up reference is floored at the solver tolerance:
        # once a rank's best is *below* tolerance it has locally
        # converged, and a later excursion back above tolerance (fresh
        # boundary data re-activating the block — routine under
        # asynchronism) is re-activation, not divergence.
        blowup = (
            not math.isfinite(residual)
            or (
                best is not None
                and residual
                > max(best, run.config.tolerance) * cfg.divergence_factor
            )
        )
        if not blowup:
            return False
        streak = self._streak.get(rank, 0) + 1
        self._streak[rank] = streak
        if math.isfinite(residual) and streak < cfg.divergence_patience:
            return False
        self.events.append(
            {
                "rank": rank,
                "time": run.sim.now,
                "iteration": ctx.iteration,
                "residual": residual,
                "best": best,
                "streak": streak,
            }
        )
        run.tracer.fault(
            FaultRecord(
                kind="divergence-rollback",
                time=run.sim.now,
                t_end=run.sim.now,
                rank=rank,
                detail=f"residual {residual:.3e} (best {best})",
            )
        )
        run.restore_checkpoint(ctx)
        self._streak[rank] = 0
        return True
