"""The chaos-soak harness: seeded random fault schedules, every model.

Workflow (CLI: ``repro soak --schedules 50 --seed 0``)
------------------------------------------------------
1. For every model (SISC / SIAC / AIAC ± LB) run the **fault-free
   baseline** with the guard attached; its solution is the agreement
   reference.
2. Generate ``n_schedules`` random :class:`FaultSchedule`\\ s from the
   scenario's :class:`~repro.util.rng.RngTree` (every draw is keyed by
   the scenario seed and the schedule index — the whole soak is
   byte-reproducible).
3. Run every (schedule, model) pair with a fresh
   :class:`~repro.guard.InvariantMonitor`: the run must finish without
   invariant violations, pass the halt oracle
   (:meth:`~repro.guard.InvariantMonitor.verify_halt`), converge, match
   the sequential reference, and agree with its fault-free baseline.
4. Any failure is **shrunk**: :func:`shrink_schedule` greedily removes
   faults while the failure reproduces, yielding a minimal reproducer
   that is written to disk as JSON (original + minimized schedule +
   error) for offline replay.

Determinism contract: two invocations with the same scenario and seed
produce byte-identical reports (pinned by the ``guard-soak`` CI job).
"""

from __future__ import annotations

import json
from dataclasses import asdict, replace
from typing import Any, Callable

import numpy as np

from repro.analysis.perf import stable_digest
from repro.faults.injector import FaultInjector
from repro.faults.models import (
    FaultSchedule,
    HostCrash,
    HostSlowdown,
    LinkPartition,
    MessageDuplication,
    MessageLoss,
    MessageReordering,
)
from repro.guard.invariants import GuardConfig, InvariantMonitor
from repro.util.rng import RngTree
from repro.workloads.scenarios import SoakScenario

__all__ = [
    "SoakFailure",
    "SoakResult",
    "SoakScenario",
    "random_schedule",
    "run_soak",
    "shrink_schedule",
]


class SoakFailure(AssertionError):
    """One (schedule, model) soak run violated a guard assertion."""


# ----------------------------------------------------------------------
# Random schedule generation
# ----------------------------------------------------------------------
_FAULT_MENU = ("loss", "dup", "reorder", "slowdown", "crash", "partition")


def _uniform(rng: np.random.Generator, bounds: tuple[float, float]) -> float:
    lo, hi = bounds
    return float(lo + (hi - lo) * rng.random())


def random_schedule(
    scenario: SoakScenario, tree: RngTree, index: int
) -> FaultSchedule:
    """Draw one valid random :class:`FaultSchedule`.

    All randomness comes from the ``schedule-{index}`` child of
    ``tree``, so schedule ``i`` is independent of how many schedules
    precede it.  Construction respects the strict schedule validation
    by design: at most one crash (no overlapping crash intervals) and a
    partition window nudged past the crash window when it would isolate
    the crashed rank unobservably.
    """
    rng = tree.child(f"schedule-{index}").generator("faults")
    n_faults = 1 + int(rng.integers(scenario.max_faults))
    picks = [
        _FAULT_MENU[int(i)]
        for i in rng.choice(len(_FAULT_MENU), size=n_faults, replace=False)
    ]
    faults: list[Any] = []
    crash_window: tuple[float, float] | None = None
    crash_rank: int | None = None
    # The crash is built first (regardless of draw order) so the
    # partition can dodge its window deterministically.
    if "crash" in picks:
        crash_rank = int(rng.integers(scenario.n_procs))
        at = _uniform(rng, scenario.crash_at_range)
        lo = _uniform(rng, scenario.crash_downtime_range)
        hi = lo + _uniform(rng, (0.2, 1.0))
        faults.append(HostCrash(rank=crash_rank, at=at, downtime=(lo, hi)))
        crash_window = (at, at + hi)
    for kind in picks:
        if kind == "loss":
            faults.append(MessageLoss(_uniform(rng, scenario.loss_range)))
        elif kind == "dup":
            faults.append(
                MessageDuplication(_uniform(rng, scenario.dup_range))
            )
        elif kind == "reorder":
            faults.append(
                MessageReordering(
                    _uniform(rng, scenario.reorder_range),
                    max_extra_delay=_uniform(
                        rng, scenario.reorder_delay_range
                    ),
                )
            )
        elif kind == "slowdown":
            t0 = _uniform(rng, scenario.crash_at_range)
            faults.append(
                HostSlowdown(
                    rank=int(rng.integers(scenario.n_procs)),
                    t0=t0,
                    t1=t0 + _uniform(rng, scenario.fault_window_range),
                    factor=_uniform(rng, scenario.slowdown_factor_range),
                    ramp_steps=2,
                )
            )
        elif kind == "partition":
            split = 1 + int(rng.integers(scenario.n_procs - 1))
            t0 = _uniform(rng, scenario.crash_at_range)
            t1 = t0 + _uniform(rng, scenario.fault_window_range)
            if crash_window is not None and crash_rank is not None:
                isolated = (split == 1 and crash_rank == 0) or (
                    split == scenario.n_procs - 1
                    and crash_rank == scenario.n_procs - 1
                )
                contained = crash_window[0] <= t0 and t1 <= crash_window[1]
                if isolated and contained:
                    t1 = crash_window[1] + 0.5  # make the cut observable
            faults.append(
                LinkPartition(
                    t0=t0,
                    t1=t1,
                    ranks_a=tuple(range(split)),
                    ranks_b=tuple(range(split, scenario.n_procs)),
                )
            )
    return FaultSchedule(
        faults=tuple(faults),
        seed=int(rng.integers(2**31 - 1)),
        resilience=scenario.resilience(),
    )


# ----------------------------------------------------------------------
# One guarded run
# ----------------------------------------------------------------------
def _run_model(
    model: str,
    scenario: SoakScenario,
    schedule: FaultSchedule | None,
) -> tuple[Any, InvariantMonitor]:
    """Run ``model`` (fresh everything), guard attached; return result."""
    from repro.core.lb import run_balanced_aiac
    from repro.core.solver import run_aiac
    from repro.models.siac import run_siac
    from repro.models.sisc import run_sisc

    problem = scenario.problem()
    platform = scenario.platform()
    config = scenario.solver_config()
    injector = FaultInjector(schedule) if schedule is not None else None
    guard = InvariantMonitor(
        GuardConfig(stall_horizon=scenario.stall_horizon)
    )
    if model == "aiac+lb":
        result = run_balanced_aiac(
            problem,
            platform,
            config,
            scenario.lb_config(),
            injector=injector,
            guard=guard,
        )
    elif model == "aiac":
        result = run_aiac(
            problem, platform, config, injector=injector, guard=guard
        )
    elif model == "siac":
        result = run_siac(
            problem, platform, config, injector=injector, guard=guard
        )
    elif model == "sisc":
        result = run_sisc(
            problem, platform, config, injector=injector, guard=guard
        )
    else:
        raise ValueError(f"unknown model {model!r}")
    return result, guard


def _assert_run_ok(
    model: str,
    scenario: SoakScenario,
    result: Any,
    guard: InvariantMonitor,
    baseline: np.ndarray | None,
) -> dict[str, Any]:
    """Halt oracle + answer checks; returns the report row on success."""
    verdict = guard.verify_halt()
    if not result.converged:
        stalls = "\n".join(r.format() for r in guard.stall_reports)
        raise SoakFailure(
            f"{model} did not converge by max_time={scenario.max_time:g}"
            + (f"\n{stalls}" if stalls else "")
        )
    reference = scenario.problem().reference_solution()
    max_error = float(result.max_error_vs(reference))
    if not max_error <= scenario.error_tol:
        raise SoakFailure(
            f"{model} solution wrong: max error vs sequential reference "
            f"{max_error:.3e} > {scenario.error_tol:g}"
        )
    agreement = 0.0
    if baseline is not None:
        agreement = float(np.max(np.abs(result.solution() - baseline)))
        if not agreement <= scenario.agreement_tol:
            raise SoakFailure(
                f"{model} disagrees with its fault-free run by "
                f"{agreement:.3e} > {scenario.agreement_tol:g}"
            )
    return {
        "model": model,
        "converged": bool(result.converged),
        "time": float(result.time),
        "max_error": max_error,
        "agreement": agreement,
        "true_residual": float(verdict["true_residual"]),
        "checks_run": int(guard.checks_run),
        "stalls": len(guard.stall_reports),
        "rollbacks": len(guard.divergence_events),
    }


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def shrink_schedule(
    schedule: FaultSchedule,
    failing: Callable[[FaultSchedule], bool],
) -> FaultSchedule:
    """Greedily remove faults while ``failing`` keeps reproducing.

    One-minimal ddmin: repeatedly drop the first single fault whose
    removal preserves the failure, until no single removal does.  Every
    subset of a valid schedule is itself valid (the strict cross-fault
    checks only ever reject *pairs* of faults), so candidates never
    fail construction.
    """
    faults = list(schedule.faults)

    def rebuild(subset: list[Any]) -> FaultSchedule:
        return FaultSchedule(
            faults=tuple(subset),
            seed=schedule.seed,
            resilience=schedule.resilience,
        )

    changed = True
    while changed:
        changed = False
        for i in range(len(faults)):
            candidate = rebuild(faults[:i] + faults[i + 1 :])
            if failing(candidate):
                del faults[i]
                changed = True
                break
    return rebuild(faults)


# ----------------------------------------------------------------------
# The soak itself
# ----------------------------------------------------------------------
class SoakResult:
    """Rows + failures + digest of one soak invocation."""

    def __init__(
        self,
        scenario: SoakScenario,
        n_schedules: int,
        rows: list[dict[str, Any]],
        failures: list[dict[str, Any]],
    ) -> None:
        self.scenario = scenario
        self.n_schedules = n_schedules
        self.rows = rows
        self.failures = failures

    @property
    def ok(self) -> bool:
        return not self.failures

    def digest(self) -> str:
        return stable_digest({"rows": self.rows, "failures": self.failures})

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": asdict(self.scenario),
            "n_schedules": self.n_schedules,
            "rows": self.rows,
            "failures": self.failures,
            "digest": self.digest(),
        }

    def save_json(self, path: str) -> None:
        from repro.analysis.perf import save_report

        save_report(path, self.to_dict())

    def report(self) -> str:
        models = list(self.scenario.models)
        lines = [
            f"guard soak: {self.n_schedules} schedule(s) x "
            f"{len(models)} model(s), seed {self.scenario.seed}",
            f"  models: {', '.join(models)}",
        ]
        by_model: dict[str, int] = {m: 0 for m in models}
        for row in self.rows:
            if row.get("schedule") != "baseline":
                by_model[row["model"]] = by_model.get(row["model"], 0) + 1
        for model in models:
            lines.append(f"  {model:8s} {by_model[model]} run(s) passed")
        stalls = sum(row.get("stalls", 0) for row in self.rows)
        rollbacks = sum(row.get("rollbacks", 0) for row in self.rows)
        lines.append(f"  watchdogs: {stalls} stall(s), {rollbacks} rollback(s)")
        if self.failures:
            lines.append(f"  FAILURES: {len(self.failures)}")
            for failure in self.failures:
                lines.append(
                    f"    schedule {failure['schedule']} x "
                    f"{failure['model']}: {failure['error'].splitlines()[0]}"
                )
                if failure.get("repro_path"):
                    lines.append(
                        f"      minimal reproducer: {failure['repro_path']}"
                    )
        else:
            lines.append("  all invariants held; all answers agree")
        lines.append(f"  digest: {self.digest()}")
        return "\n".join(lines)


def _failure_text(exc: BaseException) -> str:
    """The failure signature: unwrap the DES kernel's rewrapping."""
    cause = exc.__cause__
    if cause is not None and type(exc).__name__ == "SimulationError":
        exc = cause
    return f"{type(exc).__name__}: {exc}"


def _baseline_task(scenario: SoakScenario, model: str) -> dict[str, Any]:
    """Engine task: one fault-free guarded run; row + agreement reference.

    A baseline failure raises (the soak cannot proceed without its
    agreement reference), which aborts the sweep — the legacy behavior.
    The solution ships as a nested list: float repr round-trips exactly,
    so the agreement checks downstream see bit-identical references on
    the in-process, worker-pool and cache-hit paths alike.
    """
    result, guard = _run_model(model, scenario, None)
    row = _assert_run_ok(model, scenario, result, guard, None)
    return {"row": row, "solution": result.solution().tolist()}


def _grid_task(
    scenario: SoakScenario,
    schedule: FaultSchedule,
    model: str,
    baseline: list,
) -> dict[str, Any]:
    """Engine task: one guarded (schedule, model) run.

    Failures are *encoded in the payload* rather than raised: the soak
    must keep running (and later shrink) past individual failures, and
    a payload survives the worker-pool boundary where a chained
    exception may not pickle.
    """
    try:
        result, guard = _run_model(model, scenario, schedule)
        row = _assert_run_ok(
            model, scenario, result, guard, np.asarray(baseline)
        )
    except Exception as exc:  # noqa: BLE001 - recorded + shrunk by caller
        return {"ok": False, "error": _failure_text(exc)}
    return {"ok": True, "row": row}


def run_soak(
    scenario: SoakScenario | None = None,
    *,
    n_schedules: int = 50,
    seed: int | None = None,
    models: tuple[str, ...] | None = None,
    out_dir: str = ".",
    shrink: bool = True,
    engine=None,
) -> SoakResult:
    """Run the chaos soak; see the module docstring for the workflow.

    Failures never abort the soak: each one is recorded (and shrunk to
    a minimal reproducer on disk under ``out_dir`` when ``shrink``),
    and the remaining (schedule, model) pairs still run.

    ``engine`` optionally supplies a :class:`~repro.exec.SweepEngine`:
    the baseline runs and the (schedule, model) grid fan out over its
    worker pool and/or are served from its run cache, with results
    merged in submission order so the report and digest are
    byte-identical to the serial path.  Shrinking always happens in
    process (it is an adaptive sequential search).
    """
    from dataclasses import asdict as _asdict

    from repro.exec import SweepEngine, Task

    scenario = scenario if scenario is not None else SoakScenario()
    if seed is not None:
        scenario = replace(scenario, seed=seed)
    if models is not None:
        scenario = replace(scenario, models=tuple(models))
    engine = engine if engine is not None else SweepEngine()
    scenario_key = _asdict(scenario)
    tree = RngTree(scenario.seed).child("guard-soak")
    rows: list[dict[str, Any]] = []
    failures: list[dict[str, Any]] = []

    baseline_tasks = [
        Task(
            fn=_baseline_task,
            args=(scenario, model),
            key={
                "experiment": "soak-baseline",
                "scenario": scenario_key,
                "model": model,
            },
            label=f"soak/baseline/{model}",
        )
        for model in scenario.models
    ]
    baselines: dict[str, np.ndarray] = {}
    for model, payload in zip(scenario.models, engine.map(baseline_tasks)):
        row = dict(payload["row"])
        row["schedule"] = "baseline"
        rows.append(row)
        baselines[model] = np.asarray(payload["solution"])

    def failing_for(model: str) -> Callable[[FaultSchedule], bool]:
        def failing(candidate: FaultSchedule) -> bool:
            try:
                result, guard = _run_model(model, scenario, candidate)
                _assert_run_ok(
                    model, scenario, result, guard, baselines[model]
                )
            except Exception:  # noqa: BLE001 - any failure reproduces
                return True
            return False

        return failing

    grid_tasks: list[Task] = []
    grid_meta: list[tuple[int, str, list[str], FaultSchedule]] = []
    for index in range(n_schedules):
        schedule = random_schedule(scenario, tree, index)
        fault_types = [type(f).__name__ for f in schedule.faults]
        for model in scenario.models:
            grid_tasks.append(
                Task(
                    fn=_grid_task,
                    args=(scenario, schedule, model, baselines[model].tolist()),
                    key={
                        "experiment": "soak",
                        "scenario": scenario_key,
                        "model": model,
                        "schedule": schedule.to_dict(),
                    },
                    label=f"soak/s{index}/{model}",
                )
            )
            grid_meta.append((index, model, fault_types, schedule))

    for (index, model, fault_types, schedule), payload in zip(
        grid_meta, engine.map(grid_tasks)
    ):
        if not payload["ok"]:
            failure: dict[str, Any] = {
                "schedule": index,
                "model": model,
                "faults": fault_types,
                "error": payload["error"],
                "repro_path": None,
            }
            if shrink:
                minimized = shrink_schedule(schedule, failing_for(model))
                failure["minimized_faults"] = [
                    type(f).__name__ for f in minimized.faults
                ]
                path = f"{out_dir}/guard_repro_{model}_s{index}.json"
                _write_reproducer(
                    path, model, scenario, schedule, minimized,
                    failure["error"],
                )
                failure["repro_path"] = path
            failures.append(failure)
            continue
        row = dict(payload["row"])
        row["schedule"] = index
        row["faults"] = fault_types
        rows.append(row)
    return SoakResult(scenario, n_schedules, rows, failures)


def _write_reproducer(
    path: str,
    model: str,
    scenario: SoakScenario,
    schedule: FaultSchedule,
    minimized: FaultSchedule,
    error: str,
) -> None:
    """Write a minimal-reproducer JSON (schema: repro-guard-repro/1)."""
    payload = {
        "schema": "repro-guard-repro/1",
        "model": model,
        "error": error,
        "scenario": asdict(scenario),
        "schedule": schedule.to_dict(),
        "minimized": minimized.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
