"""Banded LU factorization and solves, from scratch.

Implicit Euler on a 1-D reaction–diffusion system produces Jacobians
with small bandwidth (the Brusselator in interleaved ``(u1,v1,u2,v2,…)``
ordering has ``kl = ku = 2``).  This module provides:

* :class:`BandedMatrix` — LAPACK-style band storage with conversion
  helpers,
* an LU factorization **without pivoting** (valid for the strictly
  diagonally dominant systems implicit Euler produces; singular or
  near-singular pivots raise),
* :class:`BandedLUCache` — a reuse layer so modified-Newton loops can
  keep a factorization across iterations / time steps,
* :func:`thomas_solve` — the tridiagonal specialisation.

The factor/solve kernels are hybrid: narrow bands (the kl=ku=2 hot
case) run a tuned scalar sweep on plain Python lists, where per-element
arithmetic beats NumPy's per-op dispatch overhead; wide bands run a
column-sweep vectorized elimination over pre-built strided views of the
packed band array.  ``lu_factor_scalar``/``solve_scalar`` retain the
original closure-based reference implementation as an oracle (and for
the scalar-vs-native ratio in ``benchmarks/bench_kernels.py``).

Tested against dense ``numpy.linalg.solve`` and ``scipy`` oracles.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np
from numpy.lib.stride_tricks import as_strided

__all__ = [
    "BandedMatrix",
    "BandedLU",
    "BandedLUCache",
    "solve_banded_system",
    "thomas_solve",
]

#: Pivots smaller than this (relative to the largest diagonal entry)
#: indicate the no-pivot factorization is untrustworthy.
_PIVOT_RTOL = 1e-12

#: Update blocks of at least this many elements (kl*ku) are eliminated
#: with the vectorized column sweep; smaller blocks use the list kernel
#: (NumPy per-op dispatch costs more than the arithmetic it replaces).
_VECTOR_MIN_BLOCK = 16


class BandedMatrix:
    """A square banded matrix in band storage.

    Storage layout (LAPACK ``gbsv``-like): ``bands[ku + i - j, j] ==
    A[i, j]`` for ``max(0, j-ku) <= i <= min(n-1, j+kl)``; row 0 of
    ``bands`` is the highest super-diagonal, row ``ku`` the main
    diagonal, row ``ku+kl`` the lowest sub-diagonal.

    Parameters
    ----------
    bands:
        Array of shape ``(kl + ku + 1, n)``.
    kl, ku:
        Numbers of sub- and super-diagonals.
    """

    def __init__(self, bands: np.ndarray, kl: int, ku: int) -> None:
        bands = np.asarray(bands, dtype=float)
        if bands.ndim != 2:
            raise ValueError(f"bands must be 2-D, got shape {bands.shape}")
        if kl < 0 or ku < 0:
            raise ValueError(f"kl and ku must be >= 0, got kl={kl}, ku={ku}")
        if bands.shape[0] != kl + ku + 1:
            raise ValueError(
                f"bands must have kl+ku+1={kl + ku + 1} rows, got {bands.shape[0]}"
            )
        self.bands = bands
        self.kl = kl
        self.ku = ku
        self.n = bands.shape[1]

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, a: np.ndarray, kl: int, ku: int) -> "BandedMatrix":
        """Extract the bands of a dense square matrix.

        Raises if ``a`` has nonzero entries outside the declared band.
        """
        a = np.asarray(a, dtype=float)
        n = a.shape[0]
        if a.shape != (n, n):
            raise ValueError(f"matrix must be square, got {a.shape}")
        i_idx, j_idx = np.nonzero(a)
        if np.any(i_idx - j_idx > kl) or np.any(j_idx - i_idx > ku):
            raise ValueError("dense matrix has entries outside the declared band")
        bands = np.zeros((kl + ku + 1, n))
        for offset in range(-kl, ku + 1):
            diag = np.diagonal(a, offset)
            row = ku - offset
            if offset >= 0:
                bands[row, offset : offset + len(diag)] = diag
            else:
                bands[row, : len(diag)] = diag
        return cls(bands, kl, ku)

    def to_dense(self) -> np.ndarray:
        """Expand to a dense matrix (testing / small systems only)."""
        a = np.zeros((self.n, self.n))
        for offset in range(-self.kl, self.ku + 1):
            row = self.ku - offset
            length = self.n - abs(offset)
            if length <= 0:
                continue
            vals = (
                self.bands[row, offset : offset + length]
                if offset >= 0
                else self.bands[row, :length]
            )
            idx = np.arange(length)
            if offset >= 0:
                a[idx, idx + offset] = vals
            else:
                a[idx - offset, idx] = vals
        return a

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Banded matrix-vector product (one vectorized op per diagonal)."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n,):
            raise ValueError(f"x must have shape ({self.n},), got {x.shape}")
        y = np.zeros(self.n)
        bands, kl, ku, n = self.bands, self.kl, self.ku, self.n
        for offset in range(-kl, ku + 1):
            row = ku - offset
            length = n - abs(offset)
            if length <= 0:
                continue
            if offset >= 0:
                y[:length] += bands[row, offset : offset + length] * x[offset:]
            else:
                y[-offset:] += bands[row, :length] * x[:length]
        return y

    # ------------------------------------------------------------------
    # Factorization (no pivoting)
    # ------------------------------------------------------------------
    def lu_factor(self) -> "BandedLU":
        """LU factorization without pivoting.

        Valid for diagonally dominant matrices; raises
        :class:`numpy.linalg.LinAlgError` on a (near-)zero pivot.
        Dispatches between a tuned scalar sweep (narrow bands) and a
        vectorized column sweep (wide bands); both produce the same
        packed factors as :meth:`lu_factor_scalar`.
        """
        kl, ku, n = self.kl, self.ku, self.n
        scale = float(np.max(np.abs(self.bands[ku]))) or 1.0
        if kl * ku >= _VECTOR_MIN_BLOCK:
            lu = _lu_factor_vectorized(self.bands, kl, ku, n, scale)
        else:
            lu = _lu_factor_lists(self.bands, kl, ku, n, scale)
        return BandedLU(lu, kl, ku)

    def lu_factor_scalar(self) -> "BandedLU":
        """Reference scalar factorization (the original implementation).

        Kept as the oracle the vectorized paths are tested against and
        as the baseline for the speedup ratio in ``bench_kernels.py``.
        """
        kl, ku, n = self.kl, self.ku, self.n
        # Work on a dense-band copy indexed [i, j] via band row ku+i-j.
        lu = self.bands.copy()
        scale = np.max(np.abs(lu[ku])) or 1.0

        def get(i: int, j: int) -> float:
            return lu[ku + i - j, j]

        def add(i: int, j: int, value: float) -> None:
            lu[ku + i - j, j] += value

        def put(i: int, j: int, value: float) -> None:
            lu[ku + i - j, j] = value

        for k in range(n - 1):
            pivot = get(k, k)
            if abs(pivot) <= _PIVOT_RTOL * scale:
                raise np.linalg.LinAlgError(
                    f"near-zero pivot {pivot!r} at row {k}; "
                    "banded LU without pivoting requires diagonal dominance"
                )
            for i in range(k + 1, min(k + kl + 1, n)):
                factor = get(i, k) / pivot
                put(i, k, factor)  # store L below the diagonal
                for j in range(k + 1, min(k + ku + 1, n)):
                    add(i, j, -factor * get(k, j))
        if abs(get(n - 1, n - 1)) <= _PIVOT_RTOL * scale:
            raise np.linalg.LinAlgError("near-zero final pivot")
        return BandedLU(lu, kl, ku)


def _pivot_error(pivot: float, k: int) -> np.linalg.LinAlgError:
    return np.linalg.LinAlgError(
        f"near-zero pivot {pivot!r} at row {k}; "
        "banded LU without pivoting requires diagonal dominance"
    )


def _lu_factor_lists(
    bands: np.ndarray, kl: int, ku: int, n: int, scale: float
) -> np.ndarray:
    """Scalar elimination on plain Python lists (narrow-band fast path).

    Bit-identical to :meth:`BandedMatrix.lu_factor_scalar`: per pivot
    column, each multiplier is an individual division and each update a
    single fused multiply-subtract in the same order.
    """
    tiny = _PIVOT_RTOL * scale
    rows = bands.tolist()
    dr = rows[ku]
    for k in range(n - 1):
        pivot = dr[k]
        if -tiny <= pivot <= tiny:
            raise _pivot_error(pivot, k)
        rem = n - 1 - k
        li = kl if kl <= rem else rem
        lj = ku if ku <= rem else rem
        if li == 0:
            continue
        factors = []
        for di in range(1, li + 1):
            row = rows[ku + di]
            fac = row[k] / pivot
            row[k] = fac  # store L below the diagonal
            factors.append(fac)
        for dj in range(1, lj + 1):
            g = rows[ku - dj][k + dj]
            if g != 0.0:
                col = k + dj
                for di in range(1, li + 1):
                    rows[ku + di - dj][col] -= factors[di - 1] * g
    pivot = dr[n - 1]
    if -tiny <= pivot <= tiny:
        raise np.linalg.LinAlgError("near-zero final pivot")
    return np.array(rows, dtype=float)


def _lu_factor_vectorized(
    bands: np.ndarray, kl: int, ku: int, n: int, scale: float
) -> np.ndarray:
    """Column-sweep elimination with pre-built strided block views.

    For pivot ``k`` the update touches the ``kl x ku`` block
    ``A[k+1:k+1+kl, k+1:k+1+ku]``; in band storage that block is a
    *sheared* view reachable with strides ``(s0, s1 - s0)`` from
    ``lu[ku, k+1]``.  All per-pivot views over the in-range "bulk"
    region are materialised once as 3-D/2-D strided arrays so the inner
    loop is two NumPy ops; the boundary tail falls back to clamped
    slices.
    """
    tiny = _PIVOT_RTOL * scale
    lu = bands.copy()
    diag = lu[ku]
    # Pivots k < bulk have their full kl x ku update block in range.
    bulk = n - 1 - max(kl, ku)
    if bulk < 0 or kl == 0 or ku == 0:
        bulk = 0
    if bulk:
        s0, s1 = lu.strides
        cols = as_strided(lu[ku + 1 :, :], shape=(bulk, kl), strides=(s1, s0))
        urows = as_strided(
            lu[ku - 1 :, 1:], shape=(bulk, ku), strides=(s1, s1 - s0)
        )
        blocks = as_strided(
            lu[ku:, 1:], shape=(bulk, kl, ku), strides=(s1, s0, s1 - s0)
        )
        for k in range(bulk):
            pivot = diag[k]
            if -tiny <= pivot <= tiny:
                raise _pivot_error(float(pivot), k)
            col = cols[k]
            col /= pivot  # multipliers, stored in place of L's column
            blocks[k] -= col[:, None] * urows[k]
    # Boundary tail (and the kl==0 / ku==0 shapes): clamped slices.
    for k in range(bulk, n - 1):
        pivot = diag[k]
        if -tiny <= pivot <= tiny:
            raise _pivot_error(float(pivot), k)
        rem = n - 1 - k
        li = kl if kl <= rem else rem
        lj = ku if ku <= rem else rem
        if li == 0:
            continue
        col = lu[ku + 1 : ku + 1 + li, k]
        col /= pivot
        for d in range(1, lj + 1):
            g = lu[ku - d, k + d]
            if g != 0.0:
                lu[ku + 1 - d : ku + 1 + li - d, k + d] -= col * g
    pivot = diag[n - 1]
    if -tiny <= pivot <= tiny:
        raise np.linalg.LinAlgError("near-zero final pivot")
    return lu


class BandedLU:
    """The packed LU factors produced by :meth:`BandedMatrix.lu_factor`."""

    def __init__(self, lu: np.ndarray, kl: int, ku: int) -> None:
        self._lu = lu
        self.kl = kl
        self.ku = ku
        self.n = lu.shape[1]

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` using the stored factors.

        Narrow bands use a scalar sweep on lists (bit-identical to
        :meth:`solve_scalar`); wide bands use vectorized column sweeps.
        """
        b = np.asarray(b, dtype=float)
        if b.shape != (self.n,):
            raise ValueError(f"b must have shape ({self.n},), got {b.shape}")
        if self.kl + self.ku >= 8:
            return self._solve_colsweep(b)
        return self._solve_lists(b)

    def _solve_lists(self, b: np.ndarray) -> np.ndarray:
        kl, ku, n = self.kl, self.ku, self.n
        rows = self._lu.tolist()
        dr = rows[ku]
        x = b.tolist()
        # Forward substitution with unit-diagonal L.
        for i in range(n):
            j_lo = i - kl if i > kl else 0
            s = x[i]
            for j in range(j_lo, i):
                s -= rows[ku + i - j][j] * x[j]
            x[i] = s
        # Backward substitution with U.
        for i in range(n - 1, -1, -1):
            j_hi = i + ku if i + ku < n else n - 1
            s = x[i]
            for j in range(i + 1, j_hi + 1):
                s -= rows[ku + i - j][j] * x[j]
            x[i] = s / dr[i]
        return np.array(x, dtype=float)

    def _solve_colsweep(self, b: np.ndarray) -> np.ndarray:
        kl, ku, n, lu = self.kl, self.ku, self.n, self._lu
        x = b.copy()
        # Forward: as each x[j] is finalised, push it into the rows below.
        for j in range(n - 1):
            lj = kl if kl <= n - 1 - j else n - 1 - j
            if lj:
                xj = x[j]
                if xj != 0.0:
                    x[j + 1 : j + 1 + lj] -= lu[ku + 1 : ku + 1 + lj, j] * xj
        # Backward: divide, then push the finalised x[j] upward.
        diag = lu[ku]
        for j in range(n - 1, -1, -1):
            xj = x[j] / diag[j]
            x[j] = xj
            uj = ku if ku <= j else j
            if uj and xj != 0.0:
                x[j - uj : j] -= lu[ku - uj : ku, j] * xj
        return x

    def solve_scalar(self, b: np.ndarray) -> np.ndarray:
        """Reference scalar solve (the original implementation)."""
        b = np.asarray(b, dtype=float)
        if b.shape != (self.n,):
            raise ValueError(f"b must have shape ({self.n},), got {b.shape}")
        kl, ku, n, lu = self.kl, self.ku, self.n, self._lu
        x = b.copy()
        # Forward substitution with unit-diagonal L.
        for i in range(n):
            j_lo = max(0, i - kl)
            for j in range(j_lo, i):
                x[i] -= lu[ku + i - j, j] * x[j]
        # Backward substitution with U.
        for i in range(n - 1, -1, -1):
            j_hi = min(n - 1, i + ku)
            for j in range(i + 1, j_hi + 1):
                x[i] -= lu[ku + i - j, j] * x[j]
            x[i] /= lu[ku, i]
        return x


class BandedLUCache:
    """Reuse a :class:`BandedLU` across Newton iterations / time steps.

    A modified-Newton (frozen-Jacobian) loop factors the iteration
    matrix once and reuses it while the step size is unchanged,
    refreshing after ``max_uses`` solves.  ``max_uses=1`` degenerates to
    factoring every iteration (exact Newton, the default everywhere).

    Usage::

        cache = BandedLUCache(max_uses=refresh)
        lu = cache.get(dt) or cache.put(dt, matrix.lu_factor())
    """

    __slots__ = ("max_uses", "hits", "misses", "_key", "_lu", "_uses")

    def __init__(self, max_uses: int | None = None) -> None:
        if max_uses is not None and max_uses < 1:
            raise ValueError(f"max_uses must be >= 1, got {max_uses}")
        self.max_uses = max_uses
        self.hits = 0
        self.misses = 0
        self._key: Hashable = None
        self._lu: BandedLU | None = None
        self._uses = 0

    def get(self, key: Hashable) -> BandedLU | None:
        """Return the cached LU for ``key``, or ``None`` if stale."""
        if (
            self._lu is None
            or key != self._key
            or (self.max_uses is not None and self._uses >= self.max_uses)
        ):
            self.misses += 1
            return None
        self.hits += 1
        self._uses += 1
        return self._lu

    def put(self, key: Hashable, lu: BandedLU) -> BandedLU:
        """Cache ``lu`` under ``key`` (counts as its first use)."""
        self._key = key
        self._lu = lu
        self._uses = 1
        return lu

    def invalidate(self) -> None:
        self._lu = None
        self._key = None
        self._uses = 0


def solve_banded_system(
    matrix: BandedMatrix, b: np.ndarray, *, backend: str = "native"
) -> np.ndarray:
    """Solve a banded system with the requested backend.

    ``backend="native"`` uses the from-scratch LU above; ``"scipy"``
    delegates to :func:`scipy.linalg.solve_banded` when available (used
    by the sequential reference solver for speed — results agree to
    rounding, as the test suite asserts).
    """
    if backend == "native":
        return matrix.lu_factor().solve(np.asarray(b, dtype=float))
    if backend == "scipy":
        try:
            from scipy.linalg import solve_banded as _scipy_solve_banded
        except ImportError as exc:  # pragma: no cover - scipy is a test dep
            raise RuntimeError("scipy backend requested but scipy missing") from exc
        return _scipy_solve_banded((matrix.kl, matrix.ku), matrix.bands, b)
    raise ValueError(f"unknown backend {backend!r}; use 'native' or 'scipy'")


def thomas_solve(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Tridiagonal solve (Thomas algorithm) without pivoting.

    ``lower[i]`` multiplies ``x[i-1]`` in row ``i`` (``lower[0]``
    ignored); ``upper[i]`` multiplies ``x[i+1]`` (``upper[-1]`` ignored).
    Requires diagonal dominance.  The recurrence is inherently serial,
    so it runs on plain Python floats (same arithmetic, same order —
    results are bit-identical to the original NumPy-indexed loop).
    """
    diag = np.asarray(diag, dtype=float)
    n = diag.shape[0]
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    b = np.asarray(b, dtype=float)
    if not (lower.shape == upper.shape == b.shape == (n,)):
        raise ValueError("all inputs must be 1-D arrays of equal length")
    scale = float(np.max(np.abs(diag))) or 1.0
    tiny = _PIVOT_RTOL * scale
    lo = lower.tolist()
    di = diag.tolist()
    up = upper.tolist()
    rhs = b.tolist()
    if -tiny <= di[0] <= tiny:
        raise np.linalg.LinAlgError("near-zero pivot at row 0")
    c_prime = [0.0] * n
    d_prime = [0.0] * n
    c_prime[0] = up[0] / di[0]
    d_prime[0] = rhs[0] / di[0]
    for i in range(1, n):
        denom = di[i] - lo[i] * c_prime[i - 1]
        if -tiny <= denom <= tiny:
            raise np.linalg.LinAlgError(f"near-zero pivot at row {i}")
        c_prime[i] = up[i] / denom
        d_prime[i] = (rhs[i] - lo[i] * d_prime[i - 1]) / denom
    x = [0.0] * n
    x[-1] = d_prime[-1]
    for i in range(n - 2, -1, -1):
        x[i] = d_prime[i] - c_prime[i] * x[i + 1]
    return np.array(x, dtype=float)
